//! # pdmsf — worst-case deterministic (parallel) dynamic minimum spanning forest
//!
//! This crate is the facade of the `pdmsf` workspace, a from-scratch Rust
//! reproduction of
//!
//! > Tsvi Kopelowitz, Ely Porat, Yair Rosenmutter.
//! > *Improved Worst-Case Deterministic Parallel Dynamic Minimum Spanning
//! > Forest.* SPAA 2018.
//!
//! It re-exports the public API of the member crates:
//!
//! * [`graph`] ([`pdmsf_graph`]) — the dynamic-graph substrate: weights,
//!   [`graph::DynGraph`], the [`graph::DynamicMsf`] trait, Kruskal reference,
//!   degree-3 reduction, workload generators,
//! * [`pram`] ([`pdmsf_pram`]) — the EREW PRAM cost-model substrate,
//! * [`dyntree`] ([`pdmsf_dyntree`]) — Sleator–Tarjan link-cut trees,
//! * [`core`] ([`pdmsf_core`]) — the paper's contribution: the sequential
//!   `O(sqrt(n log n))`-time structure (Theorem 1.2), the parallel
//!   `O(log n)`-depth / `O(sqrt n)`-processor structure (Theorem 3.1) and the
//!   sparsification tree (Section 5),
//! * [`engine`] ([`pdmsf_engine`]) — the batched update/query serving layer
//!   on top of the parallel structure,
//! * [`shard`] ([`pdmsf_shard`]) — the multi-tenant sharded serving layer
//!   on top of the engine,
//! * [`persist`] ([`pdmsf_persist`]) — durable checkpoint/restore, the
//!   write-ahead op log and crash recovery,
//! * [`obs`] ([`pdmsf_obs`]) — the zero-dependency metrics core: counters,
//!   gauges, log2 latency histograms, phase spans and Prometheus-text
//!   exposition,
//! * [`baselines`] ([`pdmsf_baselines`]) — comparison structures.
//!
//! ## Performance architecture
//!
//! Every hot path runs on **flat, index-based arenas** — no keyed map is
//! consulted anywhere on the `insert`/`delete` path:
//!
//! * [`graph::arena`] interns each live [`graph::EdgeId`] into a dense
//!   `u32` slot ([`graph::EdgeSlotMap`], free-listed so slot storage stays
//!   proportional to the *live* edge count). The slot is a stable handle:
//!   adjacency lists store handles, so the `O(K)`-edge scans of the chunked
//!   forest resolve each incident edge with a single indexed load — and,
//!   because the address is known in advance, the store prefetches upcoming
//!   records ([`graph::arena::EdgeStore::prefetch`]), which no hash map can
//!   do. Sparse id regions (the degree-reduction's auxiliary ids) are
//!   handled by a paged id index ([`graph::EdgeIdIndex`]).
//! * One [`core::EdgeRec`] per edge carries the edge *and* its Euler-tour
//!   arc tails, replacing the seed's `HashMap<EdgeId, Edge>` +
//!   `HashMap<EdgeId, (u32, u32)>` + `BTreeMap<EdgeId, Edge>` triple; the
//!   link-cut tree keys its edge nodes the same way. Per-vertex caches
//!   (principal flag, principal chunk) collapse the scan loops' pointer
//!   chains into single array loads.
//! * The LSDS itself is **structure-of-arrays**: splay topology
//!   (`parent`/`left`/`right`/`size`) lives in flat `u32` banks, every
//!   `CAdj`/`Memb` row lives contiguously in one backing row bank addressed
//!   by slab handles, and the Euler-tour **occurrence records** live in
//!   flat `occ_*` banks of the same arena (vertex / chunk / pos / arc /
//!   flags) — so `pull_up`, entry-wise merges, argmin scans, the surgery
//!   reindex loops and the principal-copy scans are all linear sweeps over
//!   dense memory; no per-chunk or per-occurrence struct exists anywhere
//!   (see the `pdmsf-core` crate docs for the bank layout).
//! * Aggregate upkeep is *targeted*: chunk merges use the paper's
//!   entry-wise row minimum instead of an `O(K)` rescan (Lemma 2.2/3.1),
//!   single-entry `CAdj` changes refresh one leaf-to-root path per affected
//!   list (Lemma 2.3) instead of splaying whole vectors, split pairs rebuild
//!   both rows in one batched pass, and retired row slabs are recycled
//!   through the bank's free list.
//!
//! The structures stay generic over the bookkeeping store: the
//! `HashMap`-backed [`core::MapSeqDynamicMsf`] is **kept for comparison**
//! and also reproduces the seed's refresh policies, so
//! `cargo run --release -p pdmsf-bench --bin experiments` (experiment E0)
//! measures this hot path against the faithful pre-arena implementation and
//! records the trajectory in `BENCH_update_time.json`.
//!
//! The parallel front-end [`core::ParDynamicMsf`] charges EREW PRAM costs
//! either way; with [`pram::ExecMode::Threads`]
//! ([`core::ParDynamicMsf::new_threaded`]) its bulk kernels — the `γ`/MWR
//! argmin tournaments and the entry-wise LSDS merges — actually execute on
//! OS threads: the `threaded_*` kernels in [`pram::kernels`] borrow row-bank
//! slices and dispatch shards over the **persistent worker pool** of
//! [`pram::pool`] (parked threads; no per-call spawn, which lowered the
//! threading cutoff by an order of magnitude). Inputs below
//! [`pram::kernels::PAR_CUTOFF`] — tiny graphs, single-chunk lists — run
//! inline and never spawn the pool. Deterministic leftmost-on-tie
//! reductions keep results bit-for-bit identical to the sequential
//! structure, which the differential test-suite checks with the threaded
//! path on and off.
//!
//! ## The batch engine layer
//!
//! Above the single-operation structures sits the **batched update/query
//! engine** ([`Engine`], crate [`pdmsf_engine`]): real traffic arrives in
//! bursts of independent operations, and the engine exploits the burst
//! structure a one-op-at-a-time loop cannot see. Per batch it
//!
//! * **plans** in plain code (no structural work): assigns edge ids,
//!   validates every op into a per-op [`engine::Outcome`] instead of
//!   panicking, **cancels opposing insert/delete pairs** (flapping links
//!   never reach the `O(sqrt(n) log n)` update path — only the cheap
//!   id-allocating mirror sees them, keeping ids identical to a serial
//!   execution), and **dedups queries**,
//! * **applies** the surviving updates through [`core::ParDynamicMsf`],
//! * **answers all queries at one snapshot point** (after the batch's
//!   updates): the forest is captured once into flat component labels
//!   ([`engine::QuerySnapshot`], `O(n + f·α)`) and every connectivity query
//!   becomes two array loads — instead of a `&mut`-self link-cut-tree walk
//!   per query — fanned out across the worker pool when the batch is query-
//!   heavy enough to amortize dispatch.
//!
//! The pool itself serves **multiple jobs concurrently** through a
//! **work-stealing scheduler**: every executor (worker or submitter) owns
//! a deque of shard ranges, jobs are claimed from the shared injector in
//! chunks rather than shard-by-shard, idle workers steal half of a
//! victim's remaining range in deterministic order (no RNG — results stay
//! bit-for-bit identical to simulated execution), and nested submissions
//! land on the submitting executor's own deque. Query fan-out therefore
//! proceeds while other submitters run kernels; `PDMSF_POOL_THREADS`
//! overrides the pool width and [`pram::pool::stats`] exposes its counters
//! (jobs, shards, inline runs, chunk claims, steals). Batch semantics are pinned
//! by a lockstep proptest: batched execution is observationally identical
//! (outcomes, forest, weights) to applying the same ops one at a time
//! against [`core::SeqDynamicMsf`] and to a Kruskal recompute, under
//! duplicate cuts, flap pairs, self-loops and out-of-range endpoints.
//! Experiment E1 (`cargo run --release -p pdmsf-bench --bin experiments --
//! e1`) measures the batched path against the one-op-at-a-time path on
//! bursty and tenant-clustered streams and records the trajectory in
//! `BENCH_batch_throughput.json`.
//!
//! ## Intra-batch update parallelism
//!
//! Batching also unlocks parallelism *inside* the apply phase. A
//! partitioned engine ([`Engine::new_partitioned`]) backs the batch with a
//! **component-partitioned structure** ([`core::ComponentPartitionedMsf`]):
//! the vertex space is split across `P` independent [`core::ParDynamicMsf`]
//! partitions under the invariant that **components never span
//! partitions** — a cross-partition link first *migrates* the smaller
//! component (lockstep bidirectional BFS picks it deterministically; its
//! edges re-insert in Kruskal order, rebuilding the identical unique MSF).
//! Per batch the engine **conflict-colors** the surviving updates — a
//! union-find over the batch's updates keyed by the endpoints' *component*
//! representatives (via the partition `home` map), escalating to partition
//! level only when two components share a bank — into groups whose
//! partition classes are disjoint, and applies the groups as **concurrent
//! pool jobs** — nested inside shard jobs when the sharded layer dispatches
//! them — serially in arrival order within each group. Because migrations
//! stay inside a group's own class, the per-partition operation sequences
//! are identical whether groups run concurrently or the whole batch applies
//! serially, so outcomes, forests and WAL bytes are **bit-for-bit
//! identical** to serial apply (the WAL is written at plan time, before any
//! apply, and a byte-identity test pins all three paths). Single-group
//! batches and width-1 pools fall back to inline apply.
//!
//! Migration has a failure mode: workloads that repeatedly link across
//! partitions drag every component into one partition, collapsing the
//! batch to a single group forever. The structure therefore keeps
//! per-partition **live-edge occupancy counters** and, between
//! update-carrying batches, **rebalances**: when the fullest partition
//! exceeds twice the mean (above a floor), its components re-home
//! smallest-first into the least-loaded partitions through the same
//! migration path — ascending-`WKey` re-insertion, so the forest is
//! untouched and **no WAL bytes** are written. The decision is a pure
//! function of structure state, so grouped, forced-serial and replay
//! executions rebalance identically (pinned by a lockstep proptest arm and
//! a migration-heavy WAL byte-identity test that also checks replayed
//! component homes). [`Engine::set_rebalance`] disables it for A/B runs.
//! Experiment E6 (`experiments -- e6`) measures grouped vs forced-serial
//! apply over block-mixed streams at pool widths 4 and 1, plus adaptive vs
//! static rebalancing on a migration-churn stream, recording
//! `BENCH_intra_batch.json`.
//!
//! ## The sharded serving layer
//!
//! Above the single-engine batch layer sits the **multi-tenant sharded
//! service** ([`ShardedService`], crate [`pdmsf_shard`]) — the first layer
//! where the system holds *many* MSF structures and the pool runs *many*
//! simultaneous jobs. It owns `S` shards, each wrapping its own [`Engine`]
//! (own mirror, own structure), places **tenants** (private vertex and
//! edge-id spaces) onto shards deterministically (stable hash +
//! [`shard::TenantSpec::pin`]), routes each tenant-tagged batch into
//! per-shard sub-batches preserving per-tenant op order, **plans every
//! sub-batch on the caller thread** ([`Engine::plan_batch`], pure) and
//! **applies all touched shards concurrently** — one
//! [`Engine::execute_planned`] job per shard on the work-stealing pool
//! scheduler, each internally reusing the full plan/cancel/dedup/snapshot
//! pipeline — then reassembles outcomes into the caller's op order with
//! tenant-local ids (the apply phase's pool delta, steals included, is
//! stamped into every [`shard::ServiceSummary`]).
//!
//! Sharding wins twice: `O(sqrt(n) log n)` updates get cheaper because
//! each shard holds `n_shard << n_total` vertices (and the `O(n)` query
//! snapshot shrinks the same way) — a single-core win — and independent
//! shard batches run concurrently on top. Semantics are pinned by a
//! lockstep proptest (sharded == one flat engine per tenant == Kruskal per
//! tenant, under unknown tenants, pinning, empty shards and hostile ids).
//! Experiment E2 (`experiments -- e2`) measures the sharded service
//! against one flat single-`Engine` over the merged stream across shard
//! counts and tenant skews, recording `BENCH_shard_throughput.json`.
//!
//! ## The persistence layer
//!
//! Crate [`pdmsf_persist`] (re-exported as [`persist`]) makes the serving
//! stack durable, and the flat-arena performance architecture is what makes
//! it cheap: every structure already lives in SoA banks, so a checkpoint is
//! raw lane dumps behind a small header rather than a pointer-graph walk.
//!
//! * **Checkpoints** ([`persist::EngineCheckpointExt`],
//!   [`persist::ServiceCheckpointExt`]): a versioned format
//!   ([`persist::FORMAT_VERSION`]) of length-prefixed sections, each
//!   guarded by a CRC-32 over tag and payload. A service checkpoint holds
//!   the tenant table plus one section per shard engine; restore re-wires
//!   the shards to the router and cross-validates mirror against structure
//!   against tenant table. Truncations and bit flips are *detected*
//!   ([`persist::PersistError`]) — a damaged checkpoint refuses to load,
//!   never restores to a plausible-but-wrong forest.
//! * **Write-ahead op log** ([`persist::OpLogWriter`], hooked in through
//!   [`engine::OpSink`]): every state-mutating planned batch is serialized
//!   with a sequence number and record CRC **before** it applies, fsync-
//!   gated by a [`persist::FlushPolicy`]. Batches are acknowledged after
//!   the log write, so a crash mid-append leaves a torn tail holding only
//!   batches no caller was ever told succeeded.
//! * **Recovery** ([`persist::recover_engine`],
//!   [`persist::recover_service`]): newest valid checkpoint + replay of the
//!   log tail through the engine's normal batch-execution path. The
//!   invariant `restore(checkpoint(S)) + replay == S` is pinned by a
//!   fault-injection proptest (crashes at arbitrary byte offsets, bit rot
//!   in checkpoint and log) against an uninterrupted twin. Experiment E5
//!   (`experiments -- e5`) measures checkpoint size and restore time
//!   against a cold rebuild, recording `BENCH_persist.json`; the end-to-end
//!   flow is `examples/checkpoint_restore.rs`.
//!
//! ## Observability
//!
//! Crate [`pdmsf_obs`] (re-exported as [`obs`]) is the stack's metrics
//! core: a zero-dependency [`obs::Registry`] of named atomic counters,
//! gauges and fixed-size **log2-bucketed latency histograms** (lock-free
//! `record`, exact count/sum, mergeable snapshots, p50/p95/p99 estimates
//! accurate to one power-of-two bucket), plus [`obs::Span`] /
//! [`obs::PhaseTimer`] drop-guards for phase timing and a Prometheus
//! text-format renderer ([`obs::Registry::render_text`]).
//!
//! Instrumentation follows a two-tier policy, keyed off the process-wide
//! [`obs::global`] registry and named `pdmsf_<layer>_<metric>`:
//!
//! * **Always on** where events are cheap to count or rare: the worker
//!   pool's scheduler counters (`pdmsf_pool_*` — jobs, chunk claims,
//!   steals, parks/wakes; [`pram::pool::stats`] is now a façade over
//!   them) and the persistence layer (`pdmsf_persist_*` — WAL append and
//!   fsync latency, bytes, checkpoint size/duration).
//! * **Opt-in** on the hot serving paths: [`Engine::enable_metrics`] adds
//!   per-batch plan/apply/snapshot/group-coloring phase timings and
//!   outcome counters (`pdmsf_engine_*`);
//!   [`ShardedService::enable_metrics`] adds per-shard batch-latency
//!   histograms (labeled `shard="<i>"`), routing rejects and queue-batch
//!   sizes (`pdmsf_shard_*`), and turns on engine metrics for every
//!   shard. Uninstrumented engines skip every clock read — the overhead
//!   bench (`benches/obs_overhead.rs`) pins the instrumented E1 batch
//!   path within 2% of the uninstrumented one.
//!
//! `examples/metrics_dump.rs` drives a skewed sharded workload and prints
//! the full four-layer exposition; experiment E4 (`experiments -- e4`)
//! uses the same histograms to drive a closed-loop latency ramp and find
//! the knee point (max sustainable load under an SLO), recording
//! `BENCH_serve_latency.json`.
//!
//! ### Tracing and the flight recorder
//!
//! Histograms say *that* the tail is slow; [`obs::trace`] says *why*. The
//! trace core is a process-global **lock-free ring** of fixed capacity
//! holding structured [`obs::trace::TraceEvent`]s — begin/end/instant, a
//! shared monotonic-ns epoch, a stable per-thread id, a batch-scoped
//! [`obs::trace::TraceId`], an [`obs::trace::Phase`] tag and two payload
//! words. Writers claim a slot with one relaxed `fetch_add` and publish
//! with a seqlock-style sequence word; readers ([`obs::trace::events`])
//! validate the sequence before and after loading, so a torn slot is
//! skipped, never misread. The same two-tier cost policy applies: with
//! tracing off ([`obs::trace::enabled`] false) every emit is one relaxed
//! load and a branch — no clock read, no TLS, no ring traffic (the
//! `obs_overhead` bench gate asserts this stays < 2%).
//!
//! **TraceId propagation** is ambient, not parameter-threaded:
//! [`ShardedService::enable_tracing`] allocates an id per sampled batch
//! ([`shard::ShardedService::set_trace_sampling`] picks 1-in-N) and pins
//! it in a thread-local scope ([`obs::trace::scope`]) for the batch's
//! lifetime on the submitting thread. Spans ([`obs::trace::TSpan`]) read
//! the ambient id, so routing, per-shard planning, engine
//! plan/mirror/group/apply/snapshot phases and WAL append/fsync all
//! attribute to the batch without any signature changes. The one explicit
//! hand-off is the worker pool: each job snapshots its submitter's ambient
//! id, and every executed range — **including ranges stolen onto other
//! workers** — re-scopes that id before running, so `pool.range` spans land
//! in the batch that submitted the work, not the thread that happened to
//! run it.
//!
//! The **flight recorder** implements tail-based retention on top: the
//! service offers every traced batch with its end-to-end latency
//! ([`obs::trace::offer_capture`]); a batch is promoted out of the ring
//! into a pinned capture buffer when [`obs::trace::capture_next`] was
//! armed or the latency meets [`obs::trace::set_capture_threshold_ns`],
//! and when the buffer is full the *fastest* pinned capture is evicted —
//! retention converges to the slowest batches seen. Captures export as
//! Chrome trace-event JSON ([`obs::trace::chrome_trace_json`], loadable in
//! Perfetto / `about://tracing`), a compact text timeline
//! ([`obs::trace::text_timeline`]) or per-phase totals
//! ([`obs::trace::phase_durations`]). `examples/trace_dump.rs` walks the
//! whole path on a live four-layer workload; E4 traces 1-in-8 batches,
//! stamps each round's slowest capture as a phase breakdown in
//! `BENCH_serve_latency.json` (the knee record carries phase *shares*),
//! and exports the ramp's slowest batch as `BENCH_serve_trace.json`.
//!
//! ## Quickstart
//!
//! ```
//! use pdmsf::prelude::*;
//!
//! // A dynamic graph with 6 vertices and the paper's sequential structure.
//! let mut graph = DynGraph::new(6);
//! let mut msf = SeqDynamicMsf::new(6);
//!
//! let mut insert = |graph: &mut DynGraph, msf: &mut SeqDynamicMsf, u: u32, v: u32, w: i64| {
//!     let id = graph.insert_edge(VertexId(u), VertexId(v), Weight::new(w));
//!     msf.insert(graph.edge_unchecked(id));
//!     id
//! };
//!
//! let e01 = insert(&mut graph, &mut msf, 0, 1, 4);
//! insert(&mut graph, &mut msf, 1, 2, 2);
//! insert(&mut graph, &mut msf, 0, 2, 7);
//! insert(&mut graph, &mut msf, 3, 4, 1);
//!
//! assert!(msf.connected(VertexId(0), VertexId(2)));
//! assert!(!msf.connected(VertexId(0), VertexId(3)));
//! assert_eq!(msf.forest_weight(), 4 + 2 + 1);
//!
//! // Deleting a forest edge triggers a minimum-weight-replacement search.
//! graph.delete_edge(e01);
//! msf.delete(e01);
//! assert!(msf.connected(VertexId(0), VertexId(1))); // reconnected via 0-2-1
//! assert_eq!(msf.forest_weight(), 7 + 2 + 1);
//! ```

pub use pdmsf_baselines as baselines;
pub use pdmsf_core as core;
pub use pdmsf_dyntree as dyntree;
pub use pdmsf_engine as engine;
pub use pdmsf_graph as graph;
pub use pdmsf_obs as obs;
pub use pdmsf_persist as persist;
pub use pdmsf_pram as pram;
pub use pdmsf_shard as shard;

pub use pdmsf_engine::Engine;
pub use pdmsf_shard::ShardedService;

/// Convenient single-import prelude for applications.
pub mod prelude {
    pub use pdmsf_baselines::{NaiveDynamicMsf, RecomputeMsf};
    pub use pdmsf_core::par::ParDynamicMsf;
    pub use pdmsf_core::partition::ComponentPartitionedMsf;
    pub use pdmsf_core::seq::SeqDynamicMsf;
    pub use pdmsf_core::sparsify::SparsifiedMsf;
    pub use pdmsf_engine::{BatchResult, BatchSummary, Engine, Outcome, PlannedBatch, Reject};
    pub use pdmsf_graph::{
        assert_matches_kruskal, kruskal_msf, BatchKind, BatchOp, BatchStream, BatchStreamSpec,
        DegreeReduced, DynGraph, DynamicMsf, Edge, EdgeId, GraphSpec, MsfDelta, StreamKind,
        TenantId, TenantOp, TenantStream, TenantStreamSpec, UpdateOp, UpdateStream,
        UpdateStreamSpec, VertexId, WKey, Weight,
    };
    pub use pdmsf_obs::{Counter, Gauge, Histogram, PhaseTimer, Registry, Span};
    pub use pdmsf_persist::{
        recover_engine, recover_service, EngineCheckpointExt, FlushPolicy, OpLogWriter,
        PersistError, RecoveryReport, ServiceCheckpointExt, SharedDisk,
    };
    pub use pdmsf_pram::{CostMeter, CostReport, ExecMode};
    pub use pdmsf_shard::{
        ServiceResult, ServiceStats, ServiceSummary, ShardSummary, ShardedService, TenantSpec,
    };
}
