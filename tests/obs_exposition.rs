//! Golden coverage test for the Prometheus exposition: after driving one
//! instrumented workload across the whole stack — pool jobs, engine
//! batches, sharded routing, WAL appends and a checkpoint —
//! `obs::global().render_text()` must expose **exactly** the pinned set of
//! metric families, each with its `# TYPE` declaration.
//!
//! Deliberately a single test in its own file: integration-test files run
//! as separate processes, so this is the only code touching the global
//! registry here and the family set is deterministic. (Bucket contents are
//! timing-dependent, so the golden pins the family/TYPE lines, not sample
//! values; the byte-exact render golden on a fresh registry lives in
//! `pdmsf-obs`'s unit tests.)

use pdmsf::obs;
use pdmsf::persist::{FlushPolicy, OpLogWriter, ServiceCheckpointExt};
use pdmsf::prelude::*;
use pdmsf::shard::TenantSpec;

/// Every family the four instrumented layers must expose, with its type —
/// the golden. Adding a metric means updating this list (that is the
/// point: exposition is API).
const GOLDEN_FAMILIES: &[(&str, &str)] = &[
    // engine (opt-in via enable_metrics)
    ("pdmsf_engine_apply_ns", "histogram"),
    ("pdmsf_engine_batches_total", "counter"),
    ("pdmsf_engine_group_coloring_ns", "histogram"),
    ("pdmsf_engine_group_conflicts_total", "counter"),
    ("pdmsf_engine_migrated_vertices_total", "counter"),
    ("pdmsf_engine_migrations_total", "counter"),
    ("pdmsf_engine_ops_rejected_total", "counter"),
    ("pdmsf_engine_ops_total", "counter"),
    ("pdmsf_engine_pairs_cancelled_total", "counter"),
    ("pdmsf_engine_plan_ns", "histogram"),
    ("pdmsf_engine_queries_total", "counter"),
    ("pdmsf_engine_rebalances_total", "counter"),
    ("pdmsf_engine_snapshot_ns", "histogram"),
    ("pdmsf_engine_snapshots_total", "counter"),
    ("pdmsf_engine_update_groups_total", "counter"),
    ("pdmsf_engine_updates_applied_total", "counter"),
    // persist (always on)
    ("pdmsf_persist_checkpoint_bytes_total", "counter"),
    ("pdmsf_persist_checkpoint_last_bytes", "gauge"),
    ("pdmsf_persist_checkpoint_ns", "histogram"),
    ("pdmsf_persist_checkpoints_total", "counter"),
    ("pdmsf_persist_wal_append_ns", "histogram"),
    ("pdmsf_persist_wal_bytes_total", "counter"),
    ("pdmsf_persist_wal_fsync_ns", "histogram"),
    ("pdmsf_persist_wal_records_total", "counter"),
    // pool (always on)
    ("pdmsf_pool_chunks_claimed_total", "counter"),
    ("pdmsf_pool_inline_runs_total", "counter"),
    ("pdmsf_pool_jobs_total", "counter"),
    ("pdmsf_pool_parks_total", "counter"),
    ("pdmsf_pool_shards_executed_total", "counter"),
    ("pdmsf_pool_steals_total", "counter"),
    ("pdmsf_pool_wakes_total", "counter"),
    ("pdmsf_pool_workers", "gauge"),
    ("pdmsf_pool_workers_parked", "gauge"),
    // shard (opt-in via enable_metrics)
    ("pdmsf_shard_batch_ns", "histogram"),
    ("pdmsf_shard_queue_batch_ops", "histogram"),
    ("pdmsf_shard_routing_rejects_total", "counter"),
    ("pdmsf_shard_service_batches_total", "counter"),
];

#[test]
fn exposition_covers_all_four_layers() {
    // Drive every layer once.
    let specs: Vec<TenantSpec> = (0..6).map(|t| TenantSpec::new(TenantId(t), 64)).collect();
    let mut service = ShardedService::new(3, &specs);
    service.enable_metrics();
    for shard in 0..3 {
        service.shard_engine_mut(shard).set_sink(Box::new(
            OpLogWriter::create(Vec::new(), shard as u32, FlushPolicy::EveryBatch).unwrap(),
        ));
    }
    let stream = TenantStream::generate(&TenantStreamSpec {
        tenants: 6,
        tenant_vertices: 64,
        tenant_edges: 128,
        batches: 4,
        batch_size: 96,
        burst: 12,
        zipf_permille: 500,
        kind: BatchKind::Bursty {
            query_permille: 500,
            flap_permille: 300,
        },
        seed: 11,
    });
    service.execute(&stream.base_ops());
    for batch in &stream.batches {
        service.execute(batch);
    }
    let mut sink = Vec::new();
    service.checkpoint_all(&mut sink).unwrap();

    let text = obs::global().render_text();

    // Exactly the golden family set, each declared with the golden type.
    let mut declared: Vec<(String, String)> = text
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .map(|rest| {
            let mut it = rest.split_whitespace();
            (
                it.next().expect("family name").to_string(),
                it.next().expect("family type").to_string(),
            )
        })
        .collect();
    declared.sort();
    let golden: Vec<(String, String)> = GOLDEN_FAMILIES
        .iter()
        .map(|&(n, t)| (n.to_string(), t.to_string()))
        .collect();
    assert_eq!(
        declared, golden,
        "exposed metric families diverged from the golden set — \
         if the change is intentional, update GOLDEN_FAMILIES"
    );

    // Spot-check the layers actually recorded. Deterministic values first
    // (5 service executes, one checkpoint), then presence-only for the
    // counters whose totals depend on how many shards each batch touched.
    for needle in [
        "pdmsf_shard_service_batches_total 5",
        "pdmsf_persist_checkpoints_total 1",
        "pdmsf_pool_jobs_total ",
        "pdmsf_engine_batches_total ",
        "pdmsf_persist_wal_records_total ",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
    let value_of = |series: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(series) && !l.starts_with('#'))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("series {series} not found"))
    };
    assert!(value_of("pdmsf_engine_batches_total ") >= 5);
    assert!(value_of("pdmsf_persist_wal_records_total ") >= 1);
    assert!(value_of("pdmsf_persist_wal_bytes_total ") > 0);
    assert!(value_of("pdmsf_persist_checkpoint_bytes_total ") > 0);
    for shard in 0..3 {
        let label = format!("pdmsf_shard_batch_ns_count{{shard=\"{shard}\"}}");
        assert!(text.contains(&label), "missing series {label}");
    }
    // HELP precedes TYPE for every family.
    assert_eq!(
        text.matches("# HELP ").count(),
        GOLDEN_FAMILIES.len(),
        "one HELP line per family"
    );
}
