//! Workspace-level integration tests: every dynamic-MSF implementation in the
//! workspace (the paper's sequential and parallel structures, the
//! sparsification and degree-reduction wrappers, and both baselines) is
//! driven through the same update streams and must produce identical forests,
//! identical deltas and forests identical to the static Kruskal reference.

use pdmsf::prelude::*;

fn drive_and_check<M: DynamicMsf>(structure: &mut M, stream: &UpdateStream) {
    stream.replay_with(|mirror, op| {
        match op {
            None => {
                for e in mirror.edges() {
                    structure.insert(e);
                }
            }
            Some(UpdateOp::Insert { .. }) => {
                let newest = mirror.edges().max_by_key(|e| e.id).unwrap();
                structure.insert(newest);
            }
            Some(UpdateOp::Delete { id }) => {
                structure.delete(*id);
            }
        }
        assert_matches_kruskal(structure, mirror);
    });
}

fn mixed_stream(n: usize, m: usize, ops: usize, seed: u64) -> UpdateStream {
    UpdateStream::generate(&UpdateStreamSpec {
        base: GraphSpec::RandomSparse { n, m, seed },
        ops,
        kind: StreamKind::Mixed {
            insert_permille: 500,
        },
        seed: seed ^ 0xABCD,
    })
}

#[test]
fn all_implementations_match_kruskal_on_the_same_stream() {
    let n = 40;
    let stream = mixed_stream(n, 70, 300, 1);
    drive_and_check(&mut SeqDynamicMsf::new(n), &stream);
    drive_and_check(&mut ParDynamicMsf::new(n), &stream);
    drive_and_check(&mut NaiveDynamicMsf::new(n), &stream);
    drive_and_check(&mut RecomputeMsf::new(n), &stream);
    drive_and_check(&mut DegreeReduced::new(n, SeqDynamicMsf::new(0)), &stream);
    drive_and_check(
        &mut SparsifiedMsf::new_with_capacity(n, 4 * n, SeqDynamicMsf::new),
        &stream,
    );
}

#[test]
fn deltas_agree_between_paper_structure_and_baseline() {
    let n = 32;
    let stream = mixed_stream(n, 60, 400, 2);
    let mut a = SeqDynamicMsf::new(n);
    let mut b = NaiveDynamicMsf::new(n);
    stream.replay_with(|mirror, op| {
        match op {
            None => {
                for e in mirror.edges() {
                    assert_eq!(a.insert(e), b.insert(e));
                }
            }
            Some(UpdateOp::Insert { .. }) => {
                let newest = mirror.edges().max_by_key(|e| e.id).unwrap();
                assert_eq!(a.insert(newest), b.insert(newest));
            }
            Some(UpdateOp::Delete { id }) => {
                assert_eq!(a.delete(*id), b.delete(*id));
            }
        }
        assert_eq!(a.forest_weight(), b.forest_weight());
        assert_eq!(a.forest_edges(), b.forest_edges());
    });
}

#[test]
fn degree_reduced_parallel_structure_on_skewed_graph() {
    // Preferential attachment produces high-degree hubs; the degree-reduction
    // wrapper keeps the core structure within the paper's assumptions.
    let n = 48;
    let stream = UpdateStream::generate(&UpdateStreamSpec {
        base: GraphSpec::PreferentialAttachment {
            n,
            attach: 3,
            seed: 5,
        },
        ops: 250,
        kind: StreamKind::Mixed {
            insert_permille: 480,
        },
        seed: 6,
    });
    drive_and_check(&mut DegreeReduced::new(n, ParDynamicMsf::new(0)), &stream);
}

#[test]
fn sparsified_structure_handles_density_sweep() {
    let n = 24;
    for density in [2usize, 6, 12] {
        let stream = mixed_stream(n, density * n, 150, density as u64 + 10);
        drive_and_check(
            &mut SparsifiedMsf::new_with_capacity(n, density * n, SeqDynamicMsf::new),
            &stream,
        );
    }
}

#[test]
fn failure_streams_disconnect_and_reconnect_consistently() {
    let stream = UpdateStream::generate(&UpdateStreamSpec {
        base: GraphSpec::Grid {
            rows: 5,
            cols: 8,
            seed: 9,
        },
        ops: 10_000,
        kind: StreamKind::Failures,
        seed: 10,
    });
    let n = 40;
    let mut seq = SeqDynamicMsf::new(n);
    let mut naive = NaiveDynamicMsf::new(n);
    stream.replay_with(|mirror, op| {
        match op {
            None => {
                for e in mirror.edges() {
                    seq.insert(e);
                    naive.insert(e);
                }
            }
            Some(UpdateOp::Insert { .. }) => unreachable!("failure streams only delete"),
            Some(UpdateOp::Delete { id }) => {
                seq.delete(*id);
                naive.delete(*id);
            }
        }
        assert_eq!(seq.num_forest_edges(), naive.num_forest_edges());
        assert_matches_kruskal(&seq, mirror);
    });
    // Everything deleted: no forest edges remain.
    assert_eq!(seq.num_forest_edges(), 0);
}

#[test]
fn parallel_cost_model_reports_sublinear_depth_scaling() {
    // Depth per update should grow far slower than sqrt(n): compare n=256 and
    // n=4096 (16x) — worst-case depth should grow by far less than 4x.
    let mut worst = Vec::new();
    for n in [256usize, 4096] {
        let stream = mixed_stream(n, 2 * n, 400, 77);
        let mut msf = ParDynamicMsf::new(n);
        stream.replay_with(|mirror, op| match op {
            None => {
                for e in mirror.edges() {
                    msf.insert(e);
                }
            }
            Some(UpdateOp::Insert { .. }) => {
                let newest = mirror.edges().max_by_key(|e| e.id).unwrap();
                msf.insert(newest);
            }
            Some(UpdateOp::Delete { id }) => {
                msf.delete(*id);
            }
        });
        worst.push(msf.meter().worst_op());
    }
    let depth_ratio = worst[1].depth as f64 / worst[0].depth.max(1) as f64;
    assert!(
        depth_ratio < 4.0,
        "worst-case depth grew by {depth_ratio:.2}x for a 16x larger graph (expected ~log factor)"
    );
    // Work should grow noticeably (≈ sqrt(16) = 4x modulo constants), and the
    // processor requirement should also grow.
    assert!(worst[1].work > worst[0].work);
}
