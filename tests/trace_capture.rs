//! End-to-end tracing propagation: a traced [`ShardedService`] batch with a
//! WAL sink must land spans from all four instrumented layers — shard
//! routing, engine phases, pool range execution and persist WAL writes —
//! in the flight recorder under a single [`pdmsf::obs::trace::TraceId`],
//! and the Chrome exporter must render them as a loadable trace.
//!
//! The flight-recorder state (capture buffer, arm flag, threshold) is
//! process-global, so everything runs in one test function.

use std::collections::BTreeSet;

use pdmsf::obs;
use pdmsf::persist::{FlushPolicy, OpLogWriter};
use pdmsf::prelude::*;
use pdmsf::shard::TenantSpec;

#[test]
fn traced_batch_attributes_all_four_layers_to_one_id() {
    let tenants = 6;
    let tenant_vertices = 128;
    let shards = 3;
    let specs: Vec<TenantSpec> = (0..tenants)
        .map(|t| TenantSpec::new(TenantId(t), tenant_vertices))
        .collect();
    let mut service = ShardedService::new(shards, &specs);
    service.enable_tracing();

    for shard in 0..shards {
        service.shard_engine_mut(shard).set_sink(Box::new(
            OpLogWriter::create(Vec::new(), shard as u32, FlushPolicy::EveryBatch).unwrap(),
        ));
    }

    let stream = TenantStream::generate(&TenantStreamSpec {
        tenants: tenants as usize,
        tenant_vertices,
        tenant_edges: 2 * tenant_vertices,
        batches: 6,
        batch_size: 192,
        burst: 24,
        zipf_permille: 0,
        kind: BatchKind::Bursty {
            query_permille: 400,
            flap_permille: 200,
        },
        seed: 17,
    });
    service.execute(&stream.base_ops());

    // Drain captures pinned by other tests in this binary, then arm.
    let _ = obs::trace::take_captured();
    obs::trace::capture_next();
    for batch in &stream.batches {
        service.execute(batch);
    }

    let captured = obs::trace::take_captured();
    assert!(
        !captured.is_empty(),
        "capture_next() must pin the armed batch"
    );
    let cap = &captured[0];
    assert!(cap.total_ns > 0);
    assert!(!cap.events.is_empty());

    // One id across the whole capture, spans from all four layers.
    let ids: BTreeSet<u64> = cap.events.iter().map(|e| e.trace).collect();
    assert_eq!(ids.len(), 1, "a capture holds exactly one trace id");
    assert_eq!(ids.iter().next().copied(), Some(cap.trace));
    let layers: BTreeSet<&str> = cap.events.iter().map(|e| e.phase.layer()).collect();
    for layer in ["shard", "engine", "pool", "persist"] {
        assert!(
            layers.contains(layer),
            "missing {layer}-layer spans in {layers:?}"
        );
    }

    // Phase attribution: the batch span dominates, and apply/plan/WAL all
    // accumulated closed spans.
    let durations = obs::trace::phase_durations(&cap.events);
    let ns_of = |p: obs::trace::Phase| {
        durations
            .iter()
            .find(|(phase, _)| *phase == p)
            .map_or(0, |&(_, ns)| ns)
    };
    let batch_ns = ns_of(obs::trace::Phase::Batch);
    assert!(batch_ns > 0, "batch span must close");
    assert!(ns_of(obs::trace::Phase::Plan) > 0, "plan spans must close");
    assert!(
        ns_of(obs::trace::Phase::Apply) > 0,
        "apply spans must close"
    );
    assert!(
        ns_of(obs::trace::Phase::WalAppend) > 0,
        "WAL append spans must close"
    );
    assert!(batch_ns >= ns_of(obs::trace::Phase::Route));

    // The exporter renders every event and Perfetto's required fields.
    let json = obs::trace::chrome_trace_json(&cap.events);
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"name\":\"service.batch\""));
    assert!(json.contains("\"name\":\"wal.append\""));
    assert!(json.contains("\"ph\":\"B\""));
    assert!(json.contains("\"ph\":\"E\""));
    assert_eq!(
        json.matches("{\"name\":").count(),
        cap.events.len(),
        "one JSON object per captured event"
    );

    // Untraced services stay span-free: a fresh service without
    // enable_tracing must not offer anything to the recorder.
    let mut untraced = ShardedService::new(shards, &specs);
    obs::trace::capture_next();
    untraced.execute(&stream.base_ops());
    assert!(
        obs::trace::take_captured().is_empty(),
        "untraced batches must never reach the flight recorder"
    );
    // Disarm for any later test in this process.
    let _ = obs::trace::take_captured();
}
