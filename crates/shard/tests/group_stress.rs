//! Grouped-apply stress: shard-level concurrency *and* intra-batch group
//! concurrency at once. Several submitter threads each drive a partitioned
//! service (whose shard jobs nest group jobs inside themselves on the same
//! pool) against a forced-serial-apply partitioned service and a plain
//! single-structure service over the same tenant stream — all three must
//! agree on every outcome and on the final forests.
//!
//! A single `#[test]` in its own integration binary: the pool width
//! override below is process-global and must be set before anything
//! touches the pool, so no other test may share this process.

use pdmsf_engine::Engine;
use pdmsf_graph::{BatchKind, TenantId, TenantStream, TenantStreamSpec};
use pdmsf_pram::pool;
use pdmsf_shard::{ShardedService, TenantSpec};

/// Bursty multi-tenant stream with a high update share so the grouped
/// apply path actually gets multi-group batches.
fn stress_stream(tenants: usize, tenant_n: usize, seed: u64) -> TenantStream {
    TenantStream::generate(&TenantStreamSpec {
        tenants,
        tenant_vertices: tenant_n,
        tenant_edges: 2 * tenant_n,
        batches: 20,
        batch_size: 56,
        burst: 6,
        zipf_permille: 600,
        kind: BatchKind::Bursty {
            query_permille: 300,
            flap_permille: 300,
        },
        seed,
    })
}

#[test]
fn grouped_apply_under_shard_concurrency_matches_serial_paths() {
    // Force real workers even on a 1-core machine (read once, before the
    // pool spawns — this test binary owns the process, so nothing has
    // touched the pool yet).
    std::env::set_var("PDMSF_POOL_THREADS", "4");
    assert!(!pool::is_initialized());

    let snap = pool::snapshot();
    let submitters = 3usize;
    std::thread::scope(|scope| {
        for t in 0..submitters {
            scope.spawn(move || {
                let tenants = 10usize;
                let tenant_n = 32usize;
                let num_parts = 4usize;
                let specs: Vec<TenantSpec> = (0..tenants)
                    .map(|x| TenantSpec::new(TenantId(x as u32), tenant_n))
                    .collect();
                // 4 shards × 4 partitions: per-shard jobs fan out and each
                // nests group jobs, so the pool sees two submission layers
                // from three threads at once.
                let mut grouped = ShardedService::new_partitioned(4, &specs, num_parts);
                let mut forced_serial = ShardedService::with_engine_factory(4, &specs, move |n| {
                    let mut e = Engine::new_partitioned(n, num_parts);
                    e.set_serial_apply(true);
                    e
                });
                let mut plain = ShardedService::new(4, &specs);
                let stream = stress_stream(tenants, tenant_n, t as u64);
                let mut batches: Vec<_> = vec![stream.base_ops()];
                batches.extend(stream.batches.iter().cloned());
                let mut saw_groups = 0usize;
                for batch in &batches {
                    let a = grouped.execute(batch);
                    let b = forced_serial.execute(batch);
                    let c = plain.execute(batch);
                    assert_eq!(
                        a.outcomes, b.outcomes,
                        "grouped apply diverged from forced-serial apply"
                    );
                    assert_eq!(
                        a.outcomes, c.outcomes,
                        "partitioned service diverged from plain service"
                    );
                    assert_eq!(a.summary.forest_weight, c.summary.forest_weight);
                    assert_eq!(b.summary.update_groups, 0);
                    saw_groups += a.summary.update_groups;
                }
                assert!(saw_groups > 0, "stress never exercised a grouped batch");
                assert_eq!(grouped.total_forest_weight(), plain.total_forest_weight());
                assert_eq!(
                    grouped.total_forest_weight(),
                    forced_serial.total_forest_weight()
                );
            });
        }
    });

    // The stress actually went through the pooled scheduler, including the
    // nested group jobs.
    let delta = snap.delta();
    assert!(delta.jobs_run > 0, "no pooled jobs ran during the stress");
    assert!(delta.chunks_claimed > 0);
    assert_eq!(pool::parallelism(), 4);
}
