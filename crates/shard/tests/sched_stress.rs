//! Scheduler stress: the many-small-jobs regime the sharded service
//! creates — several submitter threads, each dispatching per-shard jobs
//! (with nested submissions inside) onto the work-stealing pool — must
//! produce outcomes identical to the serial (dispatcher-off) path, which
//! itself is lockstep with `ExecMode::Simulated` semantics (pinned by the
//! shard crate's lockstep suite).
//!
//! A single `#[test]` in its own integration binary: the pool width
//! override below is process-global and must be set before anything
//! touches the pool, so no other test may share this process.

use pdmsf_graph::{BatchKind, TenantId, TenantStream, TenantStreamSpec};
use pdmsf_pram::pool;
use pdmsf_shard::{ShardedService, TenantSpec};

/// Bursty multi-tenant stream (the E2/E3 serving workload shape).
fn stress_stream(tenants: usize, tenant_n: usize, seed: u64) -> TenantStream {
    TenantStream::generate(&TenantStreamSpec {
        tenants,
        tenant_vertices: tenant_n,
        tenant_edges: 2 * tenant_n,
        batches: 24,
        batch_size: 48,
        burst: 6,
        zipf_permille: 700,
        kind: BatchKind::Bursty {
            query_permille: 550,
            flap_permille: 350,
        },
        seed,
    })
}

#[test]
fn concurrent_sharded_execution_matches_serial_dispatch_under_load() {
    // Force real workers even on a 1-core machine (read once, before the
    // pool spawns — this test binary owns the process, so nothing has
    // touched the pool yet).
    std::env::set_var("PDMSF_POOL_THREADS", "4");
    assert!(!pool::is_initialized());

    let snap = pool::snapshot();
    let submitters = 3usize;
    std::thread::scope(|scope| {
        for t in 0..submitters {
            scope.spawn(move || {
                let tenants = 12usize;
                let tenant_n = 24usize;
                let specs: Vec<TenantSpec> = (0..tenants)
                    .map(|x| TenantSpec::new(TenantId(x as u32), tenant_n))
                    .collect();
                // 8 shards over 12 tenants → several small concurrent jobs
                // per batch, imbalanced shard loads (hash placement), and
                // small batches so jobs stay tiny.
                let mut concurrent = ShardedService::new(8, &specs);
                let mut serial = ShardedService::new(8, &specs);
                let stream = stress_stream(tenants, tenant_n, t as u64);
                let mut batches: Vec<_> = vec![stream.base_ops()];
                batches.extend(stream.batches.iter().cloned());
                for batch in &batches {
                    let a = concurrent.execute(batch);
                    let b = serial.execute_serial(batch);
                    assert_eq!(
                        a.outcomes, b.outcomes,
                        "concurrent scheduler diverged from serial dispatch"
                    );
                    assert_eq!(a.summary.forest_weight, b.summary.forest_weight);
                }
                assert_eq!(
                    concurrent.total_forest_weight(),
                    serial.total_forest_weight()
                );
            });
        }
    });

    // The stress actually went through the pooled scheduler: jobs ran, and
    // every job's shard space was claimed in chunks.
    let delta = snap.delta();
    assert!(delta.jobs_run > 0, "no pooled jobs ran during the stress");
    assert!(delta.shards_executed > 0);
    assert!(delta.chunks_claimed > 0);
    assert_eq!(pool::parallelism(), 4);
}
