//! Lockstep property tests for the sharded serving layer: a
//! [`ShardedService`] over a tenant-tagged stream must be **observationally
//! identical** to one flat [`Engine`] per tenant run one-by-one, which in
//! turn is pinned to a per-tenant Kruskal recompute — per-op outcomes
//! (tenant-local ids included), per-tenant forest weights and total service
//! weight all agree, for every batch, under hostile inputs: unknown
//! tenants, out-of-range endpoints, self-loops, never-allocated and
//! duplicate cuts, in-batch flap pairs, duplicate queries, tenant pinning,
//! empty shards (more shards than tenants) and uneven tenant sizes.

use pdmsf_engine::{Engine, Outcome, Reject};
use pdmsf_graph::{
    kruskal_msf, BatchKind, BatchOp, EdgeId, TenantId, TenantOp, TenantStream, TenantStreamSpec,
    VertexId, Weight,
};
use pdmsf_pram::ExecMode;
use pdmsf_shard::{ShardedService, TenantSpec};
use proptest::prelude::*;

/// Uneven tenant sizes so vertex-range translation is actually exercised
/// (equal sizes would let an off-by-one base slip through).
const TENANT_SIZES: [usize; 4] = [6, 3, 9, 5];

/// A tenant id the service never registers.
const UNKNOWN: TenantId = TenantId(77);

#[derive(Clone, Copy, Debug)]
enum RawOp {
    /// Insert; endpoints reduce mod `tenant_n + 1`, so a slice lands out of
    /// the tenant's range and some pairs collide into self-loops.
    Link { u: u8, v: u8, w: u8 },
    /// Cut the `k`-th live tenant-local edge (frequently one born earlier
    /// in the same batch — the flap case the shard planner cancels).
    CutNth(u8),
    /// Cut an arbitrary tenant-local id near the frontier: never-allocated
    /// ids, dead ids and duplicates.
    CutBogus(u8),
    /// Connectivity query (same endpoint encoding as `Link`).
    QueryConn { u: u8, v: u8 },
    /// Tenant forest-weight query.
    QueryWeight,
}

/// `(tenant selector, op)`: selector `TENANT_SIZES.len()` means the
/// unknown tenant.
fn raw_op() -> impl Strategy<Value = (u8, RawOp)> {
    let op = prop_oneof![
        4 => (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(u, v, w)| RawOp::Link { u, v, w }),
        3 => any::<u8>().prop_map(RawOp::CutNth),
        1 => any::<u8>().prop_map(RawOp::CutBogus),
        3 => (any::<u8>(), any::<u8>()).prop_map(|(u, v)| RawOp::QueryConn { u, v }),
        1 => (0u32..1).prop_map(|_| RawOp::QueryWeight),
    ];
    (any::<u8>(), op)
}

/// Concretise raw batches into tenant ops, tracking per-tenant live lists
/// (mirroring the tenant-local id allocation: only valid links consume an
/// id) so `CutNth` usually targets real edges.
fn concretise(raw_batches: &[Vec<(u8, RawOp)>]) -> Vec<Vec<TenantOp>> {
    let tenants = TENANT_SIZES.len();
    let mut next_local = vec![0u32; tenants];
    let mut live: Vec<Vec<EdgeId>> = vec![Vec::new(); tenants];
    let mut batches = Vec::with_capacity(raw_batches.len());
    for raw in raw_batches {
        let mut ops = Vec::with_capacity(raw.len());
        for &(sel, r) in raw {
            let t = sel as usize % (tenants + 1);
            let (tenant, n) = if t == tenants {
                (UNKNOWN, 4) // any n; every op of this tenant is rejected
            } else {
                (TenantId(t as u32), TENANT_SIZES[t])
            };
            let endpoint = |x: u8| VertexId((x as usize % (n + 1)) as u32);
            let op = match r {
                RawOp::Link { u, v, w } => {
                    let (u, v) = (endpoint(u), endpoint(v));
                    if t < tenants && u.index() < n && v.index() < n && u != v {
                        live[t].push(EdgeId(next_local[t]));
                        next_local[t] += 1;
                    }
                    BatchOp::Link {
                        u,
                        v,
                        weight: Weight::new(w as i64),
                    }
                }
                RawOp::CutNth(k) => {
                    if t == tenants || live[t].is_empty() {
                        BatchOp::Cut { id: EdgeId(9999) }
                    } else {
                        let idx = k as usize % live[t].len();
                        BatchOp::Cut {
                            id: live[t].swap_remove(idx),
                        }
                    }
                }
                RawOp::CutBogus(k) => {
                    let bound = if t < tenants { next_local[t] } else { 0 };
                    BatchOp::Cut {
                        id: EdgeId((k as u32) % (bound + 3)),
                    }
                }
                RawOp::QueryConn { u, v } => BatchOp::QueryConnected {
                    u: endpoint(u),
                    v: endpoint(v),
                },
                RawOp::QueryWeight => BatchOp::QueryForestWeight,
            };
            ops.push(TenantOp { tenant, op });
        }
        batches.push(ops);
    }
    batches
}

/// The reference: one flat engine per tenant, each service batch split into
/// per-tenant sub-batches run one-by-one (order preserved), with unknown
/// tenants rejected — the documented service semantics implemented the
/// straightforward way.
struct PerTenantRef {
    engines: Vec<Engine>,
}

impl PerTenantRef {
    fn new() -> PerTenantRef {
        PerTenantRef {
            engines: TENANT_SIZES.iter().map(|&n| Engine::new(n)).collect(),
        }
    }

    fn run_batch(&mut self, ops: &[TenantOp]) -> Vec<Outcome> {
        let tenants = self.engines.len();
        let mut outcomes = vec![
            Outcome::Rejected {
                reason: Reject::UnknownTenant
            };
            ops.len()
        ];
        let mut per: Vec<Vec<(usize, pdmsf_engine::Op)>> = vec![Vec::new(); tenants];
        for (i, op) in ops.iter().enumerate() {
            if op.tenant.index() < tenants && op.tenant != UNKNOWN {
                per[op.tenant.index()].push((i, op.op));
            }
        }
        for (t, grouped) in per.into_iter().enumerate() {
            if grouped.is_empty() {
                continue;
            }
            let batch: Vec<pdmsf_engine::Op> = grouped.iter().map(|&(_, op)| op).collect();
            let result = self.engines[t].execute_one_by_one(&batch);
            for ((i, _), outcome) in grouped.into_iter().zip(result.outcomes) {
                outcomes[i] = outcome;
            }
        }
        outcomes
    }
}

/// The core lockstep check: service (concurrent) == service (serial
/// dispatch) == per-tenant flat engines == per-tenant Kruskal, after every
/// batch.
fn check_lockstep(
    batches: &[Vec<TenantOp>],
    mut service: ShardedService,
    mut serial: ShardedService,
) {
    let mut reference = PerTenantRef::new();
    for (b, ops) in batches.iter().enumerate() {
        let expected = reference.run_batch(ops);
        let got = service.execute(ops);
        let got_serial = serial.execute_serial(ops);
        assert_eq!(
            got.outcomes, expected,
            "sharded outcomes diverged from the per-tenant flat engines in batch {b}"
        );
        assert_eq!(
            got_serial.outcomes, expected,
            "serial-dispatch outcomes diverged from the per-tenant flat engines in batch {b}"
        );
        // Structural lockstep per tenant: flat engine == Kruskal == the
        // tenant's ranged weight inside its shard.
        let mut total = 0i128;
        for (t, engine) in reference.engines.iter().enumerate() {
            let kruskal = kruskal_msf(engine.graph());
            assert_eq!(
                engine.forest_weight(),
                kruskal.total_weight,
                "per-tenant reference diverged from Kruskal for tenant {t} in batch {b}"
            );
            assert_eq!(
                service.tenant_forest_weight(TenantId(t as u32)),
                Some(kruskal.total_weight),
                "sharded tenant weight diverged from Kruskal for tenant {t} in batch {b}"
            );
            total += kruskal.total_weight;
        }
        assert_eq!(service.total_forest_weight(), total);
        assert_eq!(serial.total_forest_weight(), total);
    }
}

/// Registered tenants with a pin mixed in (tenant 1 forced onto shard 0,
/// wherever the stable hash would have put it).
fn specs() -> Vec<TenantSpec> {
    TENANT_SIZES
        .iter()
        .enumerate()
        .map(|(t, &n)| {
            if t == 1 {
                TenantSpec::pinned(TenantId(t as u32), n, 0)
            } else {
                TenantSpec::new(TenantId(t as u32), n)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        .. ProptestConfig::default()
    })]

    /// Default engine configuration, shard counts from 1 (the flat merged
    /// case) past the tenant count (empty shards).
    #[test]
    fn sharded_matches_per_tenant_engines_and_kruskal(
        raw in proptest::collection::vec(proptest::collection::vec(raw_op(), 0..20), 1..6),
        shards in 1usize..7,
    ) {
        let batches = concretise(&raw);
        check_lockstep(
            &batches,
            ShardedService::new(shards, &specs()),
            ShardedService::new(shards, &specs()),
        );
    }

    /// Stress configuration: tiny chunk parameter (maximal chunk churn) and
    /// simulated kernels, so the shard engines take different internal
    /// paths from the reference's defaults.
    #[test]
    fn sharded_matches_under_stress_configuration(
        raw in proptest::collection::vec(proptest::collection::vec(raw_op(), 0..20), 1..5),
    ) {
        let batches = concretise(&raw);
        let stress = |n: usize| Engine::with_execution(n, 2, ExecMode::Simulated);
        check_lockstep(
            &batches,
            ShardedService::with_engine_factory(3, &specs(), stress),
            ShardedService::with_engine_factory(3, &specs(), stress),
        );
    }
}

/// The generator-produced multi-tenant streams (the E2 workload) also hold
/// the lockstep property — pinning the benchmark inputs to the verified
/// semantics, flap pairs, skewed popularity and all.
#[test]
fn generated_tenant_streams_hold_the_lockstep_property() {
    let stream = TenantStream::generate(&TenantStreamSpec {
        tenants: 6,
        tenant_vertices: 24,
        tenant_edges: 36,
        batches: 8,
        batch_size: 48,
        burst: 12,
        zipf_permille: 800,
        kind: BatchKind::Bursty {
            query_permille: 450,
            flap_permille: 350,
        },
        seed: 29,
    });
    let specs: Vec<TenantSpec> = (0..6)
        .map(|t| TenantSpec::new(TenantId(t), stream.tenant_vertices))
        .collect();
    let mut service = ShardedService::new(4, &specs);
    let mut engines: Vec<Engine> = (0..6)
        .map(|_| Engine::new(stream.tenant_vertices))
        .collect();

    let run = |service: &mut ShardedService, engines: &mut Vec<Engine>, ops: &[TenantOp]| {
        let got = service.execute(ops);
        // Reference: split per tenant, run each through a flat engine.
        let mut expected = vec![Outcome::ForestWeight { weight: -1 }; ops.len()];
        let mut per: Vec<Vec<(usize, pdmsf_engine::Op)>> = vec![Vec::new(); engines.len()];
        for (i, op) in ops.iter().enumerate() {
            per[op.tenant.index()].push((i, op.op));
        }
        for (t, grouped) in per.into_iter().enumerate() {
            if grouped.is_empty() {
                continue;
            }
            let batch: Vec<pdmsf_engine::Op> = grouped.iter().map(|&(_, op)| op).collect();
            let result = engines[t].execute(&batch);
            for ((i, _), outcome) in grouped.into_iter().zip(result.outcomes) {
                expected[i] = outcome;
            }
        }
        assert_eq!(got.outcomes, expected);
    };

    run(&mut service, &mut engines, &stream.base_ops());
    for ops in &stream.batches {
        run(&mut service, &mut engines, ops);
    }
    // The bursty per-tenant traffic carried flap pairs and the shard
    // planners actually cancelled some.
    let cancelled: u64 = (0..service.num_shards())
        .map(|s| service.shard_engine(s).stats().cancelled_pairs)
        .sum();
    assert!(cancelled > 0, "stream exercised no cancellation at all");
    // Per-tenant forests agree with Kruskal at the end.
    let mut total = 0i128;
    for (t, engine) in engines.iter().enumerate() {
        let kruskal = kruskal_msf(engine.graph());
        assert_eq!(
            service.tenant_forest_weight(TenantId(t as u32)),
            Some(kruskal.total_weight)
        );
        total += kruskal.total_weight;
    }
    assert_eq!(service.total_forest_weight(), total);
}
