//! # pdmsf-shard
//!
//! The **multi-tenant sharded serving layer** of the `pdmsf` workspace: the
//! first layer where the system holds *many* dynamic-MSF structures and the
//! worker pool runs *many* simultaneous jobs.
//!
//! A [`ShardedService`] owns `S` independent **shards**, each wrapping its
//! own [`Engine`] (own `DynGraph` mirror, own `ParDynamicMsf`). **Tenants**
//! — independent customers, each owning a private vertex space
//! `0..tenant_n` and a private sequential edge-id space — are placed onto
//! shards deterministically (a stable hash of the tenant id, overridable
//! per tenant with [`TenantSpec::pin`]) and never move; a shard hosts its
//! tenants in disjoint vertex ranges of one engine, and since every tenant
//! operation stays inside its tenant's range, shard forests decompose
//! exactly per tenant.
//!
//! Sharding buys two independent wins:
//!
//! * **An algorithmic win that needs no cores at all.** The paper's update
//!   bound is `O(sqrt(n) log n)` per update — sublinear in `n` — so
//!   routing a tenant's updates to a shard with `n_shard << n_total`
//!   vertices makes every update cheaper (`K = sqrt(n)` shrinks with the
//!   shard), and the engine's `O(n)` query-snapshot capture shrinks with
//!   it. This is why the sharded service beats a single flat engine over
//!   the merged stream even on one core (experiment E2).
//! * **Concurrency across shards.** Per batch, [`ShardedService::execute`]
//!   routes the tenant-tagged operations into per-shard sub-batches
//!   (preserving per-tenant arrival order), **plans** every sub-batch on
//!   the caller thread ([`Engine::plan_batch`] — pure, `&self`), then
//!   **applies** all non-empty shard batches concurrently through the
//!   work-stealing scheduler of `pdmsf_pram::pool` — shard slots are
//!   claimed in runs, idle workers steal from loaded executors, and each
//!   shard batch ([`Engine::execute_planned`]) reuses the full
//!   plan/cancel/dedup/snapshot pipeline internally, including nested
//!   pool submissions (which land on the submitting executor's own deque)
//!   for its kernels and query fan-outs. Outcomes are reassembled into
//!   the caller's original op order, and the apply phase's pool delta
//!   (jobs, chunk claims, **steals**, inline runs) is stamped into the
//!   returned [`ServiceSummary`].
//!
//! ## Identifier translation
//!
//! Callers speak **tenant-local** ids: vertices `0..tenant_n`, edge ids as
//! a dedicated per-tenant engine would allocate them (sequential per
//! accepted link). The router translates tenant vertices by the tenant's
//! base offset in its shard, pre-assigns shard-global edge ids by
//! mirroring the shard engine's deterministic id allocation, and
//! translates them back in the returned outcomes — so the service is
//! **observationally identical** to running one flat engine per tenant
//! (the lockstep proptest pins this, per-op outcomes included).
//! Per-tenant forest-weight queries are answered by a ranged sweep
//! ([`Engine::forest_weight_in_range`]) over the tenant's vertex block —
//! exact, because tenant edges never cross blocks.
//!
//! Operations that cannot be routed — unknown tenants, endpoints outside
//! the tenant's vertex space, never-allocated edge ids — are rejected at
//! the router with the same [`Outcome::Rejected`] a per-tenant engine
//! would produce, and never reach a shard.
//!
//! ```
//! use pdmsf_shard::{ShardedService, TenantSpec};
//! use pdmsf_graph::{BatchOp, TenantId, TenantOp, VertexId, Weight};
//!
//! let tenants: Vec<TenantSpec> = (0..4).map(|t| TenantSpec::new(TenantId(t), 8)).collect();
//! let mut service = ShardedService::new(2, &tenants);
//! let link = |t: u32, u: u32, v: u32, w: i64| TenantOp {
//!     tenant: TenantId(t),
//!     op: BatchOp::Link { u: VertexId(u), v: VertexId(v), weight: Weight::new(w) },
//! };
//! let result = service.execute(&[
//!     link(0, 0, 1, 5),
//!     link(3, 0, 1, 7), // same local ids, different tenant — isolated
//!     TenantOp { tenant: TenantId(0), op: BatchOp::QueryForestWeight },
//!     TenantOp { tenant: TenantId(3), op: BatchOp::QueryForestWeight },
//! ]);
//! assert_eq!(result.outcomes[2], pdmsf_engine::Outcome::ForestWeight { weight: 5 });
//! assert_eq!(result.outcomes[3], pdmsf_engine::Outcome::ForestWeight { weight: 7 });
//! ```

use pdmsf_engine::{Engine, Outcome, PlannedBatch};
use pdmsf_graph::{TenantId, TenantOp, VertexId};
use pdmsf_obs as obs;
use pdmsf_pram::kernels::SendPtr;
use pdmsf_pram::pool;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

mod router;

use router::Routed;
pub use router::Source;

/// One tenant to register with a [`ShardedService`].
#[derive(Clone, Copy, Debug)]
pub struct TenantSpec {
    /// The tenant's id (opaque, need not be dense).
    pub id: TenantId,
    /// Size of the tenant's private vertex space.
    pub vertices: usize,
    /// Pin the tenant to this shard index instead of the stable-hash
    /// placement (e.g. to co-locate a tenant with its replica reader, or
    /// to isolate a noisy tenant on its own shard).
    pub pin: Option<usize>,
}

impl TenantSpec {
    /// A tenant with stable-hash placement.
    pub fn new(id: TenantId, vertices: usize) -> TenantSpec {
        TenantSpec {
            id,
            vertices,
            pin: None,
        }
    }

    /// A tenant pinned to an explicit shard.
    pub fn pinned(id: TenantId, vertices: usize, shard: usize) -> TenantSpec {
        TenantSpec {
            id,
            vertices,
            pin: Some(shard),
        }
    }
}

/// The deterministic tenant → shard placement: a stable 64-bit mix of the
/// tenant id (splitmix64 finalizer), reduced mod the shard count. Stable
/// across processes, platforms and service rebuilds — the same tenant
/// always lands on the same shard for a given shard count.
pub fn stable_shard(id: TenantId, shards: usize) -> usize {
    let mut x = (id.0 as u64) ^ 0x9E37_79B9_7F4A_7C15;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % shards as u64) as usize
}

/// Registered tenant state: placement, vertex block, and the tenant-local →
/// shard-global edge-id map (index = tenant-local id).
pub(crate) struct TenantState {
    pub(crate) shard: u32,
    /// First vertex of the tenant's block in its shard engine.
    pub(crate) base: u32,
    /// Size of the tenant's vertex space.
    pub(crate) vertices: u32,
    /// Tenant-local edge id (index) → shard-global edge id.
    pub(crate) edge_ids: Vec<pdmsf_graph::EdgeId>,
}

/// The serializable form of one tenant's registration: placement, vertex
/// block and the tenant-local → shard-global edge-id map. Produced by
/// [`ShardedService::export_tenants`], consumed (and validated) by
/// [`ShardedService::from_restored_parts`] — the persistence layer's
/// tenant-table section is exactly a list of these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantRecord {
    /// The tenant's id.
    pub id: TenantId,
    /// The shard hosting the tenant.
    pub shard: u32,
    /// First vertex of the tenant's block in its shard engine.
    pub base: u32,
    /// Size of the tenant's vertex space.
    pub vertices: u32,
    /// Tenant-local edge id (index) → shard-global edge id.
    pub edge_ids: Vec<pdmsf_graph::EdgeId>,
}

/// Per-shard facts about one executed service batch (only shards the batch
/// touched appear).
#[derive(Clone, Debug)]
pub struct ShardSummary {
    /// Shard index.
    pub shard: usize,
    /// Operations routed to this shard (tenant weight queries excluded —
    /// those are answered by a ranged sweep, not a shard-engine op).
    pub ops: usize,
    /// Updates that reached the shard's MSF structure.
    pub applied_updates: usize,
    /// Conflict-free update groups the shard's grouped apply dispatched
    /// (zero when the shard engine applies serially — single-structure
    /// engines or forced-serial partitioned ones).
    pub update_groups: usize,
    /// Surviving updates beyond the first of their group — updates that
    /// *shared* a group because their partition classes collided.
    pub group_conflicts: usize,
    /// Component migrations in the shard's partitioned structure this
    /// batch (cross-partition links + rebalance moves; zero otherwise).
    pub migrations: u64,
    /// Vertices re-homed by those migrations.
    pub migrated_vertices: u64,
    /// Post-batch rebalance passes that moved a component (0 or 1).
    pub rebalances: u64,
    /// Opposing link/cut pairs the shard's planner cancelled.
    pub cancelled_pairs: usize,
    /// Operations the shard engine rejected (dead/duplicate cuts).
    pub rejected: usize,
    /// Connectivity queries routed to the shard.
    pub queries: usize,
    /// Distinct answers the shard computed for them.
    pub unique_queries: usize,
    /// Tenant forest-weight sweeps this shard served.
    pub weight_sweeps: usize,
    /// Query snapshots the shard captured for this batch.
    pub snapshots: u64,
    /// The shard's whole forest weight after the batch (all its tenants).
    pub forest_weight: i128,
}

/// Aggregate facts about one executed service batch.
#[derive(Clone, Debug)]
pub struct ServiceSummary {
    /// Operations in the batch.
    pub ops: usize,
    /// Shards the batch touched (= concurrent jobs dispatched).
    pub shards_touched: usize,
    /// Updates applied across all shard structures.
    pub applied_updates: usize,
    /// Conflict-free update groups dispatched across all shards' grouped
    /// apply paths (zero unless shards run partitioned engines).
    pub update_groups: usize,
    /// Updates that shared a group across all shards (see
    /// [`ShardSummary::group_conflicts`]).
    pub group_conflicts: usize,
    /// Component migrations across all shards' partitioned structures
    /// (see [`ShardSummary::migrations`]).
    pub migrations: u64,
    /// Vertices re-homed across all shards.
    pub migrated_vertices: u64,
    /// Rebalance passes across all shards.
    pub rebalances: u64,
    /// Opposing pairs cancelled across all shards.
    pub cancelled_pairs: usize,
    /// Rejected operations (router rejections + shard rejections).
    pub rejected: usize,
    /// Of those, rejected at the router (unknown tenant, out-of-range
    /// endpoint, never-allocated edge id) without reaching any shard.
    pub router_rejected: usize,
    /// Query operations (connectivity + tenant weight).
    pub queries: usize,
    /// Distinct answers computed for them.
    pub unique_queries: usize,
    /// Total forest weight across **all** shards after the batch.
    pub forest_weight: i128,
    /// Pool jobs completed during the apply phase (the per-shard jobs plus
    /// any nested kernel / fan-out submissions they made). The pool's
    /// counters are **process-wide**, so when other threads use the pool
    /// concurrently their activity lands in this window too — exact for a
    /// single-service process, an upper bound otherwise.
    pub pool_jobs: u64,
    /// Injector chunks claimed during the apply-phase window (each chunk
    /// is one shared-queue interaction covering a run of shards;
    /// process-wide, see [`ServiceSummary::pool_jobs`]).
    pub pool_chunks_claimed: u64,
    /// Successful work steals during the apply-phase window — how often an
    /// idle worker took half of another executor's remaining shard range.
    /// Zero when the pool ran inline (1-core degradation) or stayed
    /// balanced (process-wide, see [`ServiceSummary::pool_jobs`]).
    pub pool_steals: u64,
    /// `run_shards` calls in the apply-phase window that degraded to
    /// inline execution (process-wide, see [`ServiceSummary::pool_jobs`]).
    pub pool_inline_runs: u64,
    /// Per-shard breakdowns, in dispatch order.
    pub per_shard: Vec<ShardSummary>,
}

/// The result of one service batch: per-op outcomes in the caller's
/// original order (ids tenant-local), plus the summary.
#[derive(Clone, Debug)]
pub struct ServiceResult {
    /// Index-aligned with the input slice.
    pub outcomes: Vec<Outcome>,
    /// Aggregate + per-shard facts.
    pub summary: ServiceSummary,
}

/// Cumulative service counters across all executed batches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Service batches executed.
    pub batches: u64,
    /// Tenant operations processed.
    pub ops: u64,
    /// Operations rejected at the router.
    pub router_rejected: u64,
    /// Shard sub-batches dispatched (concurrent jobs).
    pub shard_batches: u64,
    /// Tenant weight sweeps served.
    pub weight_sweeps: u64,
}

/// What one shard job produced: the engine's batch result, the requested
/// tenant weight sweeps, and post-batch shard facts.
struct ShardOutput {
    result: pdmsf_engine::BatchResult,
    weights: Vec<i128>,
    forest_weight: i128,
    snapshots: u64,
}

/// Pre-resolved handles into the `pdmsf-obs` global registry for the
/// `pdmsf_shard_*` metric families: one batch-latency histogram per shard
/// (labeled `shard="<i>"`), routing rejects and queue-batch sizes.
struct ServiceMetrics {
    /// Per-shard batch latency (engine apply + weight sweeps), indexed by
    /// shard.
    batch_ns: Vec<Arc<obs::Histogram>>,
    service_batches: Arc<obs::Counter>,
    routing_rejects: Arc<obs::Counter>,
    /// Ops per dispatched shard sub-batch — the queue-batch size
    /// distribution the router produces.
    queue_batch_ops: Arc<obs::Histogram>,
}

impl ServiceMetrics {
    fn resolve(shards: usize) -> ServiceMetrics {
        let r = obs::global();
        ServiceMetrics {
            batch_ns: (0..shards)
                .map(|s| {
                    r.histogram_labeled(
                        "pdmsf_shard_batch_ns",
                        "shard",
                        &s.to_string(),
                        "per-shard sub-batch execution latency",
                    )
                })
                .collect(),
            service_batches: r.counter(
                "pdmsf_shard_service_batches_total",
                "service batches executed",
            ),
            routing_rejects: r.counter(
                "pdmsf_shard_routing_rejects_total",
                "operations rejected at the router",
            ),
            queue_batch_ops: r.histogram(
                "pdmsf_shard_queue_batch_ops",
                "operations per dispatched shard sub-batch",
            ),
        }
    }
}

/// The multi-tenant sharded serving layer. See the crate docs.
pub struct ShardedService {
    shards: Vec<Engine>,
    tenants: Vec<TenantState>,
    /// Tenant id → dense index into `tenants`.
    lookup: HashMap<TenantId, u32>,
    stats: ServiceStats,
    /// Optional registry-backed instrumentation
    /// ([`ShardedService::enable_metrics`]).
    metrics: Option<ServiceMetrics>,
    /// Batch tracing ([`ShardedService::enable_tracing`]): when on, every
    /// `trace_sample`-th batch allocates a fresh [`obs::trace::TraceId`]
    /// and runs under its scope, so routing, planning, pool ranges, engine
    /// phases and WAL writes all attribute to that batch.
    tracing: bool,
    /// Sample 1 in `trace_sample` batches (1 = every batch).
    trace_sample: u32,
    /// Batches seen since tracing was enabled (drives sampling).
    trace_seq: u64,
}

impl ShardedService {
    /// A service of `shards` shards hosting `tenants`, each shard backed by
    /// the default engine configuration ([`Engine::new`]: thread-backed
    /// kernels, `K = sqrt(n_shard)`).
    ///
    /// # Panics
    /// Panics on zero shards, duplicate tenant ids, or a pin outside
    /// `0..shards`.
    pub fn new(shards: usize, tenants: &[TenantSpec]) -> ShardedService {
        ShardedService::with_engine_factory(shards, tenants, Engine::new)
    }

    /// Like [`ShardedService::new`], but every shard runs a
    /// component-partitioned engine with `num_parts` partitions, so each
    /// shard's batch additionally applies its independent update groups as
    /// concurrent pool jobs (nested inside the per-shard jobs; the
    /// work-stealing pool handles nested submissions without deadlock).
    pub fn new_partitioned(
        shards: usize,
        tenants: &[TenantSpec],
        num_parts: usize,
    ) -> ShardedService {
        ShardedService::with_engine_factory(shards, tenants, move |n| {
            Engine::new_partitioned(n, num_parts)
        })
    }

    /// Full control over how each shard's engine is built from its vertex
    /// count (chunk parameter, execution mode) — used by the lockstep tests
    /// to force stress configurations.
    pub fn with_engine_factory(
        shards: usize,
        tenants: &[TenantSpec],
        factory: impl Fn(usize) -> Engine,
    ) -> ShardedService {
        assert!(shards >= 1, "a service needs at least one shard");
        let mut lookup = HashMap::with_capacity(tenants.len());
        let mut states = Vec::with_capacity(tenants.len());
        let mut shard_vertices = vec![0usize; shards];
        for spec in tenants {
            let shard = match spec.pin {
                Some(pin) => {
                    assert!(
                        pin < shards,
                        "tenant {:?} pinned to shard {pin} of {shards}",
                        spec.id
                    );
                    pin
                }
                None => stable_shard(spec.id, shards),
            };
            let prev = lookup.insert(spec.id, states.len() as u32);
            assert!(prev.is_none(), "duplicate tenant id {:?}", spec.id);
            states.push(TenantState {
                shard: shard as u32,
                base: u32::try_from(shard_vertices[shard]).expect("shard vertex space fits u32"),
                vertices: u32::try_from(spec.vertices).expect("tenant vertex space fits u32"),
                edge_ids: Vec::new(),
            });
            shard_vertices[shard] += spec.vertices;
        }
        let shards = shard_vertices.into_iter().map(factory).collect();
        ShardedService {
            shards,
            tenants: states,
            lookup,
            stats: ServiceStats::default(),
            metrics: None,
            tracing: false,
            trace_sample: 1,
            trace_seq: 0,
        }
    }

    /// Turn on registry-backed instrumentation: per-shard batch latency
    /// histograms (`pdmsf_shard_batch_ns{shard="<i>"}`), routing rejects and
    /// queue-batch sizes, plus per-phase engine metrics on every shard
    /// engine ([`Engine::enable_metrics`]). Handles resolve from
    /// [`pdmsf_obs::global`]; uninstrumented services skip every clock read.
    pub fn enable_metrics(&mut self) {
        self.metrics = Some(ServiceMetrics::resolve(self.shards.len()));
        for engine in &mut self.shards {
            engine.enable_metrics();
        }
    }

    /// Turn on batch tracing: enables the global trace ring
    /// ([`obs::trace::enable_default`]) and allocates a [`obs::trace::TraceId`]
    /// per sampled batch. The id is scoped on the submitting thread and
    /// carried across pool workers by the jobs themselves, so every layer's
    /// spans — routing, plan, group, apply, snapshot, pool ranges, WAL
    /// append/fsync — land under the batch that caused them. Combine with
    /// [`obs::trace::set_capture_threshold_ns`] or
    /// [`obs::trace::capture_next`] to pin slow batches in the flight
    /// recorder; the service offers every traced batch with its end-to-end
    /// latency.
    pub fn enable_tracing(&mut self) {
        obs::trace::enable_default();
        self.tracing = true;
    }

    /// Trace 1 in `n` batches (default 1 = every batch). `n = 0` is
    /// treated as 1.
    pub fn set_trace_sampling(&mut self, n: u32) {
        self.trace_sample = n.max(1);
    }

    /// The [`obs::trace::TraceId`] for the next batch: NONE unless tracing
    /// is on and the sampling counter elects this batch.
    fn next_trace_id(&mut self) -> obs::trace::TraceId {
        if !self.tracing || !obs::trace::enabled() {
            return obs::trace::TraceId::NONE;
        }
        self.trace_seq += 1;
        if !self.trace_seq.is_multiple_of(u64::from(self.trace_sample)) {
            return obs::trace::TraceId::NONE;
        }
        obs::trace::next_id()
    }

    /// Number of shards (including empty ones).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of registered tenants.
    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// The shard hosting `tenant`, if registered.
    pub fn shard_of(&self, tenant: TenantId) -> Option<usize> {
        self.lookup
            .get(&tenant)
            .map(|&ix| self.tenants[ix as usize].shard as usize)
    }

    /// A shard's engine (read access, e.g. for differential checks).
    pub fn shard_engine(&self, shard: usize) -> &Engine {
        &self.shards[shard]
    }

    /// A shard's engine, mutably. For the persistence layer only: attaching
    /// an op-log sink and replaying logged batches during recovery. Routing
    /// invariants (vertex blocks, edge-id maps) live in the service, so
    /// mutating the engine's *graph state* through this handle desyncs the
    /// router — recovery replays exactly the batches the router produced,
    /// which preserves them.
    pub fn shard_engine_mut(&mut self, shard: usize) -> &mut Engine {
        &mut self.shards[shard]
    }

    /// Export the tenant table in dense registration order (the persistence
    /// layer serializes this alongside the per-shard engine sections).
    pub fn export_tenants(&self) -> Vec<TenantRecord> {
        let mut ids = vec![TenantId(0); self.tenants.len()];
        for (&id, &ix) in &self.lookup {
            ids[ix as usize] = id;
        }
        self.tenants
            .iter()
            .zip(ids)
            .map(|(t, id)| TenantRecord {
                id,
                shard: t.shard,
                base: t.base,
                vertices: t.vertices,
                edge_ids: t.edge_ids.clone(),
            })
            .collect()
    }

    /// Assemble a service from restored parts (the checkpoint/restore path
    /// of `pdmsf-persist`). Validates the tenant table against the shard
    /// engines — shard indices in range, vertex blocks inside their engine
    /// and mutually disjoint, every mapped edge id below its shard's
    /// allocation frontier, no duplicate tenant ids — so a checkpoint whose
    /// sections are individually intact but mutually inconsistent is
    /// refused.
    pub fn from_restored_parts(
        shards: Vec<Engine>,
        tenants: Vec<TenantRecord>,
        stats: ServiceStats,
    ) -> Result<ShardedService, String> {
        if shards.is_empty() {
            return Err("a restored service needs at least one shard".to_string());
        }
        let mut lookup = HashMap::with_capacity(tenants.len());
        let mut states = Vec::with_capacity(tenants.len());
        let mut blocks: Vec<Vec<(u32, u32)>> = vec![Vec::new(); shards.len()];
        for rec in tenants {
            let shard = rec.shard as usize;
            if shard >= shards.len() {
                return Err(format!(
                    "tenant {:?} names shard {shard} of {}",
                    rec.id,
                    shards.len()
                ));
            }
            let end = rec
                .base
                .checked_add(rec.vertices)
                .ok_or_else(|| format!("tenant {:?} vertex block overflows", rec.id))?;
            if end as usize > shards[shard].num_vertices() {
                return Err(format!(
                    "tenant {:?} block {}..{end} exceeds shard {shard}'s {} vertices",
                    rec.id,
                    rec.base,
                    shards[shard].num_vertices()
                ));
            }
            let bound = shards[shard].graph().edge_id_bound() as u32;
            if let Some(bad) = rec.edge_ids.iter().find(|id| id.0 >= bound) {
                return Err(format!(
                    "tenant {:?} maps a local edge to unallocated shard id {bad:?}",
                    rec.id
                ));
            }
            blocks[shard].push((rec.base, end));
            if lookup.insert(rec.id, states.len() as u32).is_some() {
                return Err(format!("duplicate tenant id {:?}", rec.id));
            }
            states.push(TenantState {
                shard: rec.shard,
                base: rec.base,
                vertices: rec.vertices,
                edge_ids: rec.edge_ids,
            });
        }
        for (shard, list) in blocks.iter_mut().enumerate() {
            list.sort_unstable();
            for pair in list.windows(2) {
                if pair[1].0 < pair[0].1 {
                    return Err(format!("tenant vertex blocks overlap on shard {shard}"));
                }
            }
        }
        Ok(ShardedService {
            shards,
            tenants: states,
            lookup,
            stats,
            metrics: None,
            tracing: false,
            trace_sample: 1,
            trace_seq: 0,
        })
    }

    /// Cumulative service counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// Total forest weight across all shards (= sum of all tenant forests).
    pub fn total_forest_weight(&self) -> i128 {
        self.shards.iter().map(Engine::forest_weight).sum()
    }

    /// A tenant's current forest weight (ranged sweep over its shard).
    pub fn tenant_forest_weight(&self, tenant: TenantId) -> Option<i128> {
        let t = &self.tenants[*self.lookup.get(&tenant)? as usize];
        Some(
            self.shards[t.shard as usize]
                .forest_weight_in_range(VertexId(t.base), VertexId(t.base + t.vertices)),
        )
    }

    /// Rebuild every tenant's local → global edge-id map from the shard
    /// engine mirrors. The recovery path of `pdmsf-persist` needs this: log
    /// replay advances the shard engines past the checkpointed tenant
    /// table, so the maps must be re-derived from the recovered state.
    ///
    /// The derivation is exact, not heuristic: shard engines allocate global
    /// edge ids sequentially, every allocated slot (dead ones included —
    /// they are the id allocator) belongs to exactly one tenant's vertex
    /// block, and a tenant's local ids are assigned in its allocation
    /// order — so walking each mirror's slots in id order and appending
    /// each to its owning tenant reproduces precisely the map the router
    /// built live. Errors if some slot belongs to no registered tenant.
    pub fn rebuild_tenant_edge_maps(&mut self) -> Result<(), String> {
        let ShardedService {
            shards, tenants, ..
        } = self;
        for t in tenants.iter_mut() {
            t.edge_ids.clear();
        }
        for (shard_ix, engine) in shards.iter().enumerate() {
            let mut spans: Vec<(u32, u32, usize)> = tenants
                .iter()
                .enumerate()
                .filter(|(_, t)| t.shard as usize == shard_ix && t.vertices > 0)
                .map(|(ix, t)| (t.base, t.base + t.vertices, ix))
                .collect();
            spans.sort_unstable();
            let image = engine.graph().to_image();
            for (id, &u) in image.edge_u.iter().enumerate() {
                let pos = spans.partition_point(|&(base, _, _)| base <= u);
                let owner = pos
                    .checked_sub(1)
                    .map(|p| spans[p])
                    .filter(|&(_, end, _)| u < end);
                match owner {
                    Some((_, _, ix)) => {
                        tenants[ix].edge_ids.push(pdmsf_graph::EdgeId(id as u32));
                    }
                    None => {
                        return Err(format!(
                            "edge slot {id} on shard {shard_ix} belongs to no tenant block"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Execute one service batch **concurrently**: route to per-shard
    /// sub-batches (per-tenant order preserved), plan every sub-batch on
    /// the caller thread, apply all touched shards as one job on the
    /// work-stealing pool scheduler, and reassemble outcomes into the
    /// caller's op order. See the crate docs for the full pipeline.
    pub fn execute(&mut self, ops: &[TenantOp]) -> ServiceResult {
        self.run(ops, true)
    }

    /// Execute one service batch with the same routing and per-shard batch
    /// pipeline, but applying the touched shards **serially on the caller
    /// thread** — the dispatcher-off baseline. Outcomes are identical to
    /// [`ShardedService::execute`]; the E2 experiment and the lockstep
    /// tests compare the two.
    pub fn execute_serial(&mut self, ops: &[TenantOp]) -> ServiceResult {
        self.run(ops, false)
    }

    fn run(&mut self, ops: &[TenantOp], concurrent: bool) -> ServiceResult {
        // Scope the sampled batch's trace id on the caller thread: spans
        // emitted below (and on pool workers, via the job's carried id)
        // attribute to this batch; untraced batches stay span-free.
        let trace_id = self.next_trace_id();
        let _trace_scope = obs::trace::scope(trace_id);
        let batch_t0 = trace_id.is_some().then(Instant::now);
        let batch_tspan =
            obs::trace::TSpan::start(obs::trace::Phase::Batch, ops.len() as u64, trace_id.0);
        let route_tspan = obs::trace::TSpan::start(obs::trace::Phase::Route, ops.len() as u64, 0);
        let routed = router::route(&mut self.tenants, &self.lookup, &self.shards, ops);
        route_tspan.stop();
        let slots = routed.slots.len();

        // Per-slot histogram handles, cloned up front so the job closure
        // captures only `Sync` data (`Arc<Histogram>` records via interior
        // atomics). `None` throughout when metrics are off — the job then
        // takes no clock readings at all.
        let slot_hists: Vec<Option<Arc<obs::Histogram>>> = match &self.metrics {
            Some(m) => {
                m.service_batches.inc();
                m.routing_rejects.add(routed.router_rejected as u64);
                for sub in &routed.sub_batches {
                    m.queue_batch_ops.record(sub.len() as u64);
                }
                routed
                    .slots
                    .iter()
                    .map(|&s| Some(m.batch_ns[s].clone()))
                    .collect()
            }
            None => (0..slots).map(|_| None).collect(),
        };

        // Plan every touched shard's sub-batch on the caller thread (pure,
        // `&self` per engine) so the workers only run the `&mut` half.
        let mut plans: Vec<Option<PlannedBatch>> = routed
            .slots
            .iter()
            .zip(&routed.sub_batches)
            .map(|(&s, sub)| Some(self.shards[s].plan_batch(sub)))
            .collect();

        let mut outputs: Vec<Option<ShardOutput>> = (0..slots).map(|_| None).collect();
        // Attribute the scheduler's behaviour (jobs, chunk claims, steals,
        // inline degradations) to this batch's apply phase.
        let pool_snap = pool::snapshot();
        {
            let shards_base = SendPtr(self.shards.as_mut_ptr());
            let plans_base = SendPtr(plans.as_mut_ptr());
            let outputs_base = SendPtr(outputs.as_mut_ptr());
            let tenants = &self.tenants;
            let routed = &routed;
            let slot_hists = &slot_hists;
            // Each slot targets a distinct shard, takes its own plan and
            // writes its own output slot — all raw accesses are disjoint,
            // and `run_shards` blocks until every slot finished, so the
            // borrows outlive every access (scoped-spawn semantics).
            let job = |slot: usize| {
                let engine = unsafe { &mut *shards_base.get().add(routed.slots[slot]) };
                let plan = unsafe { &mut *plans_base.get().add(slot) }
                    .take()
                    .expect("each slot claims its plan exactly once");
                let snapshots_before = engine.stats().snapshots;
                let started = slot_hists[slot].as_ref().map(|_| Instant::now());
                let result = engine.execute_planned(plan);
                // All of this shard's tenant weight queries in one sweep
                // over its forest (per-tenant sweeps would rescan the live
                // edge set once per tenant).
                let ranges: Vec<(VertexId, VertexId)> = routed.weight_reqs[slot]
                    .iter()
                    .map(|&tix| {
                        let t = &tenants[tix as usize];
                        (VertexId(t.base), VertexId(t.base + t.vertices))
                    })
                    .collect();
                let weights = engine.forest_weights_in_ranges(&ranges);
                if let (Some(hist), Some(t0)) = (&slot_hists[slot], started) {
                    hist.record(t0.elapsed().as_nanos() as u64);
                }
                let output = ShardOutput {
                    result,
                    weights,
                    forest_weight: engine.forest_weight(),
                    snapshots: engine.stats().snapshots - snapshots_before,
                };
                unsafe { *outputs_base.get().add(slot) = Some(output) };
            };
            if concurrent {
                // Per-shard jobs go through the scheduler's range API: a
                // claimed run of slots executes with one dispatch (each
                // slot is still one engine apply; runs just amortize the
                // queue interaction).
                pool::run_shard_ranges(slots, |range| range.for_each(&job));
            } else {
                (0..slots).for_each(job);
            }
        }

        let result = self.reassemble(ops.len(), routed, outputs, pool_snap.delta());
        batch_tspan.stop();
        if let Some(t0) = batch_t0 {
            // Offer the finished batch to the flight recorder with its
            // end-to-end latency; it is pinned only if `capture_next` was
            // armed or the latency meets the capture threshold.
            obs::trace::offer_capture(trace_id, t0.elapsed().as_nanos() as u64);
        }
        result
    }

    fn reassemble(
        &mut self,
        ops: usize,
        routed: Routed,
        outputs: Vec<Option<ShardOutput>>,
        pool_delta: pdmsf_pram::PoolStats,
    ) -> ServiceResult {
        let outputs: Vec<ShardOutput> = outputs
            .into_iter()
            .map(|o| o.expect("every dispatched slot produced an output"))
            .collect();
        let outcomes = routed
            .sources
            .iter()
            .map(|src| match *src {
                Source::Ready(outcome) => outcome,
                Source::Link { slot, pos, local } => {
                    let got = outputs[slot as usize].result.outcomes[pos as usize];
                    debug_assert!(
                        matches!(got, Outcome::Linked { .. }),
                        "router-validated link rejected by the shard engine"
                    );
                    let _ = got;
                    Outcome::Linked {
                        id: pdmsf_graph::EdgeId(local),
                    }
                }
                Source::Cut { slot, pos, local } => {
                    match outputs[slot as usize].result.outcomes[pos as usize] {
                        Outcome::Cut { .. } => Outcome::Cut {
                            id: pdmsf_graph::EdgeId(local),
                        },
                        rejected => rejected,
                    }
                }
                Source::Query { slot, pos } => outputs[slot as usize].result.outcomes[pos as usize],
                Source::Weight { slot, req } => Outcome::ForestWeight {
                    weight: outputs[slot as usize].weights[req as usize],
                },
            })
            .collect();

        let per_shard: Vec<ShardSummary> = routed
            .slots
            .iter()
            .zip(&outputs)
            .zip(&routed.weight_reqs)
            .map(|((&shard, out), reqs)| {
                let s = out.result.summary;
                ShardSummary {
                    shard,
                    ops: s.ops,
                    applied_updates: s.applied_updates,
                    update_groups: s.update_groups,
                    group_conflicts: s.group_conflicts,
                    migrations: s.migrations,
                    migrated_vertices: s.migrated_vertices,
                    rebalances: s.rebalances,
                    cancelled_pairs: s.cancelled_pairs,
                    rejected: s.rejected,
                    queries: s.queries,
                    unique_queries: s.unique_queries,
                    weight_sweeps: reqs.len(),
                    snapshots: out.snapshots,
                    forest_weight: out.forest_weight,
                }
            })
            .collect();

        let unique_weights: usize = routed.weight_reqs.iter().map(Vec::len).sum();
        let summary = ServiceSummary {
            ops,
            shards_touched: per_shard.len(),
            applied_updates: per_shard.iter().map(|s| s.applied_updates).sum(),
            update_groups: per_shard.iter().map(|s| s.update_groups).sum(),
            group_conflicts: per_shard.iter().map(|s| s.group_conflicts).sum(),
            migrations: per_shard.iter().map(|s| s.migrations).sum(),
            migrated_vertices: per_shard.iter().map(|s| s.migrated_vertices).sum(),
            rebalances: per_shard.iter().map(|s| s.rebalances).sum(),
            cancelled_pairs: per_shard.iter().map(|s| s.cancelled_pairs).sum(),
            rejected: routed.router_rejected + per_shard.iter().map(|s| s.rejected).sum::<usize>(),
            router_rejected: routed.router_rejected,
            queries: routed.weight_queries + per_shard.iter().map(|s| s.queries).sum::<usize>(),
            unique_queries: unique_weights
                + per_shard.iter().map(|s| s.unique_queries).sum::<usize>(),
            forest_weight: self.total_forest_weight(),
            pool_jobs: pool_delta.jobs_run,
            pool_chunks_claimed: pool_delta.chunks_claimed,
            pool_steals: pool_delta.steals,
            pool_inline_runs: pool_delta.inline_runs,
            per_shard,
        };

        self.stats.batches += 1;
        self.stats.ops += ops as u64;
        self.stats.router_rejected += summary.router_rejected as u64;
        self.stats.shard_batches += summary.shards_touched as u64;
        self.stats.weight_sweeps += unique_weights as u64;

        ServiceResult { outcomes, summary }
    }
}

// The dispatcher moves shard engines' `&mut` halves and their plans across
// pool workers; pin the service itself as Send so a future field can't
// silently break that.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ShardedService>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use pdmsf_engine::Reject;
    use pdmsf_graph::{BatchOp, EdgeId, Weight};

    fn tenant_op(t: u32, op: BatchOp) -> TenantOp {
        TenantOp {
            tenant: TenantId(t),
            op,
        }
    }

    fn link(t: u32, u: u32, v: u32, w: i64) -> TenantOp {
        tenant_op(
            t,
            BatchOp::Link {
                u: VertexId(u),
                v: VertexId(v),
                weight: Weight::new(w),
            },
        )
    }

    fn cut(t: u32, id: u32) -> TenantOp {
        tenant_op(t, BatchOp::Cut { id: EdgeId(id) })
    }

    fn qconn(t: u32, u: u32, v: u32) -> TenantOp {
        tenant_op(
            t,
            BatchOp::QueryConnected {
                u: VertexId(u),
                v: VertexId(v),
            },
        )
    }

    fn qweight(t: u32) -> TenantOp {
        tenant_op(t, BatchOp::QueryForestWeight)
    }

    fn service(shards: usize, tenants: u32, vertices: usize) -> ShardedService {
        let specs: Vec<TenantSpec> = (0..tenants)
            .map(|t| TenantSpec::new(TenantId(t), vertices))
            .collect();
        ShardedService::new(shards, &specs)
    }

    #[test]
    fn placement_is_deterministic_and_pinning_overrides_it() {
        let specs = [
            TenantSpec::new(TenantId(7), 4),
            TenantSpec::pinned(TenantId(8), 4, 3),
        ];
        let a = ShardedService::new(4, &specs);
        let b = ShardedService::new(4, &specs);
        assert_eq!(a.shard_of(TenantId(7)), b.shard_of(TenantId(7)));
        assert_eq!(a.shard_of(TenantId(7)), Some(stable_shard(TenantId(7), 4)));
        assert_eq!(a.shard_of(TenantId(8)), Some(3));
        assert_eq!(a.shard_of(TenantId(99)), None);
    }

    #[test]
    fn stable_shard_spreads_tenants() {
        // Not a statistical test — just pin that the mix actually uses more
        // than one shard over a small id range (a catastrophic hash would
        // pile everything onto one shard and void the whole layer).
        let shards = 4;
        let mut hit = vec![false; shards];
        for t in 0..64u32 {
            hit[stable_shard(TenantId(t), shards)] = true;
        }
        assert!(hit.iter().all(|&h| h), "64 tenants left a shard empty");
    }

    #[test]
    fn tenants_are_isolated_and_ids_are_tenant_local() {
        let mut svc = service(2, 4, 8);
        let r = svc.execute(&[
            link(0, 0, 1, 5),
            link(1, 0, 1, 7),
            link(0, 1, 2, 9),
            qconn(0, 0, 2),
            qconn(1, 0, 2),
            qweight(0),
            qweight(1),
        ]);
        // Both tenants allocate their own local ids from 0.
        assert_eq!(r.outcomes[0], Outcome::Linked { id: EdgeId(0) });
        assert_eq!(r.outcomes[1], Outcome::Linked { id: EdgeId(0) });
        assert_eq!(r.outcomes[2], Outcome::Linked { id: EdgeId(1) });
        assert_eq!(r.outcomes[3], Outcome::Connected { connected: true });
        assert_eq!(r.outcomes[4], Outcome::Connected { connected: false });
        assert_eq!(r.outcomes[5], Outcome::ForestWeight { weight: 14 });
        assert_eq!(r.outcomes[6], Outcome::ForestWeight { weight: 7 });
        assert_eq!(r.summary.forest_weight, 21);
        // Cutting tenant 0's local edge 0 must not touch tenant 1's.
        let r = svc.execute(&[cut(0, 0), qweight(0), qweight(1)]);
        assert_eq!(r.outcomes[0], Outcome::Cut { id: EdgeId(0) });
        assert_eq!(r.outcomes[1], Outcome::ForestWeight { weight: 9 });
        assert_eq!(r.outcomes[2], Outcome::ForestWeight { weight: 7 });
    }

    #[test]
    fn router_rejections_match_engine_semantics() {
        let mut svc = service(2, 2, 4);
        let r = svc.execute(&[
            link(0, 0, 9, 1), // endpoint outside the tenant's space
            link(0, 2, 2, 1), // self loop
            cut(0, 5),        // never-allocated local id
            qconn(0, 0, 17),  // out-of-range query
            link(9, 0, 1, 1), // unknown tenant
            link(0, 0, 1, 3), // valid — and gets local id 0
        ]);
        assert_eq!(
            r.outcomes[0],
            Outcome::Rejected {
                reason: Reject::EndpointOutOfRange
            }
        );
        assert_eq!(
            r.outcomes[1],
            Outcome::Rejected {
                reason: Reject::SelfLoop
            }
        );
        assert_eq!(
            r.outcomes[2],
            Outcome::Rejected {
                reason: Reject::UnknownOrDeadEdge
            }
        );
        assert_eq!(
            r.outcomes[3],
            Outcome::Rejected {
                reason: Reject::EndpointOutOfRange
            }
        );
        assert_eq!(
            r.outcomes[4],
            Outcome::Rejected {
                reason: Reject::UnknownTenant
            }
        );
        assert_eq!(r.outcomes[5], Outcome::Linked { id: EdgeId(0) });
        assert_eq!(r.summary.router_rejected, 5);
        assert_eq!(r.summary.rejected, 5);
    }

    #[test]
    fn flap_pairs_cancel_inside_a_shard_batch() {
        let mut svc = service(1, 2, 8);
        let r = svc.execute(&[
            link(0, 0, 1, 2),
            link(0, 2, 3, 4), // flap: local id 1 …
            cut(0, 1),        // … cancelled here
            link(1, 0, 1, 6),
        ]);
        assert_eq!(r.summary.cancelled_pairs, 1);
        assert_eq!(r.summary.applied_updates, 2);
        // The cancelled link still consumed tenant 0's local id 1.
        let r2 = svc.execute(&[link(0, 4, 5, 1)]);
        assert_eq!(r2.outcomes[0], Outcome::Linked { id: EdgeId(2) });
    }

    #[test]
    fn empty_shards_and_empty_batches_are_fine() {
        // More shards than tenants: some shards stay empty forever.
        let mut svc = service(8, 2, 4);
        assert_eq!(svc.num_shards(), 8);
        let r = svc.execute(&[]);
        assert!(r.outcomes.is_empty());
        assert_eq!(r.summary.shards_touched, 0);
        let r = svc.execute(&[link(0, 0, 1, 2), qweight(1)]);
        assert_eq!(r.outcomes[0], Outcome::Linked { id: EdgeId(0) });
        // Tenant 1 has no edges yet; its weight query still routes (to a
        // shard whose sub-batch may otherwise be empty).
        assert_eq!(r.outcomes[1], Outcome::ForestWeight { weight: 0 });
        assert_eq!(svc.total_forest_weight(), 2);
    }

    #[test]
    fn concurrent_and_serial_paths_agree() {
        let mut concurrent = service(4, 6, 12);
        let mut serial = service(4, 6, 12);
        let batches: Vec<Vec<TenantOp>> = vec![
            (0..6).map(|t| link(t, 0, 1, t as i64 + 1)).collect(),
            vec![
                link(0, 1, 2, 9),
                cut(1, 0),
                qconn(2, 0, 1),
                qweight(3),
                link(4, 2, 3, 2),
                cut(4, 1),
                qweight(4),
            ],
            (0..6).flat_map(|t| [qconn(t, 0, 2), qweight(t)]).collect(),
        ];
        for ops in &batches {
            let a = concurrent.execute(ops);
            let b = serial.execute_serial(ops);
            assert_eq!(a.outcomes, b.outcomes);
            assert_eq!(a.summary.forest_weight, b.summary.forest_weight);
            assert_eq!(a.summary.shards_touched, b.summary.shards_touched);
        }
        assert_eq!(
            concurrent.total_forest_weight(),
            serial.total_forest_weight()
        );
    }

    #[test]
    fn partitioned_shards_agree_with_plain_ones_and_report_groups() {
        let specs: Vec<TenantSpec> = (0..4).map(|t| TenantSpec::new(TenantId(t), 16)).collect();
        let mut plain = ShardedService::new(2, &specs);
        let mut parted = ShardedService::new_partitioned(2, &specs, 4);
        let batches: Vec<Vec<TenantOp>> = vec![
            (0..4)
                .flat_map(|t| [link(t, 0, 1, 3), link(t, 8, 9, 5), link(t, 4, 12, 7)])
                .collect(),
            vec![
                link(0, 1, 2, 2),
                cut(1, 0),
                link(2, 9, 10, 4),
                qconn(3, 4, 12),
                qweight(0),
            ],
        ];
        let mut saw_groups = 0usize;
        for ops in &batches {
            let a = plain.execute(ops);
            let b = parted.execute(ops);
            assert_eq!(a.outcomes, b.outcomes);
            assert_eq!(a.summary.forest_weight, b.summary.forest_weight);
            assert_eq!(a.summary.applied_updates, b.summary.applied_updates);
            // Plain single-structure shards never report groups; partitioned
            // ones do, and the per-shard numbers add up to the service sums.
            assert_eq!(a.summary.update_groups, 0);
            assert_eq!(a.summary.group_conflicts, 0);
            assert_eq!(
                b.summary.update_groups,
                b.summary
                    .per_shard
                    .iter()
                    .map(|p| p.update_groups)
                    .sum::<usize>()
            );
            assert_eq!(
                b.summary.group_conflicts,
                b.summary
                    .per_shard
                    .iter()
                    .map(|p| p.group_conflicts)
                    .sum::<usize>()
            );
            assert!(
                b.summary.update_groups + b.summary.group_conflicts <= b.summary.applied_updates
            );
            saw_groups += b.summary.update_groups;
        }
        assert!(saw_groups > 0, "partitioned shards never grouped an update");
        assert_eq!(plain.total_forest_weight(), parted.total_forest_weight());
    }

    #[test]
    fn per_shard_summaries_add_up() {
        let mut svc = service(3, 6, 8);
        let ops: Vec<TenantOp> = (0..6)
            .flat_map(|t| {
                [
                    link(t, 0, 1, 1),
                    link(t, 1, 2, 2),
                    qconn(t, 0, 2),
                    qweight(t),
                ]
            })
            .collect();
        let r = svc.execute(&ops);
        let s = &r.summary;
        assert_eq!(s.ops, ops.len());
        assert_eq!(
            s.applied_updates,
            s.per_shard.iter().map(|p| p.applied_updates).sum::<usize>()
        );
        assert_eq!(s.queries, 6 + 6); // 6 connectivity + 6 weight
        assert_eq!(
            s.forest_weight,
            s.per_shard.iter().map(|p| p.forest_weight).sum::<i128>()
        );
        assert!(s.shards_touched >= 1 && s.shards_touched <= 3);
        let stats = svc.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.ops, ops.len() as u64);
        assert_eq!(stats.weight_sweeps, 6);
    }
}
