//! The routing pass: one pure-ish sweep over a tenant-tagged batch that
//! partitions it into per-shard sub-batches.
//!
//! The router does three jobs in one pass, all in plain code (no structural
//! work):
//!
//! * **Validation against the tenant, not the shard.** A shard engine hosts
//!   several tenants, so its own range checks are too permissive: vertex 9
//!   of a 4-vertex tenant may be a perfectly valid vertex *of the shard*
//!   (it belongs to the next tenant's block). Every endpoint is therefore
//!   checked against the tenant's vertex space here, and invalid operations
//!   are resolved to [`Outcome::Rejected`] immediately — they never reach a
//!   shard, and they consume no edge id (exactly like a per-tenant engine).
//! * **Identifier translation.** Vertices shift by the tenant's block base.
//!   Edge ids translate through the tenant's id map: the router *pre-
//!   assigns* the shard-global id of every forwarded link by mirroring the
//!   shard engine's deterministic sequential allocation (the shard planner
//!   allocates ids in sub-batch order for exactly the links the router
//!   forwards, starting at the mirror's frontier — so the prediction is
//!   exact, and `debug_assert`ed at reassembly). This is what lets a `Cut`
//!   later in the same batch name a link born earlier in the batch — the
//!   flap pattern the shard planner then cancels.
//! * **Order preservation.** Ops are appended to their shard's sub-batch in
//!   arrival order, so any two ops of one tenant keep their relative order
//!   (a tenant lives on exactly one shard). Ops of different tenants on
//!   different shards run concurrently — they commute, because tenants
//!   never share vertices.
//!
//! Tenant forest-weight queries are not forwarded as shard-engine ops at
//! all (an engine's weight query answers for its *whole* shard): they
//! become per-tenant sweep requests, deduplicated per tenant, served by
//! [`pdmsf_engine::Engine::forest_weight_in_range`] after the shard's
//! updates have been applied — the same post-update snapshot point every
//! other query of the batch observes.

use crate::TenantState;
use pdmsf_engine::{Engine, Op, Outcome, Reject};
use pdmsf_graph::{BatchOp, EdgeId, TenantId, TenantOp, VertexId};
use std::collections::HashMap;

/// Where each per-op outcome comes from, in the caller's op order.
#[derive(Clone, Copy, Debug)]
pub enum Source {
    /// Resolved by the router (rejections).
    Ready(Outcome),
    /// A forwarded link: outcome is `Linked` with the tenant-local id
    /// `local` (the shard's global id is translated away).
    Link {
        /// Dispatch slot.
        slot: u32,
        /// Position in the slot's sub-batch.
        pos: u32,
        /// Tenant-local edge id assigned to this link.
        local: u32,
    },
    /// A forwarded cut: `Cut` translates back to the tenant-local id
    /// `local`; a rejection (dead/duplicate edge) passes through.
    Cut {
        /// Dispatch slot.
        slot: u32,
        /// Position in the slot's sub-batch.
        pos: u32,
        /// Tenant-local id the caller named.
        local: u32,
    },
    /// A forwarded connectivity query: outcome passes through unchanged.
    Query {
        /// Dispatch slot.
        slot: u32,
        /// Position in the slot's sub-batch.
        pos: u32,
    },
    /// A tenant forest-weight query, answered by sweep request `req` of
    /// dispatch slot `slot`.
    Weight {
        /// Dispatch slot.
        slot: u32,
        /// Index into the slot's weight-request list.
        req: u32,
    },
}

/// A routed service batch: per-slot sub-batches plus the outcome mapping.
/// Slots are shards the batch touches, in first-touch order.
pub(crate) struct Routed {
    /// Shard index per slot.
    pub slots: Vec<usize>,
    /// Translated shard-engine ops per slot.
    pub sub_batches: Vec<Vec<Op>>,
    /// Tenant indices (dense) whose forest weight each slot must sweep.
    pub weight_reqs: Vec<Vec<u32>>,
    /// Outcome source per original op.
    pub sources: Vec<Source>,
    /// Ops rejected by the router.
    pub router_rejected: usize,
    /// Tenant weight queries routed (before per-tenant dedup).
    pub weight_queries: usize,
}

/// Route `ops` into per-shard sub-batches. Mutates only the tenants'
/// edge-id maps (pre-assigned link ids); engines are read for their id
/// frontier.
pub(crate) fn route(
    tenants: &mut [TenantState],
    lookup: &HashMap<TenantId, u32>,
    shards: &[Engine],
    ops: &[TenantOp],
) -> Routed {
    let mut slots: Vec<usize> = Vec::new();
    let mut sub_batches: Vec<Vec<Op>> = Vec::new();
    let mut weight_reqs: Vec<Vec<u32>> = Vec::new();
    // Predicted next shard-global edge id per slot (the shard planner
    // allocates sequentially from the mirror's frontier).
    let mut next_gid: Vec<u32> = Vec::new();
    let mut slot_of_shard: Vec<Option<u32>> = vec![None; shards.len()];
    // Weight-sweep request per tenant, deduplicated within the batch.
    let mut weight_req_of_tenant: Vec<Option<u32>> = vec![None; tenants.len()];
    let mut sources: Vec<Source> = Vec::with_capacity(ops.len());
    let mut router_rejected = 0usize;
    let mut weight_queries = 0usize;

    let mut slot_for = |shard: usize,
                        slots: &mut Vec<usize>,
                        sub_batches: &mut Vec<Vec<Op>>,
                        weight_reqs: &mut Vec<Vec<u32>>,
                        next_gid: &mut Vec<u32>|
     -> u32 {
        match slot_of_shard[shard] {
            Some(slot) => slot,
            None => {
                let slot = slots.len() as u32;
                slot_of_shard[shard] = Some(slot);
                slots.push(shard);
                sub_batches.push(Vec::new());
                weight_reqs.push(Vec::new());
                next_gid.push(shards[shard].graph().edge_id_bound() as u32);
                slot
            }
        }
    };

    for op in ops {
        let Some(&tix) = lookup.get(&op.tenant) else {
            sources.push(Source::Ready(Outcome::Rejected {
                reason: Reject::UnknownTenant,
            }));
            router_rejected += 1;
            continue;
        };
        let (shard, base, tn) = {
            let t = &tenants[tix as usize];
            (t.shard as usize, t.base, t.vertices as usize)
        };
        let translate = |v: VertexId| VertexId(base + v.0);
        let source = match op.op {
            BatchOp::Link { u, v, weight } => {
                if u.index() >= tn || v.index() >= tn {
                    router_rejected += 1;
                    Source::Ready(Outcome::Rejected {
                        reason: Reject::EndpointOutOfRange,
                    })
                } else if u == v {
                    router_rejected += 1;
                    Source::Ready(Outcome::Rejected {
                        reason: Reject::SelfLoop,
                    })
                } else {
                    let slot = slot_for(
                        shard,
                        &mut slots,
                        &mut sub_batches,
                        &mut weight_reqs,
                        &mut next_gid,
                    );
                    let gid = EdgeId(next_gid[slot as usize]);
                    next_gid[slot as usize] += 1;
                    let t = &mut tenants[tix as usize];
                    let local = t.edge_ids.len() as u32;
                    t.edge_ids.push(gid);
                    let pos = sub_batches[slot as usize].len() as u32;
                    sub_batches[slot as usize].push(Op::Link {
                        u: translate(u),
                        v: translate(v),
                        weight,
                    });
                    Source::Link { slot, pos, local }
                }
            }
            BatchOp::Cut { id } => {
                match tenants[tix as usize].edge_ids.get(id.index()).copied() {
                    None => {
                        // The tenant never allocated this local id; a
                        // per-tenant engine would reject it the same way.
                        router_rejected += 1;
                        Source::Ready(Outcome::Rejected {
                            reason: Reject::UnknownOrDeadEdge,
                        })
                    }
                    Some(gid) => {
                        let slot = slot_for(
                            shard,
                            &mut slots,
                            &mut sub_batches,
                            &mut weight_reqs,
                            &mut next_gid,
                        );
                        let pos = sub_batches[slot as usize].len() as u32;
                        sub_batches[slot as usize].push(Op::Cut { id: gid });
                        Source::Cut {
                            slot,
                            pos,
                            local: id.0,
                        }
                    }
                }
            }
            BatchOp::QueryConnected { u, v } => {
                if u.index() >= tn || v.index() >= tn {
                    router_rejected += 1;
                    Source::Ready(Outcome::Rejected {
                        reason: Reject::EndpointOutOfRange,
                    })
                } else {
                    let slot = slot_for(
                        shard,
                        &mut slots,
                        &mut sub_batches,
                        &mut weight_reqs,
                        &mut next_gid,
                    );
                    let pos = sub_batches[slot as usize].len() as u32;
                    sub_batches[slot as usize].push(Op::QueryConnected {
                        u: translate(u),
                        v: translate(v),
                    });
                    Source::Query { slot, pos }
                }
            }
            BatchOp::QueryForestWeight => {
                weight_queries += 1;
                let slot = slot_for(
                    shard,
                    &mut slots,
                    &mut sub_batches,
                    &mut weight_reqs,
                    &mut next_gid,
                );
                let req = match weight_req_of_tenant[tix as usize] {
                    Some(req) => req,
                    None => {
                        let req = weight_reqs[slot as usize].len() as u32;
                        weight_reqs[slot as usize].push(tix);
                        weight_req_of_tenant[tix as usize] = Some(req);
                        req
                    }
                };
                Source::Weight { slot, req }
            }
        };
        sources.push(source);
    }

    Routed {
        slots,
        sub_batches,
        weight_reqs,
        sources,
        router_rejected,
        weight_queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ShardedService, TenantSpec};
    use pdmsf_graph::Weight;

    fn ops_for(t: u32, n: u32) -> Vec<TenantOp> {
        (0..n)
            .map(|i| TenantOp {
                tenant: TenantId(t),
                op: BatchOp::Link {
                    u: VertexId(i % 4),
                    v: VertexId((i + 1) % 4),
                    weight: Weight::new(i as i64 + 1),
                },
            })
            .collect()
    }

    /// Routing an interleaved two-tenant batch keeps each tenant's ops in
    /// arrival order inside its shard sub-batch.
    #[test]
    fn per_tenant_order_is_preserved() {
        let specs = [
            TenantSpec::pinned(TenantId(0), 4, 0),
            TenantSpec::pinned(TenantId(1), 4, 0), // same shard on purpose
            TenantSpec::pinned(TenantId(2), 4, 1),
        ];
        let mut svc = ShardedService::new(2, &specs);
        // Round-robin over the three tenants; the weight encodes arrival
        // order so the routed sub-batches can be checked for it.
        let ops: Vec<TenantOp> = (0..6u32)
            .map(|i| TenantOp {
                tenant: TenantId(i % 3),
                op: BatchOp::Link {
                    u: VertexId(0),
                    v: VertexId(1 + (i / 3)),
                    weight: Weight::new(i as i64 + 1),
                },
            })
            .collect();
        let routed = route(&mut svc.tenants, &svc.lookup, &svc.shards, &ops);
        // Shard 0 hosts tenants 0 and 1 interleaved; weights encode arrival
        // order, so each tenant's weights must appear increasing.
        let slot0 = routed
            .slots
            .iter()
            .position(|&s| s == 0)
            .expect("shard 0 touched");
        let weights: Vec<i64> = routed.sub_batches[slot0]
            .iter()
            .map(|op| match op {
                Op::Link { weight, .. } => weight.raw(),
                _ => unreachable!("only links routed"),
            })
            .collect();
        // Tenant 0 sent weights 1, 4; tenant 1 sent 2, 5 — interleaved as
        // 1, 2, 4, 5 by arrival order.
        assert_eq!(weights, vec![1, 2, 4, 5]);
        // Shard 1 (tenant 2) got 3, 6.
        let slot1 = routed.slots.iter().position(|&s| s == 1).unwrap();
        let w1: Vec<i64> = routed.sub_batches[slot1]
            .iter()
            .map(|op| match op {
                Op::Link { weight, .. } => weight.raw(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(w1, vec![3, 6]);
    }

    /// The same batch routed against two freshly built services produces
    /// identical slots, sub-batches and sources — deterministic placement
    /// and routing across runs.
    #[test]
    fn routing_is_deterministic_across_runs() {
        let specs: Vec<TenantSpec> = (0..8).map(|t| TenantSpec::new(TenantId(t), 6)).collect();
        let mut ops = Vec::new();
        for t in 0..8u32 {
            ops.extend(ops_for(t, 3));
            ops.push(TenantOp {
                tenant: TenantId(t),
                op: BatchOp::QueryForestWeight,
            });
        }
        let mut a = ShardedService::new(4, &specs);
        let mut b = ShardedService::new(4, &specs);
        let ra = route(&mut a.tenants, &a.lookup, &a.shards, &ops);
        let rb = route(&mut b.tenants, &b.lookup, &b.shards, &ops);
        assert_eq!(ra.slots, rb.slots);
        assert_eq!(ra.sub_batches, rb.sub_batches);
        assert_eq!(ra.weight_reqs, rb.weight_reqs);
        assert_eq!(ra.router_rejected, 0);
        assert_eq!(ra.weight_queries, 8);
        // Sources have no Eq derive; compare the debug rendering.
        assert_eq!(format!("{:?}", ra.sources), format!("{:?}", rb.sources));
    }

    /// Weight queries dedup to one sweep per tenant per batch.
    #[test]
    fn weight_queries_dedup_per_tenant() {
        let specs = [
            TenantSpec::new(TenantId(0), 4),
            TenantSpec::new(TenantId(1), 4),
        ];
        let mut svc = ShardedService::new(2, &specs);
        let ops: Vec<TenantOp> = (0..6)
            .map(|i| TenantOp {
                tenant: TenantId(i % 2),
                op: BatchOp::QueryForestWeight,
            })
            .collect();
        let routed = route(&mut svc.tenants, &svc.lookup, &svc.shards, &ops);
        assert_eq!(routed.weight_queries, 6);
        let total_reqs: usize = routed.weight_reqs.iter().map(Vec::len).sum();
        assert_eq!(total_reqs, 2, "one sweep per tenant, not per query");
    }
}
