//! Property-based tests for the graph substrate: Kruskal invariants, the
//! degree-3 reduction, union-find behaviour and workload-generator
//! guarantees.

use pdmsf_graph::{
    kruskal_msf, DynGraph, GraphSpec, StreamKind, UnionFind, UpdateStream, UpdateStreamSpec,
    VertexId, Weight,
};
use proptest::prelude::*;

fn arb_edges(n: u8) -> impl Strategy<Value = Vec<(u8, u8, i32)>> {
    proptest::collection::vec((0..n, 0..n, -1000i32..1000), 0..120)
}

proptest! {
    /// The MSF produced by Kruskal is a spanning forest: acyclic, spanning
    /// (one tree per connected component) and with `n - components` edges.
    #[test]
    fn kruskal_produces_a_spanning_forest(edges in arb_edges(20)) {
        let n = 20usize;
        let mut g = DynGraph::new(n);
        for &(u, v, w) in &edges {
            g.insert_edge(VertexId(u as u32), VertexId(v as u32), Weight::new(w as i64));
        }
        let msf = kruskal_msf(&g);

        // Forest edges are acyclic and connect exactly the graph's components.
        let mut forest_uf = UnionFind::new(n);
        for &id in &msf.edges {
            let e = g.edge_unchecked(id);
            prop_assert!(forest_uf.union(e.u.index(), e.v.index()), "cycle in claimed MSF");
        }
        let mut graph_uf = UnionFind::new(n);
        for e in g.edges() {
            graph_uf.union(e.u.index(), e.v.index());
        }
        prop_assert_eq!(forest_uf.num_components(), graph_uf.num_components());
        prop_assert_eq!(msf.components, graph_uf.num_components());
        prop_assert_eq!(msf.edges.len(), n - msf.components);
    }

    /// Cut property: for every forest edge, no strictly lighter edge crosses
    /// the cut obtained by removing it (so the forest is really minimum).
    #[test]
    fn kruskal_satisfies_the_cut_property(edges in arb_edges(12)) {
        let n = 12usize;
        let mut g = DynGraph::new(n);
        for &(u, v, w) in &edges {
            g.insert_edge(VertexId(u as u32), VertexId(v as u32), Weight::new(w as i64));
        }
        let msf = kruskal_msf(&g);
        for &tree_edge in &msf.edges {
            // Components after removing this forest edge (using only the
            // remaining forest edges).
            let mut uf = UnionFind::new(n);
            for &id in &msf.edges {
                if id == tree_edge {
                    continue;
                }
                let e = g.edge_unchecked(id);
                uf.union(e.u.index(), e.v.index());
            }
            let removed = g.edge_unchecked(tree_edge);
            // Every other edge crossing the same cut must be at least as heavy
            // (strictly heavier or tied-but-larger-id).
            for e in g.edges() {
                if e.id == tree_edge || e.u == e.v {
                    continue;
                }
                let crosses = uf.same(e.u.index(), removed.u.index())
                    != uf.same(e.v.index(), removed.u.index());
                if crosses {
                    prop_assert!(
                        (e.weight, e.id) > (removed.weight, removed.id),
                        "edge {:?} is lighter than forest edge {:?} across its cut",
                        e.id,
                        tree_edge
                    );
                }
            }
        }
    }

    /// Generated update streams always reference live edges (replay never
    /// panics) and keep vertex indices in range.
    #[test]
    fn update_streams_are_always_replayable(
        n in 2usize..40,
        m in 0usize..80,
        ops in 0usize..200,
        seed in any::<u64>(),
        window in 1usize..60,
        kind in 0u8..3,
    ) {
        let kind = match kind {
            0 => StreamKind::Mixed { insert_permille: 500 },
            1 => StreamKind::SlidingWindow { window },
            _ => StreamKind::Failures,
        };
        let stream = UpdateStream::generate(&UpdateStreamSpec {
            base: GraphSpec::RandomSparse { n, m, seed },
            ops,
            kind,
            seed: seed ^ 1,
        });
        let g = stream.replay_with(|g, _| {
            assert_eq!(g.num_vertices(), n);
        });
        // The mirror graph is internally consistent after the replay.
        prop_assert!(g.edges().all(|e| e.u.index() < n && e.v.index() < n));
    }
}

#[test]
fn union_find_partition_refinement_matches_explicit_components() {
    // Deterministic sanity companion to the property tests: chain unions and
    // verify the component count at every step.
    let n = 50;
    let mut uf = UnionFind::new(n);
    for i in 0..n - 1 {
        assert_eq!(uf.num_components(), n - i);
        assert!(uf.union(i, i + 1));
    }
    assert_eq!(uf.num_components(), 1);
}
