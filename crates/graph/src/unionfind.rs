//! Disjoint-set (union-find) forest with union by rank and path compression.
//!
//! Used by the static Kruskal reference ([`crate::kruskal_msf`]), by the
//! recompute baseline and by several test oracles (e.g. checking that a set
//! of claimed forest edges is acyclic and spans the right components).

/// A union-find structure over elements `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// A fresh structure with `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    #[inline]
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Representative of the set containing `x` (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] as usize != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Merge the sets containing `x` and `y`; returns `true` if they were
    /// previously in different sets.
    pub fn union(&mut self, x: usize, y: usize) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        let (big, small) = if self.rank[rx] >= self.rank[ry] {
            (rx, ry)
        } else {
            (ry, rx)
        };
        self.parent[small] = big as u32;
        if self.rank[big] == self.rank[small] {
            self.rank[big] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `x` and `y` are in the same set.
    pub fn same(&mut self, x: usize, y: usize) -> bool {
        self.find(x) == self.find(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.num_components(), 3);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
    }

    #[test]
    fn path_compression_keeps_roots_consistent() {
        let mut uf = UnionFind::new(64);
        for i in 1..64 {
            uf.union(i - 1, i);
        }
        let root = uf.find(0);
        for i in 0..64 {
            assert_eq!(uf.find(i), root);
        }
        assert_eq!(uf.num_components(), 1);
    }

    #[test]
    fn len_and_empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        let uf = UnionFind::new(3);
        assert_eq!(uf.len(), 3);
        assert!(!uf.is_empty());
    }
}
