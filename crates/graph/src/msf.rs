//! The [`DynamicMsf`] trait — the common interface of every dynamic
//! minimum-spanning-forest structure in the workspace.
//!
//! The paper's structure (sequential and parallel), the baselines
//! (recompute-Kruskal, naive Euler-tour forest) and the composition wrappers
//! (degree-3 reduction, sparsification) all implement this trait, which is
//! what makes differential testing and the benchmark harness possible.

use crate::graph::{DynGraph, Edge};
use crate::ids::{EdgeId, VertexId};
use crate::kruskal::kruskal_msf;

/// The change an update caused to the maintained spanning forest.
///
/// A single edge insertion or deletion changes the minimum spanning forest by
/// at most one edge in each direction (one edge may enter, one may leave), so
/// the delta is a pair of options. The sparsification tree (paper Section 5)
/// relies on exactly this property when it propagates changes level by level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MsfDelta {
    /// Edge that entered the forest as a result of the update, if any.
    pub added: Option<EdgeId>,
    /// Edge that left the forest as a result of the update, if any.
    pub removed: Option<EdgeId>,
}

impl MsfDelta {
    /// No change to the forest.
    pub const NONE: MsfDelta = MsfDelta {
        added: None,
        removed: None,
    };

    /// An edge entered the forest.
    pub fn added(e: EdgeId) -> Self {
        MsfDelta {
            added: Some(e),
            removed: None,
        }
    }

    /// An edge left the forest.
    pub fn removed(e: EdgeId) -> Self {
        MsfDelta {
            added: None,
            removed: Some(e),
        }
    }

    /// One edge entered and one left (an MSF "swap").
    pub fn swap(added: EdgeId, removed: EdgeId) -> Self {
        MsfDelta {
            added: Some(added),
            removed: Some(removed),
        }
    }

    /// Whether the forest was left untouched.
    pub fn is_empty(&self) -> bool {
        self.added.is_none() && self.removed.is_none()
    }
}

/// A fully dynamic minimum-spanning-forest structure.
///
/// Implementations maintain the unique MSF (unique because ties are broken by
/// [`EdgeId`], see [`crate::weight::WKey`]) of the edge set fed to them via
/// [`DynamicMsf::insert`] / [`DynamicMsf::delete`].
///
/// Some query methods take `&mut self`: several implementations answer
/// connectivity queries with self-adjusting structures (link-cut trees) whose
/// reads rebalance internal state. This mirrors the paper, where queries are
/// also updates to the auxiliary structures.
pub trait DynamicMsf {
    /// Number of vertices currently managed.
    fn num_vertices(&self) -> usize;

    /// Append a new isolated vertex and return its id.
    fn add_vertex(&mut self) -> VertexId;

    /// Insert an edge (id allocated by the caller, endpoints must be in
    /// range) and return the change to the forest.
    fn insert(&mut self, e: Edge) -> MsfDelta;

    /// Delete a previously inserted edge and return the change to the forest.
    fn delete(&mut self, id: EdgeId) -> MsfDelta;

    /// Whether the given edge is currently stored (live) in the structure.
    fn contains_edge(&self, id: EdgeId) -> bool;

    /// Whether the given live edge is currently a forest (tree) edge.
    fn is_forest_edge(&self, id: EdgeId) -> bool;

    /// All current forest edges, sorted by increasing id.
    fn forest_edges(&self) -> Vec<EdgeId>;

    /// Total weight of the forest (`-inf` edges contribute 0).
    fn forest_weight(&self) -> i128;

    /// Whether `u` and `v` are in the same tree of the forest (equivalently,
    /// the same connected component of the maintained graph).
    fn connected(&mut self, u: VertexId, v: VertexId) -> bool;

    /// Number of edges currently in the forest.
    fn num_forest_edges(&self) -> usize {
        self.forest_edges().len()
    }

    /// A short human-readable name used by the benchmark harness.
    fn name(&self) -> &'static str {
        "dynamic-msf"
    }
}

/// Check a dynamic structure against the static Kruskal reference computed on
/// `mirror` (a [`DynGraph`] that received exactly the same updates).
///
/// Returns a description of the first discrepancy found, or `Ok(())`.
pub fn verify_against_kruskal<M: DynamicMsf + ?Sized>(
    structure: &M,
    mirror: &DynGraph,
) -> Result<(), String> {
    let reference = kruskal_msf(mirror);
    let claimed = structure.forest_edges();
    if claimed != reference.edges {
        return Err(format!(
            "forest edge sets differ:\n  structure: {:?}\n  kruskal:   {:?}",
            claimed, reference.edges
        ));
    }
    let claimed_weight = structure.forest_weight();
    if claimed_weight != reference.total_weight {
        return Err(format!(
            "forest weights differ: structure={} kruskal={}",
            claimed_weight, reference.total_weight
        ));
    }
    Ok(())
}

/// Panicking wrapper around [`verify_against_kruskal`], convenient in tests.
pub fn assert_matches_kruskal<M: DynamicMsf + ?Sized>(structure: &M, mirror: &DynGraph) {
    if let Err(msg) = verify_against_kruskal(structure, mirror) {
        panic!("dynamic MSF diverged from Kruskal reference: {msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_constructors() {
        assert!(MsfDelta::NONE.is_empty());
        let d = MsfDelta::added(EdgeId(3));
        assert_eq!(d.added, Some(EdgeId(3)));
        assert_eq!(d.removed, None);
        let d = MsfDelta::swap(EdgeId(1), EdgeId(2));
        assert_eq!(d.added, Some(EdgeId(1)));
        assert_eq!(d.removed, Some(EdgeId(2)));
        assert!(!d.is_empty());
        let d = MsfDelta::removed(EdgeId(9));
        assert_eq!(d.removed, Some(EdgeId(9)));
    }
}
