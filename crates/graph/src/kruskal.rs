//! Static minimum-spanning-forest computation (Kruskal's algorithm).
//!
//! This is the ground truth every dynamic structure in the workspace is
//! differentially tested against. Because weights are totally ordered with
//! edge-id tie-breaking (see [`crate::weight::WKey`]), the MSF of any graph is
//! unique, so implementations can be compared edge-set against edge-set and
//! not just weight against weight.

use crate::graph::DynGraph;
use crate::ids::EdgeId;
use crate::unionfind::UnionFind;
use crate::weight::WKey;

/// The result of a static MSF computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MsfSummary {
    /// The forest edges, sorted by increasing edge id.
    pub edges: Vec<EdgeId>,
    /// Total weight of the forest (`-inf` edges contribute 0).
    pub total_weight: i128,
    /// Number of connected components of the graph (isolated vertices count).
    pub components: usize,
}

impl MsfSummary {
    /// Whether the forest contains the given edge.
    pub fn contains(&self, e: EdgeId) -> bool {
        self.edges.binary_search(&e).is_ok()
    }
}

/// Compute the (unique) minimum spanning forest of `g` with Kruskal's
/// algorithm. Runs in `O(m log m)` time.
pub fn kruskal_msf(g: &DynGraph) -> MsfSummary {
    let mut order: Vec<(WKey, EdgeId)> = g
        .edges()
        .filter(|e| e.u != e.v)
        .map(|e| (WKey::new(e.weight, e.id), e.id))
        .collect();
    order.sort_unstable();

    let mut uf = UnionFind::new(g.num_vertices());
    let mut edges = Vec::new();
    let mut total: i128 = 0;
    for (key, id) in order {
        let e = g.edge_unchecked(id);
        if uf.union(e.u.index(), e.v.index()) {
            edges.push(id);
            total += key.weight.as_summable();
        }
    }
    edges.sort_unstable();
    MsfSummary {
        edges,
        total_weight: total,
        components: uf.num_components(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VertexId;
    use crate::weight::Weight;

    fn w(x: i64) -> Weight {
        Weight::new(x)
    }

    #[test]
    fn triangle_drops_heaviest_edge() {
        let mut g = DynGraph::new(3);
        let a = g.insert_edge(VertexId(0), VertexId(1), w(1));
        let b = g.insert_edge(VertexId(1), VertexId(2), w(2));
        let c = g.insert_edge(VertexId(0), VertexId(2), w(3));
        let msf = kruskal_msf(&g);
        assert_eq!(msf.edges, vec![a, b]);
        assert!(!msf.contains(c));
        assert_eq!(msf.total_weight, 3);
        assert_eq!(msf.components, 1);
    }

    #[test]
    fn disconnected_graph_counts_components() {
        let mut g = DynGraph::new(5);
        g.insert_edge(VertexId(0), VertexId(1), w(1));
        g.insert_edge(VertexId(2), VertexId(3), w(1));
        let msf = kruskal_msf(&g);
        assert_eq!(msf.edges.len(), 2);
        assert_eq!(msf.components, 3); // {0,1}, {2,3}, {4}
    }

    #[test]
    fn ties_broken_by_edge_id() {
        // Two parallel edges of equal weight: the one inserted first (smaller
        // id) must win deterministically.
        let mut g = DynGraph::new(2);
        let first = g.insert_edge(VertexId(0), VertexId(1), w(7));
        let _second = g.insert_edge(VertexId(0), VertexId(1), w(7));
        let msf = kruskal_msf(&g);
        assert_eq!(msf.edges, vec![first]);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut g = DynGraph::new(2);
        g.insert_edge(VertexId(0), VertexId(0), w(-100));
        let e = g.insert_edge(VertexId(0), VertexId(1), w(4));
        let msf = kruskal_msf(&g);
        assert_eq!(msf.edges, vec![e]);
        assert_eq!(msf.total_weight, 4);
    }

    #[test]
    fn neg_inf_edges_always_selected_but_weigh_zero() {
        let mut g = DynGraph::new(3);
        let aux = g.insert_edge(VertexId(0), VertexId(1), Weight::NEG_INF);
        let real = g.insert_edge(VertexId(1), VertexId(2), w(9));
        let msf = kruskal_msf(&g);
        assert_eq!(msf.edges, vec![aux, real]);
        assert_eq!(msf.total_weight, 9);
    }

    #[test]
    fn empty_graph() {
        let g = DynGraph::new(4);
        let msf = kruskal_msf(&g);
        assert!(msf.edges.is_empty());
        assert_eq!(msf.components, 4);
        assert_eq!(msf.total_weight, 0);
    }
}
