//! The weight domain used throughout the workspace.
//!
//! The paper works with an arbitrary real weight function `w : E -> R`. For a
//! reproducible, exactly-testable implementation we use 64-bit integers and
//! reserve the minimum value as `-inf`:
//!
//! * `-inf` weights are required by Frederickson's degree-3 reduction (the
//!   auxiliary path edges between the copies of a split vertex must always be
//!   spanning-forest edges),
//! * ties between equal finite weights are broken by [`EdgeId`], which makes
//!   the minimum spanning forest *unique* and lets the test-suite compare the
//!   dynamic structures against the static Kruskal reference edge-for-edge.

use crate::ids::EdgeId;
use std::fmt;

/// An edge weight: a 64-bit integer, or negative infinity.
///
/// The raw value `i64::MIN` is reserved for [`Weight::NEG_INF`]; constructing
/// a finite weight with that value panics.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Weight(i64);

impl Weight {
    /// Negative infinity — strictly smaller than every finite weight.
    pub const NEG_INF: Weight = Weight(i64::MIN);
    /// The largest representable finite weight.
    pub const MAX: Weight = Weight(i64::MAX);
    /// The smallest representable finite weight.
    pub const MIN_FINITE: Weight = Weight(i64::MIN + 1);
    /// Zero.
    pub const ZERO: Weight = Weight(0);

    /// A finite weight.
    ///
    /// # Panics
    /// Panics if `value == i64::MIN`, which is reserved for `-inf`.
    #[inline]
    pub fn new(value: i64) -> Self {
        assert!(
            value != i64::MIN,
            "i64::MIN is reserved for Weight::NEG_INF"
        );
        Weight(value)
    }

    /// The raw value (with `-inf` mapped to `i64::MIN`).
    #[inline]
    pub fn raw(self) -> i64 {
        self.0
    }

    /// Rebuild a weight from its [`Weight::raw`] encoding.
    ///
    /// Unlike [`Weight::new`], `i64::MIN` is accepted and decodes to
    /// [`Weight::NEG_INF`] — stored weights legitimately include `-inf`
    /// (the degree-reduction's auxiliary path edges), so deserialization
    /// must round-trip every value `raw()` can produce.
    #[inline]
    pub fn from_raw(value: i64) -> Self {
        Weight(value)
    }

    /// Whether this weight is `-inf`.
    #[inline]
    pub fn is_neg_inf(self) -> bool {
        self.0 == i64::MIN
    }

    /// The value as an `i128` for overflow-free summation (`-inf` counts as 0,
    /// which is what the degree-reduction wrapper wants when reporting the
    /// weight of the user-visible forest).
    #[inline]
    pub fn as_summable(self) -> i128 {
        if self.is_neg_inf() {
            0
        } else {
            self.0 as i128
        }
    }
}

impl From<i64> for Weight {
    fn from(v: i64) -> Self {
        Weight::new(v)
    }
}

impl fmt::Debug for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg_inf() {
            write!(f, "-inf")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A weight together with its tie-breaking edge id.
///
/// `WKey` is what every comparison inside the dynamic structures actually
/// uses: two distinct edges never compare equal, so "the" minimum-weight
/// replacement edge and "the" heaviest edge on a path are well defined and
/// identical across all implementations. The `PLUS_INF` sentinel plays the
/// role of the `∞` entries of the paper's `CAdj` vectors.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WKey {
    /// The weight (primary key).
    pub weight: Weight,
    /// The edge id (secondary key, breaks ties deterministically).
    pub edge: EdgeId,
}

impl WKey {
    /// The `∞` sentinel: larger than the key of any real edge.
    pub const PLUS_INF: WKey = WKey {
        weight: Weight::MAX,
        edge: EdgeId::NONE,
    };

    /// Key for the given edge.
    #[inline]
    pub fn new(weight: Weight, edge: EdgeId) -> Self {
        WKey { weight, edge }
    }

    /// Whether this is the `∞` sentinel (no edge).
    #[inline]
    pub fn is_inf(self) -> bool {
        self.edge.is_none()
    }

    /// Entry-wise minimum, exactly the aggregation the LSDS performs on
    /// `CAdj` entries.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for WKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_inf() {
            write!(f, "∞")
        } else {
            write!(f, "({:?},{:?})", self.weight, self.edge)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neg_inf_is_smallest() {
        assert!(Weight::NEG_INF < Weight::new(i64::MIN + 1));
        assert!(Weight::NEG_INF < Weight::new(0));
        assert!(Weight::NEG_INF < Weight::MAX);
        assert!(Weight::NEG_INF.is_neg_inf());
        assert!(!Weight::new(0).is_neg_inf());
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn cannot_build_finite_neg_inf() {
        let _ = Weight::new(i64::MIN);
    }

    #[test]
    fn summable_treats_neg_inf_as_zero() {
        assert_eq!(Weight::NEG_INF.as_summable(), 0);
        assert_eq!(Weight::new(-5).as_summable(), -5);
    }

    #[test]
    fn wkey_ordering_breaks_ties_by_edge_id() {
        let a = WKey::new(Weight::new(7), EdgeId(1));
        let b = WKey::new(Weight::new(7), EdgeId(2));
        let c = WKey::new(Weight::new(8), EdgeId(0));
        assert!(a < b);
        assert!(b < c);
        assert!(c < WKey::PLUS_INF);
        assert_eq!(a.min(b), a);
        assert_eq!(WKey::PLUS_INF.min(c), c);
    }

    #[test]
    fn plus_inf_is_inf() {
        assert!(WKey::PLUS_INF.is_inf());
        assert!(!WKey::new(Weight::ZERO, EdgeId(0)).is_inf());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Weight::NEG_INF), "-inf");
        assert_eq!(format!("{}", Weight::new(12)), "12");
        assert_eq!(format!("{:?}", WKey::PLUS_INF), "∞");
    }
}
