//! Dense, index-based edge bookkeeping — the arena layer under every hot
//! path in the workspace.
//!
//! The dynamic structures look edges up by [`EdgeId`] on every primitive of
//! every update. Routing those lookups through hash or tree maps puts
//! hashing and pointer-chasing on the hottest loops, so this module provides
//! the flat alternatives:
//!
//! * [`EdgeIdIndex`] — a paged `EdgeId -> u32` index. Pages are allocated on
//!   demand, so sparse id regions (such as the degree-reduction's auxiliary
//!   ids starting at [`crate::degree::AUX_EDGE_BASE`]) cost one page, not the
//!   whole dense range. A lookup is two array loads and never hashes.
//! * [`EdgeSlotMap`] — a slot map that **interns** each live [`EdgeId`] into
//!   a dense `u32` slot (with a free-list, so slot storage stays proportional
//!   to the number of *live* edges no matter how many ids history has
//!   consumed). The slot is a stable handle for the lifetime of the edge:
//!   callers store handles in their adjacency lists and resolve them with a
//!   single indexed load, skipping even the id-to-slot translation on scan
//!   loops.
//! * [`EdgeStore`] — the storage interface the core structures are generic
//!   over, with [`EdgeSlotMap`] as the production implementation and
//!   [`HashEdgeStore`] (a `std::collections::HashMap` wrapper) kept as the
//!   map-based comparison baseline for the benchmark suite
//!   (`BENCH_update_time.json` reports both).

use crate::graph::Edge;
use crate::ids::EdgeId;
use std::collections::HashMap;

/// Sentinel handle ("null pointer") used by the arena layer.
pub const NO_HANDLE: u32 = u32::MAX;

// 64Ki-entry pages keep the page directory tiny (32Ki entries even for ids
// near `u32::MAX`, i.e. the degree-reduction's auxiliary range) while a page
// is only 256KiB.
const PAGE_BITS: usize = 16;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// Paged `EdgeId -> u32` index (see module docs).
#[derive(Clone, Debug, Default)]
pub struct EdgeIdIndex {
    pages: Vec<Option<Box<[u32; PAGE_SIZE]>>>,
    len: usize,
}

impl EdgeIdIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of ids currently mapped.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no id is mapped.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value mapped to `id`, if any.
    #[inline]
    pub fn get(&self, id: EdgeId) -> Option<u32> {
        let page = id.index() >> PAGE_BITS;
        match self.pages.get(page) {
            Some(Some(p)) => {
                let v = p[id.index() & (PAGE_SIZE - 1)];
                if v == NO_HANDLE {
                    None
                } else {
                    Some(v)
                }
            }
            _ => None,
        }
    }

    /// Map `id` to `value`, returning the previous mapping if any.
    ///
    /// # Panics
    /// Panics if `value == NO_HANDLE` (reserved as the empty marker).
    pub fn set(&mut self, id: EdgeId, value: u32) -> Option<u32> {
        assert_ne!(value, NO_HANDLE, "NO_HANDLE is reserved");
        let page = id.index() >> PAGE_BITS;
        if page >= self.pages.len() {
            self.pages.resize_with(page + 1, || None);
        }
        let p = self.pages[page].get_or_insert_with(|| Box::new([NO_HANDLE; PAGE_SIZE]));
        let slot = &mut p[id.index() & (PAGE_SIZE - 1)];
        let old = *slot;
        *slot = value;
        if old == NO_HANDLE {
            self.len += 1;
            None
        } else {
            Some(old)
        }
    }

    /// Remove the mapping for `id`, returning it if present.
    pub fn remove(&mut self, id: EdgeId) -> Option<u32> {
        let page = id.index() >> PAGE_BITS;
        let p = self.pages.get_mut(page)?.as_mut()?;
        let slot = &mut p[id.index() & (PAGE_SIZE - 1)];
        if *slot == NO_HANDLE {
            None
        } else {
            let old = *slot;
            *slot = NO_HANDLE;
            self.len -= 1;
            Some(old)
        }
    }
}

/// Storage interface for per-edge bookkeeping, generic over the value type.
///
/// `insert` returns a `u32` **handle** that stays valid until the edge is
/// removed; resolving a handle with [`EdgeStore::get`] is the hot-path
/// operation and must be cheap. The two implementations are
/// [`EdgeSlotMap`] (dense slots, production) and [`HashEdgeStore`] (hash
/// lookups, kept as the benchmark baseline).
pub trait EdgeStore<T>: Default {
    /// Whether this store represents the **seed baseline**: structures
    /// instantiated over it also keep the seed's hot-path *policies*
    /// (global aggregate refreshes, rescan-on-merge, per-rotation double
    /// pull-ups) so that benchmarks compare this PR's hot path against the
    /// faithful pre-arena implementation, not against a hybrid that already
    /// received every shared improvement. Results are identical either way —
    /// only the work schedule differs.
    const SEED_BASELINE: bool = false;

    /// Register `id`, returning its handle.
    ///
    /// # Panics
    /// Panics if `id` is already present.
    fn insert(&mut self, id: EdgeId, value: T) -> u32;

    /// Unregister `id`, returning its value if it was present.
    fn remove(&mut self, id: EdgeId) -> Option<T>;

    /// The handle of a live id.
    fn handle_of(&self, id: EdgeId) -> Option<u32>;

    /// The id owning `handle`.
    fn id_of(&self, handle: u32) -> EdgeId;

    /// Resolve a live handle (hot path).
    ///
    /// # Panics
    /// May panic (or return stale data only for [`HashEdgeStore`]: never) if
    /// the handle was freed.
    fn get(&self, handle: u32) -> &T;

    /// Mutable handle resolution.
    fn get_mut(&mut self, handle: u32) -> &mut T;

    /// Lookup by id.
    fn get_by_id(&self, id: EdgeId) -> Option<&T>;

    /// Mutable lookup by id.
    fn get_mut_by_id(&mut self, id: EdgeId) -> Option<&mut T>;

    /// Number of live entries.
    fn len(&self) -> usize;

    /// Whether the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hint that `handle` will be resolved shortly (scan loops call this a
    /// few iterations ahead). Flat stores can prefetch the slot — a keyed
    /// map cannot know the bucket address without hashing, which is the
    /// point of the comparison. Default: no-op.
    #[inline]
    fn prefetch(&self, handle: u32) {
        let _ = handle;
    }

    /// Visit every live entry (order unspecified).
    fn for_each(&self, f: impl FnMut(EdgeId, &T));
}

/// Slot-map implementation of [`EdgeStore`] (see module docs).
///
/// Storage is fully flattened: the owning id and the value of slot `h` live
/// in two parallel vectors, so resolving a live handle is a single indexed
/// load with no tag to test (a vacant slot is marked by [`EdgeId::NONE`] in
/// `ids` and retains a stale value in `vals`, which is why `T: Copy`).
#[derive(Clone, Debug)]
pub struct EdgeSlotMap<T> {
    index: EdgeIdIndex,
    ids: Vec<EdgeId>,
    vals: Vec<T>,
    free: Vec<u32>,
}

impl<T> Default for EdgeSlotMap<T> {
    fn default() -> Self {
        EdgeSlotMap {
            index: EdgeIdIndex::new(),
            ids: Vec::new(),
            vals: Vec::new(),
            free: Vec::new(),
        }
    }
}

impl<T: Copy> EdgeSlotMap<T> {
    /// Borrow the raw slot storage for serialization: the owning id of every
    /// slot (vacant slots are [`EdgeId::NONE`]), the parallel value lane, and
    /// the free list. Together with [`EdgeSlotMap::from_raw_parts`] this
    /// round-trips the map *exactly* — including handle values and the order
    /// in which freed slots will be recycled.
    pub fn raw_parts(&self) -> (&[EdgeId], &[T], &[u32]) {
        (&self.ids, &self.vals, &self.free)
    }

    /// Rebuild a slot map from the parts of [`EdgeSlotMap::raw_parts`]. The
    /// paged index is reconstructed from `ids`; the free list is validated
    /// against the vacant slots (every vacant slot on it exactly once), so a
    /// corrupted or hand-rolled snapshot is rejected instead of producing a
    /// map that double-allocates handles.
    pub fn from_raw_parts(ids: Vec<EdgeId>, vals: Vec<T>, free: Vec<u32>) -> Result<Self, String> {
        if ids.len() != vals.len() {
            return Err(format!(
                "slot map lanes disagree: {} ids vs {} values",
                ids.len(),
                vals.len()
            ));
        }
        let mut index = EdgeIdIndex::new();
        let mut vacant = 0usize;
        for (slot, id) in ids.iter().enumerate() {
            if id.is_none() {
                vacant += 1;
            } else if index.set(*id, slot as u32).is_some() {
                return Err(format!("edge {id:?} owns two slots"));
            }
        }
        if free.len() != vacant {
            return Err(format!(
                "free list length {} does not match {vacant} vacant slots",
                free.len()
            ));
        }
        let mut seen = vec![false; ids.len()];
        for &slot in &free {
            match ids.get(slot as usize) {
                Some(id) if id.is_none() && !seen[slot as usize] => seen[slot as usize] = true,
                _ => return Err(format!("free list names occupied or repeated slot {slot}")),
            }
        }
        Ok(EdgeSlotMap {
            index,
            ids,
            vals,
            free,
        })
    }
}

impl<T: Copy> EdgeStore<T> for EdgeSlotMap<T> {
    fn insert(&mut self, id: EdgeId, value: T) -> u32 {
        let slot = match self.free.pop() {
            Some(s) => {
                debug_assert!(self.ids[s as usize].is_none());
                self.ids[s as usize] = id;
                self.vals[s as usize] = value;
                s
            }
            None => {
                self.ids.push(id);
                self.vals.push(value);
                (self.ids.len() - 1) as u32
            }
        };
        let prev = self.index.set(id, slot);
        assert!(prev.is_none(), "edge {id:?} already registered");
        slot
    }

    fn remove(&mut self, id: EdgeId) -> Option<T> {
        let slot = self.index.remove(id)?;
        debug_assert_eq!(self.ids[slot as usize], id);
        self.ids[slot as usize] = EdgeId::NONE;
        self.free.push(slot);
        Some(self.vals[slot as usize])
    }

    #[inline]
    fn handle_of(&self, id: EdgeId) -> Option<u32> {
        self.index.get(id)
    }

    #[inline]
    fn id_of(&self, handle: u32) -> EdgeId {
        debug_assert!(!self.ids[handle as usize].is_none(), "stale edge handle");
        self.ids[handle as usize]
    }

    #[inline]
    fn get(&self, handle: u32) -> &T {
        debug_assert!(!self.ids[handle as usize].is_none(), "stale edge handle");
        &self.vals[handle as usize]
    }

    #[inline]
    fn get_mut(&mut self, handle: u32) -> &mut T {
        debug_assert!(!self.ids[handle as usize].is_none(), "stale edge handle");
        &mut self.vals[handle as usize]
    }

    #[inline]
    fn get_by_id(&self, id: EdgeId) -> Option<&T> {
        self.index.get(id).map(|s| &self.vals[s as usize])
    }

    #[inline]
    fn get_mut_by_id(&mut self, id: EdgeId) -> Option<&mut T> {
        let slot = self.index.get(id)?;
        Some(&mut self.vals[slot as usize])
    }

    #[inline]
    fn len(&self) -> usize {
        self.index.len()
    }

    #[inline]
    fn prefetch(&self, handle: u32) {
        #[cfg(target_arch = "x86_64")]
        if (handle as usize) < self.vals.len() {
            unsafe {
                core::arch::x86_64::_mm_prefetch(
                    self.vals.as_ptr().add(handle as usize) as *const i8,
                    core::arch::x86_64::_MM_HINT_T0,
                );
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = handle;
    }

    fn for_each(&self, mut f: impl FnMut(EdgeId, &T)) {
        for (id, val) in self.ids.iter().zip(&self.vals) {
            if !id.is_none() {
                f(*id, val);
            }
        }
    }
}

/// `HashMap`-backed implementation of [`EdgeStore`], kept as the map-based
/// comparison baseline for the benchmark suite. The "handle" is the raw edge
/// id, so **every** handle resolution performs a hash lookup — exactly the
/// bookkeeping cost the arena layer exists to remove.
#[derive(Clone, Debug)]
pub struct HashEdgeStore<T> {
    map: HashMap<EdgeId, T>,
}

impl<T> Default for HashEdgeStore<T> {
    fn default() -> Self {
        HashEdgeStore {
            map: HashMap::new(),
        }
    }
}

impl<T> EdgeStore<T> for HashEdgeStore<T> {
    const SEED_BASELINE: bool = true;

    fn insert(&mut self, id: EdgeId, value: T) -> u32 {
        let prev = self.map.insert(id, value);
        assert!(prev.is_none(), "edge {id:?} already registered");
        id.0
    }

    fn remove(&mut self, id: EdgeId) -> Option<T> {
        self.map.remove(&id)
    }

    #[inline]
    fn handle_of(&self, id: EdgeId) -> Option<u32> {
        if self.map.contains_key(&id) {
            Some(id.0)
        } else {
            None
        }
    }

    #[inline]
    fn id_of(&self, handle: u32) -> EdgeId {
        EdgeId(handle)
    }

    #[inline]
    fn get(&self, handle: u32) -> &T {
        &self.map[&EdgeId(handle)]
    }

    #[inline]
    fn get_mut(&mut self, handle: u32) -> &mut T {
        self.map
            .get_mut(&EdgeId(handle))
            .expect("stale edge handle")
    }

    #[inline]
    fn get_by_id(&self, id: EdgeId) -> Option<&T> {
        self.map.get(&id)
    }

    #[inline]
    fn get_mut_by_id(&mut self, id: EdgeId) -> Option<&mut T> {
        self.map.get_mut(&id)
    }

    #[inline]
    fn len(&self) -> usize {
        self.map.len()
    }

    fn for_each(&self, mut f: impl FnMut(EdgeId, &T)) {
        for (id, value) in &self.map {
            f(*id, value);
        }
    }
}

/// Convenience: collect the live edges of a store whose value type embeds an
/// [`Edge`], sorted by id (used by `forest_edges()`-style queries).
pub fn sorted_ids_where<T>(
    store: &impl EdgeStore<T>,
    mut keep: impl FnMut(&T) -> bool,
) -> Vec<EdgeId> {
    let mut out = Vec::new();
    store.for_each(|id, value| {
        if keep(value) {
            out.push(id);
        }
    });
    out.sort_unstable();
    out
}

/// Convenience: the live edges of a store, projected through `edge_of`.
pub fn edges_where<T>(
    store: &impl EdgeStore<T>,
    mut keep: impl FnMut(&T) -> bool,
    mut edge_of: impl FnMut(&T) -> Edge,
) -> Vec<Edge> {
    let mut out = Vec::new();
    store.for_each(|_, value| {
        if keep(value) {
            out.push(edge_of(value));
        }
    });
    out.sort_unstable_by_key(|e| e.id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::AUX_EDGE_BASE;

    #[test]
    fn slot_map_interns_and_reuses_slots() {
        let mut m: EdgeSlotMap<&'static str> = EdgeSlotMap::default();
        let a = m.insert(EdgeId(0), "a");
        let b = m.insert(EdgeId(7), "b");
        assert_ne!(a, b);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(a), &"a");
        assert_eq!(m.get_by_id(EdgeId(7)), Some(&"b"));
        assert_eq!(m.handle_of(EdgeId(7)), Some(b));
        assert_eq!(m.id_of(b), EdgeId(7));

        assert_eq!(m.remove(EdgeId(0)), Some("a"));
        assert_eq!(m.handle_of(EdgeId(0)), None);
        // The freed slot is recycled for the next insertion.
        let c = m.insert(EdgeId(12), "c");
        assert_eq!(c, a);
        assert_eq!(m.get(c), &"c");
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn slot_map_handles_sparse_aux_ids_without_dense_allocation() {
        let mut m: EdgeSlotMap<u64> = EdgeSlotMap::default();
        m.insert(EdgeId(3), 30);
        m.insert(EdgeId(AUX_EDGE_BASE), 40);
        m.insert(EdgeId(AUX_EDGE_BASE + 1), 50);
        assert_eq!(m.get_by_id(EdgeId(AUX_EDGE_BASE)), Some(&40));
        assert_eq!(m.len(), 3);
        // Slot storage stays dense even though the id space is not.
        assert!(m.ids.len() <= 3);
        assert_eq!(m.remove(EdgeId(AUX_EDGE_BASE)), Some(40));
        assert_eq!(m.get_by_id(EdgeId(AUX_EDGE_BASE)), None);
        assert_eq!(m.get_by_id(EdgeId(AUX_EDGE_BASE + 1)), Some(&50));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn double_insert_panics() {
        let mut m: EdgeSlotMap<u8> = EdgeSlotMap::default();
        m.insert(EdgeId(1), 1);
        m.insert(EdgeId(1), 2);
    }

    #[test]
    fn hash_store_mirrors_slot_map_behaviour() {
        let mut s: EdgeSlotMap<i32> = EdgeSlotMap::default();
        let mut h: HashEdgeStore<i32> = HashEdgeStore::default();
        for i in 0..50u32 {
            s.insert(EdgeId(i), i as i32 * 3);
            h.insert(EdgeId(i), i as i32 * 3);
        }
        for i in (0..50u32).step_by(3) {
            assert_eq!(s.remove(EdgeId(i)), h.remove(EdgeId(i)));
        }
        assert_eq!(s.len(), h.len());
        for i in 0..50u32 {
            assert_eq!(s.get_by_id(EdgeId(i)), h.get_by_id(EdgeId(i)));
            let sh = s.handle_of(EdgeId(i));
            let hh = h.handle_of(EdgeId(i));
            assert_eq!(sh.is_some(), hh.is_some());
            if let (Some(sh), Some(hh)) = (sh, hh) {
                assert_eq!(s.get(sh), h.get(hh));
            }
        }
        assert_eq!(
            sorted_ids_where(&s, |_| true),
            sorted_ids_where(&h, |_| true)
        );
    }

    #[test]
    fn id_index_set_get_remove() {
        let mut idx = EdgeIdIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.set(EdgeId(5), 10), None);
        assert_eq!(idx.set(EdgeId(5), 11), Some(10));
        assert_eq!(idx.get(EdgeId(5)), Some(11));
        assert_eq!(idx.get(EdgeId(6)), None);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.remove(EdgeId(5)), Some(11));
        assert_eq!(idx.remove(EdgeId(5)), None);
        assert!(idx.is_empty());
    }
}
