//! # pdmsf-graph
//!
//! Dynamic-graph substrate for the `pdmsf` workspace — the reproduction of
//! Kopelowitz, Porat & Rosenmutter, *Improved Worst-Case Deterministic
//! Parallel Dynamic Minimum Spanning Forest* (SPAA 2018).
//!
//! This crate contains everything the paper treats as "given":
//!
//! * [`ids`] — strongly-typed vertex / edge identifiers,
//! * [`arena`] — the flat, index-based edge bookkeeping layer
//!   ([`EdgeSlotMap`], [`EdgeIdIndex`], the [`EdgeStore`] interface and the
//!   map-backed benchmark baseline [`HashEdgeStore`]),
//! * [`weight`] — a totally ordered weight domain with a `-inf` element
//!   (needed by Frederickson's degree-3 reduction) and deterministic
//!   tie-breaking so the minimum spanning forest is unique,
//! * [`graph`] — a dynamic multigraph ([`DynGraph`]) with edge insertion and
//!   deletion,
//! * [`unionfind`] / [`kruskal`] — the static reference MSF used as ground
//!   truth by every test and by the recompute baseline,
//! * [`msf`] — the [`DynamicMsf`] trait shared by all dynamic-MSF
//!   implementations in the workspace (the paper's structure, the baselines,
//!   the sparsification wrapper),
//! * [`degree`] — Frederickson's dynamic degree-3 reduction, exposed as the
//!   wrapper [`DegreeReduced`],
//! * [`generators`] — deterministic workload generators (random sparse
//!   graphs, grids, preferential attachment, update streams, batched
//!   update/query streams — bursty hotspots with flapping links, tenant-
//!   clustered traffic — consumed by the batch engine, and tenant-tagged
//!   multi-tenant streams with Zipf-skewed tenant popularity consumed by
//!   the sharded serving layer) used by the examples, tests and the
//!   benchmark harness.

pub mod arena;
pub mod degree;
pub mod generators;
pub mod graph;
pub mod ids;
pub mod kruskal;
pub mod msf;
pub mod unionfind;
pub mod weight;

pub use arena::{EdgeIdIndex, EdgeSlotMap, EdgeStore, HashEdgeStore, NO_HANDLE};
pub use degree::DegreeReduced;
pub use generators::{
    BatchKind, BatchOp, BatchStream, BatchStreamSpec, GraphSpec, StreamKind, TenantOp,
    TenantStream, TenantStreamSpec, UpdateOp, UpdateStream, UpdateStreamSpec,
};
pub use graph::{DynGraph, DynGraphImage, Edge};
pub use ids::{EdgeId, TenantId, VertexId};
pub use kruskal::{kruskal_msf, MsfSummary};
pub use msf::{assert_matches_kruskal, verify_against_kruskal, DynamicMsf, MsfDelta};
pub use unionfind::UnionFind;
pub use weight::{WKey, Weight};
