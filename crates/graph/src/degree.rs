//! Frederickson's degree-3 reduction as a composable wrapper.
//!
//! The paper (Section 1.1) assumes "the maximum degree in `G` is 3 by
//! applying the techniques of Frederickson", at an `O(1)` additive overhead
//! per operation. [`DegreeReduced`] implements that technique dynamically:
//!
//! * every original vertex `v` is represented by a **path of copies**,
//!   consecutive copies joined by auxiliary edges of weight `-inf`,
//! * every real edge incident to `v` is attached to a copy holding no other
//!   real edge, so each copy has degree at most `1 (real) + 2 (aux) = 3`,
//! * because the auxiliary edges have weight `-inf` and form vertex-disjoint
//!   paths, they are always spanning-forest edges; the remaining forest edges
//!   of the transformed graph are exactly the forest edges of the original
//!   graph, with the same ids and weights.
//!
//! Copies are recycled (a deletion frees its copy for later insertions) but
//! never removed, so the transformed vertex count is `n + (historic maximum
//! number of copies)` — `O(n + m)` for the sparse graphs the core structure
//! is run on, which is exactly the regime the paper's analysis assumes.

use crate::graph::Edge;
use crate::ids::{EdgeId, VertexId};
use crate::msf::{DynamicMsf, MsfDelta};
use crate::weight::Weight;

/// First edge id used for auxiliary (`-inf`) edges. Real edge ids passed by
/// the caller must stay below this bound.
pub const AUX_EDGE_BASE: u32 = u32::MAX / 2;

#[derive(Clone, Debug)]
struct OuterVertex {
    /// Copies of this vertex, in path order.
    copies: Vec<VertexId>,
    /// Copies currently holding no real edge (candidates for the next
    /// insertion incident to this vertex).
    free_copies: Vec<VertexId>,
}

#[derive(Clone, Debug)]
struct OuterEdge {
    copy_u: VertexId,
    copy_v: VertexId,
    outer_u: VertexId,
    outer_v: VertexId,
}

/// Degree-3 reduction wrapper around any [`DynamicMsf`] implementation.
///
/// The inner structure only ever sees vertices of degree at most 3, which is
/// the precondition of the paper's chunk-size accounting (Invariant 1).
pub struct DegreeReduced<M: DynamicMsf> {
    inner: M,
    vertices: Vec<OuterVertex>,
    edges: Vec<Option<OuterEdge>>,
    next_aux_id: u32,
}

impl<M: DynamicMsf> DegreeReduced<M> {
    /// Wrap `inner`, which must start empty (zero vertices), and create `n`
    /// outer vertices.
    ///
    /// # Panics
    /// Panics if `inner` already contains vertices.
    pub fn new(n: usize, inner: M) -> Self {
        assert_eq!(
            inner.num_vertices(),
            0,
            "DegreeReduced requires an empty inner structure"
        );
        let mut this = DegreeReduced {
            inner,
            vertices: Vec::with_capacity(n),
            edges: Vec::new(),
            next_aux_id: AUX_EDGE_BASE,
        };
        for _ in 0..n {
            this.add_vertex();
        }
        this
    }

    /// Access the wrapped structure (e.g. to read cost counters).
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Mutable access to the wrapped structure.
    pub fn inner_mut(&mut self) -> &mut M {
        &mut self.inner
    }

    /// Number of copy vertices currently present in the inner structure.
    pub fn num_inner_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    /// Maximum degree any inner vertex can reach (always 3).
    pub const MAX_INNER_DEGREE: usize = 3;

    fn alloc_aux_id(&mut self) -> EdgeId {
        let id = EdgeId(self.next_aux_id);
        self.next_aux_id += 1;
        id
    }

    /// A copy of `v` with a free real-edge slot, creating (and chaining) a new
    /// copy if none is free.
    fn take_free_copy(&mut self, v: VertexId) -> VertexId {
        if let Some(c) = self.vertices[v.index()].free_copies.pop() {
            return c;
        }
        // Extend the path of copies by one.
        let new_copy = self.inner.add_vertex();
        let last = *self.vertices[v.index()]
            .copies
            .last()
            .expect("every outer vertex has at least one copy");
        let aux_id = self.alloc_aux_id();
        let delta = self.inner.insert(Edge {
            id: aux_id,
            u: last,
            v: new_copy,
            weight: Weight::NEG_INF,
        });
        debug_assert_eq!(
            delta.added,
            Some(aux_id),
            "auxiliary -inf edges always join the forest"
        );
        self.vertices[v.index()].copies.push(new_copy);
        new_copy
    }

    fn edge_slot(&mut self, id: EdgeId) -> &mut Option<OuterEdge> {
        let idx = id.index();
        if idx >= self.edges.len() {
            self.edges.resize_with(idx + 1, || None);
        }
        &mut self.edges[idx]
    }

    fn is_aux(id: EdgeId) -> bool {
        id.0 >= AUX_EDGE_BASE
    }
}

impl<M: DynamicMsf> DynamicMsf for DegreeReduced<M> {
    fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    fn add_vertex(&mut self) -> VertexId {
        let base_copy = self.inner.add_vertex();
        let id = VertexId::from(self.vertices.len());
        self.vertices.push(OuterVertex {
            copies: vec![base_copy],
            free_copies: vec![base_copy],
        });
        id
    }

    fn insert(&mut self, e: Edge) -> MsfDelta {
        assert!(
            e.id.0 < AUX_EDGE_BASE,
            "edge id {:?} collides with the auxiliary id space",
            e.id
        );
        assert!(
            !e.weight.is_neg_inf(),
            "user edges must have finite weight (-inf is reserved)"
        );
        let copy_u = self.take_free_copy(e.u);
        let copy_v = if e.v == e.u {
            // Self-loop: attach both ends to distinct copies so the inner
            // structure never sees a self-loop either.
            self.take_free_copy(e.u)
        } else {
            self.take_free_copy(e.v)
        };
        *self.edge_slot(e.id) = Some(OuterEdge {
            copy_u,
            copy_v,
            outer_u: e.u,
            outer_v: e.v,
        });
        let delta = self.inner.insert(Edge {
            id: e.id,
            u: copy_u,
            v: copy_v,
            weight: e.weight,
        });
        debug_assert!(delta.added.is_none_or(|a| !Self::is_aux(a)));
        debug_assert!(delta.removed.is_none_or(|r| !Self::is_aux(r)));
        delta
    }

    fn delete(&mut self, id: EdgeId) -> MsfDelta {
        let record = self.edges[id.index()]
            .take()
            .unwrap_or_else(|| panic!("edge {id:?} is not live"));
        let delta = self.inner.delete(id);
        self.vertices[record.outer_u.index()]
            .free_copies
            .push(record.copy_u);
        let owner_v = if record.outer_v == record.outer_u {
            record.outer_u
        } else {
            record.outer_v
        };
        self.vertices[owner_v.index()]
            .free_copies
            .push(record.copy_v);
        debug_assert!(delta.added.is_none_or(|a| !Self::is_aux(a)));
        debug_assert!(delta.removed.is_none_or(|r| !Self::is_aux(r)));
        delta
    }

    fn contains_edge(&self, id: EdgeId) -> bool {
        self.edges.get(id.index()).is_some_and(Option::is_some)
    }

    fn is_forest_edge(&self, id: EdgeId) -> bool {
        self.contains_edge(id) && self.inner.is_forest_edge(id)
    }

    fn forest_edges(&self) -> Vec<EdgeId> {
        self.inner
            .forest_edges()
            .into_iter()
            .filter(|&e| !Self::is_aux(e))
            .collect()
    }

    fn forest_weight(&self) -> i128 {
        // Auxiliary edges have -inf weight, which `as_summable` maps to 0, so
        // the inner total already equals the outer total.
        self.inner.forest_weight()
    }

    fn connected(&mut self, u: VertexId, v: VertexId) -> bool {
        let cu = self.vertices[u.index()].copies[0];
        let cv = self.vertices[v.index()].copies[0];
        self.inner.connected(cu, cv)
    }

    fn name(&self) -> &'static str {
        "degree-reduced"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DynGraph;
    use crate::msf::assert_matches_kruskal;

    /// A deliberately simple inner structure for testing the wrapper: it
    /// recomputes the MSF from scratch (Kruskal over its live edge list) on
    /// every operation and supports arbitrary caller-chosen edge ids.
    struct MiniRecompute {
        num_vertices: usize,
        edges: Vec<Edge>,
        forest: Vec<EdgeId>,
    }

    impl MiniRecompute {
        fn new() -> Self {
            MiniRecompute {
                num_vertices: 0,
                edges: Vec::new(),
                forest: Vec::new(),
            }
        }
        fn max_degree(&self) -> usize {
            let mut deg = vec![0usize; self.num_vertices];
            for e in &self.edges {
                deg[e.u.index()] += 1;
                if e.v != e.u {
                    deg[e.v.index()] += 1;
                }
            }
            deg.into_iter().max().unwrap_or(0)
        }
        fn refresh(&mut self) -> Vec<EdgeId> {
            let old = std::mem::take(&mut self.forest);
            let mut order: Vec<&Edge> = self.edges.iter().filter(|e| e.u != e.v).collect();
            order.sort_by_key(|e| crate::weight::WKey::new(e.weight, e.id));
            let mut uf = crate::unionfind::UnionFind::new(self.num_vertices);
            for e in order {
                if uf.union(e.u.index(), e.v.index()) {
                    self.forest.push(e.id);
                }
            }
            self.forest.sort_unstable();
            old
        }
        fn delta_from(&self, old: &[EdgeId]) -> MsfDelta {
            let added = self.forest.iter().copied().find(|e| !old.contains(e));
            let removed = old.iter().copied().find(|e| !self.forest.contains(e));
            MsfDelta { added, removed }
        }
    }

    impl DynamicMsf for MiniRecompute {
        fn num_vertices(&self) -> usize {
            self.num_vertices
        }
        fn add_vertex(&mut self) -> VertexId {
            let id = VertexId::from(self.num_vertices);
            self.num_vertices += 1;
            id
        }
        fn insert(&mut self, e: Edge) -> MsfDelta {
            self.edges.push(e);
            let old = self.refresh();
            self.delta_from(&old)
        }
        fn delete(&mut self, id: EdgeId) -> MsfDelta {
            self.edges.retain(|e| e.id != id);
            let old = self.refresh();
            self.delta_from(&old)
        }
        fn contains_edge(&self, id: EdgeId) -> bool {
            self.edges.iter().any(|e| e.id == id)
        }
        fn is_forest_edge(&self, id: EdgeId) -> bool {
            self.forest.contains(&id)
        }
        fn forest_edges(&self) -> Vec<EdgeId> {
            self.forest.clone()
        }
        fn forest_weight(&self) -> i128 {
            self.forest
                .iter()
                .map(|&id| {
                    self.edges
                        .iter()
                        .find(|e| e.id == id)
                        .unwrap()
                        .weight
                        .as_summable()
                })
                .sum()
        }
        fn connected(&mut self, u: VertexId, v: VertexId) -> bool {
            let mut uf = crate::unionfind::UnionFind::new(self.num_vertices);
            for e in &self.edges {
                uf.union(e.u.index(), e.v.index());
            }
            uf.same(u.index(), v.index())
        }
    }

    fn w(x: i64) -> Weight {
        Weight::new(x)
    }

    #[test]
    fn wrapper_matches_reference_on_small_graph() {
        // The inner mirror can't track caller ids if they interleave with aux
        // ids, so this test uses the wrapper end-to-end against an outer
        // mirror instead.
        let mut outer_mirror = DynGraph::new(4);
        let mut dr = DegreeReduced::new(4, MiniRecompute::new());

        let mut ids = Vec::new();
        for (u, v, wt) in [
            (0u32, 1u32, 4i64),
            (1, 2, 2),
            (2, 3, 7),
            (0, 3, 1),
            (0, 2, 9),
        ] {
            let id = outer_mirror.insert_edge(VertexId(u), VertexId(v), w(wt));
            dr.insert(Edge {
                id,
                u: VertexId(u),
                v: VertexId(v),
                weight: w(wt),
            });
            ids.push(id);
        }
        assert_matches_kruskal(&dr, &outer_mirror);

        outer_mirror.delete_edge(ids[1]);
        dr.delete(ids[1]);
        assert_matches_kruskal(&dr, &outer_mirror);
        assert!(dr.connected(VertexId(1), VertexId(3)));
    }

    #[test]
    fn inner_degree_never_exceeds_three() {
        // A star graph: one centre vertex with many incident edges. Without
        // the reduction the centre would have degree 16; with it every copy
        // has degree <= 3.
        let n = 17;
        let mut dr = DegreeReduced::new(n, MiniRecompute::new());
        let mut mirror = DynGraph::new(n);
        for i in 1..n {
            let id = mirror.insert_edge(VertexId(0), VertexId(i as u32), w(i as i64));
            dr.insert(Edge {
                id,
                u: VertexId(0),
                v: VertexId(i as u32),
                weight: w(i as i64),
            });
        }
        assert_matches_kruskal(&dr, &mirror);
        // Inspect the inner structure's degrees directly.
        assert!(dr.inner().max_degree() <= 3, "degree reduction violated");
        assert!(dr.num_inner_vertices() >= n);
    }

    #[test]
    fn copies_are_recycled_after_deletion() {
        let mut dr = DegreeReduced::new(2, MiniRecompute::new());
        let mut mirror = DynGraph::new(2);
        let mut live = Vec::new();
        for round in 0..5 {
            let id = mirror.insert_edge(VertexId(0), VertexId(1), w(round + 1));
            dr.insert(Edge {
                id,
                u: VertexId(0),
                v: VertexId(1),
                weight: w(round + 1),
            });
            live.push(id);
            if live.len() > 1 {
                let victim = live.remove(0);
                mirror.delete_edge(victim);
                dr.delete(victim);
            }
            assert_matches_kruskal(&dr, &mirror);
        }
        // At most 2 copies per endpoint should ever have been needed (one
        // live edge at a time, plus the transient second edge).
        assert!(dr.num_inner_vertices() <= 2 + 2 * 2);
    }

    #[test]
    fn self_loops_are_handled() {
        let mut dr = DegreeReduced::new(1, MiniRecompute::new());
        let mut mirror = DynGraph::new(1);
        let id = mirror.insert_edge(VertexId(0), VertexId(0), w(5));
        let delta = dr.insert(Edge {
            id,
            u: VertexId(0),
            v: VertexId(0),
            weight: w(5),
        });
        // A self-loop becomes an edge between two copies of the same vertex,
        // which are already connected by the aux path, so it never enters the
        // user-visible forest.
        assert!(delta.added.is_none() || delta.added == Some(id));
        assert_eq!(dr.forest_edges(), Vec::<EdgeId>::new());
        assert_matches_kruskal(&dr, &mirror);
    }
}
