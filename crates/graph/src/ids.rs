//! Strongly-typed vertex and edge identifiers.
//!
//! The whole workspace uses `u32`-backed index newtypes instead of pointers
//! (index arenas are the idiomatic way to build linked structures in
//! high-performance Rust: smaller than `usize`, `Copy`, no borrow-checker
//! fights, and trivially serialisable).

use std::fmt;

/// Identifier of a graph vertex.
///
/// Vertices are dense indices `0..n`; every structure in the workspace uses
/// them directly as array indices.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub u32);

/// Identifier of a graph edge.
///
/// Edge ids are allocated by [`crate::DynGraph`] (or by whichever driver owns
/// the edge set) and are stable for the lifetime of the edge. They double as
/// the deterministic tie-breaker that makes the minimum spanning forest
/// unique (see [`crate::weight`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl VertexId {
    /// Sentinel value meaning "no vertex".
    pub const NONE: VertexId = VertexId(u32::MAX);

    /// The index as a `usize`, for direct array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the [`VertexId::NONE`] sentinel.
    #[inline]
    pub fn is_none(self) -> bool {
        self == Self::NONE
    }
}

impl EdgeId {
    /// Sentinel value meaning "no edge".
    pub const NONE: EdgeId = EdgeId(u32::MAX);

    /// The index as a `usize`, for direct array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the [`EdgeId::NONE`] sentinel.
    #[inline]
    pub fn is_none(self) -> bool {
        self == Self::NONE
    }
}

/// Identifier of a serving-layer tenant.
///
/// Tenants are the unit of multi-tenant traffic: each tenant owns a private
/// vertex space `0..tenant_n` and a private edge-id space (sequential per
/// accepted link, exactly like a dedicated [`crate::DynGraph`] would
/// allocate). The sharded serving layer places tenants onto shards; tenant
/// ids are opaque `u32`s — they need not be dense.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The id as a `usize`, for direct array indexing when ids are dense.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for TenantId {
    fn from(v: u32) -> Self {
        TenantId(v)
    }
}

impl fmt::Debug for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u32> for VertexId {
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<usize> for VertexId {
    fn from(v: usize) -> Self {
        VertexId(u32::try_from(v).expect("vertex index exceeds u32::MAX"))
    }
}

impl From<u32> for EdgeId {
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

impl From<usize> for EdgeId {
    fn from(v: usize) -> Self {
        EdgeId(u32::try_from(v).expect("edge index exceeds u32::MAX"))
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "v⊥")
        } else {
            write!(f, "v{}", self.0)
        }
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "e⊥")
        } else {
            write!(f, "e{}", self.0)
        }
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::from(42usize);
        assert_eq!(v.index(), 42);
        assert_eq!(v, VertexId(42));
        assert!(!v.is_none());
        assert!(VertexId::NONE.is_none());
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::from(7u32);
        assert_eq!(e.index(), 7);
        assert!(!e.is_none());
        assert!(EdgeId::NONE.is_none());
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", VertexId(3)), "v3");
        assert_eq!(format!("{:?}", EdgeId(5)), "e5");
        assert_eq!(format!("{:?}", VertexId::NONE), "v⊥");
    }

    #[test]
    fn ordering_matches_indices() {
        assert!(VertexId(1) < VertexId(2));
        assert!(EdgeId(0) < EdgeId::NONE);
    }
}
