//! Deterministic workload generators.
//!
//! The paper has no experimental section, so the evaluation (the
//! experiments binary of `pdmsf-bench`) is driven by synthetic-but-realistic
//! workloads built here. Everything is seeded and fully deterministic so
//! that the tests, the examples and the benchmark harness replay identical
//! update sequences.
//!
//! Two layers:
//!
//! * [`GraphSpec`] — static graph families (uniform random sparse graphs,
//!   2-D grids modelling road networks, preferential-attachment graphs
//!   modelling skewed-degree networks),
//! * [`UpdateStreamSpec`] / [`UpdateStream`] — dynamic update sequences on
//!   top of a base graph (mixed insert/delete streams that keep the edge
//!   count stationary, sliding-window streams, and delete-heavy "failure"
//!   streams). Edge ids referenced by `Delete` operations are concrete: the
//!   generator mirrors the id allocation of [`DynGraph`] (sequential ids in
//!   insertion order), so a stream can be replayed against any structure.

use crate::graph::DynGraph;
use crate::ids::{EdgeId, TenantId, VertexId};
use crate::weight::Weight;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A family of static graphs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphSpec {
    /// `n` vertices, `m` edges drawn uniformly at random (no self-loops;
    /// parallel edges possible but rare), weights uniform in `[1, 1_000_000]`.
    RandomSparse {
        /// Number of vertices.
        n: usize,
        /// Number of edges.
        m: usize,
        /// RNG seed.
        seed: u64,
    },
    /// A `rows x cols` grid with 4-neighbour connectivity — a stand-in for a
    /// road network. Weights uniform in `[1, 1_000_000]`.
    Grid {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
        /// RNG seed (weights only; the topology is deterministic).
        seed: u64,
    },
    /// Preferential attachment: vertices arrive one at a time and attach
    /// `attach` edges to endpoints chosen proportionally to degree. Produces
    /// the skewed degree distributions that make the degree-3 reduction
    /// matter.
    PreferentialAttachment {
        /// Number of vertices.
        n: usize,
        /// Edges added per arriving vertex.
        attach: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl GraphSpec {
    /// Number of vertices this spec will produce.
    pub fn num_vertices(&self) -> usize {
        match *self {
            GraphSpec::RandomSparse { n, .. } => n,
            GraphSpec::Grid { rows, cols, .. } => rows * cols,
            GraphSpec::PreferentialAttachment { n, .. } => n,
        }
    }

    /// Generate the edge list `(u, v, w)` of this graph.
    pub fn edges(&self) -> Vec<(VertexId, VertexId, Weight)> {
        match *self {
            GraphSpec::RandomSparse { n, m, seed } => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let mut out = Vec::with_capacity(m);
                if n < 2 {
                    return out;
                }
                for _ in 0..m {
                    let u = rng.gen_range(0..n);
                    let mut v = rng.gen_range(0..n - 1);
                    if v >= u {
                        v += 1;
                    }
                    out.push((
                        VertexId::from(u),
                        VertexId::from(v),
                        random_weight(&mut rng),
                    ));
                }
                out
            }
            GraphSpec::Grid { rows, cols, seed } => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let mut out = Vec::new();
                let at = |r: usize, c: usize| VertexId::from(r * cols + c);
                for r in 0..rows {
                    for c in 0..cols {
                        if c + 1 < cols {
                            out.push((at(r, c), at(r, c + 1), random_weight(&mut rng)));
                        }
                        if r + 1 < rows {
                            out.push((at(r, c), at(r + 1, c), random_weight(&mut rng)));
                        }
                    }
                }
                out
            }
            GraphSpec::PreferentialAttachment { n, attach, seed } => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let mut out = Vec::new();
                // `targets` holds one entry per edge endpoint so sampling from
                // it is degree-proportional.
                let mut targets: Vec<usize> = vec![0];
                for v in 1..n {
                    let k = attach.min(v);
                    for _ in 0..k {
                        let t = targets[rng.gen_range(0..targets.len())];
                        out.push((
                            VertexId::from(v),
                            VertexId::from(t),
                            random_weight(&mut rng),
                        ));
                        targets.push(t);
                        targets.push(v);
                    }
                    if k == 0 {
                        targets.push(v);
                    }
                }
                out
            }
        }
    }

    /// Materialise the graph as a [`DynGraph`].
    pub fn build(&self) -> DynGraph {
        let mut g = DynGraph::new(self.num_vertices());
        for (u, v, w) in self.edges() {
            g.insert_edge(u, v, w);
        }
        g
    }
}

fn random_weight<R: Rng>(rng: &mut R) -> Weight {
    Weight::new(rng.gen_range(1..=1_000_000))
}

/// One operation of an update stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert an edge. Its id will be the next sequential id of the driving
    /// [`DynGraph`] (the generator pre-computes those ids for `Delete` ops).
    Insert {
        /// First endpoint.
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
        /// Weight.
        weight: Weight,
    },
    /// Delete the edge with this (pre-computed) id.
    Delete {
        /// The id of the edge to delete.
        id: EdgeId,
    },
}

/// The flavour of update stream to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamKind {
    /// Each operation is an insertion with probability `insert_permille/1000`
    /// and otherwise a deletion of a uniformly random live edge. Keeps the
    /// edge count roughly stationary with `insert_permille = 500`.
    Mixed {
        /// Probability of an insert, in permille.
        insert_permille: u32,
    },
    /// Sliding window: every operation inserts a fresh random edge and, once
    /// more than `window` edges are live, deletes the oldest live edge.
    SlidingWindow {
        /// Maximum number of live edges.
        window: usize,
    },
    /// Delete-only "failure" stream over the base graph's edges, in random
    /// order (used for the adversarial MWR experiments: most deletions hit
    /// forest edges).
    Failures,
}

/// Specification of an update stream.
#[derive(Clone, Copy, Debug)]
pub struct UpdateStreamSpec {
    /// The base graph present before the stream starts.
    pub base: GraphSpec,
    /// Number of operations to generate.
    pub ops: usize,
    /// Stream flavour.
    pub kind: StreamKind,
    /// RNG seed (independent of the base graph's seed).
    pub seed: u64,
}

/// A generated update stream: the base graph plus a sequence of operations
/// with concrete edge ids.
#[derive(Clone, Debug)]
pub struct UpdateStream {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Edges of the base graph (inserted before the stream, ids `0..len`).
    pub base_edges: Vec<(VertexId, VertexId, Weight)>,
    /// The operations, in order.
    pub ops: Vec<UpdateOp>,
}

impl UpdateStream {
    /// Generate the stream described by `spec`.
    pub fn generate(spec: &UpdateStreamSpec) -> Self {
        let base_edges = spec.base.edges();
        let n = spec.base.num_vertices();
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed ^ 0x9e37_79b9_7f4a_7c15);

        // Mirror of the id allocation: ids 0..base_edges.len() belong to the
        // base graph; subsequent inserts get sequential ids.
        let mut next_id: u32 = base_edges.len() as u32;
        let mut live: Vec<EdgeId> = (0..base_edges.len() as u32).map(EdgeId).collect();
        let mut ops = Vec::with_capacity(spec.ops);

        match spec.kind {
            StreamKind::Mixed { insert_permille } => {
                for _ in 0..spec.ops {
                    let do_insert = live.is_empty() || rng.gen_range(0u32..1000) < insert_permille;
                    if do_insert && n >= 2 {
                        let (u, v) = random_pair(&mut rng, n);
                        ops.push(UpdateOp::Insert {
                            u,
                            v,
                            weight: random_weight(&mut rng),
                        });
                        live.push(EdgeId(next_id));
                        next_id += 1;
                    } else if !live.is_empty() {
                        let k = rng.gen_range(0..live.len());
                        let id = live.swap_remove(k);
                        ops.push(UpdateOp::Delete { id });
                    }
                }
            }
            StreamKind::SlidingWindow { window } => {
                let mut queue: std::collections::VecDeque<EdgeId> = live.iter().copied().collect();
                for _ in 0..spec.ops {
                    if queue.len() >= window.max(1) {
                        let id = queue.pop_front().expect("window is non-empty");
                        ops.push(UpdateOp::Delete { id });
                    } else if n >= 2 {
                        let (u, v) = random_pair(&mut rng, n);
                        ops.push(UpdateOp::Insert {
                            u,
                            v,
                            weight: random_weight(&mut rng),
                        });
                        queue.push_back(EdgeId(next_id));
                        next_id += 1;
                    }
                }
            }
            StreamKind::Failures => {
                let mut order = live.clone();
                order.shuffle(&mut rng);
                for id in order.into_iter().take(spec.ops) {
                    ops.push(UpdateOp::Delete { id });
                }
            }
        }

        UpdateStream {
            num_vertices: n,
            base_edges,
            ops,
        }
    }

    /// Total number of operations (excluding the base-graph build).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the stream has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Replay the stream against a [`DynGraph`] mirror, calling `f` after the
    /// base graph is built and then after every operation. Used by tests to
    /// differentially check dynamic structures against Kruskal.
    pub fn replay_with<F: FnMut(&DynGraph, Option<&UpdateOp>)>(&self, mut f: F) -> DynGraph {
        let mut g = DynGraph::new(self.num_vertices);
        for &(u, v, w) in &self.base_edges {
            g.insert_edge(u, v, w);
        }
        f(&g, None);
        for op in &self.ops {
            match *op {
                UpdateOp::Insert { u, v, weight } => {
                    g.insert_edge(u, v, weight);
                }
                UpdateOp::Delete { id } => {
                    g.delete_edge(id);
                }
            }
            f(&g, Some(op));
        }
        g
    }
}

/// One operation of a *batched* stream: the update/query mix a serving
/// front-end sees. Unlike [`UpdateOp`], batched streams carry explicit
/// read operations (connectivity, forest weight) so the batch engine's
/// query fan-out is exercised on realistic traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchOp {
    /// Insert an edge. Its id is the next sequential id of the driving
    /// [`DynGraph`] mirror (the generator pre-computes those ids for `Cut`
    /// ops, exactly like [`UpdateOp::Insert`]).
    Link {
        /// First endpoint.
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
        /// Weight.
        weight: Weight,
    },
    /// Delete the edge with this (pre-computed) id.
    Cut {
        /// The id of the edge to delete.
        id: EdgeId,
    },
    /// Are `u` and `v` in the same component?
    QueryConnected {
        /// First endpoint.
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
    },
    /// Total weight of the minimum spanning forest.
    QueryForestWeight,
}

impl BatchOp {
    /// Whether this operation mutates the graph.
    pub fn is_update(&self) -> bool {
        matches!(self, BatchOp::Link { .. } | BatchOp::Cut { .. })
    }

    /// Whether this operation is a read-only query.
    pub fn is_query(&self) -> bool {
        !self.is_update()
    }
}

/// The flavour of batched stream to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchKind {
    /// Bursts of traffic around a per-batch hotspot region of the vertex
    /// space, with **flapping links**: a `flap_permille` fraction of update
    /// slots insert an edge and delete that same edge later *in the same
    /// batch* (the link-flap pattern of unstable networks). Flap pairs are
    /// exactly the opposing insert/delete pairs the batch engine cancels.
    /// Queries (a `query_permille` fraction of ops) probe the hotspot and
    /// repeat recent questions, so duplicate queries occur naturally.
    Bursty {
        /// Fraction of operations that are queries, in permille.
        query_permille: u32,
        /// Fraction of update slots that start a flap pair, in permille.
        flap_permille: u32,
    },
    /// Tenant-sharded traffic: the vertex space is split into `clusters`
    /// contiguous blocks and batch `b` touches only block `b % clusters`
    /// (links, cuts and connectivity queries all stay inside the block).
    Clustered {
        /// Number of vertex blocks.
        clusters: usize,
        /// Fraction of operations that are queries, in permille.
        query_permille: u32,
    },
    /// Like [`BatchKind::Clustered`], but **every operation** picks its own
    /// block uniformly at random, so a single batch spreads across many
    /// blocks at once. Individual ops still stay inside their block, which
    /// makes the blocks independent update groups — the workload shape the
    /// intra-batch grouped apply path (experiment E6) is built for.
    ClusteredMix {
        /// Number of vertex blocks.
        clusters: usize,
        /// Fraction of operations that are queries, in permille.
        query_permille: u32,
    },
}

/// Specification of a batched update/query stream.
#[derive(Clone, Copy, Debug)]
pub struct BatchStreamSpec {
    /// The base graph present before the stream starts.
    pub base: GraphSpec,
    /// Number of batches to generate.
    pub batches: usize,
    /// Number of operations per batch.
    pub batch_size: usize,
    /// Stream flavour.
    pub kind: BatchKind,
    /// RNG seed (independent of the base graph's seed).
    pub seed: u64,
}

/// A generated batched stream: the base graph plus a sequence of batches
/// with concrete edge ids. `Cut` ids are always live at their position in
/// the stream (assuming every `Link` — including flap links — is applied to
/// the id-allocating [`DynGraph`] mirror, which is what the batch engine
/// does).
#[derive(Clone, Debug)]
pub struct BatchStream {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Edges of the base graph (inserted before the stream, ids `0..len`).
    pub base_edges: Vec<(VertexId, VertexId, Weight)>,
    /// The batches, in order.
    pub batches: Vec<Vec<BatchOp>>,
}

impl BatchStream {
    /// Generate the stream described by `spec`.
    pub fn generate(spec: &BatchStreamSpec) -> Self {
        let base_edges = spec.base.edges();
        let n = spec.base.num_vertices();
        assert!(n >= 2, "batched streams need at least two vertices");
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed ^ 0xBA7C_57E4_11AB_CDEF);

        // Mirror of the id allocation: ids 0..base_edges.len() belong to the
        // base graph; every subsequent Link (flap or not) gets the next id.
        let mut next_id: u32 = base_edges.len() as u32;
        // Live edges a Cut may target, partitioned by the cluster of their
        // first endpoint (the Bursty kind uses a single cluster). Flap
        // links are *not* registered here — their cut is scheduled within
        // the batch that created them.
        let clusters = match spec.kind {
            BatchKind::Bursty { .. } => 1,
            BatchKind::Clustered { clusters, .. } | BatchKind::ClusteredMix { clusters, .. } => {
                clusters.max(1)
            }
        };
        let block = n.div_ceil(clusters);
        let cluster_of = |v: VertexId| (v.index() / block).min(clusters - 1);
        let mut live: Vec<Vec<EdgeId>> = vec![Vec::new(); clusters];
        for (i, &(u, v, _)) in base_edges.iter().enumerate() {
            // Only edges fully inside one block are cuttable by that
            // block's batches — a cross-block base edge belongs to no
            // tenant, and cutting it would break the documented isolation
            // of `BatchKind::Clustered`. (Bursty streams have one cluster,
            // so every edge qualifies.)
            if cluster_of(u) == cluster_of(v) {
                live[cluster_of(u)].push(EdgeId(i as u32));
            }
        }

        let query_permille = match spec.kind {
            BatchKind::Bursty { query_permille, .. }
            | BatchKind::Clustered { query_permille, .. }
            | BatchKind::ClusteredMix { query_permille, .. } => query_permille,
        };
        // The region of one block, clamped so a degenerate tail block (or a
        // block too small for a distinct pair) widens to the whole space.
        let block_region = |c: usize| {
            let lo = c * block;
            let hi = (lo + block).min(n);
            if lo < n && hi - lo >= 2 {
                (lo, hi - lo)
            } else {
                (0, n)
            }
        };

        let mut batches = Vec::with_capacity(spec.batches);
        for b in 0..spec.batches {
            // The vertex region this batch concentrates on (ClusteredMix
            // picks a fresh region per op instead, below).
            let (batch_lo, batch_span) = match spec.kind {
                BatchKind::Bursty { .. } => {
                    (rng.gen_range(0..n), (n / 16).clamp(8.min(n), n.max(1)))
                }
                BatchKind::Clustered { .. } | BatchKind::ClusteredMix { .. } => {
                    block_region(b % clusters)
                }
            };
            let batch_cluster = b % clusters;
            let mut ops: Vec<BatchOp> = Vec::with_capacity(spec.batch_size);
            // Flap links inserted in this batch, awaiting their cut.
            let mut pending_flaps: Vec<EdgeId> = Vec::new();
            let mut last_query: Option<BatchOp> = None;
            while ops.len() < spec.batch_size {
                let remaining = spec.batch_size - ops.len();
                // Flap cuts must land in this batch: flush when the budget
                // runs out, release early with some probability otherwise.
                if pending_flaps.len() >= remaining
                    || (!pending_flaps.is_empty() && rng.gen_range(0u32..1000) < 350)
                {
                    ops.push(BatchOp::Cut {
                        id: pending_flaps.remove(0),
                    });
                    continue;
                }
                let (lo, span, cluster) = match spec.kind {
                    BatchKind::ClusteredMix { .. } => {
                        let c = rng.gen_range(0..clusters);
                        let (lo, span) = block_region(c);
                        (lo, span, c)
                    }
                    _ => (batch_lo, batch_span, batch_cluster),
                };
                let region_vertex = |rng: &mut ChaCha8Rng| -> VertexId {
                    VertexId::from((lo + rng.gen_range(0..span)) % n)
                };
                let region_pair = |rng: &mut ChaCha8Rng| -> (VertexId, VertexId) {
                    loop {
                        let u = region_vertex(rng);
                        let v = region_vertex(rng);
                        if u != v {
                            return (u, v);
                        }
                        // A span of 1 can never produce a distinct pair.
                        if span < 2 {
                            return (u, VertexId::from((u.index() + 1) % n));
                        }
                    }
                };
                if rng.gen_range(0u32..1000) < query_permille {
                    // Serving traffic repeats questions: reuse the previous
                    // query a quarter of the time so batches carry genuine
                    // duplicates for the engine to dedup.
                    let repeat = match last_query {
                        Some(prev) if rng.gen_range(0u32..4) == 0 => Some(prev),
                        _ => None,
                    };
                    let op = if let Some(prev) = repeat {
                        prev
                    } else if rng.gen_range(0u32..8) == 0 {
                        BatchOp::QueryForestWeight
                    } else {
                        let (u, mut v) = region_pair(&mut rng);
                        // Bursty traffic: half the connectivity probes cross
                        // out of the hotspot (is it still attached to the
                        // rest of the network?). Clustered traffic stays
                        // inside its tenant block, queries included.
                        if matches!(spec.kind, BatchKind::Bursty { .. })
                            && rng.gen_range(0u32..2) == 0
                        {
                            v = VertexId::from(rng.gen_range(0..n));
                            if v == u {
                                v = VertexId::from((u.index() + 1) % n);
                            }
                        }
                        BatchOp::QueryConnected { u, v }
                    };
                    last_query = Some(op);
                    ops.push(op);
                    continue;
                }
                // An update slot.
                let flap_permille = match spec.kind {
                    BatchKind::Bursty { flap_permille, .. } => flap_permille,
                    BatchKind::Clustered { .. } | BatchKind::ClusteredMix { .. } => 0,
                };
                // A new flap needs budget for its own link *and* cut on top
                // of every cut already owed — otherwise the batch could end
                // with an orphaned flap link whose cancelling cut never
                // lands (flap ids are not in `live`, so no later batch
                // would ever cut it).
                if remaining >= pending_flaps.len() + 2 && rng.gen_range(0u32..1000) < flap_permille
                {
                    let (u, v) = region_pair(&mut rng);
                    ops.push(BatchOp::Link {
                        u,
                        v,
                        weight: random_weight(&mut rng),
                    });
                    pending_flaps.push(EdgeId(next_id));
                    next_id += 1;
                    continue;
                }
                let do_insert = live[cluster].is_empty() || rng.gen_range(0u32..2) == 0;
                if do_insert {
                    let (u, v) = region_pair(&mut rng);
                    ops.push(BatchOp::Link {
                        u,
                        v,
                        weight: random_weight(&mut rng),
                    });
                    live[cluster_of(u)].push(EdgeId(next_id));
                    next_id += 1;
                } else {
                    let k = rng.gen_range(0..live[cluster].len());
                    let id = live[cluster].swap_remove(k);
                    ops.push(BatchOp::Cut { id });
                }
            }
            debug_assert!(
                pending_flaps.is_empty(),
                "a flap link's cancelling cut must land in its own batch"
            );
            batches.push(ops);
        }

        BatchStream {
            num_vertices: n,
            base_edges,
            batches,
        }
    }

    /// Number of batches.
    pub fn num_batches(&self) -> usize {
        self.batches.len()
    }

    /// Total operations across all batches.
    pub fn total_ops(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }

    /// `(updates, queries)` counts across all batches.
    pub fn count_ops(&self) -> (usize, usize) {
        let updates = self
            .batches
            .iter()
            .flatten()
            .filter(|op| op.is_update())
            .count();
        (updates, self.total_ops() - updates)
    }
}

/// One operation of a **multi-tenant** batched stream: a [`BatchOp`] tagged
/// with the tenant it belongs to. Vertex ids and edge ids inside the op are
/// **tenant-local**: vertices live in `0..tenant_n` and edge ids are the
/// sequential ids a dedicated per-tenant [`DynGraph`] would allocate — the
/// serving layer translates them into whatever shard hosts the tenant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantOp {
    /// The tenant this operation belongs to.
    pub tenant: TenantId,
    /// The operation, in the tenant's local vertex/edge-id spaces.
    pub op: BatchOp,
}

/// Specification of a multi-tenant batched stream.
///
/// The stream models a serving front-end shared by `tenants` independent
/// tenants, each owning a private `tenant_vertices`-vertex graph. Traffic
/// arrives in service batches of `batch_size` operations, assembled from
/// per-tenant **bursts** of `burst` consecutive operations; which tenant a
/// burst comes from follows a Zipf-like popularity distribution
/// (`zipf_permille / 1000` is the exponent: `0` = uniform, `1000` ≈ classic
/// Zipf where tenant 0 dominates) — the skewed tenant popularity of real
/// multi-tenant traffic. Each tenant's own traffic has the shape of `kind`
/// (bursty hotspots with flap pairs, or clustered blocks), generated by
/// [`BatchStream`] over the tenant's private graph.
#[derive(Clone, Copy, Debug)]
pub struct TenantStreamSpec {
    /// Number of tenants (ids `0..tenants`).
    pub tenants: usize,
    /// Vertices per tenant.
    pub tenant_vertices: usize,
    /// Base edges per tenant (present before the stream starts).
    pub tenant_edges: usize,
    /// Number of service batches.
    pub batches: usize,
    /// Operations per service batch (rounded down to a whole number of
    /// bursts).
    pub batch_size: usize,
    /// Consecutive operations drawn from one tenant at a time.
    pub burst: usize,
    /// Zipf exponent of tenant popularity, in permille.
    pub zipf_permille: u32,
    /// Shape of each tenant's own traffic.
    pub kind: BatchKind,
    /// RNG seed.
    pub seed: u64,
}

/// A generated multi-tenant stream: per-tenant base graphs plus a sequence
/// of service batches of tenant-tagged operations. Within each tenant the
/// operations (in stream order) are exactly a [`BatchStream`] over that
/// tenant's private graph, so per-tenant `Cut` ids are always live at their
/// position — provided every tenant's operations are applied in stream
/// order, which any per-tenant-order-preserving router guarantees.
#[derive(Clone, Debug)]
pub struct TenantStream {
    /// Vertices per tenant.
    pub tenant_vertices: usize,
    /// Per-tenant base edges (tenant-local endpoints, ids `0..len`).
    pub base_edges: Vec<Vec<(VertexId, VertexId, Weight)>>,
    /// The service batches, in order.
    pub batches: Vec<Vec<TenantOp>>,
}

impl TenantStream {
    /// Generate the stream described by `spec`.
    pub fn generate(spec: &TenantStreamSpec) -> Self {
        assert!(spec.tenants >= 1, "need at least one tenant");
        assert!(spec.burst >= 1, "bursts must carry at least one op");
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed ^ 0x7E4A_4711_5EED_00D1);
        let bursts_per_batch = (spec.batch_size / spec.burst).max(1);

        // Zipf-like popularity: weight of tenant t ∝ 1/(t+1)^alpha, scaled
        // to integers so the vendored RNG only needs integer ranges.
        let alpha = spec.zipf_permille as f64 / 1000.0;
        let weights: Vec<u64> = (0..spec.tenants)
            .map(|t| ((1.0 / (t as f64 + 1.0).powf(alpha)) * 1_000_000.0).max(1.0) as u64)
            .collect();
        let total_weight: u64 = weights.iter().sum();

        // Phase 1: sample the burst → tenant assignment, counting how many
        // bursts each tenant must supply.
        let mut assignment: Vec<Vec<usize>> = Vec::with_capacity(spec.batches);
        let mut bursts_needed = vec![0usize; spec.tenants];
        for _ in 0..spec.batches {
            let mut slots = Vec::with_capacity(bursts_per_batch);
            for _ in 0..bursts_per_batch {
                let mut draw = rng.gen_range(0..total_weight);
                let mut tenant = spec.tenants - 1;
                for (t, &w) in weights.iter().enumerate() {
                    if draw < w {
                        tenant = t;
                        break;
                    }
                    draw -= w;
                }
                slots.push(tenant);
                bursts_needed[tenant] += 1;
            }
            assignment.push(slots);
        }

        // Phase 2: each tenant generates exactly the bursts it owes, as a
        // private BatchStream over its own graph (burst = one sub-batch).
        let mut base_edges = Vec::with_capacity(spec.tenants);
        let mut pending: Vec<std::vec::IntoIter<Vec<BatchOp>>> = Vec::with_capacity(spec.tenants);
        for (t, &need) in bursts_needed.iter().enumerate() {
            let stream = BatchStream::generate(&BatchStreamSpec {
                base: GraphSpec::RandomSparse {
                    n: spec.tenant_vertices,
                    m: spec.tenant_edges,
                    seed: spec.seed ^ (0x9E37_79B9 * (t as u64 + 1)),
                },
                batches: need,
                batch_size: spec.burst,
                kind: spec.kind,
                seed: spec.seed ^ (0xC2B2_AE35 * (t as u64 + 1)),
            });
            base_edges.push(stream.base_edges);
            pending.push(stream.batches.into_iter());
        }

        // Phase 3: assemble the service batches in assignment order,
        // tagging every op with its tenant. Per-tenant op order is the
        // tenant's own stream order by construction.
        let batches = assignment
            .into_iter()
            .map(|slots| {
                let mut ops = Vec::with_capacity(slots.len() * spec.burst);
                for t in slots {
                    let burst = pending[t].next().expect("tenant owes this burst");
                    ops.extend(burst.into_iter().map(|op| TenantOp {
                        tenant: TenantId(t as u32),
                        op,
                    }));
                }
                ops
            })
            .collect();

        TenantStream {
            tenant_vertices: spec.tenant_vertices,
            base_edges,
            batches,
        }
    }

    /// Number of tenants.
    pub fn num_tenants(&self) -> usize {
        self.base_edges.len()
    }

    /// Number of service batches.
    pub fn num_batches(&self) -> usize {
        self.batches.len()
    }

    /// Total operations across all service batches.
    pub fn total_ops(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }

    /// The per-tenant base graphs as one tenant-tagged link batch (tenant
    /// order, then base-edge order) — tenant-local edge ids `0..len` per
    /// tenant, exactly what the per-tenant `Cut` ids of the stream assume
    /// was loaded before the first batch.
    pub fn base_ops(&self) -> Vec<TenantOp> {
        let mut ops = Vec::new();
        for (t, edges) in self.base_edges.iter().enumerate() {
            ops.extend(edges.iter().map(|&(u, v, weight)| TenantOp {
                tenant: TenantId(t as u32),
                op: BatchOp::Link { u, v, weight },
            }));
        }
        ops
    }

    /// Per-tenant operation counts across all batches (the popularity
    /// histogram the zipf skew produces).
    pub fn ops_per_tenant(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_tenants()];
        for op in self.batches.iter().flatten() {
            counts[op.tenant.index()] += 1;
        }
        counts
    }
}

fn random_pair<R: Rng>(rng: &mut R, n: usize) -> (VertexId, VertexId) {
    let u = rng.gen_range(0..n);
    let mut v = rng.gen_range(0..n - 1);
    if v >= u {
        v += 1;
    }
    (VertexId::from(u), VertexId::from(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_sparse_has_requested_size() {
        let spec = GraphSpec::RandomSparse {
            n: 100,
            m: 250,
            seed: 1,
        };
        let g = spec.build();
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 250);
        assert!(g.edges().all(|e| e.u != e.v));
    }

    #[test]
    fn generators_are_deterministic() {
        let spec = GraphSpec::RandomSparse {
            n: 50,
            m: 80,
            seed: 7,
        };
        assert_eq!(spec.edges(), spec.edges());
        let sspec = UpdateStreamSpec {
            base: spec,
            ops: 200,
            kind: StreamKind::Mixed {
                insert_permille: 500,
            },
            seed: 3,
        };
        let a = UpdateStream::generate(&sspec);
        let b = UpdateStream::generate(&sspec);
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn grid_edge_count_is_exact() {
        let spec = GraphSpec::Grid {
            rows: 4,
            cols: 5,
            seed: 0,
        };
        let g = spec.build();
        assert_eq!(g.num_vertices(), 20);
        // rows*(cols-1) horizontal + (rows-1)*cols vertical
        assert_eq!(g.num_edges(), 4 * 4 + 3 * 5);
    }

    #[test]
    fn preferential_attachment_is_connected_for_attach_ge_1() {
        let spec = GraphSpec::PreferentialAttachment {
            n: 64,
            attach: 2,
            seed: 11,
        };
        let g = spec.build();
        let msf = crate::kruskal::kruskal_msf(&g);
        assert_eq!(msf.components, 1);
        assert_eq!(msf.edges.len(), 63);
    }

    #[test]
    fn mixed_stream_ops_are_replayable() {
        let sspec = UpdateStreamSpec {
            base: GraphSpec::RandomSparse {
                n: 40,
                m: 60,
                seed: 5,
            },
            ops: 300,
            kind: StreamKind::Mixed {
                insert_permille: 450,
            },
            seed: 9,
        };
        let stream = UpdateStream::generate(&sspec);
        assert_eq!(stream.len(), 300);
        // Replaying must not panic (all Delete ids refer to live edges) and
        // ends with a consistent mirror.
        let mut steps = 0usize;
        let g = stream.replay_with(|_, _| steps += 1);
        assert_eq!(steps, 301);
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn sliding_window_bounds_live_edges() {
        let sspec = UpdateStreamSpec {
            base: GraphSpec::RandomSparse {
                n: 30,
                m: 10,
                seed: 2,
            },
            ops: 200,
            kind: StreamKind::SlidingWindow { window: 25 },
            seed: 4,
        };
        let stream = UpdateStream::generate(&sspec);
        let mut max_live = 0usize;
        let g = stream.replay_with(|g, _| max_live = max_live.max(g.num_edges()));
        assert!(max_live <= 25 + 1);
        assert!(g.num_edges() <= 25);
    }

    /// Replay a batch stream against a [`DynGraph`] mirror the way the
    /// batch engine does (every Link applied, Cuts validated against
    /// liveness), returning the mirror.
    fn replay_batches(stream: &BatchStream) -> DynGraph {
        let mut g = DynGraph::new(stream.num_vertices);
        for &(u, v, w) in &stream.base_edges {
            g.insert_edge(u, v, w);
        }
        for batch in &stream.batches {
            for op in batch {
                match *op {
                    BatchOp::Link { u, v, weight } => {
                        g.insert_edge(u, v, weight);
                    }
                    BatchOp::Cut { id } => {
                        assert!(g.is_live(id), "generated Cut of a dead edge {id:?}");
                        g.delete_edge(id);
                    }
                    BatchOp::QueryConnected { u, v } => {
                        assert!(u != v, "self-connectivity probes are uninteresting");
                        assert!(u.index() < g.num_vertices() && v.index() < g.num_vertices());
                    }
                    BatchOp::QueryForestWeight => {}
                }
            }
        }
        g
    }

    #[test]
    fn bursty_batches_are_replayable_and_deterministic() {
        let spec = BatchStreamSpec {
            base: GraphSpec::RandomSparse {
                n: 64,
                m: 128,
                seed: 5,
            },
            batches: 12,
            batch_size: 40,
            kind: BatchKind::Bursty {
                query_permille: 500,
                flap_permille: 300,
            },
            seed: 17,
        };
        let stream = BatchStream::generate(&spec);
        assert_eq!(stream.num_batches(), 12);
        assert_eq!(stream.total_ops(), 12 * 40);
        assert_eq!(stream.batches, BatchStream::generate(&spec).batches);
        let (updates, queries) = stream.count_ops();
        assert!(updates > 0 && queries > 0);
        replay_batches(&stream);
    }

    #[test]
    fn bursty_batches_contain_flap_pairs_and_duplicate_queries() {
        let spec = BatchStreamSpec {
            base: GraphSpec::RandomSparse {
                n: 100,
                m: 200,
                seed: 2,
            },
            batches: 8,
            batch_size: 64,
            kind: BatchKind::Bursty {
                query_permille: 400,
                flap_permille: 400,
            },
            seed: 23,
        };
        let stream = BatchStream::generate(&spec);
        // Flap pair: a Link whose id is Cut later in the same batch. Ids
        // are sequential, so reconstruct them per batch.
        let mut next_id = stream.base_edges.len() as u32;
        let mut flap_pairs = 0usize;
        let mut duplicate_queries = 0usize;
        for batch in &stream.batches {
            let mut born_here: Vec<EdgeId> = Vec::new();
            let mut seen_queries: Vec<BatchOp> = Vec::new();
            for op in batch {
                match *op {
                    BatchOp::Link { .. } => {
                        born_here.push(EdgeId(next_id));
                        next_id += 1;
                    }
                    BatchOp::Cut { id } => {
                        if born_here.contains(&id) {
                            flap_pairs += 1;
                        }
                    }
                    q => {
                        if seen_queries.contains(&q) {
                            duplicate_queries += 1;
                        }
                        seen_queries.push(q);
                    }
                }
            }
        }
        assert!(flap_pairs > 0, "bursty stream generated no flap pairs");
        assert!(
            duplicate_queries > 0,
            "bursty stream generated no duplicate queries"
        );
        replay_batches(&stream);
    }

    #[test]
    fn flap_heavy_tiny_batches_never_orphan_a_flap_link() {
        // Maximal flap pressure against a tiny budget: every update slot
        // wants to start a flap, and the batch barely fits one pair. The
        // generator must still land every cancelling cut inside its own
        // batch (checked by the generate-time assertion) and stay
        // replayable.
        for batch_size in [2usize, 3, 5, 8] {
            let stream = BatchStream::generate(&BatchStreamSpec {
                base: GraphSpec::RandomSparse {
                    n: 32,
                    m: 20,
                    seed: 3,
                },
                batches: 40,
                batch_size,
                kind: BatchKind::Bursty {
                    query_permille: 100,
                    flap_permille: 1000,
                },
                seed: 77,
            });
            replay_batches(&stream);
        }
    }

    #[test]
    fn clustered_batches_stay_inside_their_block() {
        let n = 96usize;
        let clusters = 4usize;
        let spec = BatchStreamSpec {
            base: GraphSpec::RandomSparse { n, m: 150, seed: 9 },
            batches: 8,
            batch_size: 32,
            kind: BatchKind::Clustered {
                clusters,
                query_permille: 300,
            },
            seed: 31,
        };
        let stream = BatchStream::generate(&spec);
        let block = n.div_ceil(clusters);
        // id → endpoints, mirroring the sequential allocation (base edges
        // first, then every Link in stream order).
        let mut endpoints: Vec<(usize, usize)> = stream
            .base_edges
            .iter()
            .map(|&(u, v, _)| (u.index(), v.index()))
            .collect();
        for (b, batch) in stream.batches.iter().enumerate() {
            let c = b % clusters;
            let (lo, hi) = (c * block, ((c + 1) * block).min(n));
            let in_block = |v: usize| (lo..hi).contains(&v);
            for op in batch {
                match *op {
                    BatchOp::Link { u, v, .. } => {
                        assert!(
                            in_block(u.index()) && in_block(v.index()),
                            "batch {b} linked outside its cluster block"
                        );
                        endpoints.push((u.index(), v.index()));
                    }
                    BatchOp::QueryConnected { u, v } => {
                        assert!(
                            in_block(u.index()) && in_block(v.index()),
                            "batch {b} queried outside its cluster block"
                        );
                    }
                    BatchOp::Cut { id } => {
                        let (u, v) = endpoints[id.index()];
                        assert!(
                            in_block(u) && in_block(v),
                            "batch {b} cut an edge outside its cluster block"
                        );
                    }
                    BatchOp::QueryForestWeight => {}
                }
            }
        }
        replay_batches(&stream);
    }

    #[test]
    fn clustered_mix_ops_stay_in_blocks_but_batches_span_many() {
        let n = 96usize;
        let clusters = 6usize;
        let spec = BatchStreamSpec {
            base: GraphSpec::RandomSparse { n, m: 150, seed: 9 },
            batches: 8,
            batch_size: 48,
            kind: BatchKind::ClusteredMix {
                clusters,
                query_permille: 250,
            },
            seed: 31,
        };
        let stream = BatchStream::generate(&spec);
        assert_eq!(stream.batches, BatchStream::generate(&spec).batches);
        let block = n.div_ceil(clusters);
        let block_of = |v: usize| (v / block).min(clusters - 1);
        let mut endpoints: Vec<(usize, usize)> = stream
            .base_edges
            .iter()
            .map(|&(u, v, _)| (u.index(), v.index()))
            .collect();
        for (b, batch) in stream.batches.iter().enumerate() {
            let mut touched = vec![false; clusters];
            for op in batch {
                match *op {
                    BatchOp::Link { u, v, .. } => {
                        assert_eq!(
                            block_of(u.index()),
                            block_of(v.index()),
                            "batch {b} linked across blocks"
                        );
                        touched[block_of(u.index())] = true;
                        endpoints.push((u.index(), v.index()));
                    }
                    BatchOp::QueryConnected { u, v } => {
                        assert_eq!(block_of(u.index()), block_of(v.index()));
                    }
                    BatchOp::Cut { id } => {
                        let (u, v) = endpoints[id.index()];
                        assert_eq!(block_of(u), block_of(v));
                        touched[block_of(u)] = true;
                    }
                    BatchOp::QueryForestWeight => {}
                }
            }
            assert!(
                touched.iter().filter(|&&t| t).count() >= 2,
                "batch {b} never spread across blocks"
            );
        }
        replay_batches(&stream);
    }

    fn tenant_spec() -> TenantStreamSpec {
        TenantStreamSpec {
            tenants: 5,
            tenant_vertices: 32,
            tenant_edges: 48,
            batches: 10,
            batch_size: 64,
            burst: 16,
            zipf_permille: 900,
            kind: BatchKind::Bursty {
                query_permille: 400,
                flap_permille: 300,
            },
            seed: 51,
        }
    }

    #[test]
    fn tenant_stream_is_deterministic_and_exactly_sized() {
        let spec = tenant_spec();
        let a = TenantStream::generate(&spec);
        let b = TenantStream::generate(&spec);
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.base_edges, b.base_edges);
        assert_eq!(a.num_tenants(), 5);
        assert_eq!(a.num_batches(), 10);
        // Every service batch is a whole number of bursts.
        for batch in &a.batches {
            assert_eq!(batch.len(), (spec.batch_size / spec.burst) * spec.burst);
        }
        assert_eq!(a.total_ops(), a.ops_per_tenant().iter().sum::<usize>());
    }

    #[test]
    fn tenant_popularity_is_skewed_by_zipf() {
        let mut spec = tenant_spec();
        spec.batches = 40;
        spec.zipf_permille = 1000;
        let skewed = TenantStream::generate(&spec);
        let counts = skewed.ops_per_tenant();
        // Under Zipf-1 the head tenant dominates the tail tenant clearly.
        assert!(
            counts[0] > 2 * counts[4],
            "zipf skew missing: head {} vs tail {}",
            counts[0],
            counts[4]
        );
        // Uniform popularity spreads far more evenly.
        spec.zipf_permille = 0;
        let uniform = TenantStream::generate(&spec);
        let u = uniform.ops_per_tenant();
        let (min, max) = (u.iter().min().unwrap(), u.iter().max().unwrap());
        assert!(
            max < &(2 * min),
            "uniform popularity came out skewed: {u:?}"
        );
    }

    #[test]
    fn tenant_streams_are_replayable_per_tenant() {
        // Each tenant's filtered op sequence (after its base edges) must be
        // a valid batch stream over the tenant's private graph: Cut ids
        // live, endpoints in range — the property the serving layer's
        // per-tenant order preservation relies on.
        for kind in [
            BatchKind::Bursty {
                query_permille: 400,
                flap_permille: 500,
            },
            BatchKind::Clustered {
                clusters: 2,
                query_permille: 300,
            },
        ] {
            let mut spec = tenant_spec();
            spec.kind = kind;
            let stream = TenantStream::generate(&spec);
            let mut mirrors: Vec<DynGraph> = stream
                .base_edges
                .iter()
                .map(|edges| {
                    let mut g = DynGraph::new(stream.tenant_vertices);
                    for &(u, v, w) in edges {
                        g.insert_edge(u, v, w);
                    }
                    g
                })
                .collect();
            for op in stream.batches.iter().flatten() {
                let g = &mut mirrors[op.tenant.index()];
                match op.op {
                    BatchOp::Link { u, v, weight } => {
                        assert!(u != v && u.index() < g.num_vertices());
                        g.insert_edge(u, v, weight);
                    }
                    BatchOp::Cut { id } => {
                        assert!(g.is_live(id), "tenant {:?} cut a dead edge", op.tenant);
                        g.delete_edge(id);
                    }
                    BatchOp::QueryConnected { u, v } => {
                        assert!(u.index() < g.num_vertices() && v.index() < g.num_vertices());
                    }
                    BatchOp::QueryForestWeight => {}
                }
            }
        }
    }

    #[test]
    fn tenant_base_ops_cover_every_tenant_in_order() {
        let stream = TenantStream::generate(&tenant_spec());
        let base = stream.base_ops();
        let total: usize = stream.base_edges.iter().map(Vec::len).sum();
        assert_eq!(base.len(), total);
        // Tenant-major order, links only.
        let mut last_tenant = 0u32;
        for op in &base {
            assert!(op.tenant.0 >= last_tenant);
            last_tenant = op.tenant.0;
            assert!(matches!(op.op, BatchOp::Link { .. }));
        }
    }

    #[test]
    fn failure_stream_only_deletes_base_edges() {
        let sspec = UpdateStreamSpec {
            base: GraphSpec::Grid {
                rows: 3,
                cols: 3,
                seed: 1,
            },
            ops: 1000,
            kind: StreamKind::Failures,
            seed: 8,
        };
        let stream = UpdateStream::generate(&sspec);
        assert_eq!(stream.len(), 12); // grid has 12 edges; stream truncates
        assert!(stream
            .ops
            .iter()
            .all(|op| matches!(op, UpdateOp::Delete { .. })));
        let g = stream.replay_with(|_, _| ());
        assert_eq!(g.num_edges(), 0);
    }
}
