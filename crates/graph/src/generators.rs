//! Deterministic workload generators.
//!
//! The paper has no experimental section, so the evaluation in
//! `EXPERIMENTS.md` is driven by synthetic-but-realistic workloads built
//! here. Everything is seeded and fully deterministic so that the tests, the
//! examples and the benchmark harness replay identical update sequences.
//!
//! Two layers:
//!
//! * [`GraphSpec`] — static graph families (uniform random sparse graphs,
//!   2-D grids modelling road networks, preferential-attachment graphs
//!   modelling skewed-degree networks),
//! * [`UpdateStreamSpec`] / [`UpdateStream`] — dynamic update sequences on
//!   top of a base graph (mixed insert/delete streams that keep the edge
//!   count stationary, sliding-window streams, and delete-heavy "failure"
//!   streams). Edge ids referenced by `Delete` operations are concrete: the
//!   generator mirrors the id allocation of [`DynGraph`] (sequential ids in
//!   insertion order), so a stream can be replayed against any structure.

use crate::graph::DynGraph;
use crate::ids::{EdgeId, VertexId};
use crate::weight::Weight;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A family of static graphs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphSpec {
    /// `n` vertices, `m` edges drawn uniformly at random (no self-loops;
    /// parallel edges possible but rare), weights uniform in `[1, 1_000_000]`.
    RandomSparse {
        /// Number of vertices.
        n: usize,
        /// Number of edges.
        m: usize,
        /// RNG seed.
        seed: u64,
    },
    /// A `rows x cols` grid with 4-neighbour connectivity — a stand-in for a
    /// road network. Weights uniform in `[1, 1_000_000]`.
    Grid {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
        /// RNG seed (weights only; the topology is deterministic).
        seed: u64,
    },
    /// Preferential attachment: vertices arrive one at a time and attach
    /// `attach` edges to endpoints chosen proportionally to degree. Produces
    /// the skewed degree distributions that make the degree-3 reduction
    /// matter.
    PreferentialAttachment {
        /// Number of vertices.
        n: usize,
        /// Edges added per arriving vertex.
        attach: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl GraphSpec {
    /// Number of vertices this spec will produce.
    pub fn num_vertices(&self) -> usize {
        match *self {
            GraphSpec::RandomSparse { n, .. } => n,
            GraphSpec::Grid { rows, cols, .. } => rows * cols,
            GraphSpec::PreferentialAttachment { n, .. } => n,
        }
    }

    /// Generate the edge list `(u, v, w)` of this graph.
    pub fn edges(&self) -> Vec<(VertexId, VertexId, Weight)> {
        match *self {
            GraphSpec::RandomSparse { n, m, seed } => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let mut out = Vec::with_capacity(m);
                if n < 2 {
                    return out;
                }
                for _ in 0..m {
                    let u = rng.gen_range(0..n);
                    let mut v = rng.gen_range(0..n - 1);
                    if v >= u {
                        v += 1;
                    }
                    out.push((
                        VertexId::from(u),
                        VertexId::from(v),
                        random_weight(&mut rng),
                    ));
                }
                out
            }
            GraphSpec::Grid { rows, cols, seed } => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let mut out = Vec::new();
                let at = |r: usize, c: usize| VertexId::from(r * cols + c);
                for r in 0..rows {
                    for c in 0..cols {
                        if c + 1 < cols {
                            out.push((at(r, c), at(r, c + 1), random_weight(&mut rng)));
                        }
                        if r + 1 < rows {
                            out.push((at(r, c), at(r + 1, c), random_weight(&mut rng)));
                        }
                    }
                }
                out
            }
            GraphSpec::PreferentialAttachment { n, attach, seed } => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let mut out = Vec::new();
                // `targets` holds one entry per edge endpoint so sampling from
                // it is degree-proportional.
                let mut targets: Vec<usize> = vec![0];
                for v in 1..n {
                    let k = attach.min(v);
                    for _ in 0..k {
                        let t = targets[rng.gen_range(0..targets.len())];
                        out.push((
                            VertexId::from(v),
                            VertexId::from(t),
                            random_weight(&mut rng),
                        ));
                        targets.push(t);
                        targets.push(v);
                    }
                    if k == 0 {
                        targets.push(v);
                    }
                }
                out
            }
        }
    }

    /// Materialise the graph as a [`DynGraph`].
    pub fn build(&self) -> DynGraph {
        let mut g = DynGraph::new(self.num_vertices());
        for (u, v, w) in self.edges() {
            g.insert_edge(u, v, w);
        }
        g
    }
}

fn random_weight<R: Rng>(rng: &mut R) -> Weight {
    Weight::new(rng.gen_range(1..=1_000_000))
}

/// One operation of an update stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert an edge. Its id will be the next sequential id of the driving
    /// [`DynGraph`] (the generator pre-computes those ids for `Delete` ops).
    Insert {
        /// First endpoint.
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
        /// Weight.
        weight: Weight,
    },
    /// Delete the edge with this (pre-computed) id.
    Delete {
        /// The id of the edge to delete.
        id: EdgeId,
    },
}

/// The flavour of update stream to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamKind {
    /// Each operation is an insertion with probability `insert_permille/1000`
    /// and otherwise a deletion of a uniformly random live edge. Keeps the
    /// edge count roughly stationary with `insert_permille = 500`.
    Mixed {
        /// Probability of an insert, in permille.
        insert_permille: u32,
    },
    /// Sliding window: every operation inserts a fresh random edge and, once
    /// more than `window` edges are live, deletes the oldest live edge.
    SlidingWindow {
        /// Maximum number of live edges.
        window: usize,
    },
    /// Delete-only "failure" stream over the base graph's edges, in random
    /// order (used for the adversarial MWR experiments: most deletions hit
    /// forest edges).
    Failures,
}

/// Specification of an update stream.
#[derive(Clone, Copy, Debug)]
pub struct UpdateStreamSpec {
    /// The base graph present before the stream starts.
    pub base: GraphSpec,
    /// Number of operations to generate.
    pub ops: usize,
    /// Stream flavour.
    pub kind: StreamKind,
    /// RNG seed (independent of the base graph's seed).
    pub seed: u64,
}

/// A generated update stream: the base graph plus a sequence of operations
/// with concrete edge ids.
#[derive(Clone, Debug)]
pub struct UpdateStream {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Edges of the base graph (inserted before the stream, ids `0..len`).
    pub base_edges: Vec<(VertexId, VertexId, Weight)>,
    /// The operations, in order.
    pub ops: Vec<UpdateOp>,
}

impl UpdateStream {
    /// Generate the stream described by `spec`.
    pub fn generate(spec: &UpdateStreamSpec) -> Self {
        let base_edges = spec.base.edges();
        let n = spec.base.num_vertices();
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed ^ 0x9e37_79b9_7f4a_7c15);

        // Mirror of the id allocation: ids 0..base_edges.len() belong to the
        // base graph; subsequent inserts get sequential ids.
        let mut next_id: u32 = base_edges.len() as u32;
        let mut live: Vec<EdgeId> = (0..base_edges.len() as u32).map(EdgeId).collect();
        let mut ops = Vec::with_capacity(spec.ops);

        match spec.kind {
            StreamKind::Mixed { insert_permille } => {
                for _ in 0..spec.ops {
                    let do_insert = live.is_empty() || rng.gen_range(0u32..1000) < insert_permille;
                    if do_insert && n >= 2 {
                        let (u, v) = random_pair(&mut rng, n);
                        ops.push(UpdateOp::Insert {
                            u,
                            v,
                            weight: random_weight(&mut rng),
                        });
                        live.push(EdgeId(next_id));
                        next_id += 1;
                    } else if !live.is_empty() {
                        let k = rng.gen_range(0..live.len());
                        let id = live.swap_remove(k);
                        ops.push(UpdateOp::Delete { id });
                    }
                }
            }
            StreamKind::SlidingWindow { window } => {
                let mut queue: std::collections::VecDeque<EdgeId> = live.iter().copied().collect();
                for _ in 0..spec.ops {
                    if queue.len() >= window.max(1) {
                        let id = queue.pop_front().expect("window is non-empty");
                        ops.push(UpdateOp::Delete { id });
                    } else if n >= 2 {
                        let (u, v) = random_pair(&mut rng, n);
                        ops.push(UpdateOp::Insert {
                            u,
                            v,
                            weight: random_weight(&mut rng),
                        });
                        queue.push_back(EdgeId(next_id));
                        next_id += 1;
                    }
                }
            }
            StreamKind::Failures => {
                let mut order = live.clone();
                order.shuffle(&mut rng);
                for id in order.into_iter().take(spec.ops) {
                    ops.push(UpdateOp::Delete { id });
                }
            }
        }

        UpdateStream {
            num_vertices: n,
            base_edges,
            ops,
        }
    }

    /// Total number of operations (excluding the base-graph build).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the stream has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Replay the stream against a [`DynGraph`] mirror, calling `f` after the
    /// base graph is built and then after every operation. Used by tests to
    /// differentially check dynamic structures against Kruskal.
    pub fn replay_with<F: FnMut(&DynGraph, Option<&UpdateOp>)>(&self, mut f: F) -> DynGraph {
        let mut g = DynGraph::new(self.num_vertices);
        for &(u, v, w) in &self.base_edges {
            g.insert_edge(u, v, w);
        }
        f(&g, None);
        for op in &self.ops {
            match *op {
                UpdateOp::Insert { u, v, weight } => {
                    g.insert_edge(u, v, weight);
                }
                UpdateOp::Delete { id } => {
                    g.delete_edge(id);
                }
            }
            f(&g, Some(op));
        }
        g
    }
}

fn random_pair<R: Rng>(rng: &mut R, n: usize) -> (VertexId, VertexId) {
    let u = rng.gen_range(0..n);
    let mut v = rng.gen_range(0..n - 1);
    if v >= u {
        v += 1;
    }
    (VertexId::from(u), VertexId::from(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_sparse_has_requested_size() {
        let spec = GraphSpec::RandomSparse {
            n: 100,
            m: 250,
            seed: 1,
        };
        let g = spec.build();
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 250);
        assert!(g.edges().all(|e| e.u != e.v));
    }

    #[test]
    fn generators_are_deterministic() {
        let spec = GraphSpec::RandomSparse {
            n: 50,
            m: 80,
            seed: 7,
        };
        assert_eq!(spec.edges(), spec.edges());
        let sspec = UpdateStreamSpec {
            base: spec,
            ops: 200,
            kind: StreamKind::Mixed {
                insert_permille: 500,
            },
            seed: 3,
        };
        let a = UpdateStream::generate(&sspec);
        let b = UpdateStream::generate(&sspec);
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn grid_edge_count_is_exact() {
        let spec = GraphSpec::Grid {
            rows: 4,
            cols: 5,
            seed: 0,
        };
        let g = spec.build();
        assert_eq!(g.num_vertices(), 20);
        // rows*(cols-1) horizontal + (rows-1)*cols vertical
        assert_eq!(g.num_edges(), 4 * 4 + 3 * 5);
    }

    #[test]
    fn preferential_attachment_is_connected_for_attach_ge_1() {
        let spec = GraphSpec::PreferentialAttachment {
            n: 64,
            attach: 2,
            seed: 11,
        };
        let g = spec.build();
        let msf = crate::kruskal::kruskal_msf(&g);
        assert_eq!(msf.components, 1);
        assert_eq!(msf.edges.len(), 63);
    }

    #[test]
    fn mixed_stream_ops_are_replayable() {
        let sspec = UpdateStreamSpec {
            base: GraphSpec::RandomSparse {
                n: 40,
                m: 60,
                seed: 5,
            },
            ops: 300,
            kind: StreamKind::Mixed {
                insert_permille: 450,
            },
            seed: 9,
        };
        let stream = UpdateStream::generate(&sspec);
        assert_eq!(stream.len(), 300);
        // Replaying must not panic (all Delete ids refer to live edges) and
        // ends with a consistent mirror.
        let mut steps = 0usize;
        let g = stream.replay_with(|_, _| steps += 1);
        assert_eq!(steps, 301);
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn sliding_window_bounds_live_edges() {
        let sspec = UpdateStreamSpec {
            base: GraphSpec::RandomSparse {
                n: 30,
                m: 10,
                seed: 2,
            },
            ops: 200,
            kind: StreamKind::SlidingWindow { window: 25 },
            seed: 4,
        };
        let stream = UpdateStream::generate(&sspec);
        let mut max_live = 0usize;
        let g = stream.replay_with(|g, _| max_live = max_live.max(g.num_edges()));
        assert!(max_live <= 25 + 1);
        assert!(g.num_edges() <= 25);
    }

    #[test]
    fn failure_stream_only_deletes_base_edges() {
        let sspec = UpdateStreamSpec {
            base: GraphSpec::Grid {
                rows: 3,
                cols: 3,
                seed: 1,
            },
            ops: 1000,
            kind: StreamKind::Failures,
            seed: 8,
        };
        let stream = UpdateStream::generate(&sspec);
        assert_eq!(stream.len(), 12); // grid has 12 edges; stream truncates
        assert!(stream
            .ops
            .iter()
            .all(|op| matches!(op, UpdateOp::Delete { .. })));
        let g = stream.replay_with(|_, _| ());
        assert_eq!(g.num_edges(), 0);
    }
}
