//! A dynamic, weighted, undirected multigraph.
//!
//! [`DynGraph`] is the "driver side" representation of the graph being
//! maintained: it owns the edge-id space, the adjacency lists and the weight
//! of every live edge. The dynamic-MSF structures receive edges from it (as
//! [`Edge`] values) and are free to keep whatever internal bookkeeping they
//! need; tests compare their answers against [`crate::kruskal_msf`] run on the
//! same `DynGraph`.

use crate::ids::{EdgeId, VertexId};
use crate::weight::Weight;

/// A single (live) edge: id, endpoints and weight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Stable identifier of the edge.
    pub id: EdgeId,
    /// First endpoint.
    pub u: VertexId,
    /// Second endpoint.
    pub v: VertexId,
    /// Weight.
    pub weight: Weight,
}

impl Edge {
    /// The endpoint different from `x`.
    ///
    /// # Panics
    /// Panics if `x` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("{x:?} is not an endpoint of {self:?}")
        }
    }

    /// Whether `x` is an endpoint.
    #[inline]
    pub fn touches(&self, x: VertexId) -> bool {
        x == self.u || x == self.v
    }
}

#[derive(Clone, Debug)]
struct EdgeSlot {
    u: VertexId,
    v: VertexId,
    weight: Weight,
    alive: bool,
}

/// A dynamic weighted undirected multigraph backed by index arenas.
///
/// * vertices are dense indices `0..num_vertices()` and can be appended,
/// * edges get stable ids; deleting an edge retires its id (ids are never
///   reused so they stay valid as deterministic tie-breakers),
/// * self-loops and parallel edges are allowed (the MSF simply never uses a
///   self-loop and uses at most one of a parallel bundle).
#[derive(Clone, Debug, Default)]
pub struct DynGraph {
    edges: Vec<EdgeSlot>,
    adjacency: Vec<Vec<EdgeId>>,
    live_edges: usize,
}

impl DynGraph {
    /// An empty graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        DynGraph {
            edges: Vec::new(),
            adjacency: vec![Vec::new(); n],
            live_edges: 0,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of live (non-deleted) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.live_edges
    }

    /// Total number of edge ids ever allocated (live + deleted).
    #[inline]
    pub fn edge_id_bound(&self) -> usize {
        self.edges.len()
    }

    /// Append a new isolated vertex and return its id.
    pub fn add_vertex(&mut self) -> VertexId {
        let id = VertexId::from(self.adjacency.len());
        self.adjacency.push(Vec::new());
        id
    }

    /// Insert an edge `{u, v}` with the given weight; returns its new id.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId, weight: Weight) -> EdgeId {
        assert!(u.index() < self.num_vertices(), "vertex {u:?} out of range");
        assert!(v.index() < self.num_vertices(), "vertex {v:?} out of range");
        let id = EdgeId::from(self.edges.len());
        self.edges.push(EdgeSlot {
            u,
            v,
            weight,
            alive: true,
        });
        self.adjacency[u.index()].push(id);
        if v != u {
            self.adjacency[v.index()].push(id);
        }
        self.live_edges += 1;
        id
    }

    /// Delete a live edge and return it.
    ///
    /// # Panics
    /// Panics if the edge does not exist or was already deleted.
    pub fn delete_edge(&mut self, id: EdgeId) -> Edge {
        let slot = self
            .edges
            .get_mut(id.index())
            .unwrap_or_else(|| panic!("unknown edge {id:?}"));
        assert!(slot.alive, "edge {id:?} already deleted");
        slot.alive = false;
        let edge = Edge {
            id,
            u: slot.u,
            v: slot.v,
            weight: slot.weight,
        };
        self.adjacency[edge.u.index()].retain(|&e| e != id);
        if edge.v != edge.u {
            self.adjacency[edge.v.index()].retain(|&e| e != id);
        }
        self.live_edges -= 1;
        edge
    }

    /// The edge with the given id, if it is live.
    pub fn edge(&self, id: EdgeId) -> Option<Edge> {
        let slot = self.edges.get(id.index())?;
        if !slot.alive {
            return None;
        }
        Some(Edge {
            id,
            u: slot.u,
            v: slot.v,
            weight: slot.weight,
        })
    }

    /// The edge with the given id, panicking if it is not live.
    #[inline]
    pub fn edge_unchecked(&self, id: EdgeId) -> Edge {
        self.edge(id)
            .unwrap_or_else(|| panic!("edge {id:?} is not live"))
    }

    /// Whether the edge id refers to a live edge.
    #[inline]
    pub fn is_live(&self, id: EdgeId) -> bool {
        self.edges.get(id.index()).map(|s| s.alive).unwrap_or(false)
    }

    /// Ids of the live edges incident to `v` (self-loops appear once).
    pub fn incident_edges(&self, v: VertexId) -> &[EdgeId] {
        &self.adjacency[v.index()]
    }

    /// Degree of `v` counting multiplicities (self-loops count once).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adjacency[v.index()].len()
    }

    /// The maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterator over all live edges, in increasing id order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter().enumerate().filter_map(|(i, slot)| {
            if slot.alive {
                Some(Edge {
                    id: EdgeId::from(i),
                    u: slot.u,
                    v: slot.v,
                    weight: slot.weight,
                })
            } else {
                None
            }
        })
    }

    /// Find the id of some live edge between `u` and `v` (linear in the
    /// degree of `u`). Intended for tests and small drivers.
    pub fn find_edge(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        self.adjacency[u.index()]
            .iter()
            .copied()
            .find(|&id| self.edge_unchecked(id).touches(v))
    }

    /// Flatten the graph into its serializable image.
    ///
    /// Every observable detail round-trips: dead edge slots are kept (ids
    /// are never reused, so the slot vector *is* the id allocator) and the
    /// adjacency lists are dumped in their exact in-memory order —
    /// [`DynGraph::find_edge`] and [`DynGraph::incident_edges`] expose that
    /// order, so rebuilding adjacency from the edge slots would not be
    /// faithful after interleaved deletes.
    pub fn to_image(&self) -> DynGraphImage {
        let mut edge_u = Vec::with_capacity(self.edges.len());
        let mut edge_v = Vec::with_capacity(self.edges.len());
        let mut edge_weight = Vec::with_capacity(self.edges.len());
        let mut edge_alive = Vec::with_capacity(self.edges.len());
        for slot in &self.edges {
            edge_u.push(slot.u.0);
            edge_v.push(slot.v.0);
            edge_weight.push(slot.weight.raw());
            edge_alive.push(u8::from(slot.alive));
        }
        let mut adj_offsets = Vec::with_capacity(self.adjacency.len() + 1);
        let mut adj_data = Vec::new();
        adj_offsets.push(0u64);
        for list in &self.adjacency {
            adj_data.extend(list.iter().map(|id| id.0));
            adj_offsets.push(adj_data.len() as u64);
        }
        DynGraphImage {
            edge_u,
            edge_v,
            edge_weight,
            edge_alive,
            adj_offsets,
            adj_data,
        }
    }

    /// Rebuild a graph from [`DynGraph::to_image`], validating structural
    /// consistency (lane lengths, offset monotonicity, adjacency ids in
    /// range) so a corrupted image is rejected rather than deserialized into
    /// a graph that panics later.
    pub fn from_image(image: &DynGraphImage) -> Result<Self, String> {
        let m = image.edge_u.len();
        if image.edge_v.len() != m || image.edge_weight.len() != m || image.edge_alive.len() != m {
            return Err("graph image edge lanes disagree in length".to_string());
        }
        if image.adj_offsets.first() != Some(&0) {
            return Err("graph image adjacency offsets must start at 0".to_string());
        }
        if image.adj_offsets.last().copied() != Some(image.adj_data.len() as u64) {
            return Err("graph image adjacency offsets do not cover the data".to_string());
        }
        let mut edges = Vec::with_capacity(m);
        let mut live_edges = 0usize;
        for i in 0..m {
            if image.edge_alive[i] > 1 {
                return Err(format!("graph image edge {i} has a non-boolean alive flag"));
            }
            let alive = image.edge_alive[i] == 1;
            live_edges += usize::from(alive);
            edges.push(EdgeSlot {
                u: VertexId(image.edge_u[i]),
                v: VertexId(image.edge_v[i]),
                weight: Weight::from_raw(image.edge_weight[i]),
                alive,
            });
        }
        let n = image.adj_offsets.len() - 1;
        let mut adjacency = Vec::with_capacity(n);
        for v in 0..n {
            let lo = image.adj_offsets[v] as usize;
            let hi = image.adj_offsets[v + 1] as usize;
            if hi < lo || hi > image.adj_data.len() {
                return Err(format!("graph image adjacency offsets of v{v} are invalid"));
            }
            let list: Vec<EdgeId> = image.adj_data[lo..hi].iter().map(|&e| EdgeId(e)).collect();
            for id in &list {
                if id.index() >= m || !edges[id.index()].alive {
                    return Err(format!("graph image adjacency of v{v} names dead {id:?}"));
                }
            }
            adjacency.push(list);
        }
        Ok(DynGraph {
            edges,
            adjacency,
            live_edges,
        })
    }
}

/// The flat, serializable image of a [`DynGraph`]: edge slots as parallel
/// lanes (`u32` endpoints, raw `i64` weights, `u8` alive flags — dead slots
/// included, they are the id allocator) and adjacency lists flattened into
/// an offsets + data pair in exact in-memory order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DynGraphImage {
    /// First endpoint per edge slot.
    pub edge_u: Vec<u32>,
    /// Second endpoint per edge slot.
    pub edge_v: Vec<u32>,
    /// Raw weight per edge slot ([`Weight::raw`] encoding).
    pub edge_weight: Vec<i64>,
    /// 1 if the slot's edge is live, 0 if deleted.
    pub edge_alive: Vec<u8>,
    /// Per-vertex ranges into `adj_data` (`n + 1` entries, starts at 0).
    pub adj_offsets: Vec<u64>,
    /// Concatenated adjacency lists (live edge ids).
    pub adj_data: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(x: i64) -> Weight {
        Weight::new(x)
    }

    #[test]
    fn insert_and_delete_edges() {
        let mut g = DynGraph::new(4);
        let e01 = g.insert_edge(VertexId(0), VertexId(1), w(3));
        let e12 = g.insert_edge(VertexId(1), VertexId(2), w(1));
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(VertexId(1)), 2);
        assert_eq!(g.edge_unchecked(e01).other(VertexId(0)), VertexId(1));

        let removed = g.delete_edge(e01);
        assert_eq!(removed.weight, w(3));
        assert_eq!(g.num_edges(), 1);
        assert!(!g.is_live(e01));
        assert!(g.is_live(e12));
        assert_eq!(g.degree(VertexId(0)), 0);
        assert_eq!(g.degree(VertexId(1)), 1);
    }

    #[test]
    fn parallel_edges_and_self_loops() {
        let mut g = DynGraph::new(2);
        let a = g.insert_edge(VertexId(0), VertexId(1), w(5));
        let b = g.insert_edge(VertexId(0), VertexId(1), w(5));
        let loop_e = g.insert_edge(VertexId(0), VertexId(0), w(2));
        assert_ne!(a, b);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(VertexId(0)), 3);
        g.delete_edge(loop_e);
        assert_eq!(g.degree(VertexId(0)), 2);
    }

    #[test]
    fn add_vertex_grows_graph() {
        let mut g = DynGraph::new(1);
        let v = g.add_vertex();
        assert_eq!(v, VertexId(1));
        assert_eq!(g.num_vertices(), 2);
        g.insert_edge(VertexId(0), v, w(1));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn edges_iterator_skips_deleted() {
        let mut g = DynGraph::new(3);
        let a = g.insert_edge(VertexId(0), VertexId(1), w(1));
        let b = g.insert_edge(VertexId(1), VertexId(2), w(2));
        g.delete_edge(a);
        let ids: Vec<EdgeId> = g.edges().map(|e| e.id).collect();
        assert_eq!(ids, vec![b]);
    }

    #[test]
    fn find_edge_locates_live_edges_only() {
        let mut g = DynGraph::new(3);
        let a = g.insert_edge(VertexId(0), VertexId(1), w(1));
        assert_eq!(g.find_edge(VertexId(0), VertexId(1)), Some(a));
        assert_eq!(g.find_edge(VertexId(0), VertexId(2)), None);
        g.delete_edge(a);
        assert_eq!(g.find_edge(VertexId(0), VertexId(1)), None);
    }

    #[test]
    #[should_panic(expected = "already deleted")]
    fn double_delete_panics() {
        let mut g = DynGraph::new(2);
        let a = g.insert_edge(VertexId(0), VertexId(1), w(1));
        g.delete_edge(a);
        g.delete_edge(a);
    }

    #[test]
    fn max_degree_tracks_adjacency() {
        let mut g = DynGraph::new(5);
        assert_eq!(g.max_degree(), 0);
        for i in 1..5 {
            g.insert_edge(VertexId(0), VertexId(i), w(i as i64));
        }
        assert_eq!(g.max_degree(), 4);
    }
}
