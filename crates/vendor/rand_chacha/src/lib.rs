//! Vendored `ChaCha8Rng`: a real ChaCha8 keystream generator implementing the
//! workspace's [`rand`] trait subset.
//!
//! The stream is deterministic and stable for this repository. It is not
//! guaranteed to be word-for-word identical to the upstream `rand_chacha`
//! crate (which has its own buffering and word-ordering conventions); nothing
//! in this workspace depends on a particular stream, only on seeded
//! determinism.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// ChaCha with 8 rounds, seeded from a `u64` via SplitMix64 key expansion.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// ChaCha input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current output block.
    buf: [u32; 16],
    /// Next unread word of `buf` (16 = exhausted).
    idx: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for ((out, w), st) in self.buf.iter_mut().zip(&working).zip(&self.state) {
            *out = w.wrapping_add(*st);
        }
        self.idx = 0;
        // 64-bit block counter in words 12/13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        // 256-bit key from SplitMix64, as rand_core's seed_from_u64 does.
        for i in 0..4 {
            let word = splitmix64(&mut sm);
            state[4 + 2 * i] = word as u32;
            state[5 + 2 * i] = (word >> 32) as u32;
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let word = self.buf[self.idx];
        self.idx += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(0xDECAF);
        let mut b = ChaCha8Rng::seed_from_u64(0xDECAF);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams of different seeds look identical");
    }

    #[test]
    fn gen_range_works_through_the_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform sampler missed a bucket");
    }
}
