//! Vendored, self-contained subset of the `rand` crate API.
//!
//! See `crates/vendor/README.md` for why this exists. Only the surface this
//! workspace actually uses is provided: [`RngCore`], [`Rng::gen_range`] over
//! integer ranges, [`SeedableRng::seed_from_u64`] and
//! [`SliceRandom::shuffle`].

/// The `rand::prelude` equivalent: every trait a caller needs in scope.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng, SliceRandom};
}

/// A source of random `u64`s; everything else is derived from it.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Extension methods over [`RngCore`] (blanket-implemented).
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive integer range).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled from. Implemented for `Range<T>` and
/// `RangeInclusive<T>` over the primitive integer types.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Slice shuffling (Fisher–Yates).
pub trait SliceRandom {
    /// Shuffle the slice in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Lcg(42);
        for _ in 0..1000 {
            let x: i64 = rng.gen_range(-50..50);
            assert!((-50..50).contains(&x));
            let y: usize = rng.gen_range(3..=7);
            assert!((3..=7).contains(&y));
            let z: u8 = rng.gen_range(0..10);
            assert!(z < 10);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Lcg(7);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in sorted order");
    }
}
