//! Strategy combinators: how test inputs are generated.

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Weighted choice between boxed strategies ([`crate::prop_oneof!`]).
pub struct WeightedUnion<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> WeightedUnion<T> {
    /// Build from `(weight, strategy)` arms.
    ///
    /// # Panics
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        WeightedUnion { arms, total }
    }
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (weight, strat) in &self.arms {
            if pick < *weight as u64 {
                return strat.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick exceeded total weight")
    }
}
