//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// Lengths that `vec` accepts.
pub trait SizeRange {
    /// Draw a length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + (rng.next_u64() as usize) % (self.end - self.start)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty size range");
        lo + (rng.next_u64() as usize) % (hi - lo + 1)
    }
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A vector whose elements come from `element` and whose length comes from
/// `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}
