//! Vendored miniature property-testing harness.
//!
//! API-compatible with the subset of [proptest](https://docs.rs/proptest)
//! that this workspace's test-suite uses: [`Strategy`] with
//! [`Strategy::prop_map`], integer-range and tuple strategies,
//! [`any`]`::<T>()`, [`collection::vec`], weighted [`prop_oneof!`], the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` header)
//! and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case panics with its deterministic case
//!   number; re-running the test reproduces it exactly,
//! * **deterministic seeding** — case `i` of test `t` always sees the same
//!   inputs (derived from `(t, i)` via SplitMix64), so CI failures reproduce
//!   locally without a persistence file,
//! * assertions panic instead of returning `Err`, which for plain test
//!   bodies is observationally identical.

pub mod strategy;

pub mod collection;

pub use strategy::{any, Arbitrary, BoxedStrategy, Strategy};

/// Harness configuration (subset of the real crate's fields; the extra
/// field keeps `..ProptestConfig::default()` struct-update syntax
/// meaningful at call sites written against the real API).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 48,
            max_shrink_iters: 0,
        }
    }
}

/// Deterministic per-case random source (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// The generator for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h ^ ((case as u64) << 1) ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Everything a test module needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig};
}

/// Assert a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Weighted (or unweighted) choice between strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests. Each function argument is bound by drawing from
/// its strategy once per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for __case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                    let __inputs = format!(
                        "case {__case} of {} (inputs: {:?})",
                        stringify!($name),
                        ($(&$arg,)+)
                    );
                    let __result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(payload) = __result {
                        eprintln!("proptest failure in {__inputs}");
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3i64..10, y in 0u8..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_lengths_respect_size(v in collection::vec(any::<u16>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn oneof_hits_every_arm(picks in collection::vec(prop_oneof![
            2 => (0u32..1).prop_map(|_| "a"),
            1 => (0u32..1).prop_map(|_| "b"),
        ], 64..65)) {
            // With 64 draws, both arms appear with overwhelming probability.
            prop_assert!(picks.contains(&"a"));
        }

        #[test]
        fn prop_map_transforms(x in (0i32..5).prop_map(|v| v * 10)) {
            prop_assert_eq!(x % 10, 0);
            prop_assert!(x < 50);
        }
    }

    #[test]
    fn config_cases_are_respected() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static RUNS: AtomicU32 = AtomicU32::new(0);
        proptest! {
            #![proptest_config(crate::ProptestConfig { cases: 7, ..Default::default() })]
            fn counted(_x in 0u8..2) {
                RUNS.fetch_add(1, Ordering::SeqCst);
            }
        }
        counted();
        assert_eq!(RUNS.load(Ordering::SeqCst), 7);
    }
}
