//! Property-based differential tests: arbitrary update sequences applied to
//! the paper's structures must always produce exactly the forest that the
//! recompute-from-scratch baseline produces, for every prefix of the
//! sequence, and the structural invariants of the chunked forest must hold
//! throughout.

use pdmsf_baselines::RecomputeMsf;
use pdmsf_core::{MapSeqDynamicMsf, ParDynamicMsf, SeqDynamicMsf, SparsifiedMsf};
use pdmsf_graph::{DegreeReduced, DynamicMsf, Edge, EdgeId, VertexId, Weight};
use proptest::prelude::*;

/// A compact encoding of an update sequence: weights index into a small
/// range so that ties (resolved by edge id) are actually exercised.
#[derive(Clone, Debug)]
enum Op {
    Insert { u: u8, v: u8, w: u8 },
    DeleteNth(u8),
}

fn op_strategy(n: u8) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..n, 0..n, any::<u8>()).prop_map(|(u, v, w)| Op::Insert { u, v, w }),
        2 => any::<u8>().prop_map(Op::DeleteNth),
    ]
}

/// Apply the ops to both structures, checking forests after every step.
fn run_differential<M: DynamicMsf>(n: usize, ops: &[Op], mut structure: M, validate: impl Fn(&M)) {
    let mut oracle = RecomputeMsf::new(n);
    let mut live: Vec<Edge> = Vec::new();
    let mut next_id = 0u32;
    for op in ops {
        match *op {
            Op::Insert { u, v, w } => {
                let e = Edge {
                    id: EdgeId(next_id),
                    u: VertexId(u as u32 % n as u32),
                    v: VertexId(v as u32 % n as u32),
                    weight: Weight::new(w as i64),
                };
                next_id += 1;
                live.push(e);
                let d1 = structure.insert(e);
                let d2 = oracle.insert(e);
                assert_eq!(d1, d2, "insert delta mismatch for {e:?}");
            }
            Op::DeleteNth(k) => {
                if live.is_empty() {
                    continue;
                }
                let idx = k as usize % live.len();
                let e = live.swap_remove(idx);
                let d1 = structure.delete(e.id);
                let d2 = oracle.delete(e.id);
                assert_eq!(d1, d2, "delete delta mismatch for {e:?}");
            }
        }
        assert_eq!(
            structure.forest_edges(),
            oracle.forest_edges(),
            "forest diverged from the recompute oracle"
        );
        assert_eq!(structure.forest_weight(), oracle.forest_weight());
        validate(&structure);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// The sequential structure (with a tiny chunk parameter, to maximise
    /// chunk splits/merges and short-list transitions) matches the oracle on
    /// arbitrary update sequences and never violates an internal invariant.
    #[test]
    fn seq_structure_matches_oracle(ops in proptest::collection::vec(op_strategy(10), 1..120)) {
        let structure = SeqDynamicMsf::with_chunk_parameter(10, 2);
        run_differential(10, &ops, structure, |s| s.validate());
    }

    /// Same property with the paper's default K.
    #[test]
    fn seq_structure_matches_oracle_default_k(ops in proptest::collection::vec(op_strategy(16), 1..100)) {
        let structure = SeqDynamicMsf::new(16);
        run_differential(16, &ops, structure, |s| s.validate());
    }

    /// The EREW-accounted parallel structure is exactly equivalent.
    #[test]
    fn par_structure_matches_oracle(ops in proptest::collection::vec(op_strategy(12), 1..100)) {
        let structure = ParDynamicMsf::new(12);
        run_differential(12, &ops, structure, |s| s.validate());
    }

    /// The thread-backed execution path is exactly equivalent too.
    #[test]
    fn threaded_par_structure_matches_oracle(ops in proptest::collection::vec(op_strategy(12), 1..100)) {
        let structure = ParDynamicMsf::new_threaded(12);
        run_differential(12, &ops, structure, |s| s.validate());
    }

    /// The map-backed benchmark baseline is exactly equivalent (same
    /// algorithm, different bookkeeping).
    #[test]
    fn map_store_structure_matches_oracle(ops in proptest::collection::vec(op_strategy(10), 1..100)) {
        let structure = MapSeqDynamicMsf::with_chunk_parameter(10, 3);
        run_differential(10, &ops, structure, |s| s.validate());
    }

    /// Four-way lockstep differential: identical randomized update streams
    /// through the sequential structure, the parallel structure with the
    /// threaded kernel path **off and on**, and the Kruskal-based recompute
    /// reference — asserting identical deltas, forests and MSF weight after
    /// every single operation.
    #[test]
    fn seq_par_threaded_and_kruskal_agree_in_lockstep(
        ops in proptest::collection::vec(op_strategy(14), 1..110),
    ) {
        let n = 14;
        let mut seq = SeqDynamicMsf::new(n);
        let mut par_sim = ParDynamicMsf::new(n);
        let mut par_thr = ParDynamicMsf::new_threaded(n);
        let mut oracle = RecomputeMsf::new(n);
        let mut live: Vec<Edge> = Vec::new();
        let mut next_id = 0u32;
        for op in &ops {
            let deltas = match *op {
                Op::Insert { u, v, w } => {
                    let e = Edge {
                        id: EdgeId(next_id),
                        u: VertexId(u as u32 % n as u32),
                        v: VertexId(v as u32 % n as u32),
                        weight: Weight::new(w as i64),
                    };
                    next_id += 1;
                    live.push(e);
                    [seq.insert(e), par_sim.insert(e), par_thr.insert(e), oracle.insert(e)]
                }
                Op::DeleteNth(k) => {
                    if live.is_empty() {
                        continue;
                    }
                    let idx = k as usize % live.len();
                    let e = live.swap_remove(idx);
                    [seq.delete(e.id), par_sim.delete(e.id), par_thr.delete(e.id), oracle.delete(e.id)]
                }
            };
            prop_assert_eq!(deltas[0], deltas[1], "simulated par delta diverged from seq");
            prop_assert_eq!(deltas[0], deltas[2], "threaded par delta diverged from seq");
            prop_assert_eq!(deltas[0], deltas[3], "seq delta diverged from Kruskal oracle");
            let forest = seq.forest_edges();
            prop_assert_eq!(&forest, &par_sim.forest_edges());
            prop_assert_eq!(&forest, &par_thr.forest_edges());
            prop_assert_eq!(&forest, &oracle.forest_edges());
            let weight = seq.forest_weight();
            prop_assert_eq!(weight, par_sim.forest_weight());
            prop_assert_eq!(weight, par_thr.forest_weight());
            prop_assert_eq!(weight, oracle.forest_weight());
        }
    }

    /// The degree-3 reduction wrapper preserves exactness (the inner
    /// structure only ever sees degree <= 3).
    #[test]
    fn degree_reduced_structure_matches_oracle(ops in proptest::collection::vec(op_strategy(8), 1..80)) {
        let structure = DegreeReduced::new(8, SeqDynamicMsf::with_chunk_parameter(0, 3));
        run_differential(8, &ops, structure, |_| ());
    }

    /// The sparsification wrapper preserves exactness.
    #[test]
    fn sparsified_structure_matches_oracle(ops in proptest::collection::vec(op_strategy(8), 1..80)) {
        let structure = SparsifiedMsf::with_leaves(8, 4, |n| SeqDynamicMsf::with_chunk_parameter(n, 3));
        run_differential(8, &ops, structure, |_| ());
    }

    /// PRAM accounting sanity: depth never exceeds work, processors never
    /// exceed work, and every update reports a non-zero cost.
    #[test]
    fn pram_costs_are_well_formed(ops in proptest::collection::vec(op_strategy(12), 1..60)) {
        let mut structure = ParDynamicMsf::new(12);
        let mut live: Vec<Edge> = Vec::new();
        let mut next_id = 0u32;
        for op in &ops {
            match *op {
                Op::Insert { u, v, w } => {
                    let e = Edge {
                        id: EdgeId(next_id),
                        u: VertexId(u as u32 % 12),
                        v: VertexId(v as u32 % 12),
                        weight: Weight::new(w as i64),
                    };
                    next_id += 1;
                    live.push(e);
                    structure.insert(e);
                }
                Op::DeleteNth(k) => {
                    if live.is_empty() { continue; }
                    let idx = k as usize % live.len();
                    let e = live.swap_remove(idx);
                    structure.delete(e.id);
                }
            }
            let cost = structure.last_op_cost();
            prop_assert!(cost.work >= cost.depth);
            prop_assert!(cost.work >= 1);
            prop_assert!(cost.peak_processors >= 1);
        }
    }
}
