//! The EREW PRAM dynamic MSF structure of Theorem 3.1 / 1.1.
//!
//! [`ParDynamicMsf`] is the parallel front-end: the same chunked Euler-tour
//! forest as the sequential structure, but configured with the parallel
//! chunk parameter `K = sqrt(n)` and with **EREW PRAM cost accounting**
//! (`CostModel::Erew`). Every primitive that Section 3 parallelises —
//! tournament-tree row rebuilds (Lemma 3.1), per-entry LSDS trees `S_j`
//! (Lemma 3.2), parallel `γ`/MWR search (Lemma 3.3), the `getEdge`
//! processor-assignment procedure — is charged with its parallel depth,
//! processor count and work, so the meter reports exactly the three
//! quantities Theorem 3.1 bounds: `O(log n)` depth, `O(sqrt n)` processors,
//! `O(sqrt n log n)` work per update.
//!
//! On top of the accounting, the structure has a real **execution mode**
//! ([`ExecMode`]): with [`ExecMode::Threads`] (see
//! [`ParDynamicMsf::new_threaded`]) the bulk kernels — the `γ`/MWR argmin
//! tournaments and the entry-wise LSDS aggregate merges — dispatch to the
//! thread-backed kernels of `pdmsf-pram` (`threaded_*`), which fan out over
//! OS threads above a size cutoff while still charging the same EREW costs.
//! All kernels reduce deterministically (leftmost-on-tie), so both execution
//! modes are **bit-for-bit identical** to [`SeqDynamicMsf`]; the test-suite
//! checks this on randomized update streams with the threaded path on and
//! off.

use crate::forest::{CostModel, ForestStats};
use crate::seq::{GenericSeqDynamicMsf, SeqDynamicMsf};
use crate::snapshot::MsfImage;
use pdmsf_graph::{DynamicMsf, Edge, EdgeId, MsfDelta, VertexId};
use pdmsf_pram::{CostMeter, CostReport, ExecMode};

/// The paper's parallel chunk parameter `K = sqrt(n)`.
pub fn default_parallel_k(n: usize) -> usize {
    (n.max(2) as f64).sqrt().ceil() as usize
}

/// Worst-case deterministic parallel dynamic MSF (Theorem 1.1) in the EREW
/// PRAM cost model, with an optional thread-backed execution path.
pub struct ParDynamicMsf {
    inner: SeqDynamicMsf,
}

impl ParDynamicMsf {
    /// A structure over `n` isolated vertices with `K = sqrt(n)`, EREW
    /// accounting and simulated (single-thread) kernel execution.
    pub fn new(n: usize) -> Self {
        Self::with_chunk_parameter(n, default_parallel_k(n))
    }

    /// Like [`ParDynamicMsf::new`], but bulk kernels execute on real OS
    /// threads ([`ExecMode::Threads`]). Results are bit-for-bit identical to
    /// the simulated mode and to [`SeqDynamicMsf`].
    pub fn new_threaded(n: usize) -> Self {
        Self::with_execution(n, default_parallel_k(n), ExecMode::Threads)
    }

    /// Explicit chunk parameter (ablation experiments).
    pub fn with_chunk_parameter(n: usize, k: usize) -> Self {
        Self::with_execution(n, k, ExecMode::Simulated)
    }

    /// Full control over chunk parameter and kernel execution mode.
    pub fn with_execution(n: usize, k: usize, exec: ExecMode) -> Self {
        ParDynamicMsf {
            inner: GenericSeqDynamicMsf::with_execution(n, k, CostModel::Erew, exec),
        }
    }

    /// The PRAM cost meter (depth / work / peak processors).
    pub fn meter(&self) -> &CostMeter {
        self.inner.meter()
    }

    /// PRAM cost of the most recent update.
    pub fn last_op_cost(&self) -> CostReport {
        self.inner.last_op_cost()
    }

    /// Structural statistics of the underlying chunked forest.
    pub fn forest_stats(&self) -> ForestStats {
        self.inner.forest_stats()
    }

    /// The chunk parameter `K` in use.
    pub fn chunk_parameter(&self) -> usize {
        self.inner.chunk_parameter()
    }

    /// The kernel execution mode in use.
    pub fn execution_mode(&self) -> ExecMode {
        self.inner.execution_mode()
    }

    /// Validate every internal invariant (test-only helper).
    pub fn validate(&self) {
        self.inner.validate()
    }

    /// Read access to the underlying chunked forest (diagnostics and the
    /// SoA-vs-AoS reference-walk tests).
    pub fn forest(&self) -> &crate::forest::ChunkedEulerForest {
        self.inner.forest()
    }

    /// Flatten the structure into its serializable [`MsfImage`]
    /// (checkpointing; see [`crate::snapshot`]).
    pub fn to_image(&self) -> MsfImage {
        self.inner.to_image()
    }

    /// Rebuild a structure from [`ParDynamicMsf::to_image`]. The image is
    /// validated and the link-cut tree reconstructed; future behaviour is
    /// identical to the exported original.
    pub fn from_image(image: &MsfImage) -> Result<Self, String> {
        Ok(ParDynamicMsf {
            inner: SeqDynamicMsf::from_image(image)?,
        })
    }
}

impl DynamicMsf for ParDynamicMsf {
    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    fn add_vertex(&mut self) -> VertexId {
        self.inner.add_vertex()
    }

    fn insert(&mut self, e: Edge) -> MsfDelta {
        self.inner.insert(e)
    }

    fn delete(&mut self, id: EdgeId) -> MsfDelta {
        self.inner.delete(id)
    }

    fn contains_edge(&self, id: EdgeId) -> bool {
        self.inner.contains_edge(id)
    }

    fn is_forest_edge(&self, id: EdgeId) -> bool {
        self.inner.is_forest_edge(id)
    }

    fn forest_edges(&self) -> Vec<EdgeId> {
        self.inner.forest_edges()
    }

    fn forest_weight(&self) -> i128 {
        self.inner.forest_weight()
    }

    fn num_forest_edges(&self) -> usize {
        self.inner.num_forest_edges()
    }

    fn connected(&mut self, u: VertexId, v: VertexId) -> bool {
        self.inner.connected(u, v)
    }

    fn name(&self) -> &'static str {
        match self.execution_mode() {
            ExecMode::Threads => "kpr-parallel-threads",
            ExecMode::Simulated => "kpr-parallel-erew",
        }
    }
}
