//! Component-partitioned dynamic MSF: the interior-mutability seam that
//! lets **disjoint groups of batch updates apply concurrently**.
//!
//! [`ComponentPartitionedMsf`] splits the vertex space across `P`
//! independent [`ParDynamicMsf`] partitions plus a `home: Vec<u32>` map
//! (vertex → partition). The structural invariant is *component
//! containment*: every live edge has both endpoints in the same home
//! partition, so a connected component — tree edges, non-tree edges, MWR
//! candidate sets, Euler tours, LSDS rows — lives entirely inside one
//! partition and never sees another partition's state.
//!
//! That containment is what makes intra-batch update parallelism safe: two
//! updates whose endpoint partitions are disjoint touch disjoint
//! `ParDynamicMsf` instances and disjoint `home` entries, so they can run
//! on different pool workers with no synchronization at all. The batch
//! engine colors a planned batch's surviving updates into groups whose
//! partition sets are disjoint ([`UpdateGroup`]) and calls
//! [`ComponentPartitionedMsf::apply_groups`]; each group is applied
//! serially in arrival order by one pool job, through a raw-pointer
//! [`PartView`] whose every partition access is checked against the
//! group's owned set in debug builds.
//!
//! ## Cross-partition links: migration
//!
//! A link whose endpoints live in different partitions first **migrates**
//! the smaller of the two components into the other endpoint's partition
//! (the component is re-homed, its edges deleted from the source partition
//! — non-tree first, so tree-edge deletions never search for replacements
//! — and re-inserted into the destination in ascending `WKey` order, which
//! rebuilds exactly the same unique MSF with zero swap churn). "Smaller"
//! is decided by a **lockstep bidirectional BFS** from the two endpoints —
//! the first side to exhaust its component is moved (ties move the `u`
//! side) — so the migration costs `O(min(|C_u|, |C_v|))` discovery plus
//! that component's worth of structural updates, and the choice is a pure
//! function of the structure state (deterministic).
//!
//! Because a group's migrations only ever move components between
//! partitions *inside the group's own partition class* (the destination is
//! the other endpoint's home, which the conflict coloring already placed
//! in the same class), the per-partition operation sequences — and hence
//! the partitions' internal bytes — are identical whether groups run
//! concurrently, serially in group order, or fully serially in arrival
//! order. That closure argument is what the engine's lockstep and
//! WAL-byte-identity tests pin down.
//!
//! ## Adaptive rebalancing
//!
//! Migration is one-way: cutting the bridge that forced a migration leaves
//! both components homed in the destination partition, so skewed streams
//! concentrate state into ever fewer partitions and starve the conflict
//! coloring of parallelism. Per-partition live-edge **occupancy counters**
//! (maintained incrementally at every insert/delete/migration) feed
//! [`ComponentPartitionedMsf::maybe_rebalance`], which the engine calls at
//! a deterministic point *between* batches: when the fullest partition
//! exceeds twice the mean occupancy, its smallest components are re-homed
//! into the least-loaded partitions through the same ascending-`WKey`
//! migration path — so forests, outcomes and (plan-time-serialized) WAL
//! bytes stay bit-for-bit identical, and the decision, being a pure
//! function of structure state, fires identically under grouped and
//! forced-serial execution.

use crate::par::{default_parallel_k, ParDynamicMsf};
use pdmsf_graph::{DynamicMsf, Edge, EdgeId, EdgeStore, MsfDelta, VertexId, WKey};
use pdmsf_pram::kernels::SendPtr;
use pdmsf_pram::{pool, ExecMode};
use std::collections::HashSet;

/// One structure-surviving update of a planned batch, in the resolved form
/// the partitioned structure consumes: cuts carry one endpoint of the
/// doomed edge so its partition is `home[endpoint]` — no global edge →
/// partition map is needed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupUpdate {
    /// Insert this edge.
    Link(Edge),
    /// Delete edge `id`; `endpoint` is one of its current endpoints.
    Cut {
        /// The edge to delete.
        id: EdgeId,
        /// One endpoint of that edge (locates its partition via `home`).
        endpoint: VertexId,
    },
}

/// A conflict-free group of updates: applied serially in arrival order by
/// one pool job. Groups of one batch must have **disjoint** `parts` sets
/// that are closed under the union of every member update's endpoint
/// partitions (the engine's conflict coloring guarantees this; debug
/// builds re-check every access).
#[derive(Clone, Debug)]
pub struct UpdateGroup {
    /// The group's updates, in batch arrival order.
    pub updates: Vec<GroupUpdate>,
    /// The partitions this group may touch (its color class).
    pub parts: Vec<u32>,
}

/// Cumulative migration/rebalance counters of a
/// [`ComponentPartitionedMsf`]. Rebalance component moves reuse the
/// migration machinery, so they count into the migration totals too.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartitionStats {
    /// Component migrations (cross-partition links plus rebalance moves).
    pub migrations: u64,
    /// Vertices re-homed by those migrations.
    pub migrated_vertices: u64,
    /// Edges deleted + re-inserted by those migrations.
    pub migrated_edges: u64,
    /// Rebalance passes that moved at least one component
    /// (see [`ComponentPartitionedMsf::maybe_rebalance`]).
    pub rebalances: u64,
}

impl PartitionStats {
    fn add(&mut self, other: &PartitionStats) {
        self.migrations += other.migrations;
        self.migrated_vertices += other.migrated_vertices;
        self.migrated_edges += other.migrated_edges;
        self.rebalances += other.rebalances;
    }
}

/// Dynamic MSF over `P` component-containing partitions; see the module
/// docs. Observable behaviour ([`DynamicMsf`]) is identical to a single
/// [`ParDynamicMsf`] over the same update sequence.
pub struct ComponentPartitionedMsf {
    parts: Vec<ParDynamicMsf>,
    /// `home[v]` = the partition whose component structure owns vertex `v`.
    /// A vertex exists in *every* partition but is isolated (degree 0) in
    /// all but its home.
    home: Vec<u32>,
    /// `occupancy[p]` = live edges currently homed in partition `p`,
    /// maintained incrementally at every insert/delete/migration so the
    /// rebalance trigger never rescans a partition.
    occupancy: Vec<u64>,
    /// Smallest max-partition occupancy at which [`Self::maybe_rebalance`]
    /// fires — keeps tiny structures (unit tests, warm-up) from churning.
    rebalance_min: u64,
    stats: PartitionStats,
}

/// Default [`ComponentPartitionedMsf::set_rebalance_min`] floor: below this
/// many live edges in the fullest partition, skew is noise, not load.
pub const REBALANCE_MIN_OCCUPANCY: u64 = 64;

impl ComponentPartitionedMsf {
    /// A structure over `n` isolated vertices split into `num_parts`
    /// partitions, with thread-backed kernels inside each partition.
    /// Initial homes are contiguous vertex blocks (`v * P / n`), which
    /// aligns with the block-clustered workload generators.
    pub fn new_threaded(n: usize, num_parts: usize) -> Self {
        Self::with_execution(n, num_parts, default_parallel_k(n), ExecMode::Threads)
    }

    /// Full control over partition count, chunk parameter and kernel
    /// execution mode (tests and ablations).
    pub fn with_execution(n: usize, num_parts: usize, k: usize, exec: ExecMode) -> Self {
        let p = num_parts.clamp(1, n.max(1));
        let parts = (0..p)
            .map(|_| ParDynamicMsf::with_execution(n, k, exec))
            .collect();
        let home = (0..n)
            .map(|v| ((v * p / n.max(1)) as u32).min(p as u32 - 1))
            .collect();
        ComponentPartitionedMsf {
            parts,
            home,
            occupancy: vec![0; p],
            rebalance_min: REBALANCE_MIN_OCCUPANCY,
            stats: PartitionStats::default(),
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Chunk parameter K shared by every partition's structure.
    pub fn chunk_parameter(&self) -> usize {
        self.parts[0].chunk_parameter()
    }

    /// The partition currently owning vertex `v`'s component.
    pub fn home_of(&self, v: VertexId) -> u32 {
        self.home[v.index()]
    }

    /// Cumulative migration counters.
    pub fn partition_stats(&self) -> PartitionStats {
        self.stats
    }

    /// Live edges currently homed in each partition.
    pub fn occupancy(&self) -> &[u64] {
        &self.occupancy
    }

    /// Lower the occupancy floor below which [`Self::maybe_rebalance`] is a
    /// no-op (tests force small structures through the rebalance path).
    pub fn set_rebalance_min(&mut self, min: u64) {
        self.rebalance_min = min;
    }

    /// Delete edge `id` given one of its endpoints (locates the partition
    /// with one `home` load instead of scanning all partitions).
    pub fn delete_hinted(&mut self, id: EdgeId, endpoint: VertexId) -> MsfDelta {
        let p = self.home[endpoint.index()];
        debug_assert!(
            self.parts[p as usize].contains_edge(id),
            "delete_hinted: edge {} absent from partition {} (endpoint {})",
            id.0,
            p,
            endpoint.index()
        );
        self.occupancy[p as usize] -= 1;
        self.parts[p as usize].delete(id)
    }

    /// Spread load back across partitions after migrations have
    /// concentrated it: when the fullest partition holds more than twice
    /// the mean occupancy (and at least `rebalance_min` edges), re-home its
    /// smallest components — smallest edge count first, ties by lowest
    /// start vertex — into the least-loaded other partitions until it is
    /// back at the mean (the largest component always stays put). Each move
    /// reuses [`migrate`]'s ascending-`WKey` re-insertion, so the rebuilt
    /// forests are the identical unique MSF and observable behaviour is
    /// unchanged; WAL bytes are untouched because the engine serializes
    /// batches at plan time.
    ///
    /// The whole decision is a pure function of the structure state, so
    /// grouped and forced-serial executions of the same batch stream — whose
    /// states are bit-for-bit equal between batches — rebalance identically.
    /// Call it **between** batches only (outside any group). Returns `true`
    /// if anything moved.
    pub fn maybe_rebalance(&mut self) -> bool {
        let p = self.parts.len();
        if p <= 1 {
            return false;
        }
        let total: u64 = self.occupancy.iter().sum();
        let mut src = 0usize;
        for q in 1..p {
            if self.occupancy[q] > self.occupancy[src] {
                src = q;
            }
        }
        let max_occ = self.occupancy[src];
        if max_occ < self.rebalance_min || max_occ * p as u64 <= 2 * total {
            return false;
        }
        // Enumerate the overloaded partition's components by ascending
        // start vertex (full BFS each, over live-edge adjacency).
        let n = self.home.len();
        let mut seen = vec![false; n];
        let mut comps: Vec<Bfs> = Vec::new();
        for v in 0..n {
            if self.home[v] != src as u32 || seen[v] {
                continue;
            }
            if self.parts[src].forest().adj[v].is_empty() {
                continue;
            }
            let mut bfs = Bfs::new(VertexId(v as u32));
            while !bfs.step(&self.parts[src]) {}
            for w in &bfs.verts {
                seen[w.index()] = true;
            }
            comps.push(bfs);
        }
        if comps.len() <= 1 {
            // One giant component: nothing to split off (partitions hold
            // whole components by invariant).
            return false;
        }
        comps.sort_by_key(|c| (c.edges.len(), c.verts[0].0));
        let mean = total / p as u64;
        let view = self.full_view();
        let mut st = PartitionStats::default();
        let mut moved = false;
        let keep_largest = comps.len() - 1;
        for bfs in &comps[..keep_largest] {
            if view.occ(src as u32) <= mean {
                break;
            }
            let mut dst = if src == 0 { 1 } else { 0 };
            for q in 0..p {
                if q != src && view.occ(q as u32) < view.occ(dst as u32) {
                    dst = q;
                }
            }
            migrate(&view, &mut st, bfs, src as u32, dst as u32);
            moved = true;
        }
        if moved {
            st.rebalances = 1;
        }
        self.stats.add(&st);
        moved
    }

    /// Apply the surviving updates of one batch, partitioned into
    /// conflict-free groups by the engine. Groups run as concurrent pool
    /// jobs when there is more than one group and the pool is wider than
    /// one; otherwise the same code runs inline, in group order. Either
    /// way the result is bit-for-bit identical to applying the updates
    /// serially in arrival order (see the module docs).
    pub fn apply_groups(&mut self, groups: &[UpdateGroup]) {
        if groups.is_empty() {
            return;
        }
        if groups.len() <= 1 || pool::parallelism() <= 1 {
            let view = self.full_view();
            let mut st = PartitionStats::default();
            for g in groups {
                apply_group(&view, &mut st, &g.updates);
            }
            self.stats.add(&st);
            return;
        }
        let num_parts = self.parts.len();
        let num_vertices = self.home.len();
        let owned: Vec<Vec<bool>> = groups
            .iter()
            .map(|g| {
                let mut m = vec![false; num_parts];
                for &p in &g.parts {
                    m[p as usize] = true;
                }
                m
            })
            .collect();
        let mut group_stats = vec![PartitionStats::default(); groups.len()];
        let parts_ptr = SendPtr(self.parts.as_mut_ptr());
        let home_ptr = SendPtr(self.home.as_mut_ptr());
        let occ_ptr = SendPtr(self.occupancy.as_mut_ptr());
        let stats_ptr = SendPtr(group_stats.as_mut_ptr());
        let owned_ref = &owned;
        // Each group job touches only the partitions (and `home` entries of
        // vertices homed in partitions) of its own disjoint color class, and
        // writes its migration counters to its own output slot — disjoint
        // access all the way down, checked per access in debug builds.
        pool::run_shard_ranges(groups.len(), |range| {
            for gi in range {
                let view = PartView {
                    parts: parts_ptr.get(),
                    num_parts,
                    home: home_ptr.get(),
                    num_vertices,
                    occ: occ_ptr.get(),
                    owned: Some(&owned_ref[gi]),
                };
                let st = unsafe { &mut *stats_ptr.get().add(gi) };
                apply_group(&view, st, &groups[gi].updates);
            }
        });
        for st in &group_stats {
            self.stats.add(st);
        }
    }

    /// Apply updates serially in arrival order, with no grouping at all —
    /// the baseline arm of the E6 experiment and the WAL-identity tests.
    pub fn apply_serial(&mut self, updates: &[GroupUpdate]) {
        let view = self.full_view();
        let mut st = PartitionStats::default();
        apply_group(&view, &mut st, updates);
        self.stats.add(&st);
    }

    /// Validate every partition's internal invariants plus the component
    /// containment invariant: every live edge joins two vertices homed in
    /// the partition holding it, and a vertex is isolated in every
    /// partition except its home. Test-only helper, `O(P·n + m)`.
    pub fn validate(&self) {
        for part in &self.parts {
            part.validate();
        }
        // The incremental occupancy counters must agree with a from-scratch
        // live-edge count of every partition.
        for (pi, part) in self.parts.iter().enumerate() {
            let live: usize = (0..self.home.len())
                .map(|v| part.forest().adj[v].len())
                .sum::<usize>()
                / 2;
            assert_eq!(
                self.occupancy[pi], live as u64,
                "occupancy counter of partition {pi} drifted"
            );
        }
        for v in 0..self.home.len() {
            let h = self.home[v];
            assert!((h as usize) < self.parts.len(), "home out of range");
            for (pi, part) in self.parts.iter().enumerate() {
                let adj = &part.forest().adj[v];
                if pi as u32 == h {
                    for &handle in adj {
                        let e = part.forest().edges.get(handle).edge;
                        let o = e.other(VertexId(v as u32));
                        assert_eq!(
                            self.home[o.index()],
                            h,
                            "edge {} crosses partitions ({} vs {})",
                            e.id.0,
                            h,
                            self.home[o.index()]
                        );
                    }
                } else {
                    assert!(
                        adj.is_empty(),
                        "vertex {v} has edges in partition {pi} but is homed in {h}"
                    );
                }
            }
        }
    }

    fn full_view(&mut self) -> PartView<'static> {
        PartView {
            parts: self.parts.as_mut_ptr(),
            num_parts: self.parts.len(),
            home: self.home.as_mut_ptr(),
            num_vertices: self.home.len(),
            occ: self.occupancy.as_mut_ptr(),
            owned: None,
        }
    }
}

impl DynamicMsf for ComponentPartitionedMsf {
    fn num_vertices(&self) -> usize {
        self.home.len()
    }

    fn add_vertex(&mut self) -> VertexId {
        // The vertex must exist in every partition (any of them may host
        // its component later); it starts isolated, homed in the last
        // partition.
        let mut id = VertexId(0);
        for part in &mut self.parts {
            id = part.add_vertex();
        }
        self.home.push(self.parts.len() as u32 - 1);
        id
    }

    fn insert(&mut self, e: Edge) -> MsfDelta {
        let view = self.full_view();
        let mut st = PartitionStats::default();
        let delta = view_link(&view, &mut st, e);
        self.stats.add(&st);
        delta
    }

    fn delete(&mut self, id: EdgeId) -> MsfDelta {
        // Unhinted path (trait callers only — the engine always hints):
        // scan for the owning partition.
        for p in 0..self.parts.len() {
            if self.parts[p].contains_edge(id) {
                self.occupancy[p] -= 1;
                return self.parts[p].delete(id);
            }
        }
        panic!("delete of unknown edge {}", id.0);
    }

    fn contains_edge(&self, id: EdgeId) -> bool {
        self.parts.iter().any(|p| p.contains_edge(id))
    }

    fn is_forest_edge(&self, id: EdgeId) -> bool {
        self.parts.iter().any(|p| p.is_forest_edge(id))
    }

    fn forest_edges(&self) -> Vec<EdgeId> {
        let mut all: Vec<EdgeId> = self.parts.iter().flat_map(|p| p.forest_edges()).collect();
        all.sort_unstable();
        all
    }

    fn forest_weight(&self) -> i128 {
        self.parts.iter().map(|p| p.forest_weight()).sum()
    }

    fn num_forest_edges(&self) -> usize {
        self.parts.iter().map(|p| p.num_forest_edges()).sum()
    }

    fn connected(&mut self, u: VertexId, v: VertexId) -> bool {
        // Components never span partitions, so different homes means
        // disconnected without touching any structure.
        let (pu, pv) = (self.home[u.index()], self.home[v.index()]);
        pu == pv && self.parts[pu as usize].connected(u, v)
    }

    fn name(&self) -> &'static str {
        "kpr-component-partitioned"
    }
}

// ---------------------------------------------------------------------------
// PartView: the disjoint-access seam
// ---------------------------------------------------------------------------

/// Raw-pointer view over the partition array and the `home` map, scoped to
/// one group's owned partition set (`owned: None` = the serial path, which
/// owns everything). Every partition access and every `home` write goes
/// through an accessor that debug-asserts ownership, so a conflict-coloring
/// bug surfaces as an assertion in debug builds instead of a data race.
struct PartView<'a> {
    parts: *mut ParDynamicMsf,
    num_parts: usize,
    home: *mut u32,
    num_vertices: usize,
    /// Per-partition live-edge counters; an entry is only touched together
    /// with its partition, so group disjointness covers it too.
    occ: *mut u64,
    owned: Option<&'a [bool]>,
}

impl PartView<'_> {
    #[inline]
    fn check_owned(&self, p: u32) {
        debug_assert!((p as usize) < self.num_parts, "partition out of range");
        if let Some(owned) = self.owned {
            debug_assert!(
                owned[p as usize],
                "group touched partition {p} outside its color class"
            );
        }
    }

    /// Mutable access to partition `p`.
    ///
    /// Safety: callers of the same batch hold disjoint `owned` sets, so no
    /// two live `&mut` references alias (the engine's conflict coloring is
    /// the proof obligation; `check_owned` is the debug-build witness).
    #[inline]
    #[allow(clippy::mut_from_ref)]
    fn part(&self, p: u32) -> &mut ParDynamicMsf {
        self.check_owned(p);
        unsafe { &mut *self.parts.add(p as usize) }
    }

    #[inline]
    fn part_ref(&self, p: u32) -> &ParDynamicMsf {
        self.check_owned(p);
        unsafe { &*self.parts.add(p as usize) }
    }

    #[inline]
    fn home(&self, v: VertexId) -> u32 {
        debug_assert!(v.index() < self.num_vertices);
        unsafe { *self.home.add(v.index()) }
    }

    #[inline]
    fn set_home(&self, v: VertexId, p: u32) {
        self.check_owned(self.home(v));
        self.check_owned(p);
        unsafe { *self.home.add(v.index()) = p }
    }

    #[inline]
    fn occ(&self, p: u32) -> u64 {
        self.check_owned(p);
        unsafe { *self.occ.add(p as usize) }
    }

    #[inline]
    fn occ_add(&self, p: u32, k: u64) {
        self.check_owned(p);
        unsafe { *self.occ.add(p as usize) += k }
    }

    #[inline]
    fn occ_sub(&self, p: u32, k: u64) {
        self.check_owned(p);
        unsafe { *self.occ.add(p as usize) -= k }
    }
}

fn apply_group(view: &PartView, st: &mut PartitionStats, updates: &[GroupUpdate]) {
    for update in updates {
        match *update {
            GroupUpdate::Link(e) => {
                view_link(view, st, e);
            }
            GroupUpdate::Cut { id, endpoint } => {
                let p = view.home(endpoint);
                view.part(p).delete(id);
                view.occ_sub(p, 1);
            }
        }
    }
}

fn view_link(view: &PartView, st: &mut PartitionStats, e: Edge) -> MsfDelta {
    let (pu, pv) = (view.home(e.u), view.home(e.v));
    let p = if pu == pv {
        pu
    } else {
        unify(view, st, e.u, e.v)
    };
    view.occ_add(p, 1);
    view.part(p).insert(e)
}

/// Bring the components of `u` and `v` into one partition by migrating the
/// smaller of the two, and return that common partition. Pre: their homes
/// differ.
fn unify(view: &PartView, st: &mut PartitionStats, u: VertexId, v: VertexId) -> u32 {
    let (pu, pv) = (view.home(u), view.home(v));
    debug_assert_ne!(pu, pv);
    let mut a = Bfs::new(u);
    let mut b = Bfs::new(v);
    // Lockstep expansion, one vertex per side per round, `u` side first:
    // the first side to exhaust its component is the smaller (ties move
    // the `u` side) — found in O(min(|C_u|, |C_v|)) adjacency work.
    loop {
        if a.step(view.part_ref(pu)) {
            migrate(view, st, &a, pu, pv);
            return pv;
        }
        if b.step(view.part_ref(pv)) {
            migrate(view, st, &b, pv, pu);
            return pu;
        }
    }
}

/// Incremental BFS over one partition's live-edge adjacency (a component's
/// tree *and* non-tree edges — non-tree edges never leave a component, so
/// reachability over all live edges equals forest reachability).
struct Bfs {
    /// Discovered vertices, in discovery order; `head` indexes the next
    /// one to expand.
    verts: Vec<VertexId>,
    head: usize,
    seen_verts: HashSet<u32>,
    /// Discovered edge records, deduplicated.
    edges: Vec<Edge>,
    seen_edges: HashSet<u32>,
}

impl Bfs {
    fn new(start: VertexId) -> Bfs {
        let mut seen_verts = HashSet::new();
        seen_verts.insert(start.0);
        Bfs {
            verts: vec![start],
            head: 0,
            seen_verts,
            edges: Vec::new(),
            seen_edges: HashSet::new(),
        }
    }

    /// Expand one vertex; returns `true` when the component is fully
    /// enumerated (no vertex left to expand).
    fn step(&mut self, part: &ParDynamicMsf) -> bool {
        if self.head == self.verts.len() {
            return true;
        }
        let w = self.verts[self.head];
        self.head += 1;
        let forest = part.forest();
        for &handle in &forest.adj[w.index()] {
            let e = forest.edges.get(handle).edge;
            if self.seen_edges.insert(e.id.0) {
                self.edges.push(e);
            }
            let o = e.other(w);
            if self.seen_verts.insert(o.0) {
                self.verts.push(o);
            }
        }
        false
    }
}

/// Move the fully-enumerated component `bfs` from partition `src` to
/// partition `dst`: delete its edges from `src` (non-tree first, so no
/// tree-edge deletion ever runs a replacement search), re-home its
/// vertices, and re-insert the edges into `dst` in ascending `WKey` order
/// (Kruskal order — rebuilds the identical unique MSF with no swaps).
fn migrate(view: &PartView, st: &mut PartitionStats, bfs: &Bfs, src: u32, dst: u32) {
    debug_assert_ne!(src, dst);
    let src_part = view.part(src);
    let mut non_tree: Vec<Edge> = Vec::new();
    let mut tree: Vec<Edge> = Vec::new();
    for &e in &bfs.edges {
        if src_part.forest().is_tree_edge(e.id) {
            tree.push(e);
        } else {
            non_tree.push(e);
        }
    }
    non_tree.sort_unstable_by_key(|e| e.id);
    tree.sort_unstable_by_key(|e| e.id);
    for e in &non_tree {
        src_part.delete(e.id);
    }
    for e in &tree {
        src_part.delete(e.id);
    }
    for &w in &bfs.verts {
        view.set_home(w, dst);
    }
    let mut all = non_tree;
    all.append(&mut tree);
    all.sort_unstable_by_key(|e| WKey::new(e.weight, e.id));
    let dst_part = view.part(dst);
    for &e in &all {
        dst_part.insert(e);
    }
    view.occ_sub(src, all.len() as u64);
    view.occ_add(dst, all.len() as u64);
    st.migrations += 1;
    st.migrated_vertices += bfs.verts.len() as u64;
    st.migrated_edges += all.len() as u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdmsf_graph::Weight;

    fn edge(id: u32, u: u32, v: u32, w: i64) -> Edge {
        Edge {
            id: EdgeId(id),
            u: VertexId(u),
            v: VertexId(v),
            weight: Weight::new(w),
        }
    }

    /// Deterministic xorshift for the differential tests.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    #[test]
    fn cross_partition_links_migrate_and_match_reference() {
        let n = 24;
        let mut part = ComponentPartitionedMsf::with_execution(n, 4, 5, ExecMode::Simulated);
        let mut reference = ParDynamicMsf::with_chunk_parameter(n, 5);
        let mut rng = Rng(0x1234_5678);
        let mut live: Vec<Edge> = Vec::new();
        let mut next_id = 0u32;
        for _ in 0..300 {
            if live.is_empty() || rng.below(3) < 2 {
                let u = rng.below(n as u64) as u32;
                let mut v = rng.below(n as u64) as u32;
                if v == u {
                    v = (v + 1) % n as u32;
                }
                let e = edge(next_id, u, v, rng.below(100) as i64);
                next_id += 1;
                live.push(e);
                assert_eq!(part.insert(e), reference.insert(e));
            } else {
                let k = rng.below(live.len() as u64) as usize;
                let e = live.swap_remove(k);
                assert_eq!(part.delete_hinted(e.id, e.u), reference.delete(e.id));
            }
        }
        assert!(part.partition_stats().migrations > 0);
        assert_eq!(part.forest_edges(), reference.forest_edges());
        assert_eq!(part.forest_weight(), reference.forest_weight());
        assert_eq!(part.num_forest_edges(), reference.num_forest_edges());
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                assert_eq!(
                    part.connected(VertexId(u), VertexId(v)),
                    reference.connected(VertexId(u), VertexId(v)),
                    "connectivity of ({u}, {v})"
                );
            }
        }
        part.validate();
    }

    #[test]
    fn grouped_apply_matches_serial_apply() {
        // Two independent vertex blocks (partitions 0 and 1 of a 2-way
        // split over 16 vertices) plus one block that merges partitions 2
        // and 3 via a cross-partition link.
        let n = 16;
        let build = || ComponentPartitionedMsf::with_execution(n, 4, 4, ExecMode::Simulated);
        let g0 = vec![
            GroupUpdate::Link(edge(0, 0, 1, 5)),
            GroupUpdate::Link(edge(1, 1, 2, 3)),
            GroupUpdate::Cut {
                id: EdgeId(0),
                endpoint: VertexId(0),
            },
        ];
        let g1 = vec![
            GroupUpdate::Link(edge(2, 4, 5, 9)),
            GroupUpdate::Link(edge(3, 5, 6, 1)),
        ];
        let g2 = vec![
            GroupUpdate::Link(edge(4, 8, 9, 2)),
            // Crosses partitions 2 (vertices 8..12) and 3 (12..16).
            GroupUpdate::Link(edge(5, 9, 13, 4)),
            GroupUpdate::Link(edge(6, 13, 14, 6)),
        ];
        let groups = vec![
            UpdateGroup {
                updates: g0.clone(),
                parts: vec![0],
            },
            UpdateGroup {
                updates: g1.clone(),
                parts: vec![1],
            },
            UpdateGroup {
                updates: g2.clone(),
                parts: vec![2, 3],
            },
        ];
        let mut grouped = build();
        grouped.apply_groups(&groups);
        let mut serial = build();
        // Interleave the groups the way an arrival-order batch would.
        let arrival: Vec<GroupUpdate> =
            vec![g0[0], g1[0], g2[0], g0[1], g1[1], g2[1], g0[2], g2[2]];
        serial.apply_serial(&arrival);
        assert_eq!(grouped.forest_edges(), serial.forest_edges());
        assert_eq!(grouped.forest_weight(), serial.forest_weight());
        for v in 0..n {
            assert_eq!(
                grouped.home_of(VertexId(v as u32)),
                serial.home_of(VertexId(v as u32)),
                "home of {v}"
            );
        }
        assert_eq!(grouped.partition_stats(), serial.partition_stats());
        grouped.validate();
        serial.validate();
    }

    #[test]
    fn add_vertex_lands_in_every_partition() {
        let mut part = ComponentPartitionedMsf::with_execution(4, 2, 2, ExecMode::Simulated);
        let v = part.add_vertex();
        assert_eq!(v, VertexId(4));
        assert_eq!(part.num_vertices(), 5);
        // The new vertex can immediately participate in links that force a
        // migration into its home partition.
        part.insert(edge(0, 0, 4, 7));
        part.validate();
        assert!(part.connected(VertexId(0), VertexId(4)));
    }

    #[test]
    fn rebalance_spreads_concentrated_components() {
        // Four 8-vertex blocks, one chain component per block, then pile
        // every chain into partition 0 via bridge links that are cut right
        // after (migration is one-way, so the chains stay where the bridge
        // dragged them). Linking `(8b, 0)` moves the `u` side — block `b`'s
        // chain — into partition 0 on the size tie.
        let n = 32;
        let mut part = ComponentPartitionedMsf::with_execution(n, 4, 4, ExecMode::Simulated);
        let mut id = 0u32;
        for b in 0..4u32 {
            for i in 0..7 {
                part.insert(edge(id, 8 * b + i, 8 * b + i + 1, (id + 1) as i64));
                id += 1;
            }
        }
        for b in 1..4u32 {
            let bridge = id;
            part.insert(edge(bridge, 8 * b, 0, 1));
            id += 1;
            part.delete_hinted(EdgeId(bridge), VertexId(0));
        }
        assert_eq!(part.occupancy(), &[28, 0, 0, 0]);
        part.validate();

        // Floor above current load: trigger refuses.
        part.set_rebalance_min(100);
        assert!(!part.maybe_rebalance());

        part.set_rebalance_min(1);
        assert!(part.maybe_rebalance());
        // Smallest-first moves into least-loaded partitions: 28 edges
        // spread back to exactly 7 per partition, largest component stays.
        assert_eq!(part.occupancy(), &[7, 7, 7, 7]);
        let st = part.partition_stats();
        assert_eq!(st.rebalances, 1);
        part.validate();
        // All four chains still intact and mutually disconnected.
        for b in 0..4u32 {
            assert!(part.connected(VertexId(8 * b), VertexId(8 * b + 7)));
        }
        assert!(!part.connected(VertexId(0), VertexId(8)));
        assert_eq!(part.num_forest_edges(), 28);

        // Already balanced: a second pass is a no-op.
        assert!(!part.maybe_rebalance());
        assert_eq!(part.partition_stats().rebalances, 1);
    }

    #[test]
    fn rebalance_keeps_a_single_giant_component_in_place() {
        let n = 16;
        let mut part = ComponentPartitionedMsf::with_execution(n, 4, 4, ExecMode::Simulated);
        part.set_rebalance_min(1);
        // One chain spanning every vertex: everything migrates into one
        // partition, but a lone component cannot be split across
        // partitions, so rebalance must decline.
        for i in 0..15u32 {
            part.insert(edge(i, i, i + 1, 1));
        }
        let homes: Vec<u32> = (0..n as u32).map(|v| part.home_of(VertexId(v))).collect();
        assert!(!part.maybe_rebalance());
        let after: Vec<u32> = (0..n as u32).map(|v| part.home_of(VertexId(v))).collect();
        assert_eq!(homes, after);
        assert_eq!(part.partition_stats().rebalances, 0);
        part.validate();
    }

    #[test]
    fn migration_moves_the_smaller_component() {
        let n = 12;
        let mut part = ComponentPartitionedMsf::with_execution(n, 2, 4, ExecMode::Simulated);
        // Big component in partition 0 (vertices 0..6), small one in
        // partition 1 (vertices 6..12).
        for (i, (u, v)) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)].iter().enumerate() {
            part.insert(edge(i as u32, *u, *v, 1));
        }
        part.insert(edge(5, 6, 7, 1));
        // Linking the two components must move the 2-vertex side into
        // partition 0, not the 6-vertex side into partition 1.
        part.insert(edge(6, 0, 6, 1));
        assert_eq!(part.home_of(VertexId(6)), 0);
        assert_eq!(part.home_of(VertexId(7)), 0);
        let st = part.partition_stats();
        assert_eq!(st.migrations, 1);
        assert_eq!(st.migrated_vertices, 2);
        assert_eq!(st.migrated_edges, 1);
        part.validate();
    }
}
