//! The sequential dynamic MSF structure of Theorem 1.2.
//!
//! [`SeqDynamicMsf`] combines the chunked Euler-tour forest
//! ([`crate::forest::ChunkedEulerForest`]) with a Sleator–Tarjan link-cut
//! tree (for "heaviest edge on the `u`–`v` path" queries on insertions) and
//! the usual forest bookkeeping. With the paper's chunk parameter
//! `K = Θ(sqrt(n log n))` every update costs `O(J log J + K + log n) =
//! O(sqrt(n log n))` worst-case time on sparse graphs.
//!
//! The structure is generic over the edge bookkeeping store
//! ([`pdmsf_graph::arena::EdgeStore`]): [`SeqDynamicMsf`] is the production
//! instantiation over the flat slot arena, [`MapSeqDynamicMsf`] the
//! `HashMap`-backed instantiation kept as the benchmark baseline (see
//! `BENCH_update_time.json`). Tree-edge membership needs no map of its own —
//! it is a field of the per-edge record.

use crate::forest::{ArenaEdgeStore, ChunkedEulerForest, CostModel, EdgeRec, ForestStats};
use crate::snapshot::MsfImage;
use pdmsf_dyntree::LinkCutForest;
use pdmsf_graph::arena::EdgeStore;
use pdmsf_graph::{DynamicMsf, Edge, EdgeId, HashEdgeStore, MsfDelta, VertexId, WKey};
use pdmsf_pram::kernels::log2_ceil;
use pdmsf_pram::{CostMeter, CostReport, ExecMode};

/// The paper's default sequential chunk parameter `K = sqrt(n log n)`,
/// clamped to a small minimum so tiny graphs stay well-formed.
pub fn default_sequential_k(n: usize) -> usize {
    let n = n.max(2) as f64;
    (n * n.log2()).sqrt().ceil() as usize
}

/// Sequential worst-case dynamic minimum spanning forest (Theorem 1.2),
/// generic over the edge bookkeeping store.
///
/// Use the [`SeqDynamicMsf`] alias unless you specifically want the
/// map-backed baseline ([`MapSeqDynamicMsf`]).
pub struct GenericSeqDynamicMsf<S: EdgeStore<EdgeRec>> {
    forest: ChunkedEulerForest<S>,
    lct: LinkCutForest,
    num_tree_edges: usize,
    forest_weight: i128,
    last_op: CostReport,
}

/// The production instantiation: flat slot-arena bookkeeping.
pub type SeqDynamicMsf = GenericSeqDynamicMsf<ArenaEdgeStore>;

/// The map-backed instantiation, kept for benchmark comparison: identical
/// algorithm, but every edge lookup goes through a `HashMap`.
pub type MapSeqDynamicMsf = GenericSeqDynamicMsf<HashEdgeStore<EdgeRec>>;

impl<S: EdgeStore<EdgeRec>> GenericSeqDynamicMsf<S> {
    /// A structure over `n` isolated vertices with the default chunk
    /// parameter `K = sqrt(n log n)` and sequential cost accounting.
    pub fn new(n: usize) -> Self {
        Self::with_parameters(n, default_sequential_k(n), CostModel::Sequential)
    }

    /// A structure with an explicit chunk parameter (used by the `K`
    /// ablation experiment E8).
    pub fn with_chunk_parameter(n: usize, k: usize) -> Self {
        Self::with_parameters(n, k, CostModel::Sequential)
    }

    /// Full control over chunk parameter and cost model (the parallel
    /// front-end uses `CostModel::Erew`).
    pub fn with_parameters(n: usize, k: usize, model: CostModel) -> Self {
        Self::with_execution(n, k, model, ExecMode::Simulated)
    }

    /// Full control, including the kernel execution mode (the threaded
    /// parallel front-end passes [`ExecMode::Threads`]).
    pub fn with_execution(n: usize, k: usize, model: CostModel, exec: ExecMode) -> Self {
        GenericSeqDynamicMsf {
            forest: ChunkedEulerForest::with_execution(n, k, model, exec),
            lct: LinkCutForest::new(n),
            num_tree_edges: 0,
            forest_weight: 0,
            last_op: CostReport::default(),
        }
    }

    /// The cost meter accumulating per-update depth / work / processors.
    pub fn meter(&self) -> &CostMeter {
        &self.forest.meter
    }

    /// Cost of the most recent `insert` / `delete`.
    pub fn last_op_cost(&self) -> CostReport {
        self.last_op
    }

    /// Structural statistics of the underlying chunked forest.
    pub fn forest_stats(&self) -> ForestStats {
        self.forest.stats()
    }

    /// The chunk parameter `K` in use.
    pub fn chunk_parameter(&self) -> usize {
        self.forest.chunk_parameter()
    }

    /// The kernel execution mode in use.
    pub fn execution_mode(&self) -> ExecMode {
        self.forest.execution_mode()
    }

    /// Access to the underlying chunked Euler-tour forest (read-only).
    pub fn forest(&self) -> &ChunkedEulerForest<S> {
        &self.forest
    }

    /// Validate every internal invariant (test-only helper, `O(n·m)`).
    pub fn validate(&self) {
        let edges = self.forest.tree_edges();
        assert_eq!(edges.len(), self.num_tree_edges, "tree-edge count drifted");
        self.forest.validate(&edges);
    }

    fn charge_lct(&mut self) {
        let n = self.forest.num_vertices().max(2);
        let d = log2_ceil(n) + 1;
        self.forest.charge(d, d, 1);
    }

    fn add_forest_edge(&mut self, e: Edge) {
        self.lct.link(e.u, e.v, e.id, WKey::new(e.weight, e.id));
        self.charge_lct();
        self.forest.link_tree_edge(e);
        self.num_tree_edges += 1;
        self.forest_weight += e.weight.as_summable();
    }

    /// Remove `e` from the link-cut tree and the weight/count bookkeeping
    /// (the Euler-tour cut is the caller's next step).
    fn remove_forest_edge(&mut self, e: Edge) {
        self.lct.cut(e.id);
        self.charge_lct();
        self.num_tree_edges -= 1;
        self.forest_weight -= e.weight.as_summable();
    }

    /// Assemble a structure from restored parts (the checkpoint/restore
    /// path in [`crate::snapshot`]).
    pub(crate) fn from_restored_parts(
        forest: ChunkedEulerForest<S>,
        lct: LinkCutForest,
        num_tree_edges: usize,
        forest_weight: i128,
        last_op: CostReport,
    ) -> Self {
        GenericSeqDynamicMsf {
            forest,
            lct,
            num_tree_edges,
            forest_weight,
            last_op,
        }
    }
}

impl SeqDynamicMsf {
    /// Flatten the structure into its serializable [`MsfImage`] (bank dumps
    /// plus bookkeeping scalars; see [`crate::snapshot`] for what is
    /// rebuilt instead of stored).
    pub fn to_image(&self) -> MsfImage {
        crate::snapshot::forest_to_image(&self.forest, self.num_tree_edges, self.forest_weight)
    }

    /// Rebuild a structure from [`SeqDynamicMsf::to_image`], validating the
    /// image and reconstructing the link-cut tree; future behaviour is
    /// identical to the exported original.
    pub fn from_image(image: &MsfImage) -> Result<Self, String> {
        crate::snapshot::seq_from_image(image)
    }
}

impl<S: EdgeStore<EdgeRec>> DynamicMsf for GenericSeqDynamicMsf<S> {
    fn num_vertices(&self) -> usize {
        self.forest.num_vertices()
    }

    fn add_vertex(&mut self) -> VertexId {
        let v = self.forest.add_vertex();
        let v2 = self.lct.add_vertex();
        debug_assert_eq!(v, v2);
        v
    }

    fn insert(&mut self, e: Edge) -> MsfDelta {
        self.forest.meter.begin_op();
        self.forest.insert_graph_edge(e);
        let delta = if e.u == e.v {
            MsfDelta::NONE
        } else if !self.lct.connected(e.u, e.v) {
            self.charge_lct();
            self.add_forest_edge(e);
            MsfDelta::added(e.id)
        } else {
            self.charge_lct();
            let heaviest = self
                .lct
                .path_max(e.u, e.v)
                .expect("connected endpoints have a path");
            self.charge_lct();
            if WKey::new(e.weight, e.id) < heaviest {
                let old = self
                    .forest
                    .edge(heaviest.edge)
                    .expect("forest edge is registered");
                self.remove_forest_edge(old);
                self.forest.cut_tree_edge(old);
                self.add_forest_edge(e);
                MsfDelta::swap(e.id, heaviest.edge)
            } else {
                MsfDelta::NONE
            }
        };
        self.last_op = self.forest.meter.finish_op();
        delta
    }

    fn delete(&mut self, id: EdgeId) -> MsfDelta {
        self.forest.meter.begin_op();
        let was_tree = self.forest.is_tree_edge(id);
        let rec = self.forest.delete_graph_edge(id);
        let delta = if !was_tree {
            MsfDelta::NONE
        } else {
            self.remove_forest_edge(rec.edge);
            let (root_u, root_v) = self.forest.cut_removed_tree_edge(rec);
            match self.forest.find_mwr(root_u, root_v) {
                Some(replacement) => {
                    self.add_forest_edge(replacement);
                    MsfDelta::swap(replacement.id, id)
                }
                None => MsfDelta::removed(id),
            }
        };
        self.last_op = self.forest.meter.finish_op();
        delta
    }

    fn contains_edge(&self, id: EdgeId) -> bool {
        self.forest.has_edge(id)
    }

    fn is_forest_edge(&self, id: EdgeId) -> bool {
        self.forest.is_tree_edge(id)
    }

    fn forest_edges(&self) -> Vec<EdgeId> {
        self.forest.tree_edge_ids()
    }

    fn forest_weight(&self) -> i128 {
        self.forest_weight
    }

    fn num_forest_edges(&self) -> usize {
        self.num_tree_edges
    }

    fn connected(&mut self, u: VertexId, v: VertexId) -> bool {
        self.lct.connected(u, v)
    }

    fn name(&self) -> &'static str {
        "kpr-sequential"
    }
}
