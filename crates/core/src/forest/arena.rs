//! Structure-of-arrays storage for the chunked forest: [`ChunkArena`] (the
//! chunk banks **and** the occurrence banks) and [`RowBank`] (the
//! contiguous `CAdj` row store).
//!
//! The previous layout kept every per-chunk field — splay pointers, list
//! metadata *and* the `O(J)`-sized `base`/`agg`/`memb` vectors — inside one
//! ~100-byte `Chunk` struct, so the two dominant hot-path loops (`pull_up`
//! and entry-wise row refresh) touched a handful of `u32`s per node while
//! dragging whole cache lines of unrelated fields along, and every row was a
//! separately allocated `Vec` found behind a pointer chase. This module
//! splits that record by access pattern:
//!
//! * a **hot topology bank** (`parent` / `left` / `right` / `size`, flat
//!   `Vec<u32>`s): splay rotations, `tree_root`, rank and neighbour walks
//!   read only these four arrays, at 4 bytes per node per array;
//! * a **list-metadata bank** (`occs`, `adj_count`, `slot`, `row`, flags):
//!   consulted by surgery and rebalancing, not by tree walks;
//! * the [`RowBank`]: every `base` and `agg` row lives contiguously in one
//!   backing `Vec<WKey>` (and every `memb` row in one `Vec<bool>`), addressed
//!   by a compact slab handle that encodes `(offset, len)` as
//!   `offset = slab * stride`, `len = stride`. Entry-wise merges, argmin
//!   scans and row rebuilds become linear sweeps over dense memory, and the
//!   threaded kernels borrow the slab slices directly.
//!
//! Slabs are recycled through a free list (the frequent short-list slot
//! transitions never hit the allocator), and when the chunk-id capacity
//! (`J`, the row length) grows, [`RowBank::grow_stride`] re-lays out the
//! backing store in one pass — the same `O(slabs · J)` cost the old layout
//! paid to resize every boxed row, but as a single compacting sweep.
//!
//! Since the scheduler PR the arena also owns the **occurrence banks**: the
//! last array-of-structs holdout (`Occ { vertex, chunk, pos, vpos, arc,
//! principal, alive }`, ~24 bytes of mixed-purpose record per Euler-tour
//! occurrence) is split into flat `u32` banks (`occ_vertex` / `occ_chunk` /
//! `occ_pos` / `occ_vpos` / `occ_arc`) plus a one-byte flag bank, so the
//! occurrence reindex loops in surgery (in-chunk insert/delete shifts,
//! split/merge re-chunking) and the principal-copy scans in the MWR search
//! sweep one dense bank each instead of striding over fat records.

use pdmsf_graph::{VertexId, WKey};

/// Sentinel index shared with the rest of the forest module.
use super::NONE;

const ALIVE: u8 = 1;
const QUEUED: u8 = 2;

// ---- occurrence flag bits ----
const OCC_ALIVE: u8 = 1;
const OCC_PRINCIPAL: u8 = 2;
/// Direction bit of the occurrence's arc (`u -> v` when set); only
/// meaningful while `occ_arc` is not `NONE`.
const OCC_ARC_FWD: u8 = 4;

/// Structure-of-arrays chunk **and occurrence** storage (see module docs).
/// A chunk id indexes every chunk bank and an occurrence id every `occ_*`
/// bank; banks never shrink, freed ids are recycled via the free lists.
#[derive(Default)]
pub(crate) struct ChunkArena {
    // ---- hot bank: splay-tree topology ----
    pub(crate) parent: Vec<u32>,
    pub(crate) left: Vec<u32>,
    pub(crate) right: Vec<u32>,
    /// Number of chunks in the subtree.
    pub(crate) size: Vec<u32>,

    // ---- list-metadata bank ----
    /// Occurrence ids, in list order (the per-chunk `Vec` is reused across
    /// alloc/free cycles, so steady-state churn does not allocate).
    pub(crate) occs: Vec<Vec<u32>>,
    /// Number of graph edges adjacent to this chunk (edges incident to
    /// vertices whose principal copy lies here); `n_c = occs.len() + adj_count`.
    pub(crate) adj_count: Vec<usize>,
    /// Chunk id (`id_c` in the paper); `NONE` for single-chunk lists.
    pub(crate) slot: Vec<u32>,
    /// [`RowBank`] slab handle (`NONE` iff `slot` is `NONE`).
    pub(crate) row: Vec<u32>,
    flags: Vec<u8>,

    free_ids: Vec<u32>,

    // ---- occurrence banks (the SoA form of the former `Occ` record,
    // indexed by occurrence id) ----
    /// Vertex of the occurrence (raw [`VertexId`] index).
    pub(crate) occ_vertex: Vec<u32>,
    /// Chunk holding the occurrence.
    pub(crate) occ_chunk: Vec<u32>,
    /// Position within the chunk's `occs` list.
    pub(crate) occ_pos: Vec<u32>,
    /// Position within the forest's `vertex_occs[vertex]` list.
    pub(crate) occ_vpos: Vec<u32>,
    /// Edge-store handle of the forest arc whose *tail* this occurrence is
    /// (`NONE` = no arc). The direction travels in the `OCC_ARC_FWD` flag.
    occ_arc: Vec<u32>,
    occ_flags: Vec<u8>,
    occ_free: Vec<u32>,
}

impl ChunkArena {
    /// Number of chunk ids ever allocated (live + free).
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.parent.len()
    }

    #[inline]
    pub(crate) fn alive(&self, c: u32) -> bool {
        self.flags[c as usize] & ALIVE != 0
    }

    #[inline]
    pub(crate) fn queued(&self, c: u32) -> bool {
        self.flags[c as usize] & QUEUED != 0
    }

    #[inline]
    pub(crate) fn set_queued(&mut self, c: u32, q: bool) {
        if q {
            self.flags[c as usize] |= QUEUED;
        } else {
            self.flags[c as usize] &= !QUEUED;
        }
    }

    /// `n_c` of Invariant 1.
    #[inline]
    pub(crate) fn nc(&self, c: u32) -> usize {
        self.occs[c as usize].len() + self.adj_count[c as usize]
    }

    /// Allocate a chunk id as a detached, slotless singleton.
    pub(crate) fn alloc(&mut self) -> u32 {
        if let Some(id) = self.free_ids.pop() {
            let ci = id as usize;
            self.parent[ci] = NONE;
            self.left[ci] = NONE;
            self.right[ci] = NONE;
            self.size[ci] = 1;
            self.occs[ci].clear();
            self.adj_count[ci] = 0;
            self.slot[ci] = NONE;
            self.row[ci] = NONE;
            self.flags[ci] = ALIVE;
            id
        } else {
            self.parent.push(NONE);
            self.left.push(NONE);
            self.right.push(NONE);
            self.size.push(1);
            self.occs.push(Vec::new());
            self.adj_count.push(0);
            self.slot.push(NONE);
            self.row.push(NONE);
            self.flags.push(ALIVE);
            (self.parent.len() - 1) as u32
        }
    }

    /// Retire a chunk id. The caller must have released its slot/row first.
    pub(crate) fn free(&mut self, c: u32) {
        debug_assert_eq!(self.slot[c as usize], NONE);
        debug_assert_eq!(self.row[c as usize], NONE);
        let ci = c as usize;
        self.occs[ci].clear();
        // A stale entry may remain on the `touched` stack; `flush_rebalance`
        // skips it via the cleared flags.
        self.flags[ci] = 0;
        self.free_ids.push(c);
    }

    // ---- occurrence banks -----------------------------------------------

    /// Number of occurrence ids ever allocated (live + free).
    #[inline]
    pub(crate) fn occ_len(&self) -> usize {
        self.occ_vertex.len()
    }

    /// Allocate an occurrence of `v` as a chunkless, arcless, non-principal
    /// record at `vpos` in its vertex list.
    pub(crate) fn occ_alloc(&mut self, v: VertexId, vpos: u32) -> u32 {
        if let Some(o) = self.occ_free.pop() {
            let oi = o as usize;
            self.occ_vertex[oi] = v.0;
            self.occ_chunk[oi] = NONE;
            self.occ_pos[oi] = 0;
            self.occ_vpos[oi] = vpos;
            self.occ_arc[oi] = NONE;
            self.occ_flags[oi] = OCC_ALIVE;
            o
        } else {
            self.occ_vertex.push(v.0);
            self.occ_chunk.push(NONE);
            self.occ_pos.push(0);
            self.occ_vpos.push(vpos);
            self.occ_arc.push(NONE);
            self.occ_flags.push(OCC_ALIVE);
            (self.occ_vertex.len() - 1) as u32
        }
    }

    /// Retire an occurrence id (the forest removes it from `vertex_occs`
    /// first).
    pub(crate) fn occ_release(&mut self, o: u32) {
        self.occ_flags[o as usize] = 0;
        self.occ_free.push(o);
    }

    #[inline]
    pub(crate) fn occ_alive(&self, o: u32) -> bool {
        self.occ_flags[o as usize] & OCC_ALIVE != 0
    }

    /// Vertex of occurrence `o`.
    #[inline]
    pub(crate) fn occ_vert(&self, o: u32) -> VertexId {
        VertexId(self.occ_vertex[o as usize])
    }

    /// Whether `o` is its vertex's principal copy (cached flag; the
    /// forest's `principal` array is authoritative).
    #[inline]
    pub(crate) fn occ_principal(&self, o: u32) -> bool {
        self.occ_flags[o as usize] & OCC_PRINCIPAL != 0
    }

    #[inline]
    pub(crate) fn set_occ_principal(&mut self, o: u32, p: bool) {
        if p {
            self.occ_flags[o as usize] |= OCC_PRINCIPAL;
        } else {
            self.occ_flags[o as usize] &= !OCC_PRINCIPAL;
        }
    }

    /// The forest arc (edge-store handle, `true` = the `u -> v` direction)
    /// whose tail occurrence `o` is, if any.
    #[inline]
    pub(crate) fn occ_arc(&self, o: u32) -> Option<(u32, bool)> {
        let h = self.occ_arc[o as usize];
        (h != NONE).then(|| (h, self.occ_flags[o as usize] & OCC_ARC_FWD != 0))
    }

    #[inline]
    pub(crate) fn set_occ_arc(&mut self, o: u32, arc: Option<(u32, bool)>) {
        let oi = o as usize;
        match arc {
            Some((h, fwd)) => {
                debug_assert_ne!(h, NONE);
                self.occ_arc[oi] = h;
                if fwd {
                    self.occ_flags[oi] |= OCC_ARC_FWD;
                } else {
                    self.occ_flags[oi] &= !OCC_ARC_FWD;
                }
            }
            None => {
                self.occ_arc[oi] = NONE;
                self.occ_flags[oi] &= !OCC_ARC_FWD;
            }
        }
    }

    /// Re-stamp `occ_chunk` / `occ_pos` over chunk `c`'s occurrence list
    /// from index `from` on — the reindex after an in-chunk insert/remove
    /// or a split/merge re-chunking, as one sweep over the flat banks.
    pub(crate) fn restamp_occs(&mut self, c: u32, from: usize) {
        let ci = c as usize;
        for (p, &o) in self.occs[ci].iter().enumerate().skip(from) {
            self.occ_chunk[o as usize] = c;
            self.occ_pos[o as usize] = p as u32;
        }
    }

    // ---- checkpoint images ----------------------------------------------

    /// Flatten every bank into the serializable image. The dump is exact —
    /// free lists included, in order — so an imported arena recycles ids in
    /// the same order the original would have, keeping all future behaviour
    /// identical.
    pub(crate) fn to_image(&self) -> ChunkArenaImage {
        let mut occ_offsets = Vec::with_capacity(self.occs.len() + 1);
        let mut occ_data = Vec::new();
        occ_offsets.push(0u64);
        for list in &self.occs {
            occ_data.extend_from_slice(list);
            occ_offsets.push(occ_data.len() as u64);
        }
        ChunkArenaImage {
            parent: self.parent.clone(),
            left: self.left.clone(),
            right: self.right.clone(),
            size: self.size.clone(),
            occ_offsets,
            occ_data,
            adj_count: self.adj_count.iter().map(|&c| c as u64).collect(),
            slot: self.slot.clone(),
            row: self.row.clone(),
            flags: self.flags.clone(),
            free_ids: self.free_ids.clone(),
            occ_vertex: self.occ_vertex.clone(),
            occ_chunk: self.occ_chunk.clone(),
            occ_pos: self.occ_pos.clone(),
            occ_vpos: self.occ_vpos.clone(),
            occ_arc: self.occ_arc.clone(),
            occ_flags: self.occ_flags.clone(),
            occ_free: self.occ_free.clone(),
        }
    }

    /// Rebuild an arena from [`ChunkArena::to_image`], validating lane
    /// lengths, flag bits and free-list consistency (every free id names a
    /// dead entry, exactly once) so a corrupted image is rejected instead of
    /// deserialized into an arena that double-allocates.
    pub(crate) fn from_image(image: &ChunkArenaImage) -> Result<Self, String> {
        let n = image.parent.len();
        if [
            image.left.len(),
            image.right.len(),
            image.size.len(),
            image.adj_count.len(),
            image.slot.len(),
            image.row.len(),
            image.flags.len(),
        ]
        .iter()
        .any(|&l| l != n)
        {
            return Err("chunk arena image lanes disagree in length".to_string());
        }
        if image.occ_offsets.len() != n + 1
            || image.occ_offsets.first() != Some(&0)
            || image.occ_offsets.last().copied() != Some(image.occ_data.len() as u64)
        {
            return Err("chunk arena image occ offsets are inconsistent".to_string());
        }
        let mut occs = Vec::with_capacity(n);
        for c in 0..n {
            let lo = image.occ_offsets[c] as usize;
            let hi = image.occ_offsets[c + 1] as usize;
            if hi < lo || hi > image.occ_data.len() {
                return Err(format!("chunk arena image occ range of chunk {c} invalid"));
            }
            occs.push(image.occ_data[lo..hi].to_vec());
        }
        check_free_list("chunk", &image.free_ids, &image.flags, ALIVE)?;
        let m = image.occ_vertex.len();
        if [
            image.occ_chunk.len(),
            image.occ_pos.len(),
            image.occ_vpos.len(),
            image.occ_arc.len(),
            image.occ_flags.len(),
        ]
        .iter()
        .any(|&l| l != m)
        {
            return Err("chunk arena image occ lanes disagree in length".to_string());
        }
        check_free_list("occurrence", &image.occ_free, &image.occ_flags, OCC_ALIVE)?;
        Ok(ChunkArena {
            parent: image.parent.clone(),
            left: image.left.clone(),
            right: image.right.clone(),
            size: image.size.clone(),
            occs,
            adj_count: image.adj_count.iter().map(|&c| c as usize).collect(),
            slot: image.slot.clone(),
            row: image.row.clone(),
            flags: image.flags.clone(),
            free_ids: image.free_ids.clone(),
            occ_vertex: image.occ_vertex.clone(),
            occ_chunk: image.occ_chunk.clone(),
            occ_pos: image.occ_pos.clone(),
            occ_vpos: image.occ_vpos.clone(),
            occ_arc: image.occ_arc.clone(),
            occ_flags: image.occ_flags.clone(),
            occ_free: image.occ_free.clone(),
        })
    }
}

/// Free-list sanity for an image bank: every listed id is in range, dead
/// (its `alive_bit` is clear) and listed exactly once, and every dead id is
/// listed — the exact condition under which replaying allocations on the
/// imported arena behaves like the original.
fn check_free_list(what: &str, free: &[u32], flags: &[u8], alive_bit: u8) -> Result<(), String> {
    let dead = flags.iter().filter(|&&f| f & alive_bit == 0).count();
    if free.len() != dead {
        return Err(format!(
            "{what} free list length {} does not match {dead} dead entries",
            free.len()
        ));
    }
    let mut seen = vec![false; flags.len()];
    for &id in free {
        match flags.get(id as usize) {
            Some(&f) if f & alive_bit == 0 && !seen[id as usize] => seen[id as usize] = true,
            _ => {
                return Err(format!(
                    "{what} free list names a live or repeated entry {id}"
                ))
            }
        }
    }
    Ok(())
}

/// The flat, serializable image of a [`ChunkArena`]: every bank cloned
/// verbatim, with the ragged `occs` lists flattened into an offsets + data
/// pair. Public so the persist layer can write it section-by-section.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChunkArenaImage {
    /// Splay parent per chunk id.
    pub parent: Vec<u32>,
    /// Splay left child per chunk id.
    pub left: Vec<u32>,
    /// Splay right child per chunk id.
    pub right: Vec<u32>,
    /// Splay subtree size per chunk id.
    pub size: Vec<u32>,
    /// Per-chunk ranges into `occ_data` (`len + 1` entries, starts at 0).
    pub occ_offsets: Vec<u64>,
    /// Concatenated per-chunk occurrence lists.
    pub occ_data: Vec<u32>,
    /// Adjacent-edge count per chunk id.
    pub adj_count: Vec<u64>,
    /// Chunk slot (`id_c`) per chunk id.
    pub slot: Vec<u32>,
    /// Row-bank slab handle per chunk id.
    pub row: Vec<u32>,
    /// Chunk flag byte (`ALIVE` / `QUEUED` bits).
    pub flags: Vec<u8>,
    /// Retired chunk ids, in recycling order.
    pub free_ids: Vec<u32>,
    /// Occurrence vertex bank.
    pub occ_vertex: Vec<u32>,
    /// Occurrence chunk bank.
    pub occ_chunk: Vec<u32>,
    /// Occurrence in-chunk position bank.
    pub occ_pos: Vec<u32>,
    /// Occurrence vertex-list position bank.
    pub occ_vpos: Vec<u32>,
    /// Occurrence arc-handle bank.
    pub occ_arc: Vec<u32>,
    /// Occurrence flag bank (`OCC_ALIVE` / `OCC_PRINCIPAL` / `OCC_ARC_FWD`).
    pub occ_flags: Vec<u8>,
    /// Retired occurrence ids, in recycling order.
    pub occ_free: Vec<u32>,
}

/// Contiguous storage for the per-chunk `CAdj` rows (see module docs).
///
/// Every slab holds one chunk's `base` row, `agg` row (both `stride`
/// [`WKey`]s, laid out back-to-back in `keys`) and `memb` row (`stride`
/// bools in `memb`). A slab handle is a dense `u32`; offsets are
/// `slab * 2 * stride` into `keys` and `slab * stride` into `memb`.
#[derive(Default)]
pub(crate) struct RowBank {
    stride: usize,
    keys: Vec<WKey>,
    memb: Vec<bool>,
    free: Vec<u32>,
    slabs: usize,
}

impl RowBank {
    /// Current row length (`J` upper bound, the forest's `slot_cap`).
    #[inline]
    pub(crate) fn stride(&self) -> usize {
        self.stride
    }

    /// Number of slabs currently allocated (live + free).
    #[inline]
    pub(crate) fn num_slabs(&self) -> usize {
        self.slabs
    }

    /// Number of retired slabs awaiting reuse.
    #[inline]
    pub(crate) fn num_free(&self) -> usize {
        self.free.len()
    }

    #[inline]
    fn key_off(&self, slab: u32) -> usize {
        slab as usize * 2 * self.stride
    }

    #[inline]
    fn memb_off(&self, slab: u32) -> usize {
        slab as usize * self.stride
    }

    /// Allocate a slab with all-`∞` rows and all-`false` membership,
    /// recycling a retired slab when possible.
    pub(crate) fn alloc(&mut self) -> u32 {
        if let Some(slab) = self.free.pop() {
            let ko = self.key_off(slab);
            self.keys[ko..ko + 2 * self.stride].fill(WKey::PLUS_INF);
            let mo = self.memb_off(slab);
            self.memb[mo..mo + self.stride].fill(false);
            slab
        } else {
            self.keys
                .resize(self.keys.len() + 2 * self.stride, WKey::PLUS_INF);
            self.memb.resize(self.memb.len() + self.stride, false);
            self.slabs += 1;
            (self.slabs - 1) as u32
        }
    }

    /// Retire a slab for reuse. Contents are reset on the next [`Self::alloc`].
    pub(crate) fn free(&mut self, slab: u32) {
        debug_assert!((slab as usize) < self.slabs, "freeing an unknown slab");
        debug_assert!(!self.free.contains(&slab), "double free of slab {slab}");
        self.free.push(slab);
    }

    /// Grow every row to `new_stride` entries, preserving slab contents
    /// (new entries are `∞` / `false`). One compacting sweep over the
    /// backing stores.
    pub(crate) fn grow_stride(&mut self, new_stride: usize) {
        debug_assert!(new_stride >= self.stride);
        if new_stride == self.stride {
            return;
        }
        let mut keys = vec![WKey::PLUS_INF; self.slabs * 2 * new_stride];
        for slab in 0..self.slabs {
            let old = slab * 2 * self.stride;
            let new = slab * 2 * new_stride;
            // base
            keys[new..new + self.stride].copy_from_slice(&self.keys[old..old + self.stride]);
            // agg
            keys[new + new_stride..new + new_stride + self.stride]
                .copy_from_slice(&self.keys[old + self.stride..old + 2 * self.stride]);
        }
        let mut memb = vec![false; self.slabs * new_stride];
        for slab in 0..self.slabs {
            let old = slab * self.stride;
            let new = slab * new_stride;
            memb[new..new + self.stride].copy_from_slice(&self.memb[old..old + self.stride]);
        }
        self.keys = keys;
        self.memb = memb;
        self.stride = new_stride;
    }

    // ---- row accessors -------------------------------------------------

    #[inline]
    pub(crate) fn base(&self, slab: u32) -> &[WKey] {
        let o = self.key_off(slab);
        &self.keys[o..o + self.stride]
    }

    #[inline]
    pub(crate) fn base_mut(&mut self, slab: u32) -> &mut [WKey] {
        let o = self.key_off(slab);
        let s = self.stride;
        &mut self.keys[o..o + s]
    }

    #[inline]
    pub(crate) fn agg(&self, slab: u32) -> &[WKey] {
        let o = self.key_off(slab) + self.stride;
        &self.keys[o..o + self.stride]
    }

    #[inline]
    pub(crate) fn agg_mut(&mut self, slab: u32) -> &mut [WKey] {
        let o = self.key_off(slab) + self.stride;
        let s = self.stride;
        &mut self.keys[o..o + s]
    }

    #[inline]
    pub(crate) fn memb(&self, slab: u32) -> &[bool] {
        let o = self.memb_off(slab);
        &self.memb[o..o + self.stride]
    }

    #[inline]
    pub(crate) fn memb_mut(&mut self, slab: u32) -> &mut [bool] {
        let o = self.memb_off(slab);
        let s = self.stride;
        &mut self.memb[o..o + s]
    }

    /// The `base` and `agg` rows of one slab, both mutable (they are
    /// adjacent halves of the slab).
    #[inline]
    pub(crate) fn base_and_agg_mut(&mut self, slab: u32) -> (&mut [WKey], &mut [WKey]) {
        let o = self.key_off(slab);
        let s = self.stride;
        self.keys[o..o + 2 * s].split_at_mut(s)
    }

    /// Mutable `agg` row of `dst` together with the shared `agg` row of a
    /// *different* slab `src` — the borrow shape of `pull_up`'s entry-wise
    /// child merges.
    #[inline]
    pub(crate) fn agg_pair(&mut self, dst: u32, src: u32) -> (&mut [WKey], &[WKey]) {
        let s = self.stride;
        disjoint_mut(
            &mut self.keys,
            self.stride + dst as usize * 2 * s,
            self.stride + src as usize * 2 * s,
            s,
        )
    }

    /// Mutable `base` row of `dst` with the shared `base` row of `src`
    /// (the entry-wise row merge of a chunk merge).
    #[inline]
    pub(crate) fn base_pair(&mut self, dst: u32, src: u32) -> (&mut [WKey], &[WKey]) {
        let s = self.stride;
        disjoint_mut(
            &mut self.keys,
            dst as usize * 2 * s,
            src as usize * 2 * s,
            s,
        )
    }

    /// Mutable `memb` row of `dst` with the shared `memb` row of `src`.
    #[inline]
    pub(crate) fn memb_pair(&mut self, dst: u32, src: u32) -> (&mut [bool], &[bool]) {
        let s = self.stride;
        disjoint_mut(&mut self.memb, dst as usize * s, src as usize * s, s)
    }

    // ---- checkpoint images ----------------------------------------------

    /// Flatten the bank into the serializable image: the `WKey` store split
    /// into a raw-weight lane and an edge-id lane, membership as bytes, the
    /// free list verbatim (recycling order is behaviour).
    pub(crate) fn to_image(&self) -> RowBankImage {
        RowBankImage {
            stride: self.stride as u64,
            slabs: self.slabs as u64,
            key_weight: self.keys.iter().map(|k| k.weight.raw()).collect(),
            key_edge: self.keys.iter().map(|k| k.edge.0).collect(),
            memb: self.memb.iter().map(|&m| u8::from(m)).collect(),
            free: self.free.clone(),
        }
    }

    /// Rebuild a bank from [`RowBank::to_image`], validating the backing
    /// store sizes against `slabs × stride` and the free list against the
    /// slab count so a corrupted image cannot produce out-of-bounds slab
    /// handles.
    pub(crate) fn from_image(image: &RowBankImage) -> Result<Self, String> {
        let stride = image.stride as usize;
        let slabs = image.slabs as usize;
        if image.key_weight.len() != slabs * 2 * stride
            || image.key_edge.len() != image.key_weight.len()
        {
            return Err("row bank image key lanes disagree with slabs × stride".to_string());
        }
        if image.memb.len() != slabs * stride {
            return Err("row bank image memb lane disagrees with slabs × stride".to_string());
        }
        let mut seen = vec![false; slabs];
        for &slab in &image.free {
            match seen.get_mut(slab as usize) {
                Some(s) if !*s => *s = true,
                _ => return Err(format!("row bank free list names invalid slab {slab}")),
            }
        }
        if image.memb.iter().any(|&m| m > 1) {
            return Err("row bank image memb lane holds non-boolean bytes".to_string());
        }
        Ok(RowBank {
            stride,
            keys: image
                .key_weight
                .iter()
                .zip(&image.key_edge)
                .map(|(&w, &e)| WKey::new(pdmsf_graph::Weight::from_raw(w), pdmsf_graph::EdgeId(e)))
                .collect(),
            memb: image.memb.iter().map(|&m| m == 1).collect(),
            free: image.free.clone(),
            slabs,
        })
    }
}

/// The flat, serializable image of a [`RowBank`]: scalar geometry plus the
/// backing stores as primitive lanes. Public so the persist layer can write
/// it section-by-section.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RowBankImage {
    /// Row length (`J` upper bound).
    pub stride: u64,
    /// Slab count (live + free).
    pub slabs: u64,
    /// Raw weights of the `base`/`agg` key store (`slabs × 2 × stride`).
    pub key_weight: Vec<i64>,
    /// Edge ids of the `base`/`agg` key store.
    pub key_edge: Vec<u32>,
    /// Membership rows as bytes (`slabs × stride`).
    pub memb: Vec<u8>,
    /// Retired slab handles, in recycling order.
    pub free: Vec<u32>,
}

/// Split one backing slice into a mutable window at `dst` and a shared
/// window at `src` (both `len` long, non-overlapping).
#[inline]
fn disjoint_mut<T>(v: &mut [T], dst: usize, src: usize, len: usize) -> (&mut [T], &[T]) {
    debug_assert!(dst.abs_diff(src) >= len, "overlapping row windows");
    if dst < src {
        let (a, b) = v.split_at_mut(src);
        (&mut a[dst..dst + len], &b[..len])
    } else {
        let (a, b) = v.split_at_mut(dst);
        (&mut b[..len], &a[src..src + len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_arena_allocates_and_recycles_ids() {
        let mut a = ChunkArena::default();
        let c0 = a.alloc();
        let c1 = a.alloc();
        assert_eq!((c0, c1), (0, 1));
        assert!(a.alive(c0) && a.alive(c1));
        assert_eq!(a.size[c0 as usize], 1);
        a.occs[c0 as usize].push(7);
        a.adj_count[c0 as usize] = 3;
        a.set_queued(c0, true);
        assert!(a.queued(c0));
        assert_eq!(a.nc(c0), 4);
        a.free(c0);
        assert!(!a.alive(c0));
        assert!(!a.queued(c0), "freeing clears the queued flag");
        // The freed id is reused, fully reset.
        let c2 = a.alloc();
        assert_eq!(c2, c0);
        assert!(a.alive(c2));
        assert!(a.occs[c2 as usize].is_empty());
        assert_eq!(a.adj_count[c2 as usize], 0);
        assert_eq!(a.slot[c2 as usize], NONE);
        assert_eq!(a.row[c2 as usize], NONE);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn row_bank_alloc_free_reuses_slabs() {
        let mut b = RowBank::default();
        b.grow_stride(4);
        let s0 = b.alloc();
        let s1 = b.alloc();
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(b.num_slabs(), 2);
        b.base_mut(s0)[2] = WKey::new(pdmsf_graph::Weight::new(9), pdmsf_graph::EdgeId(1));
        b.memb_mut(s0)[1] = true;
        b.free(s0);
        assert_eq!(b.num_free(), 1);
        // Reuse resets contents; no new slab is carved.
        let s2 = b.alloc();
        assert_eq!(s2, s0);
        assert_eq!(b.num_slabs(), 2);
        assert_eq!(b.num_free(), 0);
        assert!(b.base(s2).iter().all(|k| *k == WKey::PLUS_INF));
        assert!(b.agg(s2).iter().all(|k| *k == WKey::PLUS_INF));
        assert!(b.memb(s2).iter().all(|m| !*m));
    }

    #[test]
    fn row_bank_grow_stride_preserves_rows() {
        let mut b = RowBank::default();
        b.grow_stride(2);
        let s0 = b.alloc();
        let s1 = b.alloc();
        let k = |w: i64, id: u32| WKey::new(pdmsf_graph::Weight::new(w), pdmsf_graph::EdgeId(id));
        b.base_mut(s0).copy_from_slice(&[k(1, 0), k(2, 1)]);
        b.agg_mut(s0).copy_from_slice(&[k(3, 2), k(4, 3)]);
        b.base_mut(s1)[1] = k(5, 4);
        b.memb_mut(s1)[0] = true;
        b.grow_stride(5);
        assert_eq!(b.stride(), 5);
        assert_eq!(&b.base(s0)[..2], &[k(1, 0), k(2, 1)]);
        assert_eq!(&b.agg(s0)[..2], &[k(3, 2), k(4, 3)]);
        assert!(b.base(s0)[2..].iter().all(|x| *x == WKey::PLUS_INF));
        assert_eq!(b.base(s1)[1], k(5, 4));
        assert_eq!(b.memb(s1), &[true, false, false, false, false]);
        // Backing stores are exactly slabs × stride — contiguous, no gaps.
        assert_eq!(b.keys.len(), 2 * 2 * 5);
        assert_eq!(b.memb.len(), 2 * 5);
    }

    #[test]
    fn row_bank_image_round_trips_free_lists_handles_and_stride() {
        let mut b = RowBank::default();
        b.grow_stride(3);
        let k = |w: i64, id: u32| WKey::new(pdmsf_graph::Weight::new(w), pdmsf_graph::EdgeId(id));
        let s0 = b.alloc();
        let s1 = b.alloc();
        let s2 = b.alloc();
        b.base_mut(s0).copy_from_slice(&[k(1, 0), k(2, 1), k(3, 2)]);
        b.agg_mut(s1)[1] = k(-7, 9);
        b.memb_mut(s2)[0] = true;
        b.free(s1);
        b.free(s0);

        // Import of an export is indistinguishable: same geometry, same row
        // contents, and — crucially — the same recycling order for the next
        // allocations.
        let mut r = RowBank::from_image(&b.to_image()).expect("round trip");
        assert_eq!(r.stride(), 3);
        assert_eq!(r.num_slabs(), 3);
        assert_eq!(r.num_free(), 2);
        assert_eq!(r.memb(s2), b.memb(s2));
        assert_eq!(r.base(s2), b.base(s2));
        assert_eq!((r.alloc(), r.alloc()), (b.alloc(), b.alloc()));

        // Round trip survives a stride growth (the compacting sweep): grow,
        // export, import, and the re-laid-out slabs still agree.
        b.grow_stride(6);
        let r2 = RowBank::from_image(&b.to_image()).expect("round trip after grow");
        assert_eq!(r2.stride(), 6);
        for s in [s0, s1, s2] {
            assert_eq!(r2.base(s), b.base(s));
            assert_eq!(r2.agg(s), b.agg(s));
            assert_eq!(r2.memb(s), b.memb(s));
        }

        // Corruption is rejected, not absorbed: a free list naming a live
        // slab, and a key lane whose length disagrees with slabs × stride.
        let mut bad = b.to_image();
        bad.free = vec![0, 0];
        assert!(RowBank::from_image(&bad).is_err());
        let mut bad = b.to_image();
        bad.key_weight.pop();
        assert!(RowBank::from_image(&bad).is_err());
    }

    #[test]
    fn chunk_arena_image_round_trips_banks_and_free_lists() {
        let mut a = ChunkArena::default();
        let c0 = a.alloc();
        let c1 = a.alloc();
        let c2 = a.alloc();
        let o0 = a.occ_alloc(VertexId(4), 0);
        let o1 = a.occ_alloc(VertexId(5), 1);
        a.occs[c1 as usize].extend([o0, o1]);
        a.restamp_occs(c1, 0);
        a.adj_count[c1 as usize] = 2;
        a.slot[c1 as usize] = 0;
        a.row[c1 as usize] = 7;
        a.set_queued(c1, true);
        a.set_occ_principal(o0, true);
        a.set_occ_arc(o1, Some((3, true)));
        a.free(c0);
        a.occ_release(o0);
        let _ = c2;

        let mut r = ChunkArena::from_image(&a.to_image()).expect("round trip");
        assert_eq!(r.len(), a.len());
        assert_eq!(r.occ_len(), a.occ_len());
        assert!(!r.alive(c0) && r.alive(c1));
        assert!(r.queued(c1));
        assert_eq!(r.nc(c1), 4);
        assert_eq!(r.occs[c1 as usize], vec![o0, o1]);
        assert_eq!((r.slot[c1 as usize], r.row[c1 as usize]), (0, 7));
        assert!(!r.occ_alive(o0) && r.occ_alive(o1));
        assert_eq!(r.occ_vert(o1), VertexId(5));
        assert_eq!(r.occ_arc(o1), Some((3, true)));
        assert!(!r.occ_principal(o1));
        // Recycling order is preserved exactly.
        assert_eq!(r.alloc(), a.alloc());
        assert_eq!(r.occ_alloc(VertexId(9), 0), a.occ_alloc(VertexId(9), 0));

        // A free list naming a live chunk is rejected.
        let mut bad = a.to_image();
        bad.free_ids = vec![c1];
        assert!(ChunkArena::from_image(&bad).is_err());
        // Lane-length disagreement is rejected.
        let mut bad = a.to_image();
        bad.occ_pos.pop();
        assert!(ChunkArena::from_image(&bad).is_err());
    }

    #[test]
    fn row_bank_pair_accessors_split_disjoint_slabs() {
        let mut b = RowBank::default();
        b.grow_stride(3);
        let s0 = b.alloc();
        let s1 = b.alloc();
        let k = |w: i64| WKey::new(pdmsf_graph::Weight::new(w), pdmsf_graph::EdgeId(0));
        b.agg_mut(s0).fill(k(9));
        b.agg_mut(s1).fill(k(4));
        {
            let (dst, src) = b.agg_pair(s0, s1);
            for (d, s) in dst.iter_mut().zip(src) {
                if *s < *d {
                    *d = *s;
                }
            }
        }
        assert!(b.agg(s0).iter().all(|x| *x == k(4)));
        // Same in the other direction (dst above src in the backing store).
        {
            let (dst, src) = b.base_pair(s1, s0);
            dst.copy_from_slice(src);
        }
        {
            let (dst, _src) = b.memb_pair(s1, s0);
            dst.fill(true);
        }
        assert_eq!(b.memb(s1), &[true, true, true]);
        assert_eq!(b.memb(s0), &[false, false, false]);
    }
}
