//! The chunked Euler-tour forest — the paper's central data structure.
//!
//! One [`ChunkedEulerForest`] instance stores, for the dynamic graph it is
//! given:
//!
//! * the **graph edges** (adjacency lists keyed by vertex),
//! * the **Euler tour of every tree** of the maintained spanning forest,
//!   represented as a cyclic list of *vertex occurrences* (Section 2.1 /
//!   Lemma 2.1) partitioned into **chunks** of `Θ(K)` elements
//!   (Invariant 1),
//! * one designated **principal copy** per vertex (Section 2.2),
//! * per-chunk **CAdj rows** (minimum-weight edge between chunk pairs) and
//!   **Memb** information, aggregated per list by a balanced **list sum data
//!   structure** (here a splay-based sequence tree over the chunks — an
//!   amortised stand-in for the paper's 2-3 tree, see DESIGN.md),
//! * the **surgical operations** (split / join / reroot of tours) that edge
//!   insertions and deletions reduce to, and
//! * the **minimum-weight-replacement (MWR) search** of Lemma 2.4 / 3.3.
//!
//! The structure is deliberately *degree-agnostic*: it is correct for any
//! vertex degree; the `K ≤ n_c ≤ 3K` bound of Invariant 1 is only guaranteed
//! when the caller bounds the degree (the paper does so via Frederickson's
//! reduction, available as [`pdmsf_graph::DegreeReduced`]).
//!
//! Cost accounting: every non-trivial primitive charges its cost to an
//! embedded [`CostMeter`], either as sequential work (Theorem 1.2 accounting)
//! or as EREW PRAM rounds (Theorem 3.1 accounting) depending on the
//! configured [`CostModel`]. The two front-ends `seq::SeqDynamicMsf` and
//! `par::ParDynamicMsf` differ only in the chunk parameter `K` and in this
//! cost model.

mod arena;
mod cadj;
mod checks;
mod edges;
mod mwr;
mod splay;
mod surgery;

#[cfg(test)]
mod tests;

use pdmsf_graph::arena::{edges_where, sorted_ids_where, EdgeSlotMap, EdgeStore};
use pdmsf_graph::{Edge, EdgeId, VertexId, WKey};
use pdmsf_pram::{CostMeter, ExecMode};

pub(crate) use arena::{ChunkArena, RowBank};
pub use arena::{ChunkArenaImage, RowBankImage};

/// Sentinel index ("null pointer") used by every arena in this module.
pub(crate) const NONE: u32 = u32::MAX;

/// Per-edge bookkeeping record: the edge itself plus, when the edge is a
/// forest (tree) edge, the two Euler-tour arc tails (`NONE` otherwise).
///
/// One record in one flat [`EdgeStore`] replaces the seed's two keyed maps
/// (`HashMap<EdgeId, Edge>` and `HashMap<EdgeId, (u32, u32)>`): edge data and
/// arc bookkeeping are fetched with a single handle resolution, and
/// `is_tree_edge` is a field test instead of a second map probe.
#[derive(Clone, Copy, Debug)]
pub struct EdgeRec {
    /// The registered graph edge.
    pub edge: Edge,
    /// Tail occurrence of the `u -> v` arc (`NONE` when not a tree edge).
    pub fwd: u32,
    /// Tail occurrence of the `v -> u` arc (`NONE` when not a tree edge).
    pub bwd: u32,
}

/// The production storage for [`EdgeRec`]s: dense slots, no hashing.
pub type ArenaEdgeStore = EdgeSlotMap<EdgeRec>;

/// How primitive operations are charged to the cost meter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CostModel {
    /// Sequential accounting (Theorem 1.2): every primitive is charged as
    /// work performed by a single processor.
    #[default]
    Sequential,
    /// EREW PRAM accounting (Theorem 3.1): scans become tournament trees /
    /// parallel sweeps of logarithmic depth using one processor per element.
    Erew,
}

/// Aggregate statistics used by tests and the benchmark harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ForestStats {
    /// Number of live chunks.
    pub chunks: usize,
    /// Number of allocated chunk ids (`J` in the paper's terms).
    pub slots: usize,
    /// Number of live occurrences across all Euler tours.
    pub occurrences: usize,
    /// Largest `n_c` over all chunks.
    pub max_nc: usize,
    /// Number of live graph edges.
    pub edges: usize,
    /// Configured chunk parameter `K`.
    pub k: usize,
}

/// The chunked Euler-tour forest (see module docs), generic over the edge
/// bookkeeping store (`S`): [`ArenaEdgeStore`] in production,
/// [`pdmsf_graph::HashEdgeStore`] as the kept-for-comparison map baseline of
/// the benchmark suite.
pub struct ChunkedEulerForest<S: EdgeStore<EdgeRec> = ArenaEdgeStore> {
    /// Chunk-size parameter `K`.
    pub(crate) k: usize,
    pub(crate) model: CostModel,
    /// How bulk kernels execute (simulated on the calling thread, or fanned
    /// out over OS threads).
    pub(crate) exec: ExecMode,
    /// PRAM / sequential cost meter.
    pub meter: CostMeter,

    // ---- graph + arc storage (one flat record per edge) ----
    pub(crate) edges: S,
    /// Adjacency lists hold edge-store *handles*, so scan loops resolve each
    /// incident edge with a single indexed load.
    pub(crate) adj: Vec<Vec<u32>>,

    // ---- occurrences (per-vertex indexes; the occurrence *records* live
    // in the flat banks of [`ChunkArena`]) ----
    pub(crate) vertex_occs: Vec<Vec<u32>>,
    pub(crate) principal: Vec<u32>,
    /// Chunk holding each vertex's principal copy (cache of the principal
    /// occurrence's `occ_chunk` bank entry, so the scan loops resolve
    /// "which chunk is the other endpoint in" with one load instead of a
    /// pointer chain).
    pub(crate) vertex_chunk: Vec<u32>,

    // ---- chunks + occurrence banks / LSDS (structure-of-arrays, see
    // [`arena`]) ----
    pub(crate) chunks: ChunkArena,
    /// Contiguous `CAdj` row store; `chunks.row[c]` is the slab handle.
    pub(crate) rows: RowBank,

    // ---- chunk id (slot) allocation ----
    pub(crate) slot_owner: Vec<u32>,
    pub(crate) slot_free: Vec<u32>,

    // ---- scratch buffers reused by the MWR search and the CAdj upkeep
    // (row rebuilds, targeted entry refreshes) ----
    pub(crate) scratch_keys: Vec<WKey>,
    pub(crate) scratch_cands: Vec<Edge>,
    pub(crate) scratch_row: Vec<WKey>,
    pub(crate) scratch_row2: Vec<WKey>,
    pub(crate) scratch_order: Vec<u32>,
    pub(crate) scratch_dirty: Vec<u32>,
    pub(crate) scratch_dirty2: Vec<u32>,

    /// Chunks touched by the current operation, pending Invariant-1 fix-up
    /// (a stack; membership is the `queued` flag on each chunk).
    pub(crate) touched: Vec<u32>,
}

impl<S: EdgeStore<EdgeRec>> ChunkedEulerForest<S> {
    /// A forest over `n` isolated vertices with chunk parameter `k` and the
    /// given cost model, executing kernels on the calling thread.
    pub fn new(n: usize, k: usize, model: CostModel) -> Self {
        Self::with_execution(n, k, model, ExecMode::Simulated)
    }

    /// Full control, including the kernel execution mode.
    pub fn with_execution(n: usize, k: usize, model: CostModel, exec: ExecMode) -> Self {
        let mut forest = ChunkedEulerForest {
            k: k.max(2),
            model,
            exec,
            meter: CostMeter::new(),
            edges: S::default(),
            adj: Vec::new(),
            vertex_occs: Vec::new(),
            principal: Vec::new(),
            vertex_chunk: Vec::new(),
            chunks: ChunkArena::default(),
            rows: RowBank::default(),
            slot_owner: Vec::new(),
            slot_free: Vec::new(),
            scratch_keys: Vec::new(),
            scratch_cands: Vec::new(),
            scratch_row: Vec::new(),
            scratch_row2: Vec::new(),
            scratch_order: Vec::new(),
            scratch_dirty: Vec::new(),
            scratch_dirty2: Vec::new(),
            touched: Vec::new(),
        };
        for _ in 0..n {
            forest.add_vertex();
        }
        forest
    }

    /// The kernel execution mode in use.
    pub fn execution_mode(&self) -> ExecMode {
        self.exec
    }

    /// Chunk parameter `K`.
    pub fn chunk_parameter(&self) -> usize {
        self.k
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of live graph edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Append a new isolated vertex: one occurrence, one single-chunk list.
    pub fn add_vertex(&mut self) -> VertexId {
        let v = VertexId::from(self.adj.len());
        self.adj.push(Vec::new());
        self.vertex_occs.push(Vec::new());
        self.principal.push(NONE);
        self.vertex_chunk.push(NONE);
        let c = self.chunks.alloc();
        let o = self.alloc_occ(v);
        self.chunks.occs[c as usize].push(o);
        self.chunks.occ_chunk[o as usize] = c;
        self.chunks.occ_pos[o as usize] = 0;
        self.chunks.set_occ_principal(o, true);
        self.principal[v.index()] = o;
        self.vertex_chunk[v.index()] = c;
        v
    }

    /// Current structural statistics.
    pub fn stats(&self) -> ForestStats {
        let mut chunks = 0;
        let mut occurrences = 0;
        let mut max_nc = 0;
        for c in 0..self.chunks.len() as u32 {
            if self.chunks.alive(c) {
                chunks += 1;
                occurrences += self.chunks.occs[c as usize].len();
                max_nc = max_nc.max(self.chunks.nc(c));
            }
        }
        ForestStats {
            chunks,
            slots: self.slot_owner.len() - self.slot_free.len(),
            occurrences,
            max_nc,
            edges: self.edges.len(),
            k: self.k,
        }
    }

    // ---- arena helpers -------------------------------------------------

    pub(crate) fn alloc_occ(&mut self, v: VertexId) -> u32 {
        let vpos = self.vertex_occs[v.index()].len() as u32;
        let id = self.chunks.occ_alloc(v, vpos);
        self.vertex_occs[v.index()].push(id);
        id
    }

    pub(crate) fn free_occ(&mut self, o: u32) {
        let v = self.chunks.occ_vert(o);
        let vpos = self.chunks.occ_vpos[o as usize] as usize;
        // Remove from vertex_occs with swap_remove, fixing the moved entry.
        let list = &mut self.vertex_occs[v.index()];
        let last = list.len() - 1;
        list.swap(vpos, last);
        list.pop();
        if vpos < list.len() {
            let moved = list[vpos];
            self.chunks.occ_vpos[moved as usize] = vpos as u32;
        }
        self.chunks.occ_release(o);
    }

    /// Queue chunk `c` for Invariant-1 fix-up (idempotent).
    pub(crate) fn touch(&mut self, c: u32) {
        if !self.chunks.queued(c) {
            self.chunks.set_queued(c, true);
            self.touched.push(c);
        }
    }

    // ---- cost charging -------------------------------------------------

    /// Charge a primitive whose sequential cost is `seq_work` and whose EREW
    /// parallelisation (per the paper's Lemmas 3.1-3.3) takes `par_depth`
    /// rounds on `par_procs` processors.
    pub(crate) fn charge(&mut self, seq_work: u64, par_depth: u64, par_procs: u64) {
        match self.model {
            CostModel::Sequential => self.meter.sequential(seq_work),
            CostModel::Erew => {
                self.meter
                    .round(par_procs.max(1), par_depth.max(1), seq_work.max(1))
            }
        }
    }

    /// Degree of a vertex in the maintained graph.
    pub(crate) fn degree(&self, v: VertexId) -> usize {
        self.adj[v.index()].len()
    }

    /// The current forest (tree) edges, sorted by id.
    pub fn tree_edges(&self) -> Vec<Edge> {
        edges_where(&self.edges, |r| r.fwd != NONE, |r| r.edge)
    }

    /// The ids of the current forest (tree) edges, sorted.
    pub fn tree_edge_ids(&self) -> Vec<EdgeId> {
        sorted_ids_where(&self.edges, |r| r.fwd != NONE)
    }

    /// The chunks of each Euler-tour list, in list order — one entry per
    /// tree of the maintained forest plus one per isolated vertex. Intended
    /// for diagnostics, tests and the benchmark harness.
    pub fn lists(&self) -> Vec<Vec<usize>> {
        let mut roots: Vec<u32> = Vec::new();
        for c in 0..self.chunks.len() as u32 {
            if self.chunks.alive(c) && self.chunks.parent[c as usize] == NONE {
                roots.push(c);
            }
        }
        roots
            .into_iter()
            .map(|r| {
                self.chunks_of_list(r)
                    .into_iter()
                    .map(|c| c as usize)
                    .collect()
            })
            .collect()
    }
}
