//! The chunked Euler-tour forest — the paper's central data structure.
//!
//! One [`ChunkedEulerForest`] instance stores, for the dynamic graph it is
//! given:
//!
//! * the **graph edges** (adjacency lists keyed by vertex),
//! * the **Euler tour of every tree** of the maintained spanning forest,
//!   represented as a cyclic list of *vertex occurrences* (Section 2.1 /
//!   Lemma 2.1) partitioned into **chunks** of `Θ(K)` elements
//!   (Invariant 1),
//! * one designated **principal copy** per vertex (Section 2.2),
//! * per-chunk **CAdj rows** (minimum-weight edge between chunk pairs) and
//!   **Memb** information, aggregated per list by a balanced **list sum data
//!   structure** (here a splay-based sequence tree over the chunks — an
//!   amortised stand-in for the paper's 2-3 tree, see DESIGN.md),
//! * the **surgical operations** (split / join / reroot of tours) that edge
//!   insertions and deletions reduce to, and
//! * the **minimum-weight-replacement (MWR) search** of Lemma 2.4 / 3.3.
//!
//! The structure is deliberately *degree-agnostic*: it is correct for any
//! vertex degree; the `K ≤ n_c ≤ 3K` bound of Invariant 1 is only guaranteed
//! when the caller bounds the degree (the paper does so via Frederickson's
//! reduction, available as [`pdmsf_graph::DegreeReduced`]).
//!
//! Cost accounting: every non-trivial primitive charges its cost to an
//! embedded [`CostMeter`], either as sequential work (Theorem 1.2 accounting)
//! or as EREW PRAM rounds (Theorem 3.1 accounting) depending on the
//! configured [`CostModel`]. The two front-ends `seq::SeqDynamicMsf` and
//! `par::ParDynamicMsf` differ only in the chunk parameter `K` and in this
//! cost model.

mod cadj;
mod checks;
mod edges;
mod mwr;
mod splay;
mod surgery;

#[cfg(test)]
mod tests;

use pdmsf_graph::{Edge, EdgeId, VertexId, WKey};
use pdmsf_pram::CostMeter;
use std::collections::{BTreeSet, HashMap};

/// Sentinel index ("null pointer") used by every arena in this module.
pub(crate) const NONE: u32 = u32::MAX;

/// How primitive operations are charged to the cost meter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CostModel {
    /// Sequential accounting (Theorem 1.2): every primitive is charged as
    /// work performed by a single processor.
    #[default]
    Sequential,
    /// EREW PRAM accounting (Theorem 3.1): scans become tournament trees /
    /// parallel sweeps of logarithmic depth using one processor per element.
    Erew,
}

/// One occurrence of a vertex in the Euler tour of its tree.
#[derive(Clone, Debug)]
pub(crate) struct Occ {
    pub vertex: VertexId,
    /// Chunk holding this occurrence.
    pub chunk: u32,
    /// Position within the chunk's `occs` vector.
    pub pos: u32,
    /// Position within `vertex_occs[vertex]`.
    pub vpos: u32,
    /// The forest arc (edge id, `true` = the `u -> v` direction of that edge)
    /// whose *tail* this occurrence is, if any. The head of the arc is always
    /// the cyclically next occurrence in the list.
    pub arc: Option<(EdgeId, bool)>,
    pub alive: bool,
}

/// A chunk of consecutive occurrences, which is simultaneously a node of its
/// list's aggregation tree (the LSDS).
#[derive(Clone, Debug)]
pub(crate) struct Chunk {
    pub alive: bool,
    /// Occurrence ids, in list order.
    pub occs: Vec<u32>,
    /// Number of graph edges adjacent to this chunk (edges incident to
    /// vertices whose principal copy lies here). `n_c = occs.len() + adj_count`.
    pub adj_count: usize,
    /// Chunk id (`id_c` in the paper); `NONE` when the chunk is the only
    /// chunk of its list (Section 6, "short lists").
    pub slot: u32,
    // ---- LSDS (splay sequence tree) fields ----
    pub parent: u32,
    pub left: u32,
    pub right: u32,
    /// Number of chunks in this subtree.
    pub size: u32,
    /// Own CAdj row (indexed by slot). Empty when `slot == NONE`.
    pub base: Vec<WKey>,
    /// Entry-wise minimum of `base` over the subtree.
    pub agg: Vec<WKey>,
    /// Membership of slots in the subtree (`Memb` of the paper).
    pub memb: Vec<bool>,
}

impl Chunk {
    fn new_singleton() -> Self {
        Chunk {
            alive: true,
            occs: Vec::new(),
            adj_count: 0,
            slot: NONE,
            parent: NONE,
            left: NONE,
            right: NONE,
            size: 1,
            base: Vec::new(),
            agg: Vec::new(),
            memb: Vec::new(),
        }
    }

    /// `n_c` of Invariant 1.
    pub(crate) fn nc(&self) -> usize {
        self.occs.len() + self.adj_count
    }
}

/// Aggregate statistics used by tests and the benchmark harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ForestStats {
    /// Number of live chunks.
    pub chunks: usize,
    /// Number of allocated chunk ids (`J` in the paper's terms).
    pub slots: usize,
    /// Number of live occurrences across all Euler tours.
    pub occurrences: usize,
    /// Largest `n_c` over all chunks.
    pub max_nc: usize,
    /// Number of live graph edges.
    pub edges: usize,
    /// Configured chunk parameter `K`.
    pub k: usize,
}

/// The chunked Euler-tour forest (see module docs).
pub struct ChunkedEulerForest {
    /// Chunk-size parameter `K`.
    pub(crate) k: usize,
    pub(crate) model: CostModel,
    /// PRAM / sequential cost meter.
    pub meter: CostMeter,

    // ---- graph storage ----
    pub(crate) edges: HashMap<EdgeId, Edge>,
    pub(crate) adj: Vec<Vec<EdgeId>>,

    // ---- occurrences ----
    pub(crate) occs: Vec<Occ>,
    pub(crate) occ_free: Vec<u32>,
    pub(crate) vertex_occs: Vec<Vec<u32>>,
    pub(crate) principal: Vec<u32>,

    // ---- forest arcs: edge id -> (tail of u->v arc, tail of v->u arc) ----
    pub(crate) arcs: HashMap<EdgeId, (u32, u32)>,

    // ---- chunks / LSDS ----
    pub(crate) chunks: Vec<Chunk>,
    pub(crate) chunk_free: Vec<u32>,

    // ---- chunk id (slot) allocation ----
    pub(crate) slot_owner: Vec<u32>,
    pub(crate) slot_free: Vec<u32>,

    // ---- scratch buffers reused by pull_up ----
    pub(crate) scratch_agg: Vec<WKey>,
    pub(crate) scratch_memb: Vec<bool>,

    /// Chunks touched by the current operation, pending Invariant-1 fix-up.
    pub(crate) touched: BTreeSet<u32>,
}

impl ChunkedEulerForest {
    /// A forest over `n` isolated vertices with chunk parameter `k` and the
    /// given cost model.
    pub fn new(n: usize, k: usize, model: CostModel) -> Self {
        let mut forest = ChunkedEulerForest {
            k: k.max(2),
            model,
            meter: CostMeter::new(),
            edges: HashMap::new(),
            adj: Vec::new(),
            occs: Vec::new(),
            occ_free: Vec::new(),
            vertex_occs: Vec::new(),
            principal: Vec::new(),
            arcs: HashMap::new(),
            chunks: Vec::new(),
            chunk_free: Vec::new(),
            slot_owner: Vec::new(),
            slot_free: Vec::new(),
            scratch_agg: Vec::new(),
            scratch_memb: Vec::new(),
            touched: BTreeSet::new(),
        };
        for _ in 0..n {
            forest.add_vertex();
        }
        forest
    }

    /// Chunk parameter `K`.
    pub fn chunk_parameter(&self) -> usize {
        self.k
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of live graph edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Append a new isolated vertex: one occurrence, one single-chunk list.
    pub fn add_vertex(&mut self) -> VertexId {
        let v = VertexId::from(self.adj.len());
        self.adj.push(Vec::new());
        self.vertex_occs.push(Vec::new());
        self.principal.push(NONE);
        let c = self.alloc_chunk();
        let o = self.alloc_occ(v);
        self.chunks[c as usize].occs.push(o);
        self.occs[o as usize].chunk = c;
        self.occs[o as usize].pos = 0;
        self.principal[v.index()] = o;
        v
    }

    /// Current structural statistics.
    pub fn stats(&self) -> ForestStats {
        let mut chunks = 0;
        let mut occurrences = 0;
        let mut max_nc = 0;
        for c in &self.chunks {
            if c.alive {
                chunks += 1;
                occurrences += c.occs.len();
                max_nc = max_nc.max(c.nc());
            }
        }
        ForestStats {
            chunks,
            slots: self.slot_owner.len() - self.slot_free.len(),
            occurrences,
            max_nc,
            edges: self.edges.len(),
            k: self.k,
        }
    }

    // ---- arena helpers -------------------------------------------------

    pub(crate) fn alloc_occ(&mut self, v: VertexId) -> u32 {
        let occ = Occ {
            vertex: v,
            chunk: NONE,
            pos: 0,
            vpos: self.vertex_occs[v.index()].len() as u32,
            arc: None,
            alive: true,
        };
        let id = if let Some(id) = self.occ_free.pop() {
            self.occs[id as usize] = occ;
            id
        } else {
            self.occs.push(occ);
            (self.occs.len() - 1) as u32
        };
        self.vertex_occs[v.index()].push(id);
        id
    }

    pub(crate) fn free_occ(&mut self, o: u32) {
        let v = self.occs[o as usize].vertex;
        let vpos = self.occs[o as usize].vpos as usize;
        // Remove from vertex_occs with swap_remove, fixing the moved entry.
        let list = &mut self.vertex_occs[v.index()];
        let last = list.len() - 1;
        list.swap(vpos, last);
        list.pop();
        if vpos < list.len() {
            let moved = list[vpos];
            self.occs[moved as usize].vpos = vpos as u32;
        }
        self.occs[o as usize].alive = false;
        self.occ_free.push(o);
    }

    pub(crate) fn alloc_chunk(&mut self) -> u32 {
        if let Some(id) = self.chunk_free.pop() {
            self.chunks[id as usize] = Chunk::new_singleton();
            id
        } else {
            self.chunks.push(Chunk::new_singleton());
            (self.chunks.len() - 1) as u32
        }
    }

    pub(crate) fn free_chunk(&mut self, c: u32) {
        debug_assert!(self.chunks[c as usize].slot == NONE);
        self.chunks[c as usize].alive = false;
        self.chunks[c as usize].occs.clear();
        self.chunk_free.push(c);
        self.touched.remove(&c);
    }

    // ---- cost charging -------------------------------------------------

    /// Charge a primitive whose sequential cost is `seq_work` and whose EREW
    /// parallelisation (per the paper's Lemmas 3.1-3.3) takes `par_depth`
    /// rounds on `par_procs` processors.
    pub(crate) fn charge(&mut self, seq_work: u64, par_depth: u64, par_procs: u64) {
        match self.model {
            CostModel::Sequential => self.meter.sequential(seq_work),
            CostModel::Erew => self
                .meter
                .round(par_procs.max(1), par_depth.max(1), seq_work.max(1)),
        }
    }

    /// Degree of a vertex in the maintained graph.
    pub(crate) fn degree(&self, v: VertexId) -> usize {
        self.adj[v.index()].len()
    }

    /// The chunks of each Euler-tour list, in list order — one entry per
    /// tree of the maintained forest plus one per isolated vertex. Intended
    /// for diagnostics, tests and the benchmark harness.
    pub fn lists(&self) -> Vec<Vec<usize>> {
        let mut roots: Vec<u32> = Vec::new();
        for (ci, chunk) in self.chunks.iter().enumerate() {
            if chunk.alive && chunk.parent == NONE {
                roots.push(ci as u32);
            }
        }
        roots
            .into_iter()
            .map(|r| {
                self.chunks_of_list(r)
                    .into_iter()
                    .map(|c| c as usize)
                    .collect()
            })
            .collect()
    }
}
