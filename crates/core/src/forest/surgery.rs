//! Occurrence-level and list-level surgical operations (Lemma 2.1), chunk
//! splitting / merging (Lemma 2.2 / 3.1), principal-copy management and the
//! Invariant-1 rebalancing loop.
//!
//! Euler tours are kept as *cyclic* sequences of vertex occurrences stored in
//! linear chunked lists: consecutive occurrences (and the wrap-around pair)
//! are the arcs of the tour. For every forest edge `{u, v}` the structure
//! remembers the two arc *tails*: the occurrence of `u` immediately followed
//! by an occurrence of `v` and vice versa. Linking and cutting a forest edge
//! then reduces to `O(1)` list splits / joins plus `O(1)` occurrence
//! insertions / deletions, exactly as Lemma 2.1 prescribes.

use super::{ChunkedEulerForest, EdgeRec, NONE};
use pdmsf_graph::arena::EdgeStore;
use pdmsf_graph::{Edge, VertexId};
use pdmsf_pram::kernels::log2_ceil;

impl<S: EdgeStore<EdgeRec>> ChunkedEulerForest<S> {
    // ------------------------------------------------------------------
    // Occurrence-level helpers
    // ------------------------------------------------------------------

    /// The occurrence immediately preceding `o` in its (linear) list.
    pub(crate) fn pred_occ(&self, o: u32) -> Option<u32> {
        let (c, pos) = (
            self.chunks.occ_chunk[o as usize],
            self.chunks.occ_pos[o as usize],
        );
        if pos > 0 {
            return Some(self.chunks.occs[c as usize][pos as usize - 1]);
        }
        let prev = self.prev_chunk(c)?;
        self.chunks.occs[prev as usize].last().copied()
    }

    /// The occurrence immediately following `o` in its (linear) list.
    pub(crate) fn succ_occ(&self, o: u32) -> Option<u32> {
        let (c, pos) = (
            self.chunks.occ_chunk[o as usize],
            self.chunks.occ_pos[o as usize],
        );
        let chunk_occs = &self.chunks.occs[c as usize];
        if (pos as usize) + 1 < chunk_occs.len() {
            return Some(chunk_occs[pos as usize + 1]);
        }
        let next = self.next_chunk(c)?;
        self.chunks.occs[next as usize].first().copied()
    }

    /// First occurrence of the list rooted at `root`.
    pub(crate) fn first_occ_of_list(&self, root: u32) -> u32 {
        let c = self.first_chunk(root);
        *self.chunks.occs[c as usize]
            .first()
            .expect("chunks are never empty")
    }

    /// Last occurrence of the list rooted at `root`.
    pub(crate) fn last_occ_of_list(&self, root: u32) -> u32 {
        let c = self.last_chunk(root);
        *self.chunks.occs[c as usize]
            .last()
            .expect("chunks are never empty")
    }

    /// The cyclic successor of `o` (wraps to the first occurrence).
    pub(crate) fn cyclic_succ(&self, o: u32) -> u32 {
        match self.succ_occ(o) {
            Some(s) => s,
            None => {
                let root = self.tree_root(self.chunks.occ_chunk[o as usize]);
                self.first_occ_of_list(root)
            }
        }
    }

    /// Whether the list containing occurrence `o` consists of exactly one
    /// occurrence (its vertex is isolated in the forest).
    pub(crate) fn occ_list_is_singleton(&self, o: u32) -> bool {
        let c = self.chunks.occ_chunk[o as usize];
        self.chunks.occs[c as usize].len() == 1 && self.list_is_single_chunk(c)
    }

    /// Linear position of `o` within its list, as (chunk rank, in-chunk pos).
    fn occ_rank(&self, o: u32) -> (usize, u32) {
        let c = self.chunks.occ_chunk[o as usize];
        (self.chunk_rank(c), self.chunks.occ_pos[o as usize])
    }

    /// Insert a fresh (non-principal) occurrence of `v` immediately after
    /// occurrence `after` and return it. `O(K)` for the in-chunk reindexing
    /// (one sweep over the `occ_chunk`/`occ_pos` banks).
    pub(crate) fn insert_occ_after(&mut self, after: u32, v: VertexId) -> u32 {
        let o = self.alloc_occ(v);
        let c = self.chunks.occ_chunk[after as usize];
        let pos = self.chunks.occ_pos[after as usize] as usize + 1;
        self.chunks.occs[c as usize].insert(pos, o);
        let len = self.chunks.occs[c as usize].len();
        self.chunks.restamp_occs(c, pos);
        self.touch(c);
        self.charge((len - pos) as u64 + 1, 1, (len - pos) as u64 + 1);
        o
    }

    /// Remove an occurrence that is neither a principal copy nor the tail of
    /// any live arc. `O(K)` for the in-chunk reindexing (one bank sweep).
    pub(crate) fn delete_occ(&mut self, o: u32) {
        debug_assert!(
            self.chunks.occ_arc(o).is_none(),
            "occurrence still carries an arc"
        );
        let v = self.chunks.occ_vert(o);
        debug_assert_ne!(
            self.principal[v.index()],
            o,
            "cannot delete a principal copy; re-designate first"
        );
        let c = self.chunks.occ_chunk[o as usize];
        let pos = self.chunks.occ_pos[o as usize] as usize;
        self.chunks.occs[c as usize].remove(pos);
        let len = self.chunks.occs[c as usize].len();
        self.chunks.restamp_occs(c, pos);
        self.free_occ(o);
        self.charge((len - pos) as u64 + 1, 1, (len - pos) as u64 + 1);
        if len == 0 {
            // The chunk became empty: retire it and, if its list shrank to a
            // single chunk, retire that chunk's id as well (Section 6).
            let rest = self.tree_remove(c);
            self.drop_slot(c);
            self.chunks.free(c);
            if rest != NONE && self.chunks.size[rest as usize] == 1 {
                self.drop_slot(rest);
                self.touch(rest);
            }
        } else {
            self.touch(c);
        }
    }

    /// Move the principal copy of `v` to `new_occ` (an existing occurrence of
    /// `v`), updating the adjacency counts and `CAdj` rows of the chunks
    /// involved.
    pub(crate) fn set_principal(&mut self, v: VertexId, new_occ: u32) {
        let old = self.principal[v.index()];
        if old == new_occ {
            return;
        }
        debug_assert_eq!(self.chunks.occ_vert(new_occ), v);
        self.principal[v.index()] = new_occ;
        self.chunks.set_occ_principal(old, false);
        self.chunks.set_occ_principal(new_occ, true);
        let c_old = self.chunks.occ_chunk[old as usize];
        let c_new = self.chunks.occ_chunk[new_occ as usize];
        self.vertex_chunk[v.index()] = c_new;
        if c_old == c_new {
            return;
        }
        let deg = self.degree(v);
        self.chunks.adj_count[c_old as usize] -= deg;
        self.chunks.adj_count[c_new as usize] += deg;
        self.rebuild_row(c_old);
        self.rebuild_row(c_new);
        self.touch(c_old);
        self.touch(c_new);
    }

    /// Recompute a chunk's adjacency count from scratch: one sweep over the
    /// occurrence list against the flag/vertex banks.
    pub(crate) fn recompute_adj_count(&mut self, c: u32) {
        let mut count = 0;
        for &o in &self.chunks.occs[c as usize] {
            if self.chunks.occ_principal(o) {
                count += self.degree(self.chunks.occ_vert(o));
            }
        }
        self.chunks.adj_count[c as usize] = count;
    }

    // ------------------------------------------------------------------
    // Chunk split / merge (Lemma 2.2, parallelised in Lemma 3.1)
    // ------------------------------------------------------------------

    /// Split chunk `c` after in-chunk position `p` (`0 <= p < len-1`). The
    /// new chunk holding the tail is inserted immediately after `c` in the
    /// list and both chunks' rows are rebuilt. Returns the new chunk.
    pub(crate) fn split_chunk_after(&mut self, c: u32, p: usize) -> u32 {
        let len = self.chunks.occs[c as usize].len();
        debug_assert!(
            p + 1 < len,
            "split position must leave both sides non-empty"
        );
        let tail: Vec<u32> = self.chunks.occs[c as usize].split_off(p + 1);
        let c2 = self.chunks.alloc();
        self.chunks.occs[c2 as usize] = tail;
        // Re-chunk the moved occurrences: one sweep over the
        // `occ_chunk`/`occ_pos` banks, then a flag-bank sweep to retarget
        // the principal-chunk cache.
        self.chunks.restamp_occs(c2, 0);
        for &o in &self.chunks.occs[c2 as usize] {
            if self.chunks.occ_principal(o) {
                self.vertex_chunk[self.chunks.occ_vertex[o as usize] as usize] = c2;
            }
        }
        self.recompute_adj_count(c);
        self.recompute_adj_count(c2);
        self.charge(len as u64, log2_ceil(len.max(2)) + 1, len as u64);
        // After the split the list has at least two chunks, so both carry
        // ids; rebuild both rows in one batched pass (the seed baseline
        // keeps its original two independent rebuilds).
        if S::SEED_BASELINE {
            if self.chunks.slot[c as usize] == NONE {
                self.give_slot(c);
            } else {
                self.rebuild_row(c);
            }
            self.give_slot(c2);
            self.tree_insert_after(c, c2);
        } else {
            if self.chunks.slot[c as usize] == NONE {
                self.attach_slot(c);
            }
            self.attach_slot(c2);
            self.tree_insert_after(c, c2);
            self.rebuild_rows_pair(c, c2);
        }
        self.touch(c);
        self.touch(c2);
        c2
    }

    /// Merge the next chunk of `c` into `c`. The caller guarantees a next
    /// chunk exists. Afterwards `c` holds both occurrence runs; the absorbed
    /// chunk is freed.
    ///
    /// Following the merge case of Lemma 2.2 / 3.1, `c`'s `CAdj` row becomes
    /// the **entry-wise minimum** of the two rows (an `O(J)` vector
    /// operation, parallelised to `O(1)` depth with `O(J)` processors) — no
    /// `O(K)` edge rescan.
    pub(crate) fn merge_with_next(&mut self, c: u32) {
        let nxt = self
            .next_chunk(c)
            .expect("merge_with_next requires a successor");
        let moved: Vec<u32> = std::mem::take(&mut self.chunks.occs[nxt as usize]);
        let offset = self.chunks.occs[c as usize].len();
        let moved_len = moved.len();
        self.chunks.occs[c as usize].extend(moved);
        // Re-chunk the absorbed occurrences as one bank sweep, then
        // retarget the principal-chunk cache of any principals that moved.
        self.chunks.restamp_occs(c, offset);
        for i in offset..offset + moved_len {
            let o = self.chunks.occs[c as usize][i];
            if self.chunks.occ_principal(o) {
                self.vertex_chunk[self.chunks.occ_vertex[o as usize] as usize] = c;
            }
        }
        let nxt_adj = self.chunks.adj_count[nxt as usize];
        self.chunks.adj_count[c as usize] += nxt_adj;
        self.charge(
            moved_len as u64 + 1,
            log2_ceil(moved_len.max(2)) + 1,
            moved_len as u64 + 1,
        );
        if S::SEED_BASELINE {
            // Seed policy: detach, then rebuild the merged row by rescanning
            // its O(K) adjacent edges.
            self.tree_remove(nxt);
            self.drop_slot(nxt);
            self.chunks.free(nxt);
            if self.list_is_single_chunk(c) {
                self.drop_slot(c);
            } else {
                self.rebuild_row(c);
            }
            self.touch(c);
            return;
        }
        let merged_rows = if self.list_is_single_chunk_without(c, nxt) {
            // `c` ends up alone: both ids retire, no row survives.
            false
        } else {
            self.merge_rows_into(c, nxt);
            true
        };
        // Detach the absorbed chunk from the list, retire its id, free it.
        self.tree_remove(nxt);
        self.drop_slot(nxt);
        self.chunks.free(nxt);
        if !merged_rows {
            self.drop_slot(c);
        } else {
            // Propagate the changed row through `c`'s own list (path
            // refresh, as after any full-row change).
            self.splay(c);
        }
        self.touch(c);
    }

    /// Whether the list containing `c` would consist of `c` alone once
    /// `other` is removed.
    fn list_is_single_chunk_without(&self, c: u32, other: u32) -> bool {
        debug_assert_ne!(c, other);
        let root = self.tree_root(c);
        self.chunks.size[root as usize] == 2
    }

    /// The entry-wise row merge of Lemma 2.2 / 3.1: fold `nxt`'s `CAdj` row
    /// into `c`'s (edges between the two chunks become self-edges of the
    /// merged chunk), update the symmetric entries of every other row and
    /// refresh the affected `S_{s_c}` aggregates. `O(J)` work, `O(1)` depth
    /// with `O(J)` processors.
    fn merge_rows_into(&mut self, c: u32, nxt: u32) {
        let s_c = self.chunks.slot[c as usize];
        let s_nxt = self.chunks.slot[nxt as usize];
        debug_assert!(s_c != NONE && s_nxt != NONE, "multi-chunk list without ids");
        let (s_c, s_nxt) = (s_c as usize, s_nxt as usize);
        let cap = self.slot_cap();
        let row_c = self.chunks.row[c as usize];
        let row_nxt = self.chunks.row[nxt as usize];

        // Self-entry: edges between c and nxt (either direction) and nxt's
        // own self-edges all become self-edges of the merged chunk.
        let mut self_entry = self.rows.base(row_c)[s_c];
        for key in [
            self.rows.base(row_c)[s_nxt],
            self.rows.base(row_nxt)[s_c],
            self.rows.base(row_nxt)[s_nxt],
        ] {
            if key < self_entry {
                self_entry = key;
            }
        }
        self.rows.base_mut(row_c)[s_c] = self_entry;

        // Entry-wise minimum of the remaining entries (the folded self-entry
        // already is the minimum of its column, so a plain entry-wise min is
        // equivalent in every mode). The two rows are disjoint bank slabs.
        {
            let (dst, src) = self.rows.base_pair(row_c, row_nxt);
            match self.exec {
                pdmsf_pram::ExecMode::Threads => {
                    pdmsf_pram::kernels::threaded_entrywise_min(dst, src);
                }
                pdmsf_pram::ExecMode::Simulated => {
                    for (d, s) in dst.iter_mut().zip(src) {
                        if *s < *d {
                            *d = *s;
                        }
                    }
                }
            }
        }
        // Column s_nxt of the merged row dies with the absorbed id (the
        // upcoming drop_slot clears it everywhere, including here).

        // Cross update: every other chunk's entry for the merged chunk is
        // the minimum of its entries for the two old chunks.
        let mut dirty = std::mem::take(&mut self.scratch_dirty);
        dirty.clear();
        let mut cross = 0u64;
        for other_slot in 0..cap {
            let owner = self.slot_owner[other_slot];
            if owner == NONE || owner == c || owner == nxt {
                continue;
            }
            cross += 1;
            let row = self.rows.base_mut(self.chunks.row[owner as usize]);
            if row[s_nxt] < row[s_c] {
                row[s_c] = row[s_nxt];
                dirty.push(owner);
            }
        }
        self.charge(cap as u64 + cross, 1, (cap as u64 + cross).max(1));
        self.refresh_entry_for_chunks(&mut dirty, s_c as u32);
        self.scratch_dirty = dirty;
    }

    // ------------------------------------------------------------------
    // List-level surgical operations
    // ------------------------------------------------------------------

    /// Split the list containing `o` immediately after occurrence `o`.
    /// Returns the roots of the two resulting lists (`right` may be `NONE`).
    pub(crate) fn list_split_after_occ(&mut self, o: u32) -> (u32, u32) {
        let c = self.chunks.occ_chunk[o as usize];
        let pos = self.chunks.occ_pos[o as usize] as usize;
        let split_chunk = if pos + 1 < self.chunks.occs[c as usize].len() {
            // The split point is inside the chunk: split the chunk first.
            self.split_chunk_after(c, pos);
            c
        } else {
            c
        };
        let (l, r) = self.tree_split_after(split_chunk);
        for side in [l, r] {
            if side != NONE && self.chunks.size[side as usize] == 1 {
                self.drop_slot(side);
                self.touch(side);
            }
        }
        (l, r)
    }

    /// Concatenate two lists (either root may be `NONE`). Single-chunk sides
    /// are given ids first so that every chunk of a multi-chunk list carries
    /// an id. Returns the root of the concatenation.
    pub(crate) fn list_join(&mut self, a: u32, b: u32) -> u32 {
        if a == NONE {
            return b;
        }
        if b == NONE {
            return a;
        }
        if self.chunks.size[a as usize] == 1 && self.chunks.slot[a as usize] == NONE {
            self.give_slot(a);
        }
        if self.chunks.size[b as usize] == 1 && self.chunks.slot[b as usize] == NONE {
            self.give_slot(b);
        }
        self.tree_join(a, b)
    }

    // ------------------------------------------------------------------
    // Euler-tour link / cut (the forest-edge surgical operations)
    // ------------------------------------------------------------------

    /// Make `e` a forest edge: merge the Euler tours of its endpoints'
    /// trees. The endpoints must currently be in different trees and `e`
    /// must already be a (live) graph edge.
    pub(crate) fn link_tree_edge(&mut self, e: Edge) {
        let (u, v) = (e.u, e.v);
        let a = self.principal[u.index()];
        let b = self.principal[v.index()];
        let a_single = self.occ_list_is_singleton(a);
        let b_single = self.occ_list_is_singleton(b);
        debug_assert_ne!(
            self.tree_root(self.chunks.occ_chunk[a as usize]),
            self.tree_root(self.chunks.occ_chunk[b as usize]),
            "link endpoints must be in different trees"
        );

        // Rotate v's tour so that it starts at the principal copy of v.
        let root_b = self.tree_root(self.chunks.occ_chunk[b as usize]);
        let rotated_b = match self.pred_occ(b) {
            None => root_b,
            Some(pred) => {
                let (left, right) = self.list_split_after_occ(pred);
                self.list_join(right, left)
            }
        };

        // Append the occurrences that close the two new arcs.
        let last_b = self.last_occ_of_list(rotated_b);
        let mut after = last_b;
        let v_new = if !b_single {
            let o = self.insert_occ_after(last_b, v);
            after = o;
            Some(o)
        } else {
            None
        };
        let u_new = if !a_single {
            Some(self.insert_occ_after(after, u))
        } else {
            None
        };

        // Splice the rotated tour of v's tree into u's tour right after `a`.
        let (a1, a2) = self.list_split_after_occ(a);
        let mid_root = self.tree_root(self.chunks.occ_chunk[b as usize]);
        let joined = self.list_join(a1, mid_root);
        self.list_join(joined, a2);

        // Arc bookkeeping (arc tails live inside the edge's own record).
        let h = self
            .edges
            .handle_of(e.id)
            .expect("edge must be registered before linking");
        if let Some(un) = u_new {
            let old_arc = self
                .chunks
                .occ_arc(a)
                .expect("non-singleton tours have an arc at every occurrence tail");
            self.chunks.set_occ_arc(a, None);
            self.chunks.set_occ_arc(un, Some(old_arc));
            let entry = self.edges.get_mut(old_arc.0);
            debug_assert_ne!(entry.fwd, NONE, "transferred arc must be registered");
            if old_arc.1 {
                entry.fwd = un;
            } else {
                entry.bwd = un;
            }
        }
        self.chunks.set_occ_arc(a, Some((h, true)));
        let bwd_tail = v_new.unwrap_or(b);
        self.chunks.set_occ_arc(bwd_tail, Some((h, false)));
        let rec = self.edges.get_mut(h);
        rec.fwd = a;
        rec.bwd = bwd_tail;
        self.charge(4, 2, 2);
        self.flush_rebalance();
    }

    /// Remove forest edge `e` (still registered as a graph edge, i.e. the
    /// insertion-swap path) from the Euler tours. Returns the list roots
    /// `(root_u, root_v)` of the sides containing `e.u` and `e.v`.
    pub(crate) fn cut_tree_edge(&mut self, e: Edge) -> (u32, u32) {
        let h = self
            .edges
            .handle_of(e.id)
            .unwrap_or_else(|| panic!("{:?} is not a registered edge", e.id));
        let rec = self.edges.get_mut(h);
        let (x, y) = (rec.fwd, rec.bwd);
        assert_ne!(x, NONE, "{:?} is not a forest edge", e.id);
        rec.fwd = NONE;
        rec.bwd = NONE;
        self.cut_tour(e, x, y)
    }

    /// Remove a forest edge whose record was already unregistered by
    /// [`ChunkedEulerForest::delete_graph_edge`] (the deletion path): the arc
    /// tails travel in the removed record.
    pub(crate) fn cut_removed_tree_edge(&mut self, rec: EdgeRec) -> (u32, u32) {
        debug_assert_ne!(rec.fwd, NONE, "{:?} was not a forest edge", rec.edge.id);
        self.cut_tour(rec.edge, rec.fwd, rec.bwd)
    }

    /// Shared tour surgery for both cut paths: split the cyclic tour at arc
    /// tails `x` (of `e.u -> e.v`) and `y` (of `e.v -> e.u`), returning the
    /// roots of the two resulting lists.
    fn cut_tour(&mut self, e: Edge, x: u32, y: u32) -> (u32, u32) {
        debug_assert_eq!(self.chunks.occ_vert(x), e.u);
        debug_assert_eq!(self.chunks.occ_vert(y), e.v);
        debug_assert_eq!(self.chunks.occ_arc(x).map(|(_, d)| d), Some(true));
        debug_assert_eq!(self.chunks.occ_arc(y).map(|(_, d)| d), Some(false));
        self.chunks.set_occ_arc(x, None);
        self.chunks.set_occ_arc(y, None);

        // Split the cyclic tour at the two arcs. The side of `v` is the
        // cyclic interval (x, y]; the side of `u` is (y, x].
        let (rank_x, rank_y) = (self.occ_rank(x), self.occ_rank(y));
        if rank_x < rank_y {
            let (p1, rest) = self.list_split_after_occ(x);
            debug_assert_ne!(rest, NONE);
            let (_p2, p3) = self.list_split_after_occ(y);
            // v-side = p2 (succ(x) ..= y); u-side = p3 ++ p1 (cyclic wrap).
            self.list_join(p3, p1);
        } else {
            let (q1, rest) = self.list_split_after_occ(y);
            debug_assert_ne!(rest, NONE);
            let (_q2, q3) = self.list_split_after_occ(x);
            // u-side = q2 (succ(y) ..= x); v-side = q3 ++ q1 (cyclic wrap).
            self.list_join(q3, q1);
        }

        // Each endpoint loses one occurrence unless it became (or stays) the
        // only occurrence of its tour.
        self.remove_redundant_occurrence(x, e.u);
        self.remove_redundant_occurrence(y, e.v);
        self.charge(4, 2, 2);
        self.flush_rebalance();

        let root_u = self.tree_root(self.vertex_chunk[e.u.index()]);
        let root_v = self.tree_root(self.vertex_chunk[e.v.index()]);
        (root_u, root_v)
    }

    /// After a cut, occurrence `o` of vertex `v` is redundant (its arc was
    /// removed) unless it is the vertex's only occurrence. Re-designate the
    /// principal copy if necessary, then delete it.
    fn remove_redundant_occurrence(&mut self, o: u32, v: VertexId) {
        if self.vertex_occs[v.index()].len() < 2 {
            return;
        }
        if self.chunks.occ_principal(o) {
            let replacement = self.vertex_occs[v.index()]
                .iter()
                .copied()
                .find(|&other| other != o)
                .expect("vertex has another occurrence");
            self.set_principal(v, replacement);
        }
        self.delete_occ(o);
    }

    // ------------------------------------------------------------------
    // Invariant 1 maintenance
    // ------------------------------------------------------------------

    /// Restore Invariant 1 for every chunk touched by the current operation.
    /// `touched` is a plain stack; the `queued` flag on each chunk keeps
    /// entries unique and lets freed chunks leave stale entries behind.
    pub(crate) fn flush_rebalance(&mut self) {
        while let Some(c) = self.touched.pop() {
            if !self.chunks.queued(c) {
                continue; // stale entry: freed (or already processed)
            }
            self.chunks.set_queued(c, false);
            self.rebalance(c);
        }
    }

    fn rebalance(&mut self, mut c: u32) {
        loop {
            if !self.chunks.alive(c) {
                return;
            }
            let nc = self.chunks.nc(c);
            let single = self.list_is_single_chunk(c);
            if nc > 3 * self.k && self.chunks.occs[c as usize].len() >= 2 {
                // Split roughly in half by n_c contribution.
                if let Some(p) = self.balanced_split_position(c) {
                    let c2 = self.split_chunk_after(c, p);
                    self.touch(c2);
                    continue;
                }
                // A single occurrence dominates n_c (possible only without
                // the degree-3 reduction); nothing further to do.
                break;
            } else if !single && nc < self.k {
                // Merge with a neighbour, but never create a chunk that
                // immediately violates the upper bound again (possible when a
                // single high-degree principal dominates `n_c`, i.e. when the
                // caller did not apply the degree-3 reduction) — that would
                // make the split/merge loop cycle.
                let next_ok = self
                    .next_chunk(c)
                    .map(|nx| nc + self.chunks.nc(nx) <= 3 * self.k);
                let prev_ok = self
                    .prev_chunk(c)
                    .map(|pv| nc + self.chunks.nc(pv) <= 3 * self.k);
                if next_ok == Some(true) {
                    self.merge_with_next(c);
                    continue;
                }
                if prev_ok == Some(true) {
                    let prev = self.prev_chunk(c).expect("checked above");
                    self.merge_with_next(prev);
                    c = prev;
                    continue;
                }
                break;
            } else if single && self.chunks.slot[c as usize] != NONE {
                self.drop_slot(c);
                break;
            } else if !single && self.chunks.slot[c as usize] == NONE {
                self.give_slot(c);
                break;
            } else {
                break;
            }
        }
    }

    /// Find a split position that balances `n_c` between the two halves, or
    /// `None` if no valid position exists.
    fn balanced_split_position(&self, c: u32) -> Option<usize> {
        let occs = &self.chunks.occs[c as usize];
        let total = self.chunks.nc(c);
        let mut acc = 0usize;
        let mut best: Option<usize> = None;
        for (i, &o) in occs.iter().enumerate() {
            acc += 1;
            if self.chunks.occ_principal(o) {
                acc += self.degree(self.chunks.occ_vert(o));
            }
            if i + 1 < occs.len() {
                best = Some(i);
                if acc * 2 >= total {
                    return Some(i);
                }
            }
        }
        best
    }
}
