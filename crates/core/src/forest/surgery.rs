//! Occurrence-level and list-level surgical operations (Lemma 2.1), chunk
//! splitting / merging (Lemma 2.2 / 3.1), principal-copy management and the
//! Invariant-1 rebalancing loop.
//!
//! Euler tours are kept as *cyclic* sequences of vertex occurrences stored in
//! linear chunked lists: consecutive occurrences (and the wrap-around pair)
//! are the arcs of the tour. For every forest edge `{u, v}` the structure
//! remembers the two arc *tails*: the occurrence of `u` immediately followed
//! by an occurrence of `v` and vice versa. Linking and cutting a forest edge
//! then reduces to `O(1)` list splits / joins plus `O(1)` occurrence
//! insertions / deletions, exactly as Lemma 2.1 prescribes.

use super::{ChunkedEulerForest, NONE};
use pdmsf_graph::{Edge, VertexId};
use pdmsf_pram::kernels::log2_ceil;

impl ChunkedEulerForest {
    // ------------------------------------------------------------------
    // Occurrence-level helpers
    // ------------------------------------------------------------------

    /// The occurrence immediately preceding `o` in its (linear) list.
    pub(crate) fn pred_occ(&self, o: u32) -> Option<u32> {
        let occ = &self.occs[o as usize];
        let chunk = &self.chunks[occ.chunk as usize];
        if occ.pos > 0 {
            return Some(chunk.occs[occ.pos as usize - 1]);
        }
        let prev = self.prev_chunk(occ.chunk)?;
        self.chunks[prev as usize].occs.last().copied()
    }

    /// The occurrence immediately following `o` in its (linear) list.
    pub(crate) fn succ_occ(&self, o: u32) -> Option<u32> {
        let occ = &self.occs[o as usize];
        let chunk = &self.chunks[occ.chunk as usize];
        if (occ.pos as usize) + 1 < chunk.occs.len() {
            return Some(chunk.occs[occ.pos as usize + 1]);
        }
        let next = self.next_chunk(occ.chunk)?;
        self.chunks[next as usize].occs.first().copied()
    }

    /// First occurrence of the list rooted at `root`.
    pub(crate) fn first_occ_of_list(&self, root: u32) -> u32 {
        let c = self.first_chunk(root);
        *self.chunks[c as usize]
            .occs
            .first()
            .expect("chunks are never empty")
    }

    /// Last occurrence of the list rooted at `root`.
    pub(crate) fn last_occ_of_list(&self, root: u32) -> u32 {
        let c = self.last_chunk(root);
        *self.chunks[c as usize]
            .occs
            .last()
            .expect("chunks are never empty")
    }

    /// The cyclic successor of `o` (wraps to the first occurrence).
    pub(crate) fn cyclic_succ(&self, o: u32) -> u32 {
        match self.succ_occ(o) {
            Some(s) => s,
            None => {
                let root = self.tree_root(self.occs[o as usize].chunk);
                self.first_occ_of_list(root)
            }
        }
    }

    /// Whether the list containing occurrence `o` consists of exactly one
    /// occurrence (its vertex is isolated in the forest).
    pub(crate) fn occ_list_is_singleton(&self, o: u32) -> bool {
        let c = self.occs[o as usize].chunk;
        self.chunks[c as usize].occs.len() == 1 && self.list_is_single_chunk(c)
    }

    /// Linear position of `o` within its list, as (chunk rank, in-chunk pos).
    fn occ_rank(&self, o: u32) -> (usize, u32) {
        let occ = &self.occs[o as usize];
        (self.chunk_rank(occ.chunk), occ.pos)
    }

    /// Insert a fresh (non-principal) occurrence of `v` immediately after
    /// occurrence `after` and return it. `O(K)` for the in-chunk reindexing.
    pub(crate) fn insert_occ_after(&mut self, after: u32, v: VertexId) -> u32 {
        let o = self.alloc_occ(v);
        let c = self.occs[after as usize].chunk;
        let pos = self.occs[after as usize].pos as usize + 1;
        self.chunks[c as usize].occs.insert(pos, o);
        self.occs[o as usize].chunk = c;
        let len = self.chunks[c as usize].occs.len();
        for p in pos..len {
            let oc = self.chunks[c as usize].occs[p];
            self.occs[oc as usize].pos = p as u32;
        }
        self.touched.insert(c);
        self.charge((len - pos) as u64 + 1, 1, (len - pos) as u64 + 1);
        o
    }

    /// Remove an occurrence that is neither a principal copy nor the tail of
    /// any live arc. `O(K)` for the in-chunk reindexing.
    pub(crate) fn delete_occ(&mut self, o: u32) {
        debug_assert!(self.occs[o as usize].arc.is_none(), "occurrence still carries an arc");
        let v = self.occs[o as usize].vertex;
        debug_assert_ne!(
            self.principal[v.index()],
            o,
            "cannot delete a principal copy; re-designate first"
        );
        let c = self.occs[o as usize].chunk;
        let pos = self.occs[o as usize].pos as usize;
        self.chunks[c as usize].occs.remove(pos);
        let len = self.chunks[c as usize].occs.len();
        for p in pos..len {
            let oc = self.chunks[c as usize].occs[p];
            self.occs[oc as usize].pos = p as u32;
        }
        self.free_occ(o);
        self.charge((len - pos) as u64 + 1, 1, (len - pos) as u64 + 1);
        if len == 0 {
            // The chunk became empty: retire it and, if its list shrank to a
            // single chunk, retire that chunk's id as well (Section 6).
            let rest = self.tree_remove(c);
            self.drop_slot(c);
            self.free_chunk(c);
            if rest != NONE && self.chunks[rest as usize].size == 1 {
                self.drop_slot(rest);
                self.touched.insert(rest);
            }
        } else {
            self.touched.insert(c);
        }
    }

    /// Move the principal copy of `v` to `new_occ` (an existing occurrence of
    /// `v`), updating the adjacency counts and `CAdj` rows of the chunks
    /// involved.
    pub(crate) fn set_principal(&mut self, v: VertexId, new_occ: u32) {
        let old = self.principal[v.index()];
        if old == new_occ {
            return;
        }
        debug_assert_eq!(self.occs[new_occ as usize].vertex, v);
        self.principal[v.index()] = new_occ;
        let c_old = self.occs[old as usize].chunk;
        let c_new = self.occs[new_occ as usize].chunk;
        if c_old == c_new {
            return;
        }
        let deg = self.degree(v);
        self.chunks[c_old as usize].adj_count -= deg;
        self.chunks[c_new as usize].adj_count += deg;
        self.rebuild_row(c_old);
        self.rebuild_row(c_new);
        self.touched.insert(c_old);
        self.touched.insert(c_new);
    }

    /// Recompute a chunk's adjacency count from scratch.
    pub(crate) fn recompute_adj_count(&mut self, c: u32) {
        let mut count = 0;
        for i in 0..self.chunks[c as usize].occs.len() {
            let o = self.chunks[c as usize].occs[i];
            let v = self.occs[o as usize].vertex;
            if self.principal[v.index()] == o {
                count += self.degree(v);
            }
        }
        self.chunks[c as usize].adj_count = count;
    }

    // ------------------------------------------------------------------
    // Chunk split / merge (Lemma 2.2, parallelised in Lemma 3.1)
    // ------------------------------------------------------------------

    /// Split chunk `c` after in-chunk position `p` (`0 <= p < len-1`). The
    /// new chunk holding the tail is inserted immediately after `c` in the
    /// list and both chunks' rows are rebuilt. Returns the new chunk.
    pub(crate) fn split_chunk_after(&mut self, c: u32, p: usize) -> u32 {
        let len = self.chunks[c as usize].occs.len();
        debug_assert!(p + 1 < len, "split position must leave both sides non-empty");
        let tail: Vec<u32> = self.chunks[c as usize].occs.split_off(p + 1);
        let c2 = self.alloc_chunk();
        for (i, &o) in tail.iter().enumerate() {
            self.occs[o as usize].chunk = c2;
            self.occs[o as usize].pos = i as u32;
        }
        self.chunks[c2 as usize].occs = tail;
        self.recompute_adj_count(c);
        self.recompute_adj_count(c2);
        self.charge(
            len as u64,
            log2_ceil(len.max(2)) + 1,
            len as u64,
        );
        // After the split the list has at least two chunks, so both carry ids.
        if self.chunks[c as usize].slot == NONE {
            self.give_slot(c);
        } else {
            self.rebuild_row(c);
        }
        self.give_slot(c2);
        self.tree_insert_after(c, c2);
        self.touched.insert(c);
        self.touched.insert(c2);
        c2
    }

    /// Merge the next chunk of `c` into `c`. The caller guarantees a next
    /// chunk exists. Afterwards `c` holds both occurrence runs; the absorbed
    /// chunk is freed.
    pub(crate) fn merge_with_next(&mut self, c: u32) {
        let nxt = self.next_chunk(c).expect("merge_with_next requires a successor");
        let moved: Vec<u32> = std::mem::take(&mut self.chunks[nxt as usize].occs);
        let offset = self.chunks[c as usize].occs.len();
        for (i, &o) in moved.iter().enumerate() {
            self.occs[o as usize].chunk = c;
            self.occs[o as usize].pos = (offset + i) as u32;
        }
        let moved_len = moved.len();
        self.chunks[c as usize].occs.extend(moved);
        let nxt_adj = self.chunks[nxt as usize].adj_count;
        self.chunks[c as usize].adj_count += nxt_adj;
        self.charge(
            moved_len as u64 + 1,
            log2_ceil(moved_len.max(2)) + 1,
            moved_len as u64 + 1,
        );
        // Detach the absorbed chunk from the list, retire its id, free it.
        self.tree_remove(nxt);
        self.drop_slot(nxt);
        self.free_chunk(nxt);
        // `c` may now be the only chunk of its list (then it loses its id) or
        // still one of several (then its row is rebuilt to include the
        // absorbed edges).
        if self.list_is_single_chunk(c) {
            self.drop_slot(c);
        } else {
            self.rebuild_row(c);
        }
        self.touched.insert(c);
    }

    // ------------------------------------------------------------------
    // List-level surgical operations
    // ------------------------------------------------------------------

    /// Split the list containing `o` immediately after occurrence `o`.
    /// Returns the roots of the two resulting lists (`right` may be `NONE`).
    pub(crate) fn list_split_after_occ(&mut self, o: u32) -> (u32, u32) {
        let c = self.occs[o as usize].chunk;
        let pos = self.occs[o as usize].pos as usize;
        let split_chunk = if pos + 1 < self.chunks[c as usize].occs.len() {
            // The split point is inside the chunk: split the chunk first.
            self.split_chunk_after(c, pos);
            c
        } else {
            c
        };
        let (l, r) = self.tree_split_after(split_chunk);
        for side in [l, r] {
            if side != NONE && self.chunks[side as usize].size == 1 {
                self.drop_slot(side);
                self.touched.insert(side);
            }
        }
        (l, r)
    }

    /// Concatenate two lists (either root may be `NONE`). Single-chunk sides
    /// are given ids first so that every chunk of a multi-chunk list carries
    /// an id. Returns the root of the concatenation.
    pub(crate) fn list_join(&mut self, a: u32, b: u32) -> u32 {
        if a == NONE {
            return b;
        }
        if b == NONE {
            return a;
        }
        if self.chunks[a as usize].size == 1 && self.chunks[a as usize].slot == NONE {
            self.give_slot(a);
        }
        if self.chunks[b as usize].size == 1 && self.chunks[b as usize].slot == NONE {
            self.give_slot(b);
        }
        self.tree_join(a, b)
    }

    // ------------------------------------------------------------------
    // Euler-tour link / cut (the forest-edge surgical operations)
    // ------------------------------------------------------------------

    /// Make `e` a forest edge: merge the Euler tours of its endpoints'
    /// trees. The endpoints must currently be in different trees and `e`
    /// must already be a (live) graph edge.
    pub(crate) fn link_tree_edge(&mut self, e: Edge) {
        let (u, v) = (e.u, e.v);
        let a = self.principal[u.index()];
        let b = self.principal[v.index()];
        let a_single = self.occ_list_is_singleton(a);
        let b_single = self.occ_list_is_singleton(b);
        debug_assert_ne!(
            self.tree_root(self.occs[a as usize].chunk),
            self.tree_root(self.occs[b as usize].chunk),
            "link endpoints must be in different trees"
        );

        // Rotate v's tour so that it starts at the principal copy of v.
        let root_b = self.tree_root(self.occs[b as usize].chunk);
        let rotated_b = match self.pred_occ(b) {
            None => root_b,
            Some(pred) => {
                let (left, right) = self.list_split_after_occ(pred);
                self.list_join(right, left)
            }
        };

        // Append the occurrences that close the two new arcs.
        let last_b = self.last_occ_of_list(rotated_b);
        let mut after = last_b;
        let v_new = if !b_single {
            let o = self.insert_occ_after(last_b, v);
            after = o;
            Some(o)
        } else {
            None
        };
        let u_new = if !a_single {
            Some(self.insert_occ_after(after, u))
        } else {
            None
        };

        // Splice the rotated tour of v's tree into u's tour right after `a`.
        let (a1, a2) = self.list_split_after_occ(a);
        let mid_root = self.tree_root(self.occs[b as usize].chunk);
        let joined = self.list_join(a1, mid_root);
        self.list_join(joined, a2);

        // Arc bookkeeping.
        if let Some(un) = u_new {
            let old_arc = self.occs[a as usize]
                .arc
                .take()
                .expect("non-singleton tours have an arc at every occurrence tail");
            self.occs[un as usize].arc = Some(old_arc);
            let entry = self
                .arcs
                .get_mut(&old_arc.0)
                .expect("transferred arc must be registered");
            if old_arc.1 {
                entry.0 = un;
            } else {
                entry.1 = un;
            }
        }
        self.occs[a as usize].arc = Some((e.id, true));
        let bwd_tail = v_new.unwrap_or(b);
        self.occs[bwd_tail as usize].arc = Some((e.id, false));
        self.arcs.insert(e.id, (a, bwd_tail));
        self.charge(4, 2, 2);
        self.flush_rebalance();
    }

    /// Remove forest edge `e` from the Euler tours, splitting its tree's tour
    /// into the two sub-tours. Returns the list roots `(root_u, root_v)` of
    /// the sides containing `e.u` and `e.v`.
    pub(crate) fn cut_tree_edge(&mut self, e: Edge) -> (u32, u32) {
        let (x, y) = self
            .arcs
            .remove(&e.id)
            .unwrap_or_else(|| panic!("{:?} is not a forest edge", e.id));
        debug_assert_eq!(self.occs[x as usize].vertex, e.u);
        debug_assert_eq!(self.occs[y as usize].vertex, e.v);
        debug_assert_eq!(self.occs[x as usize].arc, Some((e.id, true)));
        debug_assert_eq!(self.occs[y as usize].arc, Some((e.id, false)));
        self.occs[x as usize].arc = None;
        self.occs[y as usize].arc = None;

        // Split the cyclic tour at the two arcs. The side of `v` is the
        // cyclic interval (x, y]; the side of `u` is (y, x].
        let (rank_x, rank_y) = (self.occ_rank(x), self.occ_rank(y));
        if rank_x < rank_y {
            let (p1, rest) = self.list_split_after_occ(x);
            debug_assert_ne!(rest, NONE);
            let (_p2, p3) = self.list_split_after_occ(y);
            // v-side = p2 (succ(x) ..= y); u-side = p3 ++ p1 (cyclic wrap).
            self.list_join(p3, p1);
        } else {
            let (q1, rest) = self.list_split_after_occ(y);
            debug_assert_ne!(rest, NONE);
            let (_q2, q3) = self.list_split_after_occ(x);
            // u-side = q2 (succ(y) ..= x); v-side = q3 ++ q1 (cyclic wrap).
            self.list_join(q3, q1);
        }

        // Each endpoint loses one occurrence unless it became (or stays) the
        // only occurrence of its tour.
        self.remove_redundant_occurrence(x, e.u);
        self.remove_redundant_occurrence(y, e.v);
        self.charge(4, 2, 2);
        self.flush_rebalance();

        let root_u = self.tree_root(self.occs[self.principal[e.u.index()] as usize].chunk);
        let root_v = self.tree_root(self.occs[self.principal[e.v.index()] as usize].chunk);
        (root_u, root_v)
    }

    /// After a cut, occurrence `o` of vertex `v` is redundant (its arc was
    /// removed) unless it is the vertex's only occurrence. Re-designate the
    /// principal copy if necessary, then delete it.
    fn remove_redundant_occurrence(&mut self, o: u32, v: VertexId) {
        if self.vertex_occs[v.index()].len() < 2 {
            return;
        }
        if self.principal[v.index()] == o {
            let replacement = self.vertex_occs[v.index()]
                .iter()
                .copied()
                .find(|&other| other != o)
                .expect("vertex has another occurrence");
            self.set_principal(v, replacement);
        }
        self.delete_occ(o);
    }

    // ------------------------------------------------------------------
    // Invariant 1 maintenance
    // ------------------------------------------------------------------

    /// Restore Invariant 1 for every chunk touched by the current operation.
    pub(crate) fn flush_rebalance(&mut self) {
        while let Some(&c) = self.touched.iter().next() {
            self.touched.remove(&c);
            self.rebalance(c);
        }
    }

    fn rebalance(&mut self, mut c: u32) {
        loop {
            if !self.chunks[c as usize].alive {
                return;
            }
            let nc = self.chunks[c as usize].nc();
            let single = self.list_is_single_chunk(c);
            if nc > 3 * self.k && self.chunks[c as usize].occs.len() >= 2 {
                // Split roughly in half by n_c contribution.
                if let Some(p) = self.balanced_split_position(c) {
                    let c2 = self.split_chunk_after(c, p);
                    self.touched.insert(c2);
                    continue;
                }
                // A single occurrence dominates n_c (possible only without
                // the degree-3 reduction); nothing further to do.
                break;
            } else if !single && nc < self.k {
                // Merge with a neighbour, but never create a chunk that
                // immediately violates the upper bound again (possible when a
                // single high-degree principal dominates `n_c`, i.e. when the
                // caller did not apply the degree-3 reduction) — that would
                // make the split/merge loop cycle.
                let next_ok = self
                    .next_chunk(c)
                    .map(|nx| nc + self.chunks[nx as usize].nc() <= 3 * self.k);
                let prev_ok = self
                    .prev_chunk(c)
                    .map(|pv| nc + self.chunks[pv as usize].nc() <= 3 * self.k);
                if next_ok == Some(true) {
                    self.merge_with_next(c);
                    continue;
                }
                if prev_ok == Some(true) {
                    let prev = self.prev_chunk(c).expect("checked above");
                    self.merge_with_next(prev);
                    c = prev;
                    continue;
                }
                break;
            } else if single && self.chunks[c as usize].slot != NONE {
                self.drop_slot(c);
                break;
            } else if !single && self.chunks[c as usize].slot == NONE {
                self.give_slot(c);
                break;
            } else {
                break;
            }
        }
    }

    /// Find a split position that balances `n_c` between the two halves, or
    /// `None` if no valid position exists.
    fn balanced_split_position(&self, c: u32) -> Option<usize> {
        let chunk = &self.chunks[c as usize];
        let total = chunk.nc();
        let mut acc = 0usize;
        let mut best: Option<usize> = None;
        for (i, &o) in chunk.occs.iter().enumerate() {
            let v = self.occs[o as usize].vertex;
            acc += 1;
            if self.principal[v.index()] == o {
                acc += self.degree(v);
            }
            if i + 1 < chunk.occs.len() {
                best = Some(i);
                if acc * 2 >= total {
                    return Some(i);
                }
            }
        }
        best
    }
}
