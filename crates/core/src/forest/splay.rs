//! The list sum data structure (LSDS): a splay-based sequence tree over the
//! chunks of each Euler-tour list.
//!
//! The paper implements the LSDS as a 2-3 tree with worst-case `O(log J)`
//! structural operations; we use a splay tree keyed by list position, which
//! supports the same operation set (insert / delete / split / join /
//! leaf-to-root refresh) with amortised `O(log J)` structural cost. Every
//! touched node recomputes its `O(J)`-sized aggregate vectors, exactly as in
//! Lemma 2.3, so the per-operation aggregate cost is `O(J log J)` amortised.
//!
//! All topology lives in the flat banks of [`super::ChunkArena`]
//! (`parent` / `left` / `right` / `size`), so the rotation and walk loops
//! below touch four `u32` arrays and nothing else; aggregate vectors are
//! dense [`super::RowBank`] slabs merged in place (threaded kernels borrow
//! the slab slices directly when [`ExecMode::Threads`] is active).

use super::{ChunkedEulerForest, EdgeRec, NONE};
use pdmsf_graph::arena::EdgeStore;
use pdmsf_pram::kernels::{threaded_entrywise_min, threaded_entrywise_or};
use pdmsf_pram::ExecMode;

impl<S: EdgeStore<EdgeRec>> ChunkedEulerForest<S> {
    /// Current chunk-id capacity (`J` upper bound); rows/aggregates are sized
    /// to this.
    pub(crate) fn slot_cap(&self) -> usize {
        self.slot_owner.len()
    }

    /// Recompute `size`, `agg` and `memb` of `c` from its own data and its
    /// children. `O(slot_cap)` when the chunk carries rows, `O(1)` otherwise.
    pub(crate) fn pull_up(&mut self, c: u32) {
        let ci = c as usize;
        let (l, r, slot) = (
            self.chunks.left[ci],
            self.chunks.right[ci],
            self.chunks.slot[ci],
        );
        let mut size = 1;
        if l != NONE {
            size += self.chunks.size[l as usize];
        }
        if r != NONE {
            size += self.chunks.size[r as usize];
        }
        self.chunks.size[ci] = size;
        if slot == NONE {
            debug_assert!(l == NONE && r == NONE, "slotless chunk with children");
            return;
        }
        let row = self.chunks.row[ci];
        {
            // agg := base, memb := {slot}, in place on the slab.
            let (base, agg) = self.rows.base_and_agg_mut(row);
            agg.copy_from_slice(base);
            let memb = self.rows.memb_mut(row);
            memb.fill(false);
            memb[slot as usize] = true;
        }
        for child in [l, r] {
            if child == NONE {
                continue;
            }
            let crow = self.chunks.row[child as usize];
            debug_assert!(crow != NONE, "child chunk without a slot");
            match self.exec {
                // Lemma 3.2's entry-wise merge, fanned out over the worker
                // pool (identical results: entry-wise min/or is
                // deterministic).
                ExecMode::Threads => {
                    let (agg, cagg) = self.rows.agg_pair(row, crow);
                    threaded_entrywise_min(agg, cagg);
                    let (memb, cmemb) = self.rows.memb_pair(row, crow);
                    threaded_entrywise_or(memb, cmemb);
                }
                ExecMode::Simulated => {
                    let (agg, cagg) = self.rows.agg_pair(row, crow);
                    for (a, ca) in agg.iter_mut().zip(cagg) {
                        if *ca < *a {
                            *a = *ca;
                        }
                    }
                    let (memb, cmemb) = self.rows.memb_pair(row, crow);
                    for (m, cm) in memb.iter_mut().zip(cmemb) {
                        *m |= *cm;
                    }
                }
            }
        }
    }

    fn rotate(&mut self, x: u32) {
        let p = self.chunks.parent[x as usize];
        let g = self.chunks.parent[p as usize];
        let dir = (self.chunks.right[p as usize] == x) as usize;
        let b = if dir == 1 {
            self.chunks.left[x as usize]
        } else {
            self.chunks.right[x as usize]
        };
        // p adopts b where x used to be.
        if dir == 1 {
            self.chunks.right[p as usize] = b;
        } else {
            self.chunks.left[p as usize] = b;
        }
        if b != NONE {
            self.chunks.parent[b as usize] = p;
        }
        // x adopts p.
        if dir == 1 {
            self.chunks.left[x as usize] = p;
        } else {
            self.chunks.right[x as usize] = p;
        }
        self.chunks.parent[p as usize] = x;
        // g adopts x.
        self.chunks.parent[x as usize] = g;
        if g != NONE {
            if self.chunks.left[g as usize] == p {
                self.chunks.left[g as usize] = x;
            } else {
                self.chunks.right[g as usize] = x;
            }
        }
        // Only the demoted node is pulled up here: the promoted node's
        // aggregate is never read before `splay` pulls it up once at the end
        // (each rotation only reads the aggregates of unchanged subtrees and
        // of previously demoted nodes), which halves the `O(J)` vector
        // merges per splay. (The seed baseline keeps its original
        // both-nodes-per-rotation policy.)
        self.pull_up(p);
        if S::SEED_BASELINE {
            self.pull_up(x);
        }
    }

    /// Splay `c` to the root of its list's tree (this is also the paper's
    /// `UpdateAdj` path refresh: every node on the leaf-to-root path has its
    /// aggregate vectors recomputed).
    pub(crate) fn splay(&mut self, c: u32) {
        let mut rotations: u64 = 0;
        while self.chunks.parent[c as usize] != NONE {
            let p = self.chunks.parent[c as usize];
            let g = self.chunks.parent[p as usize];
            if g != NONE {
                let zig_zig =
                    (self.chunks.right[g as usize] == p) == (self.chunks.right[p as usize] == c);
                if zig_zig {
                    self.rotate(p);
                } else {
                    self.rotate(c);
                }
                rotations += 2;
            } else {
                rotations += 1;
            }
            self.rotate(c);
        }
        self.pull_up(c);
        let cap = self.slot_cap() as u64;
        // Lemma 2.3 / 3.2: O(J) per touched node sequentially; O(log J) depth
        // with O(J) processors in the EREW model (per-entry trees S_j).
        self.charge(
            (rotations + 1) * cap.max(1),
            pdmsf_pram::kernels::log2_ceil(self.slot_cap().max(2)) + 1,
            cap.max(1),
        );
    }

    /// Root of the list containing `c`, without restructuring.
    pub(crate) fn tree_root(&self, c: u32) -> u32 {
        let mut cur = c;
        while self.chunks.parent[cur as usize] != NONE {
            cur = self.chunks.parent[cur as usize];
        }
        cur
    }

    /// Whether the list containing `c` consists of a single chunk.
    pub(crate) fn list_is_single_chunk(&self, c: u32) -> bool {
        let root = self.tree_root(c);
        self.chunks.size[root as usize] == 1
    }

    /// First (leftmost) chunk of the list rooted at `root`.
    pub(crate) fn first_chunk(&self, root: u32) -> u32 {
        let mut cur = root;
        while self.chunks.left[cur as usize] != NONE {
            cur = self.chunks.left[cur as usize];
        }
        cur
    }

    /// Last (rightmost) chunk of the list rooted at `root`.
    pub(crate) fn last_chunk(&self, root: u32) -> u32 {
        let mut cur = root;
        while self.chunks.right[cur as usize] != NONE {
            cur = self.chunks.right[cur as usize];
        }
        cur
    }

    /// In-order successor chunk within the same list, if any.
    pub(crate) fn next_chunk(&self, c: u32) -> Option<u32> {
        if self.chunks.right[c as usize] != NONE {
            return Some(self.first_chunk(self.chunks.right[c as usize]));
        }
        let mut cur = c;
        let mut p = self.chunks.parent[cur as usize];
        while p != NONE {
            if self.chunks.left[p as usize] == cur {
                return Some(p);
            }
            cur = p;
            p = self.chunks.parent[cur as usize];
        }
        None
    }

    /// In-order predecessor chunk within the same list, if any.
    pub(crate) fn prev_chunk(&self, c: u32) -> Option<u32> {
        if self.chunks.left[c as usize] != NONE {
            return Some(self.last_chunk(self.chunks.left[c as usize]));
        }
        let mut cur = c;
        let mut p = self.chunks.parent[cur as usize];
        while p != NONE {
            if self.chunks.right[p as usize] == cur {
                return Some(p);
            }
            cur = p;
            p = self.chunks.parent[cur as usize];
        }
        None
    }

    /// 0-based position of chunk `c` within its list (number of chunks before
    /// it). Does not restructure the tree.
    pub(crate) fn chunk_rank(&self, c: u32) -> usize {
        let left = self.chunks.left[c as usize];
        let mut rank = if left != NONE {
            self.chunks.size[left as usize] as usize
        } else {
            0
        };
        let mut cur = c;
        let mut p = self.chunks.parent[cur as usize];
        while p != NONE {
            if self.chunks.right[p as usize] == cur {
                let pl = self.chunks.left[p as usize];
                rank += 1 + if pl != NONE {
                    self.chunks.size[pl as usize] as usize
                } else {
                    0
                };
            }
            cur = p;
            p = self.chunks.parent[cur as usize];
        }
        rank
    }

    /// Concatenate the list rooted at `a` with the list rooted at `b`
    /// (`a` first). Either may be `NONE`. Returns the new root.
    pub(crate) fn tree_join(&mut self, a: u32, b: u32) -> u32 {
        if a == NONE {
            return b;
        }
        if b == NONE {
            return a;
        }
        let last = self.last_chunk(a);
        self.splay(last);
        debug_assert_eq!(self.chunks.right[last as usize], NONE);
        self.chunks.right[last as usize] = b;
        self.chunks.parent[b as usize] = last;
        self.pull_up(last);
        last
    }

    /// Split the list containing `c` immediately after chunk `c`. Returns the
    /// roots `(left, right)`; `right` is `NONE` when `c` is the last chunk.
    pub(crate) fn tree_split_after(&mut self, c: u32) -> (u32, u32) {
        self.splay(c);
        let r = self.chunks.right[c as usize];
        if r != NONE {
            self.chunks.parent[r as usize] = NONE;
            self.chunks.right[c as usize] = NONE;
            self.pull_up(c);
        }
        (c, r)
    }

    /// Insert chunk `c_new` (currently a detached singleton) immediately after
    /// `c_exist` in its list.
    pub(crate) fn tree_insert_after(&mut self, c_exist: u32, c_new: u32) {
        debug_assert_eq!(self.chunks.parent[c_new as usize], NONE);
        debug_assert_eq!(self.chunks.left[c_new as usize], NONE);
        debug_assert_eq!(self.chunks.right[c_new as usize], NONE);
        self.splay(c_exist);
        let r = self.chunks.right[c_exist as usize];
        self.chunks.right[c_new as usize] = r;
        if r != NONE {
            self.chunks.parent[r as usize] = c_new;
        }
        self.chunks.right[c_exist as usize] = c_new;
        self.chunks.parent[c_new as usize] = c_exist;
        self.pull_up(c_new);
        self.pull_up(c_exist);
    }

    /// Detach chunk `c` from its list, leaving it as a singleton tree.
    /// Returns the root of the remaining list (`NONE` if `c` was alone).
    pub(crate) fn tree_remove(&mut self, c: u32) -> u32 {
        self.splay(c);
        let l = self.chunks.left[c as usize];
        let r = self.chunks.right[c as usize];
        if l != NONE {
            self.chunks.parent[l as usize] = NONE;
        }
        if r != NONE {
            self.chunks.parent[r as usize] = NONE;
        }
        self.chunks.left[c as usize] = NONE;
        self.chunks.right[c as usize] = NONE;
        self.pull_up(c);
        self.tree_join(l, r)
    }

    /// Collect the chunks of the list rooted at `root`, in list order.
    /// Read-only (does not restructure the tree).
    pub(crate) fn chunks_of_list(&self, root: u32) -> Vec<u32> {
        let mut out = Vec::new();
        if root == NONE {
            return out;
        }
        // Iterative in-order traversal with an explicit stack.
        let mut stack = Vec::new();
        let mut cur = root;
        loop {
            while cur != NONE {
                stack.push(cur);
                cur = self.chunks.left[cur as usize];
            }
            match stack.pop() {
                None => break,
                Some(node) => {
                    out.push(node);
                    cur = self.chunks.right[node as usize];
                }
            }
        }
        out
    }
}
