//! The list sum data structure (LSDS): a splay-based sequence tree over the
//! chunks of each Euler-tour list.
//!
//! The paper implements the LSDS as a 2-3 tree with worst-case `O(log J)`
//! structural operations; we use a splay tree keyed by list position, which
//! supports the same operation set (insert / delete / split / join /
//! leaf-to-root refresh) with amortised `O(log J)` structural cost. Every
//! touched node recomputes its `O(J)`-sized aggregate vectors, exactly as in
//! Lemma 2.3, so the per-operation aggregate cost is `O(J log J)` amortised.

use super::{ChunkedEulerForest, EdgeRec, NONE};
use pdmsf_graph::arena::EdgeStore;
use pdmsf_graph::WKey;
use pdmsf_pram::kernels::{threaded_entrywise_min, threaded_entrywise_or};
use pdmsf_pram::ExecMode;

impl<S: EdgeStore<EdgeRec>> ChunkedEulerForest<S> {
    /// Current chunk-id capacity (`J` upper bound); rows/aggregates are sized
    /// to this.
    pub(crate) fn slot_cap(&self) -> usize {
        self.slot_owner.len()
    }

    /// Recompute `size`, `agg` and `memb` of `c` from its own data and its
    /// children. `O(slot_cap)` when the chunk carries vectors, `O(1)`
    /// otherwise.
    pub(crate) fn pull_up(&mut self, c: u32) {
        let (l, r, slot) = {
            let ch = &self.chunks[c as usize];
            (ch.left, ch.right, ch.slot)
        };
        let mut size = 1;
        if l != NONE {
            size += self.chunks[l as usize].size;
        }
        if r != NONE {
            size += self.chunks[r as usize].size;
        }
        self.chunks[c as usize].size = size;
        if slot == NONE {
            debug_assert!(l == NONE && r == NONE, "slotless chunk with children");
            return;
        }
        let cap = self.slot_cap();
        let mut agg = std::mem::take(&mut self.scratch_agg);
        let mut memb = std::mem::take(&mut self.scratch_memb);
        agg.clear();
        agg.extend_from_slice(&self.chunks[c as usize].base);
        agg.resize(cap, WKey::PLUS_INF);
        memb.clear();
        memb.resize(cap, false);
        memb[slot as usize] = true;
        for child in [l, r] {
            if child == NONE {
                continue;
            }
            let chd = &self.chunks[child as usize];
            debug_assert!(chd.slot != NONE, "child chunk without a slot");
            match self.exec {
                // Lemma 3.2's entry-wise merge, fanned out over OS threads
                // (identical results: entry-wise min/or is deterministic).
                ExecMode::Threads => {
                    threaded_entrywise_min(&mut agg, &chd.agg);
                    threaded_entrywise_or(&mut memb, &chd.memb);
                }
                ExecMode::Simulated => {
                    for i in 0..cap {
                        if chd.agg[i] < agg[i] {
                            agg[i] = chd.agg[i];
                        }
                        if chd.memb[i] {
                            memb[i] = true;
                        }
                    }
                }
            }
        }
        self.scratch_agg = std::mem::replace(&mut self.chunks[c as usize].agg, agg);
        self.scratch_memb = std::mem::replace(&mut self.chunks[c as usize].memb, memb);
    }

    fn rotate(&mut self, x: u32) {
        let p = self.chunks[x as usize].parent;
        let g = self.chunks[p as usize].parent;
        let dir = (self.chunks[p as usize].right == x) as usize;
        let b = if dir == 1 {
            self.chunks[x as usize].left
        } else {
            self.chunks[x as usize].right
        };
        // p adopts b where x used to be.
        if dir == 1 {
            self.chunks[p as usize].right = b;
        } else {
            self.chunks[p as usize].left = b;
        }
        if b != NONE {
            self.chunks[b as usize].parent = p;
        }
        // x adopts p.
        if dir == 1 {
            self.chunks[x as usize].left = p;
        } else {
            self.chunks[x as usize].right = p;
        }
        self.chunks[p as usize].parent = x;
        // g adopts x.
        self.chunks[x as usize].parent = g;
        if g != NONE {
            if self.chunks[g as usize].left == p {
                self.chunks[g as usize].left = x;
            } else {
                self.chunks[g as usize].right = x;
            }
        }
        // Only the demoted node is pulled up here: the promoted node's
        // aggregate is never read before `splay` pulls it up once at the end
        // (each rotation only reads the aggregates of unchanged subtrees and
        // of previously demoted nodes), which halves the `O(J)` vector
        // merges per splay. (The seed baseline keeps its original
        // both-nodes-per-rotation policy.)
        self.pull_up(p);
        if S::SEED_BASELINE {
            self.pull_up(x);
        }
    }

    /// Splay `c` to the root of its list's tree (this is also the paper's
    /// `UpdateAdj` path refresh: every node on the leaf-to-root path has its
    /// aggregate vectors recomputed).
    pub(crate) fn splay(&mut self, c: u32) {
        let mut rotations: u64 = 0;
        while self.chunks[c as usize].parent != NONE {
            let p = self.chunks[c as usize].parent;
            let g = self.chunks[p as usize].parent;
            if g != NONE {
                let zig_zig =
                    (self.chunks[g as usize].right == p) == (self.chunks[p as usize].right == c);
                if zig_zig {
                    self.rotate(p);
                } else {
                    self.rotate(c);
                }
                rotations += 2;
            } else {
                rotations += 1;
            }
            self.rotate(c);
        }
        self.pull_up(c);
        let cap = self.slot_cap() as u64;
        // Lemma 2.3 / 3.2: O(J) per touched node sequentially; O(log J) depth
        // with O(J) processors in the EREW model (per-entry trees S_j).
        self.charge(
            (rotations + 1) * cap.max(1),
            pdmsf_pram::kernels::log2_ceil(self.slot_cap().max(2)) + 1,
            cap.max(1),
        );
    }

    /// Root of the list containing `c`, without restructuring.
    pub(crate) fn tree_root(&self, c: u32) -> u32 {
        let mut cur = c;
        while self.chunks[cur as usize].parent != NONE {
            cur = self.chunks[cur as usize].parent;
        }
        cur
    }

    /// Whether the list containing `c` consists of a single chunk.
    pub(crate) fn list_is_single_chunk(&self, c: u32) -> bool {
        let root = self.tree_root(c);
        self.chunks[root as usize].size == 1
    }

    /// First (leftmost) chunk of the list rooted at `root`.
    pub(crate) fn first_chunk(&self, root: u32) -> u32 {
        let mut cur = root;
        while self.chunks[cur as usize].left != NONE {
            cur = self.chunks[cur as usize].left;
        }
        cur
    }

    /// Last (rightmost) chunk of the list rooted at `root`.
    pub(crate) fn last_chunk(&self, root: u32) -> u32 {
        let mut cur = root;
        while self.chunks[cur as usize].right != NONE {
            cur = self.chunks[cur as usize].right;
        }
        cur
    }

    /// In-order successor chunk within the same list, if any.
    pub(crate) fn next_chunk(&self, c: u32) -> Option<u32> {
        if self.chunks[c as usize].right != NONE {
            return Some(self.first_chunk(self.chunks[c as usize].right));
        }
        let mut cur = c;
        let mut p = self.chunks[cur as usize].parent;
        while p != NONE {
            if self.chunks[p as usize].left == cur {
                return Some(p);
            }
            cur = p;
            p = self.chunks[cur as usize].parent;
        }
        None
    }

    /// In-order predecessor chunk within the same list, if any.
    pub(crate) fn prev_chunk(&self, c: u32) -> Option<u32> {
        if self.chunks[c as usize].left != NONE {
            return Some(self.last_chunk(self.chunks[c as usize].left));
        }
        let mut cur = c;
        let mut p = self.chunks[cur as usize].parent;
        while p != NONE {
            if self.chunks[p as usize].right == cur {
                return Some(p);
            }
            cur = p;
            p = self.chunks[cur as usize].parent;
        }
        None
    }

    /// 0-based position of chunk `c` within its list (number of chunks before
    /// it). Does not restructure the tree.
    pub(crate) fn chunk_rank(&self, c: u32) -> usize {
        let left = self.chunks[c as usize].left;
        let mut rank = if left != NONE {
            self.chunks[left as usize].size as usize
        } else {
            0
        };
        let mut cur = c;
        let mut p = self.chunks[cur as usize].parent;
        while p != NONE {
            if self.chunks[p as usize].right == cur {
                let pl = self.chunks[p as usize].left;
                rank += 1 + if pl != NONE {
                    self.chunks[pl as usize].size as usize
                } else {
                    0
                };
            }
            cur = p;
            p = self.chunks[cur as usize].parent;
        }
        rank
    }

    /// Concatenate the list rooted at `a` with the list rooted at `b`
    /// (`a` first). Either may be `NONE`. Returns the new root.
    pub(crate) fn tree_join(&mut self, a: u32, b: u32) -> u32 {
        if a == NONE {
            return b;
        }
        if b == NONE {
            return a;
        }
        let last = self.last_chunk(a);
        self.splay(last);
        debug_assert_eq!(self.chunks[last as usize].right, NONE);
        self.chunks[last as usize].right = b;
        self.chunks[b as usize].parent = last;
        self.pull_up(last);
        last
    }

    /// Split the list containing `c` immediately after chunk `c`. Returns the
    /// roots `(left, right)`; `right` is `NONE` when `c` is the last chunk.
    pub(crate) fn tree_split_after(&mut self, c: u32) -> (u32, u32) {
        self.splay(c);
        let r = self.chunks[c as usize].right;
        if r != NONE {
            self.chunks[r as usize].parent = NONE;
            self.chunks[c as usize].right = NONE;
            self.pull_up(c);
        }
        (c, r)
    }

    /// Insert chunk `c_new` (currently a detached singleton) immediately after
    /// `c_exist` in its list.
    pub(crate) fn tree_insert_after(&mut self, c_exist: u32, c_new: u32) {
        debug_assert_eq!(self.chunks[c_new as usize].parent, NONE);
        debug_assert_eq!(self.chunks[c_new as usize].left, NONE);
        debug_assert_eq!(self.chunks[c_new as usize].right, NONE);
        self.splay(c_exist);
        let r = self.chunks[c_exist as usize].right;
        self.chunks[c_new as usize].right = r;
        if r != NONE {
            self.chunks[r as usize].parent = c_new;
        }
        self.chunks[c_exist as usize].right = c_new;
        self.chunks[c_new as usize].parent = c_exist;
        self.pull_up(c_new);
        self.pull_up(c_exist);
    }

    /// Detach chunk `c` from its list, leaving it as a singleton tree.
    /// Returns the root of the remaining list (`NONE` if `c` was alone).
    pub(crate) fn tree_remove(&mut self, c: u32) -> u32 {
        self.splay(c);
        let l = self.chunks[c as usize].left;
        let r = self.chunks[c as usize].right;
        if l != NONE {
            self.chunks[l as usize].parent = NONE;
        }
        if r != NONE {
            self.chunks[r as usize].parent = NONE;
        }
        self.chunks[c as usize].left = NONE;
        self.chunks[c as usize].right = NONE;
        self.pull_up(c);
        self.tree_join(l, r)
    }

    /// Collect the chunks of the list rooted at `root`, in list order.
    /// Read-only (does not restructure the tree).
    pub(crate) fn chunks_of_list(&self, root: u32) -> Vec<u32> {
        let mut out = Vec::new();
        if root == NONE {
            return out;
        }
        // Iterative in-order traversal with an explicit stack.
        let mut stack = Vec::new();
        let mut cur = root;
        loop {
            while cur != NONE {
                stack.push(cur);
                cur = self.chunks[cur as usize].left;
            }
            match stack.pop() {
                None => break,
                Some(node) => {
                    out.push(node);
                    cur = self.chunks[node as usize].right;
                }
            }
        }
        out
    }
}
