//! Graph-edge registration: adjacency lists, adjacency counts and the `CAdj`
//! entry maintenance performed at the start of every edge insertion /
//! deletion (Section 2.6).

use super::ChunkedEulerForest;
use pdmsf_graph::{Edge, EdgeId, WKey};

impl ChunkedEulerForest {
    /// Whether the given edge is currently registered.
    pub fn has_edge(&self, id: EdgeId) -> bool {
        self.edges.contains_key(&id)
    }

    /// The registered edge with the given id, if any.
    pub fn edge(&self, id: EdgeId) -> Option<Edge> {
        self.edges.get(&id).copied()
    }

    /// Whether the given edge is currently a forest (tree) edge.
    pub fn is_tree_edge(&self, id: EdgeId) -> bool {
        self.arcs.contains_key(&id)
    }

    /// Register a new graph edge: adjacency lists, adjacency counts of the
    /// chunks holding the endpoints' principal copies, and the `CAdj` pair
    /// entry. Does **not** touch the forest.
    pub fn insert_graph_edge(&mut self, e: Edge) {
        assert!(
            !self.edges.contains_key(&e.id),
            "edge {:?} already registered",
            e.id
        );
        self.edges.insert(e.id, e);
        self.adj[e.u.index()].push(e.id);
        if e.v != e.u {
            self.adj[e.v.index()].push(e.id);
        }
        let c1 = self.occs[self.principal[e.u.index()] as usize].chunk;
        let c2 = self.occs[self.principal[e.v.index()] as usize].chunk;
        self.chunks[c1 as usize].adj_count += 1;
        if e.v != e.u {
            self.chunks[c2 as usize].adj_count += 1;
        }
        self.note_edge_between(c1, c2, WKey::new(e.weight, e.id));
        self.touched.insert(c1);
        self.touched.insert(c2);
        self.charge(2, 1, 2);
        self.flush_rebalance();
    }

    /// Unregister a graph edge (which must not be a forest edge anymore — the
    /// caller cuts forest edges *after* calling this, exactly as in the
    /// paper's deletion procedure where `CAdj` is updated first). Returns the
    /// removed edge.
    pub fn delete_graph_edge(&mut self, id: EdgeId) -> Edge {
        let e = self
            .edges
            .remove(&id)
            .unwrap_or_else(|| panic!("edge {id:?} is not registered"));
        self.adj[e.u.index()].retain(|&x| x != id);
        if e.v != e.u {
            self.adj[e.v.index()].retain(|&x| x != id);
        }
        let c1 = self.occs[self.principal[e.u.index()] as usize].chunk;
        let c2 = self.occs[self.principal[e.v.index()] as usize].chunk;
        self.chunks[c1 as usize].adj_count -= 1;
        if e.v != e.u {
            self.chunks[c2 as usize].adj_count -= 1;
        }
        self.recompute_pair_entry(c1, c2);
        self.touched.insert(c1);
        self.touched.insert(c2);
        self.charge(2, 1, 2);
        self.flush_rebalance();
        e
    }
}
