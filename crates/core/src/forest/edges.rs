//! Graph-edge registration: adjacency lists, adjacency counts and the `CAdj`
//! entry maintenance performed at the start of every edge insertion /
//! deletion (Section 2.6).
//!
//! All bookkeeping is flat: each edge lives in one [`EdgeRec`] slot of the
//! forest's [`pdmsf_graph::arena::EdgeStore`], and adjacency lists hold the
//! slot *handles*, so none of this touches a keyed map.

use super::{ChunkedEulerForest, EdgeRec, NONE};
use pdmsf_graph::arena::EdgeStore;
use pdmsf_graph::{Edge, EdgeId, WKey};

impl<S: EdgeStore<EdgeRec>> ChunkedEulerForest<S> {
    /// Whether the given edge is currently registered.
    pub fn has_edge(&self, id: EdgeId) -> bool {
        self.edges.get_by_id(id).is_some()
    }

    /// The registered edge with the given id, if any.
    pub fn edge(&self, id: EdgeId) -> Option<Edge> {
        self.edges.get_by_id(id).map(|r| r.edge)
    }

    /// Whether the given edge is currently a forest (tree) edge.
    pub fn is_tree_edge(&self, id: EdgeId) -> bool {
        self.edges.get_by_id(id).is_some_and(|r| r.fwd != NONE)
    }

    /// Register a new graph edge: adjacency lists, adjacency counts of the
    /// chunks holding the endpoints' principal copies, and the `CAdj` pair
    /// entry. Does **not** touch the forest.
    ///
    /// # Panics
    /// Panics if the edge id is already registered.
    pub fn insert_graph_edge(&mut self, e: Edge) {
        let h = self.edges.insert(
            e.id,
            EdgeRec {
                edge: e,
                fwd: NONE,
                bwd: NONE,
            },
        );
        self.adj[e.u.index()].push(h);
        if e.v != e.u {
            self.adj[e.v.index()].push(h);
        }
        let c1 = self.vertex_chunk[e.u.index()];
        let c2 = self.vertex_chunk[e.v.index()];
        self.chunks.adj_count[c1 as usize] += 1;
        if e.v != e.u {
            self.chunks.adj_count[c2 as usize] += 1;
        }
        self.note_edge_between(c1, c2, WKey::new(e.weight, e.id));
        self.touch(c1);
        self.touch(c2);
        self.charge(2, 1, 2);
        self.flush_rebalance();
    }

    /// Unregister a graph edge (which must not be a forest edge anymore — the
    /// caller cuts forest edges *after* calling this, exactly as in the
    /// paper's deletion procedure where `CAdj` is updated first). Returns the
    /// removed record; for a tree edge the caller passes it on to
    /// [`ChunkedEulerForest::cut_removed_tree_edge`].
    ///
    /// # Panics
    /// Panics if the edge is not registered.
    pub fn delete_graph_edge(&mut self, id: EdgeId) -> EdgeRec {
        let h = self
            .edges
            .handle_of(id)
            .unwrap_or_else(|| panic!("edge {id:?} is not registered"));
        let e = self.edges.get(h).edge;
        self.adj[e.u.index()].retain(|&x| x != h);
        if e.v != e.u {
            self.adj[e.v.index()].retain(|&x| x != h);
        }
        let rec = self
            .edges
            .remove(id)
            .expect("handle was resolved a moment ago");
        let c1 = self.vertex_chunk[e.u.index()];
        let c2 = self.vertex_chunk[e.v.index()];
        self.chunks.adj_count[c1 as usize] -= 1;
        if e.v != e.u {
            self.chunks.adj_count[c2 as usize] -= 1;
        }
        self.recompute_pair_entry(c1, c2);
        self.touch(c1);
        self.touch(c2);
        self.charge(2, 1, 2);
        self.flush_rebalance();
        rec
    }
}
