//! Minimum-weight-replacement (MWR) edge search — Lemma 2.4 sequentially,
//! Lemma 3.3 in the EREW model.
//!
//! After a forest-edge deletion splits a tree's Euler tour into two lists,
//! the replacement edge is the minimum-weight graph edge with one endpoint's
//! principal copy in each list:
//!
//! * if both lists carry chunk ids, the search uses the `γ` array (root
//!   `CAdj` aggregate of one list masked by the root `Memb` aggregate of the
//!   other), then scans the `O(K)` edges of the winning chunk,
//! * if either list is *short* (single chunk, no id — Section 6), that list
//!   is scanned directly in `O(K)` time (`O(log K)` parallel depth with a
//!   tournament tree).

use super::{ChunkedEulerForest, NONE};
use pdmsf_graph::{Edge, WKey};
use pdmsf_pram::kernels::log2_ceil;

impl ChunkedEulerForest {
    /// The minimum-weight edge with one endpoint (principal copy) in the list
    /// rooted at `root_a` and the other in the list rooted at `root_b`.
    pub fn find_mwr(&mut self, root_a: u32, root_b: u32) -> Option<Edge> {
        debug_assert_ne!(root_a, root_b, "MWR requires two distinct lists");
        let a_short = self.chunks[root_a as usize].size == 1
            && self.chunks[root_a as usize].slot == NONE;
        let b_short = self.chunks[root_b as usize].size == 1
            && self.chunks[root_b as usize].slot == NONE;
        if a_short {
            self.scan_short_list(root_a, root_b)
        } else if b_short {
            self.scan_short_list(root_b, root_a)
        } else {
            self.gamma_search(root_a, root_b)
        }
    }

    /// Direct scan used when `short_root` is a short list: examine every edge
    /// incident to its principal copies and keep the lightest one whose other
    /// endpoint lies in the list rooted at `other_root`.
    fn scan_short_list(&mut self, short_root: u32, other_root: u32) -> Option<Edge> {
        let mut best: Option<(WKey, Edge)> = None;
        let mut scanned = 0u64;
        let occ_ids = self.chunks[short_root as usize].occs.clone();
        for o in occ_ids {
            let v = self.occs[o as usize].vertex;
            if self.principal[v.index()] != o {
                continue;
            }
            for &eid in &self.adj[v.index()] {
                scanned += 1;
                let e = self.edges[&eid];
                let other = e.other(v);
                let pother = self.principal[other.index()];
                let co = self.occs[pother as usize].chunk;
                if self.tree_root(co) != other_root {
                    continue;
                }
                let key = WKey::new(e.weight, eid);
                if best.map_or(true, |(bk, _)| key < bk) {
                    best = Some((key, e));
                }
            }
        }
        self.charge(
            scanned + 1,
            log2_ceil((scanned as usize).max(2)) + 1,
            scanned.max(1),
        );
        best.map(|(_, e)| e)
    }

    /// The `γ`-array search of Lemma 2.4: `γ[i] = CAdj_{root_a}[i]` masked by
    /// `Memb_{root_b}[i]`; the winning chunk of the other list is then
    /// scanned for the witness edge.
    fn gamma_search(&mut self, root_a: u32, root_b: u32) -> Option<Edge> {
        let cap = self.slot_cap();
        let mut best_slot: Option<(WKey, usize)> = None;
        {
            let ra = &self.chunks[root_a as usize];
            let rb = &self.chunks[root_b as usize];
            debug_assert!(ra.slot != NONE && rb.slot != NONE);
            for i in 0..cap {
                if !rb.memb[i] {
                    continue;
                }
                let key = ra.agg[i];
                if key.is_inf() {
                    continue;
                }
                if best_slot.map_or(true, |(bk, _)| key < bk) {
                    best_slot = Some((key, i));
                }
            }
        }
        // Sequentially: O(J) to build and scan γ. EREW: O(1) rounds with O(J)
        // processors to build it, then a tournament tree of depth O(log J).
        self.charge(cap as u64, log2_ceil(cap.max(2)) + 1, cap as u64);
        let (expected_key, slot) = best_slot?;

        // Scan the O(K) edges adjacent to the winning chunk, verifying the
        // other endpoint against the membership of `root_a`.
        let chunk = self.slot_owner[slot];
        debug_assert_ne!(chunk, NONE);
        let occ_ids = self.chunks[chunk as usize].occs.clone();
        let mut best: Option<(WKey, Edge)> = None;
        let mut scanned = 0u64;
        for o in occ_ids {
            let v = self.occs[o as usize].vertex;
            if self.principal[v.index()] != o {
                continue;
            }
            for &eid in &self.adj[v.index()] {
                scanned += 1;
                let e = self.edges[&eid];
                let other = e.other(v);
                let pother = self.principal[other.index()];
                let co = self.occs[pother as usize].chunk;
                let so = self.chunks[co as usize].slot;
                if so == NONE || !self.chunks[root_a as usize].memb[so as usize] {
                    continue;
                }
                let key = WKey::new(e.weight, eid);
                if best.map_or(true, |(bk, _)| key < bk) {
                    best = Some((key, e));
                }
            }
        }
        self.charge(
            scanned + 1,
            log2_ceil((scanned as usize).max(2)) + 1,
            scanned.max(1),
        );
        let (found_key, edge) = best.expect("γ promised an edge between the two lists");
        debug_assert_eq!(
            found_key, expected_key,
            "γ aggregate and chunk scan disagree on the MWR edge"
        );
        Some(edge)
    }
}
