//! Minimum-weight-replacement (MWR) edge search — Lemma 2.4 sequentially,
//! Lemma 3.3 in the EREW model.
//!
//! After a forest-edge deletion splits a tree's Euler tour into two lists,
//! the replacement edge is the minimum-weight graph edge with one endpoint's
//! principal copy in each list:
//!
//! * if both lists carry chunk ids, the search uses the `γ` array (root
//!   `CAdj` aggregate of one list masked by the root `Memb` aggregate of the
//!   other), then scans the `O(K)` edges of the winning chunk,
//! * if either list is *short* (single chunk, no id — Section 6), that list
//!   is scanned directly in `O(K)` time (`O(log K)` parallel depth with a
//!   tournament tree).
//!
//! Candidate edges are gathered into reusable scratch buffers and the final
//! argmin runs through [`ChunkedEulerForest::argmin_keys`], which dispatches
//! to the thread-backed tournament kernel when the forest executes in
//! [`ExecMode::Threads`] — with identical (leftmost-on-tie) results either
//! way.

use super::{ChunkedEulerForest, EdgeRec, NONE};
use pdmsf_graph::arena::EdgeStore;
use pdmsf_graph::{Edge, WKey};
use pdmsf_pram::kernels::{log2_ceil, threaded_masked_min_index, threaded_min_index};
use pdmsf_pram::ExecMode;

impl<S: EdgeStore<EdgeRec>> ChunkedEulerForest<S> {
    /// Leftmost index of the minimum key, executed serially or on the
    /// thread-backed kernel depending on the configured [`ExecMode`].
    pub(crate) fn argmin_keys(&self, keys: &[WKey]) -> Option<usize> {
        match self.exec {
            ExecMode::Threads => threaded_min_index(keys),
            ExecMode::Simulated => {
                let mut best: Option<usize> = None;
                for (i, k) in keys.iter().enumerate() {
                    if best.is_none_or(|b| *k < keys[b]) {
                        best = Some(i);
                    }
                }
                best
            }
        }
    }

    /// Leftmost index of the minimum key among masked entries.
    fn argmin_masked(&self, keys: &[WKey], mask: &[bool]) -> Option<usize> {
        match self.exec {
            ExecMode::Threads => threaded_masked_min_index(keys, mask),
            ExecMode::Simulated => {
                let mut best: Option<usize> = None;
                for (i, (k, keep)) in keys.iter().zip(mask).enumerate() {
                    if *keep && best.is_none_or(|b| *k < keys[b]) {
                        best = Some(i);
                    }
                }
                best
            }
        }
    }

    /// The minimum-weight edge with one endpoint (principal copy) in the list
    /// rooted at `root_a` and the other in the list rooted at `root_b`.
    pub fn find_mwr(&mut self, root_a: u32, root_b: u32) -> Option<Edge> {
        debug_assert_ne!(root_a, root_b, "MWR requires two distinct lists");
        let a_short =
            self.chunks.size[root_a as usize] == 1 && self.chunks.slot[root_a as usize] == NONE;
        let b_short =
            self.chunks.size[root_b as usize] == 1 && self.chunks.slot[root_b as usize] == NONE;
        if a_short {
            self.scan_short_list(root_a, root_b)
        } else if b_short {
            self.scan_short_list(root_b, root_a)
        } else {
            self.gamma_search(root_a, root_b)
        }
    }

    /// Direct scan used when `short_root` is a short list: examine every edge
    /// incident to its principal copies and keep the lightest one whose other
    /// endpoint lies in the list rooted at `other_root`.
    fn scan_short_list(&mut self, short_root: u32, other_root: u32) -> Option<Edge> {
        let mut keys = std::mem::take(&mut self.scratch_keys);
        let mut cands = std::mem::take(&mut self.scratch_cands);
        keys.clear();
        cands.clear();
        let mut scanned = 0u64;
        for &o in &self.chunks.occs[short_root as usize] {
            if !self.chunks.occ_principal(o) {
                continue;
            }
            let v = self.chunks.occ_vert(o);
            let handles = &self.adj[v.index()];
            for (i, &h) in handles.iter().enumerate() {
                if let Some(&ahead) = handles.get(i + 2) {
                    self.edges.prefetch(ahead);
                }
                scanned += 1;
                let e = self.edges.get(h).edge;
                let other = e.other(v);
                let co = self.vertex_chunk[other.index()];
                if self.tree_root(co) != other_root {
                    continue;
                }
                keys.push(WKey::new(e.weight, e.id));
                cands.push(e);
            }
        }
        let best = self.argmin_keys(&keys).map(|i| cands[i]);
        self.charge(
            scanned + 1,
            log2_ceil((scanned as usize).max(2)) + 1,
            scanned.max(1),
        );
        self.scratch_keys = keys;
        self.scratch_cands = cands;
        best
    }

    /// The `γ`-array search of Lemma 2.4: `γ[i] = CAdj_{root_a}[i]` masked by
    /// `Memb_{root_b}[i]`; the winning chunk of the other list is then
    /// scanned for the witness edge.
    fn gamma_search(&mut self, root_a: u32, root_b: u32) -> Option<Edge> {
        let cap = self.slot_cap();
        let best_slot = {
            debug_assert!(
                self.chunks.slot[root_a as usize] != NONE
                    && self.chunks.slot[root_b as usize] != NONE
            );
            let ra_agg = self.rows.agg(self.chunks.row[root_a as usize]);
            let rb_memb = self.rows.memb(self.chunks.row[root_b as usize]);
            // Masked argmin over γ; an `∞` winner means no candidate exists.
            self.argmin_masked(ra_agg, rb_memb).and_then(|i| {
                let key = ra_agg[i];
                if key.is_inf() {
                    None
                } else {
                    Some((key, i))
                }
            })
        };
        // Sequentially: O(J) to build and scan γ. EREW: O(1) rounds with O(J)
        // processors to build it, then a tournament tree of depth O(log J).
        self.charge(cap as u64, log2_ceil(cap.max(2)) + 1, cap as u64);
        let (expected_key, slot) = best_slot?;

        // Scan the O(K) edges adjacent to the winning chunk, verifying the
        // other endpoint against the membership of `root_a`.
        let chunk = self.slot_owner[slot];
        debug_assert_ne!(chunk, NONE);
        let mut keys = std::mem::take(&mut self.scratch_keys);
        let mut cands = std::mem::take(&mut self.scratch_cands);
        keys.clear();
        cands.clear();
        let mut scanned = 0u64;
        let root_a_memb = self.rows.memb(self.chunks.row[root_a as usize]);
        for &o in &self.chunks.occs[chunk as usize] {
            if !self.chunks.occ_principal(o) {
                continue;
            }
            let v = self.chunks.occ_vert(o);
            let handles = &self.adj[v.index()];
            for (i, &h) in handles.iter().enumerate() {
                if let Some(&ahead) = handles.get(i + 2) {
                    self.edges.prefetch(ahead);
                }
                scanned += 1;
                let e = self.edges.get(h).edge;
                let other = e.other(v);
                let co = self.vertex_chunk[other.index()];
                let so = self.chunks.slot[co as usize];
                if so == NONE || !root_a_memb[so as usize] {
                    continue;
                }
                keys.push(WKey::new(e.weight, e.id));
                cands.push(e);
            }
        }
        let best = self.argmin_keys(&keys).map(|i| (keys[i], cands[i]));
        self.charge(
            scanned + 1,
            log2_ceil((scanned as usize).max(2)) + 1,
            scanned.max(1),
        );
        self.scratch_keys = keys;
        self.scratch_cands = cands;
        let (found_key, edge) = best.expect("γ promised an edge between the two lists");
        debug_assert_eq!(
            found_key, expected_key,
            "γ aggregate and chunk scan disagree on the MWR edge"
        );
        Some(edge)
    }
}
