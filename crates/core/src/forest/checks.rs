//! Exhaustive structural validation used by the test-suite.
//!
//! [`ChunkedEulerForest::validate`] brute-force checks every invariant the
//! algorithm relies on: occurrence bookkeeping, Euler-tour/arc consistency,
//! the tour-per-tree correspondence, principal copies, adjacency counts,
//! `CAdj` rows and the LSDS aggregates — the latter against a straightforward
//! array-of-structs reference walk that is deliberately *independent* of the
//! SoA banks' pair-merge and in-place-refresh code paths. It is `O(n·m)` and
//! only meant for tests on small inputs.

use super::{ChunkedEulerForest, EdgeRec, NONE};
use pdmsf_graph::arena::EdgeStore;
use pdmsf_graph::{Edge, UnionFind, WKey};

impl<S: EdgeStore<EdgeRec>> ChunkedEulerForest<S> {
    /// Validate every structural invariant against the given set of forest
    /// edges (the caller's view of the current MSF). Panics with a
    /// description on the first violation.
    pub fn validate(&self, tree_edges: &[Edge]) {
        let num_chunks = self.chunks.len();
        // ---- occurrence / chunk bookkeeping (bank reads) ----
        for ci in 0..num_chunks {
            if !self.chunks.alive(ci as u32) {
                continue;
            }
            assert!(!self.chunks.occs[ci].is_empty(), "chunk {ci} is empty");
            for (pos, &o) in self.chunks.occs[ci].iter().enumerate() {
                assert!(
                    self.chunks.occ_alive(o),
                    "dead occurrence {o} referenced by chunk {ci}"
                );
                assert_eq!(
                    self.chunks.occ_chunk[o as usize] as usize, ci,
                    "occurrence {o} has wrong chunk"
                );
                assert_eq!(
                    self.chunks.occ_pos[o as usize] as usize, pos,
                    "occurrence {o} has wrong position"
                );
            }
        }
        for (v, occ_list) in self.vertex_occs.iter().enumerate() {
            for (vpos, &o) in occ_list.iter().enumerate() {
                assert!(self.chunks.occ_alive(o));
                assert_eq!(self.chunks.occ_vert(o).index(), v);
                assert_eq!(self.chunks.occ_vpos[o as usize] as usize, vpos);
            }
            let p = self.principal[v];
            assert_ne!(p, NONE, "vertex {v} has no principal copy");
            assert!(
                occ_list.contains(&p),
                "principal of {v} is not an occurrence of {v}"
            );
            // Cached principal flags / principal-chunk agree with the
            // authoritative array.
            for &o in occ_list {
                assert_eq!(
                    self.chunks.occ_principal(o),
                    o == p,
                    "stale principal flag on occurrence {o} of vertex {v}"
                );
            }
            assert_eq!(
                self.vertex_chunk[v], self.chunks.occ_chunk[p as usize],
                "stale vertex_chunk cache for vertex {v}"
            );
        }

        // ---- forest structure: components and degrees ----
        let n = self.num_vertices();
        let mut uf = UnionFind::new(n);
        let mut deg = vec![0usize; n];
        for e in tree_edges {
            uf.union(e.u.index(), e.v.index());
            deg[e.u.index()] += 1;
            deg[e.v.index()] += 1;
        }
        // Occurrence count of v must be max(deg_T(v), 1).
        for (v, d) in deg.iter().enumerate() {
            assert_eq!(
                self.vertex_occs[v].len(),
                d.max(&1).to_owned(),
                "vertex {v} has {} occurrences, expected {}",
                self.vertex_occs[v].len(),
                d.max(&1)
            );
        }
        // All occurrences of a tree's vertices must live in the same list,
        // and different trees in different lists.
        let mut component_root: Vec<u32> = vec![NONE; n];
        for v in 0..n {
            let comp = uf.find(v);
            for &o in &self.vertex_occs[v] {
                let root = self.tree_root(self.chunks.occ_chunk[o as usize]);
                if component_root[comp] == NONE {
                    component_root[comp] = root;
                } else {
                    assert_eq!(
                        component_root[comp], root,
                        "vertex {v} (component {comp}) is split across lists"
                    );
                }
            }
        }
        let mut seen_roots: Vec<u32> = component_root.into_iter().filter(|&r| r != NONE).collect();
        seen_roots.sort_unstable();
        let before = seen_roots.len();
        seen_roots.dedup();
        assert_eq!(before, seen_roots.len(), "two components share a list");

        // ---- arcs: each forest edge has two valid arc tails ----
        let mut arc_count = 0usize;
        self.edges.for_each(|_, rec| {
            if rec.fwd != NONE {
                arc_count += 1;
            }
        });
        assert_eq!(arc_count, tree_edges.len(), "arc count mismatch");
        for e in tree_edges {
            let h = self
                .edges
                .handle_of(e.id)
                .unwrap_or_else(|| panic!("{:?} is not registered", e.id));
            let rec = self.edges.get(h);
            let (fwd, bwd) = (rec.fwd, rec.bwd);
            assert_ne!(fwd, NONE, "{:?} has no arcs", e.id);
            assert_eq!(self.chunks.occ_vert(fwd), e.u);
            assert_eq!(self.chunks.occ_vert(bwd), e.v);
            assert_eq!(self.chunks.occ_arc(fwd), Some((h, true)));
            assert_eq!(self.chunks.occ_arc(bwd), Some((h, false)));
            let succ_fwd = self.cyclic_succ(fwd);
            let succ_bwd = self.cyclic_succ(bwd);
            assert_eq!(
                self.chunks.occ_vert(succ_fwd),
                e.v,
                "forward arc of {:?} does not point at an occurrence of {:?}",
                e.id,
                e.v
            );
            assert_eq!(
                self.chunks.occ_vert(succ_bwd),
                e.u,
                "backward arc of {:?} does not point at an occurrence of {:?}",
                e.id,
                e.u
            );
        }
        // Conversely, every occurrence's arc must be registered.
        for oi in 0..self.chunks.occ_len() as u32 {
            if !self.chunks.occ_alive(oi) {
                continue;
            }
            if let Some((h, fwd)) = self.chunks.occ_arc(oi) {
                let rec = self.edges.get(h);
                assert_ne!(
                    rec.fwd, NONE,
                    "occurrence {oi} refers to a non-forest edge {:?}",
                    rec.edge.id
                );
                assert_eq!(if fwd { rec.fwd } else { rec.bwd }, oi);
            }
        }

        // ---- adjacency lists hold live handles of the right endpoints ----
        for (v, handles) in self.adj.iter().enumerate() {
            for &h in handles {
                let rec = self.edges.get(h);
                assert!(
                    rec.edge.touches(pdmsf_graph::VertexId::from(v)),
                    "adjacency of vertex {v} holds a handle of {:?}",
                    rec.edge
                );
            }
        }

        // ---- adjacency counts ----
        for ci in 0..num_chunks {
            if !self.chunks.alive(ci as u32) {
                continue;
            }
            let mut expected = 0usize;
            for &o in &self.chunks.occs[ci] {
                let v = self.chunks.occ_vert(o);
                if self.principal[v.index()] == o {
                    expected += self.adj[v.index()].len();
                }
            }
            assert_eq!(
                self.chunks.adj_count[ci], expected,
                "chunk {ci} adj_count mismatch"
            );
        }

        // ---- slot discipline: single-chunk lists have no id, multi-chunk
        // lists have ids on every chunk; slots and row slabs pair up ----
        for ci in 0..num_chunks {
            if !self.chunks.alive(ci as u32) {
                continue;
            }
            let slot = self.chunks.slot[ci];
            let root = self.tree_root(ci as u32);
            let multi = self.chunks.size[root as usize] > 1;
            if multi {
                assert_ne!(slot, NONE, "chunk {ci} of a multi-chunk list has no id");
            } else {
                assert_eq!(slot, NONE, "single-chunk list {ci} carries an id");
            }
            if slot != NONE {
                assert_eq!(self.slot_owner[slot as usize], ci as u32);
            }
            assert_eq!(
                slot == NONE,
                self.chunks.row[ci] == NONE,
                "chunk {ci}: slot and row-bank slab must be paired"
            );
        }

        // ---- CAdj rows against brute force ----
        let cap = self.slot_cap();
        let mut brute = vec![vec![WKey::PLUS_INF; cap]; cap];
        self.edges.for_each(|eid, rec| {
            let e = rec.edge;
            let cu = self.chunks.occ_chunk[self.principal[e.u.index()] as usize];
            let cv = self.chunks.occ_chunk[self.principal[e.v.index()] as usize];
            let su = self.chunks.slot[cu as usize];
            let sv = self.chunks.slot[cv as usize];
            if su == NONE || sv == NONE {
                return;
            }
            let key = WKey::new(e.weight, eid);
            if key < brute[su as usize][sv as usize] {
                brute[su as usize][sv as usize] = key;
                brute[sv as usize][su as usize] = key;
            }
        });
        for ci in 0..num_chunks {
            if !self.chunks.alive(ci as u32) || self.chunks.slot[ci] == NONE {
                continue;
            }
            let s = self.chunks.slot[ci] as usize;
            for (t, cell) in self.rows.base(self.chunks.row[ci]).iter().enumerate() {
                assert_eq!(
                    *cell, brute[s][t],
                    "CAdj[{ci}][slot {t}] is stale (slot {s})"
                );
            }
        }

        // ---- LSDS aggregates at every slotted chunk, checked against an
        // AoS-style reference walk over a private snapshot ----
        for ci in 0..num_chunks {
            if !self.chunks.alive(ci as u32) || self.chunks.slot[ci] == NONE {
                continue;
            }
            // Expected aggregate: entry-wise min / OR over the subtree.
            let mut expected_agg = vec![WKey::PLUS_INF; cap];
            let mut expected_memb = vec![false; cap];
            let mut stack = vec![ci as u32];
            let mut subtree = 0u32;
            while let Some(node) = stack.pop() {
                subtree += 1;
                let ni = node as usize;
                for (t, cell) in self.rows.base(self.chunks.row[ni]).iter().enumerate() {
                    if *cell < expected_agg[t] {
                        expected_agg[t] = *cell;
                    }
                }
                expected_memb[self.chunks.slot[ni] as usize] = true;
                if self.chunks.left[ni] != NONE {
                    stack.push(self.chunks.left[ni]);
                }
                if self.chunks.right[ni] != NONE {
                    stack.push(self.chunks.right[ni]);
                }
            }
            assert_eq!(
                self.chunks.size[ci], subtree,
                "chunk {ci} subtree size mismatch"
            );
            assert_eq!(
                self.rows.agg(self.chunks.row[ci]),
                &expected_agg[..],
                "chunk {ci} aggregate is stale"
            );
            assert_eq!(
                self.rows.memb(self.chunks.row[ci]),
                &expected_memb[..],
                "chunk {ci} membership is stale"
            );
        }
    }
}
