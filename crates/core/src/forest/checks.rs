//! Exhaustive structural validation used by the test-suite.
//!
//! [`ChunkedEulerForest::validate`] brute-force checks every invariant the
//! algorithm relies on: occurrence bookkeeping, Euler-tour/arc consistency,
//! the tour-per-tree correspondence, principal copies, adjacency counts,
//! `CAdj` rows and the LSDS aggregates. It is `O(n·m)` and only meant for
//! tests on small inputs.

use super::{ChunkedEulerForest, NONE};
use pdmsf_graph::{Edge, UnionFind, WKey};
use std::collections::HashMap;

impl ChunkedEulerForest {
    /// Validate every structural invariant against the given set of forest
    /// edges (the caller's view of the current MSF). Panics with a
    /// description on the first violation.
    pub fn validate(&self, tree_edges: &[Edge]) {
        // ---- occurrence / chunk bookkeeping ----
        for (ci, chunk) in self.chunks.iter().enumerate() {
            if !chunk.alive {
                continue;
            }
            assert!(!chunk.occs.is_empty(), "chunk {ci} is empty");
            for (pos, &o) in chunk.occs.iter().enumerate() {
                let occ = &self.occs[o as usize];
                assert!(occ.alive, "dead occurrence {o} referenced by chunk {ci}");
                assert_eq!(occ.chunk as usize, ci, "occurrence {o} has wrong chunk");
                assert_eq!(occ.pos as usize, pos, "occurrence {o} has wrong position");
            }
        }
        for (v, occ_list) in self.vertex_occs.iter().enumerate() {
            for (vpos, &o) in occ_list.iter().enumerate() {
                let occ = &self.occs[o as usize];
                assert!(occ.alive);
                assert_eq!(occ.vertex.index(), v);
                assert_eq!(occ.vpos as usize, vpos);
            }
            let p = self.principal[v];
            assert_ne!(p, NONE, "vertex {v} has no principal copy");
            assert!(occ_list.contains(&p), "principal of {v} is not an occurrence of {v}");
        }

        // ---- forest structure: components and degrees ----
        let n = self.num_vertices();
        let mut uf = UnionFind::new(n);
        let mut deg = vec![0usize; n];
        for e in tree_edges {
            uf.union(e.u.index(), e.v.index());
            deg[e.u.index()] += 1;
            deg[e.v.index()] += 1;
        }
        let mut uf = uf;
        // Occurrence count of v must be max(deg_T(v), 1).
        for v in 0..n {
            assert_eq!(
                self.vertex_occs[v].len(),
                deg[v].max(1),
                "vertex {v} has {} occurrences, expected {}",
                self.vertex_occs[v].len(),
                deg[v].max(1)
            );
        }
        // All occurrences of a tree's vertices must live in the same list,
        // and different trees in different lists.
        let mut component_root: HashMap<usize, u32> = HashMap::new();
        for v in 0..n {
            let comp = uf.find(v);
            for &o in &self.vertex_occs[v] {
                let root = self.tree_root(self.occs[o as usize].chunk);
                match component_root.get(&comp) {
                    None => {
                        component_root.insert(comp, root);
                    }
                    Some(&r) => assert_eq!(
                        r, root,
                        "vertex {v} (component {comp}) is split across lists"
                    ),
                }
            }
        }
        let mut seen_roots: Vec<u32> = component_root.values().copied().collect();
        seen_roots.sort_unstable();
        let before = seen_roots.len();
        seen_roots.dedup();
        assert_eq!(before, seen_roots.len(), "two components share a list");

        // ---- arcs: each forest edge has two valid arc tails ----
        assert_eq!(self.arcs.len(), tree_edges.len(), "arc count mismatch");
        for e in tree_edges {
            let &(fwd, bwd) = self
                .arcs
                .get(&e.id)
                .unwrap_or_else(|| panic!("{:?} has no arcs", e.id));
            assert_eq!(self.occs[fwd as usize].vertex, e.u);
            assert_eq!(self.occs[bwd as usize].vertex, e.v);
            assert_eq!(self.occs[fwd as usize].arc, Some((e.id, true)));
            assert_eq!(self.occs[bwd as usize].arc, Some((e.id, false)));
            let succ_fwd = self.cyclic_succ(fwd);
            let succ_bwd = self.cyclic_succ(bwd);
            assert_eq!(
                self.occs[succ_fwd as usize].vertex, e.v,
                "forward arc of {:?} does not point at an occurrence of {:?}",
                e.id, e.v
            );
            assert_eq!(
                self.occs[succ_bwd as usize].vertex, e.u,
                "backward arc of {:?} does not point at an occurrence of {:?}",
                e.id, e.u
            );
        }
        // Conversely, every occurrence's arc must be registered.
        for (oi, occ) in self.occs.iter().enumerate() {
            if !occ.alive {
                continue;
            }
            if let Some((eid, fwd)) = occ.arc {
                let &(f, b) = self
                    .arcs
                    .get(&eid)
                    .unwrap_or_else(|| panic!("occurrence {oi} refers to unknown arc {eid:?}"));
                assert_eq!(if fwd { f } else { b }, oi as u32);
            }
        }

        // ---- adjacency counts ----
        for (ci, chunk) in self.chunks.iter().enumerate() {
            if !chunk.alive {
                continue;
            }
            let mut expected = 0usize;
            for &o in &chunk.occs {
                let v = self.occs[o as usize].vertex;
                if self.principal[v.index()] == o {
                    expected += self.adj[v.index()].len();
                }
            }
            assert_eq!(chunk.adj_count, expected, "chunk {ci} adj_count mismatch");
        }

        // ---- slot discipline: single-chunk lists have no id, multi-chunk
        // lists have ids on every chunk ----
        for (ci, chunk) in self.chunks.iter().enumerate() {
            if !chunk.alive {
                continue;
            }
            let root = self.tree_root(ci as u32);
            let multi = self.chunks[root as usize].size > 1;
            if multi {
                assert_ne!(chunk.slot, NONE, "chunk {ci} of a multi-chunk list has no id");
            } else {
                assert_eq!(chunk.slot, NONE, "single-chunk list {ci} carries an id");
            }
            if chunk.slot != NONE {
                assert_eq!(self.slot_owner[chunk.slot as usize], ci as u32);
            }
        }

        // ---- CAdj rows against brute force ----
        let cap = self.slot_cap();
        let mut brute = vec![vec![WKey::PLUS_INF; cap]; cap];
        for (&eid, e) in &self.edges {
            let cu = self.occs[self.principal[e.u.index()] as usize].chunk;
            let cv = self.occs[self.principal[e.v.index()] as usize].chunk;
            let su = self.chunks[cu as usize].slot;
            let sv = self.chunks[cv as usize].slot;
            if su == NONE || sv == NONE {
                continue;
            }
            let key = WKey::new(e.weight, eid);
            if key < brute[su as usize][sv as usize] {
                brute[su as usize][sv as usize] = key;
                brute[sv as usize][su as usize] = key;
            }
        }
        for (ci, chunk) in self.chunks.iter().enumerate() {
            if !chunk.alive || chunk.slot == NONE {
                continue;
            }
            let s = chunk.slot as usize;
            for t in 0..cap {
                assert_eq!(
                    chunk.base[t], brute[s][t],
                    "CAdj[{ci}][slot {t}] is stale (slot {s})"
                );
            }
        }

        // ---- LSDS aggregates at every slotted chunk ----
        for (ci, chunk) in self.chunks.iter().enumerate() {
            if !chunk.alive || chunk.slot == NONE {
                continue;
            }
            // Expected aggregate: entry-wise min / OR over the subtree.
            let mut expected_agg = vec![WKey::PLUS_INF; cap];
            let mut expected_memb = vec![false; cap];
            let mut stack = vec![ci as u32];
            let mut subtree = 0u32;
            while let Some(node) = stack.pop() {
                subtree += 1;
                let nd = &self.chunks[node as usize];
                for t in 0..cap {
                    if nd.base[t] < expected_agg[t] {
                        expected_agg[t] = nd.base[t];
                    }
                }
                expected_memb[nd.slot as usize] = true;
                if nd.left != NONE {
                    stack.push(nd.left);
                }
                if nd.right != NONE {
                    stack.push(nd.right);
                }
            }
            assert_eq!(chunk.size, subtree, "chunk {ci} subtree size mismatch");
            assert_eq!(chunk.agg, expected_agg, "chunk {ci} aggregate is stale");
            assert_eq!(chunk.memb, expected_memb, "chunk {ci} membership is stale");
        }
    }
}
