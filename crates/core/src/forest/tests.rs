//! Tests of the chunked Euler-tour forest, driven through the sequential and
//! parallel front-ends and differentially checked against the Kruskal
//! reference and the baseline structures.

use crate::par::ParDynamicMsf;
use crate::seq::SeqDynamicMsf;
use crate::sparsify::SparsifiedMsf;
use pdmsf_baselines::NaiveDynamicMsf;
use pdmsf_graph::{
    assert_matches_kruskal, DynamicMsf, Edge, EdgeId, GraphSpec, StreamKind, UpdateOp,
    UpdateStream, UpdateStreamSpec, VertexId, Weight,
};

fn edge(id: u32, u: u32, v: u32, w: i64) -> Edge {
    Edge {
        id: EdgeId(id),
        u: VertexId(u),
        v: VertexId(v),
        weight: Weight::new(w),
    }
}

/// Drive a structure through a stream, checking against Kruskal (and the
/// internal invariants when `validate` is provided) after every operation.
fn drive_checked<M: DynamicMsf>(
    structure: &mut M,
    stream: &UpdateStream,
    mut validate: impl FnMut(&M),
) {
    stream.replay_with(|mirror, op| {
        match op {
            None => {
                for e in mirror.edges() {
                    structure.insert(e);
                }
            }
            Some(UpdateOp::Insert { .. }) => {
                let newest = mirror.edges().max_by_key(|e| e.id).unwrap();
                structure.insert(newest);
            }
            Some(UpdateOp::Delete { id }) => {
                structure.delete(*id);
            }
        }
        assert_matches_kruskal(structure, mirror);
        validate(structure);
    });
}

#[test]
fn small_hand_driven_sequence() {
    let mut s = SeqDynamicMsf::with_chunk_parameter(6, 3);
    assert_eq!(
        s.insert(edge(0, 0, 1, 4)),
        pdmsf_graph::MsfDelta::added(EdgeId(0))
    );
    assert_eq!(
        s.insert(edge(1, 1, 2, 2)),
        pdmsf_graph::MsfDelta::added(EdgeId(1))
    );
    assert_eq!(s.insert(edge(2, 0, 2, 7)), pdmsf_graph::MsfDelta::NONE);
    s.validate();
    // Lighter parallel edge replaces the heaviest cycle edge.
    assert_eq!(
        s.insert(edge(3, 0, 1, 1)),
        pdmsf_graph::MsfDelta::swap(EdgeId(3), EdgeId(0))
    );
    s.validate();
    assert!(s.connected(VertexId(0), VertexId(2)));
    assert!(!s.connected(VertexId(0), VertexId(5)));
    assert_eq!(s.forest_weight(), 1 + 2);
    // Deleting a forest edge finds the replacement (the weight-7 edge).
    assert_eq!(
        s.delete(EdgeId(1)),
        pdmsf_graph::MsfDelta::swap(EdgeId(2), EdgeId(1))
    );
    s.validate();
    assert_eq!(s.forest_weight(), 1 + 7);
    // Deleting a bridge disconnects.
    assert_eq!(
        s.delete(EdgeId(2)),
        pdmsf_graph::MsfDelta::removed(EdgeId(2))
    );
    assert!(!s.connected(VertexId(0), VertexId(2)));
    s.validate();
}

#[test]
fn isolated_vertices_and_self_loops() {
    let mut s = SeqDynamicMsf::with_chunk_parameter(3, 2);
    assert_eq!(s.insert(edge(0, 1, 1, 5)), pdmsf_graph::MsfDelta::NONE);
    s.validate();
    assert_eq!(s.delete(EdgeId(0)), pdmsf_graph::MsfDelta::NONE);
    s.validate();
    let v = s.add_vertex();
    assert_eq!(v, VertexId(3));
    assert_eq!(
        s.insert(edge(1, 3, 0, 2)),
        pdmsf_graph::MsfDelta::added(EdgeId(1))
    );
    s.validate();
}

#[test]
fn seq_matches_kruskal_small_chunks_mixed_stream() {
    // A deliberately tiny K forces constant chunk splits / merges and short
    // list transitions.
    for (n, k, seed) in [(12usize, 2usize, 1u64), (20, 3, 2), (32, 4, 3)] {
        let stream = UpdateStream::generate(&UpdateStreamSpec {
            base: GraphSpec::RandomSparse { n, m: n * 2, seed },
            ops: 250,
            kind: StreamKind::Mixed {
                insert_permille: 480,
            },
            seed: seed + 100,
        });
        let mut s = SeqDynamicMsf::with_chunk_parameter(n, k);
        drive_checked(&mut s, &stream, |m| m.validate());
    }
}

#[test]
fn seq_matches_kruskal_default_k() {
    let n = 60;
    let stream = UpdateStream::generate(&UpdateStreamSpec {
        base: GraphSpec::RandomSparse {
            n,
            m: 2 * n,
            seed: 7,
        },
        ops: 400,
        kind: StreamKind::Mixed {
            insert_permille: 500,
        },
        seed: 11,
    });
    let mut s = SeqDynamicMsf::new(n);
    drive_checked(&mut s, &stream, |m| m.validate());
}

#[test]
fn seq_matches_kruskal_on_failure_stream() {
    // Delete-only stream over a grid: most deletions hit tree edges and
    // exercise the MWR search.
    let stream = UpdateStream::generate(&UpdateStreamSpec {
        base: GraphSpec::Grid {
            rows: 6,
            cols: 6,
            seed: 13,
        },
        ops: 100,
        kind: StreamKind::Failures,
        seed: 17,
    });
    let mut s = SeqDynamicMsf::with_chunk_parameter(36, 4);
    drive_checked(&mut s, &stream, |m| m.validate());
}

#[test]
fn seq_matches_kruskal_sliding_window() {
    let n = 40;
    let stream = UpdateStream::generate(&UpdateStreamSpec {
        base: GraphSpec::RandomSparse { n, m: 30, seed: 19 },
        ops: 300,
        kind: StreamKind::SlidingWindow { window: 60 },
        seed: 23,
    });
    let mut s = SeqDynamicMsf::with_chunk_parameter(n, 5);
    drive_checked(&mut s, &stream, |m| m.validate());
}

#[test]
fn par_produces_identical_forests_and_logarithmic_depth() {
    let n = 48;
    let stream = UpdateStream::generate(&UpdateStreamSpec {
        base: GraphSpec::RandomSparse {
            n,
            m: 2 * n,
            seed: 29,
        },
        ops: 300,
        kind: StreamKind::Mixed {
            insert_permille: 500,
        },
        seed: 31,
    });
    let mut par = ParDynamicMsf::new(n);
    let mut seq = SeqDynamicMsf::new(n);
    stream.replay_with(|mirror, op| {
        match op {
            None => {
                for e in mirror.edges() {
                    par.insert(e);
                    seq.insert(e);
                }
            }
            Some(UpdateOp::Insert { .. }) => {
                let newest = mirror.edges().max_by_key(|e| e.id).unwrap();
                assert_eq!(par.insert(newest), seq.insert(newest));
            }
            Some(UpdateOp::Delete { id }) => {
                assert_eq!(par.delete(*id), seq.delete(*id));
            }
        }
        assert_eq!(par.forest_edges(), seq.forest_edges());
        assert_matches_kruskal(&par, mirror);
    });
    par.validate();
    // The PRAM accounting must show sub-linear depth per operation: the
    // worst-case depth should be well below the work (which is Θ(sqrt n)-ish)
    // and bounded by a small multiple of log^2 n for these sizes.
    let worst = par.meter().worst_op();
    assert!(worst.depth > 0);
    assert!(
        worst.depth < 40 * 6 * 6,
        "parallel depth {} looks super-logarithmic",
        worst.depth
    );
    assert!(worst.work >= worst.depth);
}

#[test]
fn chunk_parameter_extremes_still_correct() {
    // K larger than the whole graph (single chunk per list) and K = 2
    // (maximum fragmentation) must both remain correct.
    for k in [2usize, 1000] {
        let stream = UpdateStream::generate(&UpdateStreamSpec {
            base: GraphSpec::PreferentialAttachment {
                n: 24,
                attach: 2,
                seed: 37,
            },
            ops: 200,
            kind: StreamKind::Mixed {
                insert_permille: 470,
            },
            seed: 41,
        });
        let mut s = SeqDynamicMsf::with_chunk_parameter(24, k);
        drive_checked(&mut s, &stream, |m| m.validate());
    }
}

#[test]
fn seq_agrees_with_naive_baseline_including_deltas() {
    let n = 30;
    let stream = UpdateStream::generate(&UpdateStreamSpec {
        base: GraphSpec::RandomSparse { n, m: 50, seed: 43 },
        ops: 250,
        kind: StreamKind::Mixed {
            insert_permille: 500,
        },
        seed: 47,
    });
    let mut a = SeqDynamicMsf::with_chunk_parameter(n, 4);
    let mut b = NaiveDynamicMsf::new(n);
    stream.replay_with(|_, op| match op {
        None => {}
        Some(UpdateOp::Insert { .. }) => {}
        Some(UpdateOp::Delete { .. }) => {}
    });
    // Replay manually so deltas can be compared op by op.
    stream.replay_with(|mirror, op| {
        match op {
            None => {
                for e in mirror.edges() {
                    assert_eq!(a.insert(e), b.insert(e));
                }
            }
            Some(UpdateOp::Insert { .. }) => {
                let newest = mirror.edges().max_by_key(|e| e.id).unwrap();
                assert_eq!(a.insert(newest), b.insert(newest), "insert deltas diverged");
            }
            Some(UpdateOp::Delete { id }) => {
                assert_eq!(a.delete(*id), b.delete(*id), "delete deltas diverged");
            }
        }
        assert_eq!(a.forest_edges(), b.forest_edges());
    });
}

#[test]
fn sparsified_seq_matches_kruskal_on_dense_graph() {
    // Density m = 8n exercises several sparsification levels.
    let n = 24;
    let stream = UpdateStream::generate(&UpdateStreamSpec {
        base: GraphSpec::RandomSparse {
            n,
            m: 8 * n,
            seed: 53,
        },
        ops: 200,
        kind: StreamKind::Mixed {
            insert_permille: 500,
        },
        seed: 59,
    });
    let mut s =
        SparsifiedMsf::new_with_capacity(n, 8 * n, |nv| SeqDynamicMsf::with_chunk_parameter(nv, 4));
    assert!(s.num_levels() >= 3);
    drive_checked(&mut s, &stream, |_| ());
}

#[test]
fn forest_stats_report_invariant_one() {
    let n = 64;
    let stream = UpdateStream::generate(&UpdateStreamSpec {
        base: GraphSpec::RandomSparse {
            n,
            m: 2 * n,
            seed: 61,
        },
        ops: 300,
        kind: StreamKind::Mixed {
            insert_permille: 520,
        },
        seed: 67,
    });
    let mut s = SeqDynamicMsf::with_chunk_parameter(n, 6);
    drive_checked(&mut s, &stream, |_| ());
    let stats = s.forest_stats();
    assert!(stats.chunks >= 1);
    assert!(stats.occurrences >= n);
    // Invariant 1 upper bound (the graph is low-degree enough here).
    assert!(
        stats.max_nc <= 3 * s.chunk_parameter() + 8,
        "max n_c = {} exceeds 3K = {}",
        stats.max_nc,
        3 * s.chunk_parameter()
    );
    assert_eq!(stats.k, 6);
}

mod soa_vs_aos {
    //! Property test pinning the structure-of-arrays banks to a plain
    //! array-of-structs reference: after arbitrary update streams, the
    //! arena's `size` fields and row-bank `agg` slabs must equal what a
    //! straightforward recursive walk over an AoS snapshot computes.

    use crate::forest::NONE;
    use crate::par::ParDynamicMsf;
    use crate::seq::SeqDynamicMsf;
    use pdmsf_graph::{DynamicMsf, Edge, EdgeId, VertexId, WKey, Weight};
    use proptest::prelude::*;

    /// The old fat-`Chunk` shape: everything one record, one `Vec` per row.
    struct AosChunk {
        left: u32,
        right: u32,
        base: Vec<WKey>,
    }

    /// The old fat-`Occ` shape: one record per occurrence, reconstructed
    /// from the flat `occ_*` banks.
    #[derive(PartialEq, Eq, Debug)]
    struct AosOcc {
        vertex: u32,
        chunk: u32,
        pos: u32,
        vpos: u32,
        arc: Option<(u32, bool)>,
        principal: bool,
    }

    /// Recursive reference: (subtree chunk count, entry-wise min of `base`).
    fn walk(aos: &[Option<AosChunk>], c: u32, agg: &mut Vec<WKey>) -> u32 {
        let node = aos[c as usize].as_ref().expect("walked into a dead chunk");
        let mut out = node.base.clone();
        let mut size = 1;
        for child in [node.left, node.right] {
            if child == NONE {
                continue;
            }
            let mut child_agg = Vec::new();
            size += walk(aos, child, &mut child_agg);
            for (o, ca) in out.iter_mut().zip(&child_agg) {
                if *ca < *o {
                    *o = *ca;
                }
            }
        }
        *agg = out;
        size
    }

    fn check_against_aos(forest: &crate::forest::ChunkedEulerForest) {
        // Snapshot the banks into AoS records …
        let aos: Vec<Option<AosChunk>> = (0..forest.chunks.len() as u32)
            .map(|c| {
                let ci = c as usize;
                if !forest.chunks.alive(c) {
                    return None;
                }
                Some(AosChunk {
                    left: forest.chunks.left[ci],
                    right: forest.chunks.right[ci],
                    base: if forest.chunks.row[ci] == NONE {
                        Vec::new()
                    } else {
                        forest.rows.base(forest.chunks.row[ci]).to_vec()
                    },
                })
            })
            .collect();
        // … and require SoA `size`/`agg` to match the reference walk.
        for c in 0..forest.chunks.len() as u32 {
            if !forest.chunks.alive(c) {
                continue;
            }
            let mut expected_agg = Vec::new();
            let expected_size = walk(&aos, c, &mut expected_agg);
            assert_eq!(
                forest.chunks.size[c as usize], expected_size,
                "SoA size of chunk {c} diverged from the AoS walk"
            );
            if forest.chunks.row[c as usize] != NONE {
                assert_eq!(
                    forest.rows.agg(forest.chunks.row[c as usize]),
                    &expected_agg[..],
                    "SoA agg of chunk {c} diverged from the AoS walk"
                );
            }
        }
    }

    /// Pin the occurrence banks to an AoS reference: snapshot every live
    /// occurrence into an [`AosOcc`] record, then require the denormalized
    /// bank state (`occ_chunk`, `occ_pos`, `occ_vpos`, principal flags, arc
    /// tails) to equal what a straightforward walk over the *list
    /// structures* — chunk occurrence lists, per-vertex occurrence lists,
    /// edge records — computes, independently of the bank maintenance code
    /// paths (restamp sweeps, flag updates, arc transfers).
    fn check_occs_against_aos(forest: &crate::forest::ChunkedEulerForest) {
        use pdmsf_graph::arena::EdgeStore;
        let arena = &forest.chunks;
        let aos: Vec<Option<AosOcc>> = (0..arena.occ_len() as u32)
            .map(|o| {
                arena.occ_alive(o).then(|| AosOcc {
                    vertex: arena.occ_vert(o).0,
                    chunk: arena.occ_chunk[o as usize],
                    pos: arena.occ_pos[o as usize],
                    vpos: arena.occ_vpos[o as usize],
                    arc: arena.occ_arc(o),
                    principal: arena.occ_principal(o),
                })
            })
            .collect();
        let live = aos.iter().flatten().count();

        // Reference walk 1: the chunk lists are the authority for
        // `chunk`/`pos`, and every live occurrence appears in exactly one.
        let mut seen = 0usize;
        for c in 0..arena.len() as u32 {
            if !arena.alive(c) {
                continue;
            }
            for (pos, &o) in arena.occs[c as usize].iter().enumerate() {
                let occ = aos[o as usize].as_ref().expect("dead occ in a chunk list");
                assert_eq!(occ.chunk, c, "occ bank chunk of {o} diverged");
                assert_eq!(occ.pos as usize, pos, "occ bank pos of {o} diverged");
                seen += 1;
            }
        }
        assert_eq!(seen, live, "live occurrences outside any chunk list");

        // Reference walk 2: the per-vertex lists are the authority for
        // `vertex`/`vpos`, and the principal flag mirrors `principal[v]`
        // (with the `vertex_chunk` cache following the principal's chunk).
        let mut seen = 0usize;
        for (v, list) in forest.vertex_occs.iter().enumerate() {
            for (vpos, &o) in list.iter().enumerate() {
                let occ = aos[o as usize].as_ref().expect("dead occ in a vertex list");
                assert_eq!(occ.vertex as usize, v, "occ bank vertex of {o} diverged");
                assert_eq!(occ.vpos as usize, vpos, "occ bank vpos of {o} diverged");
                assert_eq!(
                    occ.principal,
                    forest.principal[v] == o,
                    "occ bank principal flag of {o} diverged"
                );
                seen += 1;
            }
            let p = forest.principal[v];
            assert_eq!(
                forest.vertex_chunk[v],
                aos[p as usize].as_ref().expect("dead principal").chunk,
                "vertex_chunk cache of {v} diverged"
            );
        }
        assert_eq!(seen, live, "live occurrences outside any vertex list");

        // Reference walk 3: the edge records are the authority for arcs —
        // each tree edge's two tails carry exactly its handle + direction,
        // and no other occurrence carries an arc.
        let mut expected_arcs = 0usize;
        forest.edges.for_each(|_, rec| {
            if rec.fwd == NONE {
                return;
            }
            expected_arcs += 2;
            let h = forest
                .edges
                .handle_of(rec.edge.id)
                .expect("registered edge has a handle");
            assert_eq!(
                aos[rec.fwd as usize].as_ref().and_then(|occ| occ.arc),
                Some((h, true)),
                "forward arc tail of {:?} diverged",
                rec.edge.id
            );
            assert_eq!(
                aos[rec.bwd as usize].as_ref().and_then(|occ| occ.arc),
                Some((h, false)),
                "backward arc tail of {:?} diverged",
                rec.edge.id
            );
        });
        let carried = aos.iter().flatten().filter(|occ| occ.arc.is_some()).count();
        assert_eq!(carried, expected_arcs, "stray arc flags in the occ banks");
    }

    #[derive(Clone, Debug)]
    enum Op {
        Insert { u: u8, v: u8, w: u8 },
        DeleteNth(u8),
    }

    fn op_strategy(n: u8) -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (0..n, 0..n, any::<u8>()).prop_map(|(u, v, w)| Op::Insert { u, v, w }),
            2 => any::<u8>().prop_map(Op::DeleteNth),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

        /// Tiny K maximises chunk churn (splits, merges, slot transitions),
        /// exercising every RowBank alloc/free/grow path.
        #[test]
        fn soa_banks_match_aos_reference(ops in proptest::collection::vec(op_strategy(12), 1..100)) {
            let n = 12usize;
            let mut s = SeqDynamicMsf::with_chunk_parameter(n, 2);
            let mut live: Vec<Edge> = Vec::new();
            let mut next_id = 0u32;
            for op in &ops {
                match *op {
                    Op::Insert { u, v, w } => {
                        let e = Edge {
                            id: EdgeId(next_id),
                            u: VertexId(u as u32 % n as u32),
                            v: VertexId(v as u32 % n as u32),
                            weight: Weight::new(w as i64),
                        };
                        next_id += 1;
                        live.push(e);
                        s.insert(e);
                    }
                    Op::DeleteNth(k) => {
                        if live.is_empty() { continue; }
                        let e = live.swap_remove(k as usize % live.len());
                        s.delete(e.id);
                    }
                }
                check_against_aos(s.forest());
                check_occs_against_aos(s.forest());
            }
        }

        /// Same property through the threaded parallel front-end: the pooled
        /// kernels must leave the banks bit-for-bit in the reference state.
        #[test]
        fn soa_banks_match_aos_reference_threaded(ops in proptest::collection::vec(op_strategy(10), 1..80)) {
            let n = 10usize;
            let mut p = ParDynamicMsf::with_execution(n, 2, pdmsf_pram::ExecMode::Threads);
            let mut live: Vec<Edge> = Vec::new();
            let mut next_id = 0u32;
            for op in &ops {
                match *op {
                    Op::Insert { u, v, w } => {
                        let e = Edge {
                            id: EdgeId(next_id),
                            u: VertexId(u as u32 % n as u32),
                            v: VertexId(v as u32 % n as u32),
                            weight: Weight::new(w as i64),
                        };
                        next_id += 1;
                        live.push(e);
                        p.insert(e);
                    }
                    Op::DeleteNth(k) => {
                        if live.is_empty() { continue; }
                        let e = live.swap_remove(k as usize % live.len());
                        p.delete(e.id);
                    }
                }
                p.validate();
                check_against_aos(p.forest());
                check_occs_against_aos(p.forest());
            }
        }
    }
}

#[test]
fn meter_accumulates_costs_per_operation() {
    let mut s = ParDynamicMsf::new(16);
    s.insert(edge(0, 0, 1, 5));
    let c0 = s.last_op_cost();
    assert!(c0.work > 0 && c0.depth > 0);
    s.insert(edge(1, 1, 2, 3));
    s.insert(edge(2, 2, 3, 9));
    s.delete(EdgeId(1));
    assert_eq!(s.meter().num_ops(), 4);
    assert!(s.meter().total().work >= s.meter().worst_op().work);
}
