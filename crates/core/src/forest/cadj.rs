//! Chunk ids (`slots`), `CAdj` rows and their aggregation upkeep.
//!
//! A chunk's `CAdj` row stores, for every other chunk id, the minimum weight
//! of a graph edge whose endpoints have their principal copies in the two
//! chunks (Section 2.2). This module owns:
//!
//! * slot allocation / release (short lists carry no id — Section 6),
//! * full row rebuilds by scanning the `O(K)` edges adjacent to a chunk
//!   (Lemma 2.2; in the EREW model this is the tournament-tree construction
//!   of Lemma 3.1),
//! * the symmetric "cross update" of every other chunk's row,
//! * the global per-entry refresh of aggregate vectors (the second half of
//!   `UpdateAdj`, Lemma 2.3).
//!
//! Rows live in the forest's [`super::RowBank`]: one slab per slotted chunk,
//! recycled through the bank's free list, so the frequent short-list slot
//! transitions never allocate.

use super::{ChunkedEulerForest, EdgeRec, NONE};
use pdmsf_graph::arena::EdgeStore;
use pdmsf_graph::WKey;
use pdmsf_pram::kernels::log2_ceil;

impl<S: EdgeStore<EdgeRec>> ChunkedEulerForest<S> {
    /// Allocate a chunk id, growing the id space (and the row bank's stride)
    /// when necessary.
    fn alloc_slot(&mut self, owner: u32) -> u32 {
        if self.slot_free.is_empty() {
            let old_cap = self.slot_owner.len();
            let new_cap = (old_cap * 2).max(16);
            self.slot_owner.resize(new_cap, NONE);
            for s in (old_cap..new_cap).rev() {
                self.slot_free.push(s as u32);
            }
            // One compacting sweep re-lays every row to the new width.
            self.rows.grow_stride(new_cap);
            self.charge(
                (new_cap * self.rows.num_slabs().max(1)) as u64,
                1,
                new_cap as u64,
            );
        }
        let s = self.slot_free.pop().expect("slot free list refilled above");
        self.slot_owner[s as usize] = owner;
        s
    }

    /// Attach an id and an (all-`∞`) row slab to chunk `c` without
    /// rebuilding its row — the caller rebuilds, either singly
    /// ([`Self::rebuild_row`]) or batched for a split pair
    /// ([`Self::rebuild_rows_pair`]).
    pub(crate) fn attach_slot(&mut self, c: u32) {
        debug_assert_eq!(self.chunks.slot[c as usize], NONE);
        let s = self.alloc_slot(c);
        debug_assert_eq!(
            self.rows.stride(),
            self.slot_cap(),
            "row width must track the chunk-id capacity"
        );
        let row = self.rows.alloc();
        self.chunks.slot[c as usize] = s;
        self.chunks.row[c as usize] = row;
    }

    /// Give chunk `c` an id: allocate its row slab (recycled from the bank's
    /// free list when possible), rebuild its row from its adjacent edges,
    /// propagate the symmetric entries and refresh every aggregate that
    /// mentions the new id.
    pub(crate) fn give_slot(&mut self, c: u32) {
        if self.chunks.slot[c as usize] != NONE {
            return;
        }
        self.attach_slot(c);
        self.rebuild_row(c);
    }

    /// Scan the edges adjacent to chunk `c`'s principal copies into `row`
    /// (the tournament-tree row construction of Lemma 2.2 / 3.1). Read-only;
    /// returns the number of edges scanned.
    fn scan_row(&self, c: u32, row: &mut [WKey]) -> u64 {
        let mut scanned = 0u64;
        for &o in &self.chunks.occs[c as usize] {
            if !self.chunks.occ_principal(o) {
                continue;
            }
            let v = self.chunks.occ_vert(o);
            let handles = &self.adj[v.index()];
            for (i, &h) in handles.iter().enumerate() {
                if let Some(&ahead) = handles.get(i + 2) {
                    self.edges.prefetch(ahead);
                }
                scanned += 1;
                let e = self.edges.get(h).edge;
                let other = e.other(v);
                let co = self.vertex_chunk[other.index()];
                let so = self.chunks.slot[co as usize];
                if so == NONE {
                    continue;
                }
                let key = WKey::new(e.weight, e.id);
                if key < row[so as usize] {
                    row[so as usize] = key;
                }
            }
        }
        scanned
    }

    /// Rebuild the rows of a freshly split pair `(c, c2)` in one batched
    /// pass: both rows are scanned, the symmetric entries of every other row
    /// are updated in a **single** sweep over the id space, and the affected
    /// aggregates are refreshed once for both entries. Compared to two
    /// independent [`Self::rebuild_row`] calls this halves the cross-update
    /// and refresh traffic of every chunk split.
    pub(crate) fn rebuild_rows_pair(&mut self, c: u32, c2: u32) {
        let s1 = self.chunks.slot[c as usize];
        let s2 = self.chunks.slot[c2 as usize];
        debug_assert!(s1 != NONE && s2 != NONE);
        let cap = self.slot_cap();
        let mut row1 = std::mem::take(&mut self.scratch_row);
        row1.clear();
        row1.resize(cap, WKey::PLUS_INF);
        let mut row2 = std::mem::take(&mut self.scratch_row2);
        row2.clear();
        row2.resize(cap, WKey::PLUS_INF);
        let scanned = self.scan_row(c, &mut row1) + self.scan_row(c2, &mut row2);
        debug_assert_eq!(
            row1[s2 as usize], row2[s1 as usize],
            "asymmetric pair entry"
        );

        // One cross-update sweep for both new columns.
        let mut dirty = std::mem::take(&mut self.scratch_dirty);
        dirty.clear();
        let mut cross = 0u64;
        for (other_slot, &owner) in self.slot_owner.iter().enumerate().take(cap) {
            if owner == NONE || owner == c || owner == c2 {
                continue;
            }
            cross += 1;
            let row = self.rows.base_mut(self.chunks.row[owner as usize]);
            let mut changed = false;
            if row[s1 as usize] != row1[other_slot] {
                row[s1 as usize] = row1[other_slot];
                changed = true;
            }
            if row[s2 as usize] != row2[other_slot] {
                row[s2 as usize] = row2[other_slot];
                changed = true;
            }
            if changed {
                dirty.push(owner);
            }
        }
        self.rows
            .base_mut(self.chunks.row[c as usize])
            .copy_from_slice(&row1);
        self.rows
            .base_mut(self.chunks.row[c2 as usize])
            .copy_from_slice(&row2);
        self.scratch_row = row1;
        self.scratch_row2 = row2;
        let occs =
            (self.chunks.occs[c as usize].len() + self.chunks.occs[c2 as usize].len()) as u64;
        self.charge(
            scanned + occs + cross + cap as u64,
            log2_ceil((scanned as usize).max(2)) + 1,
            (scanned + cross).max(1),
        );
        // Own-list path refresh for both changed rows, then targeted entry
        // refresh for the other lists whose rows changed.
        self.splay(c);
        self.splay(c2);
        self.refresh_entries_pair_for_chunks(&mut dirty, s1, s2);
        self.scratch_dirty = dirty;
    }

    /// Take chunk `c`'s id away (it became the only chunk of its list):
    /// remove every reference to the id from other rows, then refresh entry
    /// `s` — but only in the lists whose rows actually changed (the common
    /// case, a short list detaching from everything it was connected to, is
    /// already all-`∞` and costs no refresh at all).
    pub(crate) fn drop_slot(&mut self, c: u32) {
        let s = self.chunks.slot[c as usize];
        if s == NONE {
            return;
        }
        // Clear the column `s` in every other row, remembering which chunks
        // actually held a finite entry.
        let mut dirty = std::mem::take(&mut self.scratch_dirty);
        dirty.clear();
        let mut work = 0u64;
        for other_slot in 0..self.slot_owner.len() {
            let owner = self.slot_owner[other_slot];
            if owner == NONE || owner == c {
                continue;
            }
            work += 1;
            let cell = &mut self.rows.base_mut(self.chunks.row[owner as usize])[s as usize];
            if *cell != WKey::PLUS_INF {
                *cell = WKey::PLUS_INF;
                dirty.push(owner);
            }
        }
        // Retire the slab into the bank's free list.
        self.rows.free(self.chunks.row[c as usize]);
        debug_assert!(
            self.rows.num_free() <= self.rows.num_slabs(),
            "free-slab accounting drifted"
        );
        self.chunks.slot[c as usize] = NONE;
        self.chunks.row[c as usize] = NONE;
        self.slot_owner[s as usize] = NONE;
        self.slot_free.push(s);
        self.charge(work + 1, 1, work.max(1));
        self.refresh_entry_for_chunks(&mut dirty, s);
        self.scratch_dirty = dirty;
    }

    /// Recompute chunk `c`'s entire `CAdj` row by scanning the edges adjacent
    /// to it, propagate the symmetric entries into every other row, and
    /// refresh all aggregates (path refresh via splay + global entry
    /// refresh). This is the workhorse of Lemma 2.2 / 3.1.
    pub(crate) fn rebuild_row(&mut self, c: u32) {
        let s = self.chunks.slot[c as usize];
        if s == NONE {
            return;
        }
        let cap = self.slot_cap();
        let mut row = std::mem::take(&mut self.scratch_row);
        row.clear();
        row.resize(cap, WKey::PLUS_INF);
        let scanned = self.scan_row(c, &mut row);
        // Cross update: symmetric entries in every other row, remembering
        // which chunks actually changed (only their lists need an entry
        // refresh below).
        let mut dirty = std::mem::take(&mut self.scratch_dirty);
        dirty.clear();
        let mut cross = 0u64;
        for (other_slot, &owner) in self.slot_owner.iter().enumerate().take(cap) {
            if owner == NONE || owner == c {
                continue;
            }
            cross += 1;
            let cell = &mut self.rows.base_mut(self.chunks.row[owner as usize])[s as usize];
            if *cell != row[other_slot] {
                *cell = row[other_slot];
                dirty.push(owner);
            }
        }
        // Copy the fresh row into the slab; the scratch stays for next time.
        self.rows
            .base_mut(self.chunks.row[c as usize])
            .copy_from_slice(&row);
        self.scratch_row = row;
        // Sequential: O(K + J). EREW: tournament trees of depth O(log K) with
        // O(K) processors build the row, then O(1) rounds with O(J)
        // processors perform the cross update (Lemma 3.1).
        let occs = self.chunks.occs[c as usize].len() as u64;
        self.charge(
            scanned + occs + cross + cap as u64,
            log2_ceil((scanned as usize).max(2)) + 1,
            (scanned + cross).max(1),
        );
        // Path refresh in c's own list (first half of UpdateAdj) …
        self.splay(c);
        // … and entry refresh in the lists whose rows changed (second half
        // of UpdateAdj, restricted to where it has any effect).
        self.refresh_entry_for_chunks(&mut dirty, s);
        self.scratch_dirty = dirty;
    }

    /// Refresh entry `s` of the aggregate vectors above the given chunks,
    /// whose `base[s]` just changed (the per-entry trees `S_j` of Lemma 2.3
    /// / Section 3 — `O(1)` work per level). For a handful of dirty chunks
    /// this walks one leaf-to-root path each (overlapping paths converge
    /// because every walk recomputes from the *current* child aggregates);
    /// for many dirty chunks one bottom-up sweep per affected list is
    /// cheaper. `dirty` is consumed (left in an unspecified state for reuse
    /// as scratch).
    pub(crate) fn refresh_entry_for_chunks(&mut self, dirty: &mut Vec<u32>, s: u32) {
        if S::SEED_BASELINE {
            // Seed policy: refresh entry `s` in every slotted list,
            // irrespective of which rows actually changed.
            self.refresh_entry_everywhere(s);
            return;
        }
        if dirty.is_empty() {
            self.charge(1, 1, 1);
            return;
        }
        const PATH_REFRESH_MAX: usize = 8;
        if dirty.len() <= PATH_REFRESH_MAX {
            for &c in dirty.iter() {
                self.refresh_entry_path(c, s);
            }
            return;
        }
        for c in dirty.iter_mut() {
            *c = self.tree_root(*c);
        }
        dirty.sort_unstable();
        dirty.dedup();
        let mut visited = 0u64;
        for &root in dirty.iter() {
            visited += self.refresh_entry_subtree(root, s);
        }
        self.charge(
            visited.max(1),
            log2_ceil((visited as usize).max(2)) + 1,
            visited.max(1),
        );
    }

    /// Bottom-up recomputation of entry `s` in the subtree rooted at `c`.
    /// Returns the number of chunks visited.
    fn refresh_entry_subtree(&mut self, c: u32, s: u32) -> u64 {
        // Explicit traversal: `order` ends up parent-before-children, so the
        // reverse iteration below recomputes children before parents.
        let mut order = std::mem::take(&mut self.scratch_order);
        order.clear();
        order.push(c);
        let mut next = 0usize;
        while next < order.len() {
            let node = order[next];
            next += 1;
            let (l, r) = (
                self.chunks.left[node as usize],
                self.chunks.right[node as usize],
            );
            if l != NONE {
                order.push(l);
            }
            if r != NONE {
                order.push(r);
            }
        }
        for &node in order.iter().rev() {
            let row = self.chunks.row[node as usize];
            if row == NONE {
                continue;
            }
            let mut agg = self.rows.base(row)[s as usize];
            for child in [
                self.chunks.left[node as usize],
                self.chunks.right[node as usize],
            ] {
                if child == NONE {
                    continue;
                }
                let ca = self.rows.agg(self.chunks.row[child as usize])[s as usize];
                if ca < agg {
                    agg = ca;
                }
            }
            self.rows.agg_mut(row)[s as usize] = agg;
        }
        let visited = order.len() as u64;
        self.scratch_order = order;
        visited
    }

    /// The seed's refresh policy (kept verbatim for the benchmark baseline):
    /// recompute entry `s` in **every** list containing slotted chunks.
    fn refresh_entry_everywhere(&mut self, s: u32) {
        let mut roots = std::mem::take(&mut self.scratch_dirty2);
        roots.clear();
        for slot in 0..self.slot_owner.len() {
            let owner = self.slot_owner[slot];
            if owner == NONE {
                continue;
            }
            roots.push(self.tree_root(owner));
        }
        roots.sort_unstable();
        roots.dedup();
        let mut visited = 0u64;
        for &root in roots.iter() {
            visited += self.refresh_entry_subtree(root, s);
        }
        self.scratch_dirty2 = roots;
        self.charge(
            visited.max(1),
            log2_ceil((visited as usize).max(2)) + 1,
            visited.max(1),
        );
    }

    /// Dual-entry variant of [`Self::refresh_entry_for_chunks`], used by the
    /// batched split rebuild: each walk refreshes both entries at once.
    pub(crate) fn refresh_entries_pair_for_chunks(
        &mut self,
        dirty: &mut Vec<u32>,
        s1: u32,
        s2: u32,
    ) {
        if dirty.is_empty() {
            self.charge(1, 1, 1);
            return;
        }
        const PATH_REFRESH_MAX: usize = 8;
        if dirty.len() <= PATH_REFRESH_MAX {
            for &c in dirty.iter() {
                self.refresh_entry_pair_path(c, s1, s2);
            }
            return;
        }
        for c in dirty.iter_mut() {
            *c = self.tree_root(*c);
        }
        dirty.sort_unstable();
        dirty.dedup();
        let mut visited = 0u64;
        for &root in dirty.iter() {
            visited += self.refresh_entry_subtree(root, s1);
            visited += self.refresh_entry_subtree(root, s2);
        }
        self.charge(
            visited.max(1),
            log2_ceil((visited as usize).max(2)) + 1,
            visited.max(1),
        );
    }

    /// Leaf-to-root walk refreshing two entries at once (one traversal, two
    /// `O(1)` recomputations per level).
    fn refresh_entry_pair_path(&mut self, c: u32, s1: u32, s2: u32) {
        let mut node = c;
        let mut steps = 0u64;
        loop {
            steps += 1;
            let row = self.chunks.row[node as usize];
            let base = self.rows.base(row);
            let mut a1 = base[s1 as usize];
            let mut a2 = base[s2 as usize];
            for child in [
                self.chunks.left[node as usize],
                self.chunks.right[node as usize],
            ] {
                if child == NONE {
                    continue;
                }
                let cagg = self.rows.agg(self.chunks.row[child as usize]);
                if cagg[s1 as usize] < a1 {
                    a1 = cagg[s1 as usize];
                }
                if cagg[s2 as usize] < a2 {
                    a2 = cagg[s2 as usize];
                }
            }
            let parent = self.chunks.parent[node as usize];
            let agg = self.rows.agg_mut(row);
            agg[s1 as usize] = a1;
            agg[s2 as usize] = a2;
            if parent == NONE {
                break;
            }
            node = parent;
        }
        self.charge(steps, log2_ceil((steps as usize).max(2)) + 1, steps.max(1));
    }

    /// Recompute entry `s` of the aggregates on the leaf-to-root path of
    /// chunk `c` (the paper's `UpdateAdj` path refresh for a *single*
    /// changed `CAdj` entry, Lemma 2.3): `O(1)` work per level instead of
    /// the full `O(J)`-vector pull-up a structural splay performs.
    /// Membership is untouched — `Memb` only changes when ids move.
    pub(crate) fn refresh_entry_path(&mut self, c: u32, s: u32) {
        let mut node = c;
        let mut steps = 0u64;
        loop {
            steps += 1;
            let row = self.chunks.row[node as usize];
            let mut agg = self.rows.base(row)[s as usize];
            for child in [
                self.chunks.left[node as usize],
                self.chunks.right[node as usize],
            ] {
                if child == NONE {
                    continue;
                }
                let ca = self.rows.agg(self.chunks.row[child as usize])[s as usize];
                if ca < agg {
                    agg = ca;
                }
            }
            let parent = self.chunks.parent[node as usize];
            self.rows.agg_mut(row)[s as usize] = agg;
            if parent == NONE {
                break;
            }
            node = parent;
        }
        // One processor per level in the per-entry tree S_j (Lemma 3.2).
        self.charge(steps, log2_ceil((steps as usize).max(2)) + 1, steps.max(1));
    }

    /// Cheap path for a *single* new edge between two id-bearing chunks
    /// (edge-insertion case of Section 2.6): lower the two symmetric entries
    /// and refresh the two leaf-to-root paths.
    pub(crate) fn note_edge_between(&mut self, c1: u32, c2: u32, key: WKey) {
        let s1 = self.chunks.slot[c1 as usize];
        let s2 = self.chunks.slot[c2 as usize];
        if s1 == NONE || s2 == NONE {
            return;
        }
        let mut touched1 = false;
        {
            let cell = &mut self.rows.base_mut(self.chunks.row[c1 as usize])[s2 as usize];
            if key < *cell {
                *cell = key;
                touched1 = true;
            }
        }
        let mut touched2 = false;
        {
            let cell = &mut self.rows.base_mut(self.chunks.row[c2 as usize])[s1 as usize];
            if key < *cell {
                *cell = key;
                touched2 = true;
            }
        }
        self.charge(2, 1, 2);
        if touched1 {
            if S::SEED_BASELINE {
                self.splay(c1);
            } else {
                self.refresh_entry_path(c1, s2);
            }
        }
        if touched2 && c2 != c1 {
            if S::SEED_BASELINE {
                self.splay(c2);
            } else {
                self.refresh_entry_path(c2, s1);
            }
        }
    }

    /// Recompute the single pair entry between `c1` and `c2` by scanning the
    /// edges adjacent to `c1` (edge-deletion case of Section 2.6), then
    /// refresh the two leaf-to-root paths.
    pub(crate) fn recompute_pair_entry(&mut self, c1: u32, c2: u32) {
        let s1 = self.chunks.slot[c1 as usize];
        let s2 = self.chunks.slot[c2 as usize];
        if s1 == NONE || s2 == NONE {
            return;
        }
        let mut best = WKey::PLUS_INF;
        let mut scanned = 0u64;
        for &o in &self.chunks.occs[c1 as usize] {
            if !self.chunks.occ_principal(o) {
                continue;
            }
            let v = self.chunks.occ_vert(o);
            let handles = &self.adj[v.index()];
            for (i, &h) in handles.iter().enumerate() {
                if let Some(&ahead) = handles.get(i + 2) {
                    self.edges.prefetch(ahead);
                }
                scanned += 1;
                let e = self.edges.get(h).edge;
                let other = e.other(v);
                if self.vertex_chunk[other.index()] != c2 {
                    continue;
                }
                let key = WKey::new(e.weight, e.id);
                if key < best {
                    best = key;
                }
            }
        }
        self.rows.base_mut(self.chunks.row[c1 as usize])[s2 as usize] = best;
        self.rows.base_mut(self.chunks.row[c2 as usize])[s1 as usize] = best;
        self.charge(
            scanned + 2,
            log2_ceil((scanned as usize).max(2)) + 1,
            scanned.max(1),
        );
        if S::SEED_BASELINE {
            self.splay(c1);
            if c2 != c1 {
                self.splay(c2);
            }
            return;
        }
        self.refresh_entry_path(c1, s2);
        if c2 != c1 {
            self.refresh_entry_path(c2, s1);
        }
    }
}
