//! Chunk ids (`slots`), `CAdj` rows and their aggregation upkeep.
//!
//! A chunk's `CAdj` row stores, for every other chunk id, the minimum weight
//! of a graph edge whose endpoints have their principal copies in the two
//! chunks (Section 2.2). This module owns:
//!
//! * slot allocation / release (short lists carry no id — Section 6),
//! * full row rebuilds by scanning the `O(K)` edges adjacent to a chunk
//!   (Lemma 2.2; in the EREW model this is the tournament-tree construction
//!   of Lemma 3.1),
//! * the symmetric "cross update" of every other chunk's row,
//! * the global per-entry refresh of aggregate vectors (the second half of
//!   `UpdateAdj`, Lemma 2.3).

use super::{ChunkedEulerForest, NONE};
use pdmsf_graph::WKey;
use pdmsf_pram::kernels::log2_ceil;

impl ChunkedEulerForest {
    /// Allocate a chunk id, growing the id space (and every existing row)
    /// when necessary.
    fn alloc_slot(&mut self, owner: u32) -> u32 {
        if self.slot_free.is_empty() {
            let old_cap = self.slot_owner.len();
            let new_cap = (old_cap * 2).max(16);
            self.slot_owner.resize(new_cap, NONE);
            for s in (old_cap..new_cap).rev() {
                self.slot_free.push(s as u32);
            }
            // Grow every existing vector to the new capacity.
            for chunk in &mut self.chunks {
                if chunk.alive && chunk.slot != NONE {
                    chunk.base.resize(new_cap, WKey::PLUS_INF);
                    chunk.agg.resize(new_cap, WKey::PLUS_INF);
                    chunk.memb.resize(new_cap, false);
                }
            }
            self.charge(
                (new_cap * self.chunks.len().max(1)) as u64,
                1,
                new_cap as u64,
            );
        }
        let s = self.slot_free.pop().expect("slot free list refilled above");
        self.slot_owner[s as usize] = owner;
        s
    }

    /// Give chunk `c` an id: allocate vectors, rebuild its row from its
    /// adjacent edges, propagate the symmetric entries and refresh every
    /// aggregate that mentions the new id.
    pub(crate) fn give_slot(&mut self, c: u32) {
        if self.chunks[c as usize].slot != NONE {
            return;
        }
        let s = self.alloc_slot(c);
        let cap = self.slot_cap();
        {
            let ch = &mut self.chunks[c as usize];
            ch.slot = s;
            ch.base = vec![WKey::PLUS_INF; cap];
            ch.agg = vec![WKey::PLUS_INF; cap];
            ch.memb = vec![false; cap];
        }
        self.rebuild_row(c);
    }

    /// Take chunk `c`'s id away (it became the only chunk of its list):
    /// remove every reference to the id from other rows and aggregates.
    pub(crate) fn drop_slot(&mut self, c: u32) {
        let s = self.chunks[c as usize].slot;
        if s == NONE {
            return;
        }
        // Clear the column `s` in every other row.
        let mut work = 0u64;
        for other in 0..self.chunks.len() {
            let other = other as u32;
            if other == c || !self.chunks[other as usize].alive {
                continue;
            }
            if self.chunks[other as usize].slot != NONE {
                self.chunks[other as usize].base[s as usize] = WKey::PLUS_INF;
                work += 1;
            }
        }
        {
            let ch = &mut self.chunks[c as usize];
            ch.slot = NONE;
            ch.base = Vec::new();
            ch.agg = Vec::new();
            ch.memb = Vec::new();
        }
        self.slot_owner[s as usize] = NONE;
        self.slot_free.push(s);
        self.charge(work + 1, 1, work.max(1));
        self.refresh_entry_everywhere(s);
    }

    /// Recompute chunk `c`'s entire `CAdj` row by scanning the edges adjacent
    /// to it, propagate the symmetric entries into every other row, and
    /// refresh all aggregates (path refresh via splay + global entry
    /// refresh). This is the workhorse of Lemma 2.2 / 3.1.
    pub(crate) fn rebuild_row(&mut self, c: u32) {
        let s = self.chunks[c as usize].slot;
        if s == NONE {
            return;
        }
        let cap = self.slot_cap();
        let mut row = vec![WKey::PLUS_INF; cap];
        let occ_ids: Vec<u32> = self.chunks[c as usize].occs.clone();
        let mut scanned = 0u64;
        for o in occ_ids {
            let v = self.occs[o as usize].vertex;
            if self.principal[v.index()] != o {
                continue;
            }
            for &eid in &self.adj[v.index()] {
                scanned += 1;
                let e = self.edges[&eid];
                let other = e.other(v);
                let pother = self.principal[other.index()];
                let co = self.occs[pother as usize].chunk;
                let so = self.chunks[co as usize].slot;
                if so == NONE {
                    continue;
                }
                let key = WKey::new(e.weight, eid);
                if key < row[so as usize] {
                    row[so as usize] = key;
                }
            }
        }
        // Cross update: symmetric entries in every other row.
        let mut cross = 0u64;
        for other_slot in 0..cap {
            let owner = self.slot_owner[other_slot];
            if owner == NONE || owner == c {
                continue;
            }
            self.chunks[owner as usize].base[s as usize] = row[other_slot];
            cross += 1;
        }
        self.chunks[c as usize].base = row;
        // Sequential: O(K + J). EREW: tournament trees of depth O(log K) with
        // O(K) processors build the row, then O(1) rounds with O(J)
        // processors perform the cross update (Lemma 3.1).
        let occs = self.chunks[c as usize].occs.len() as u64;
        self.charge(
            scanned + occs + cross + cap as u64,
            log2_ceil((scanned as usize).max(2)) + 1,
            (scanned + cross).max(1),
        );
        // Path refresh in c's own list (first half of UpdateAdj) …
        self.splay(c);
        // … and entry refresh everywhere else (second half of UpdateAdj).
        self.refresh_entry_everywhere(s);
    }

    /// Recompute entry `s` of the aggregate vectors of every chunk that
    /// carries vectors, bottom-up per list. `O(J)` sequential work,
    /// `O(log J)` depth with `O(J)` processors in the EREW model (the
    /// per-entry trees `S_j` of Section 3).
    pub(crate) fn refresh_entry_everywhere(&mut self, s: u32) {
        // Find the roots of every list that contains at least one chunk with
        // an id (short lists have no vectors and never mention `s`).
        let mut roots: Vec<u32> = Vec::new();
        for slot in 0..self.slot_owner.len() {
            let owner = self.slot_owner[slot];
            if owner == NONE {
                continue;
            }
            let root = self.tree_root(owner);
            roots.push(root);
        }
        roots.sort_unstable();
        roots.dedup();
        let mut visited = 0u64;
        for root in roots {
            visited += self.refresh_entry_subtree(root, s);
        }
        self.charge(
            visited.max(1),
            log2_ceil((visited as usize).max(2)) + 1,
            visited.max(1),
        );
    }

    /// Post-order recomputation of entry `s` in the subtree rooted at `c`.
    /// Returns the number of chunks visited.
    fn refresh_entry_subtree(&mut self, c: u32, s: u32) -> u64 {
        // Explicit post-order traversal (children before parents).
        let mut order = Vec::new();
        let mut stack = vec![c];
        while let Some(node) = stack.pop() {
            order.push(node);
            let (l, r) = (
                self.chunks[node as usize].left,
                self.chunks[node as usize].right,
            );
            if l != NONE {
                stack.push(l);
            }
            if r != NONE {
                stack.push(r);
            }
        }
        for &node in order.iter().rev() {
            let ch = &self.chunks[node as usize];
            if ch.slot == NONE {
                continue;
            }
            let mut agg = ch.base[s as usize];
            let mut memb = ch.slot == s;
            for child in [ch.left, ch.right] {
                if child == NONE {
                    continue;
                }
                let cc = &self.chunks[child as usize];
                if cc.agg[s as usize] < agg {
                    agg = cc.agg[s as usize];
                }
                memb |= cc.memb[s as usize];
            }
            let ch = &mut self.chunks[node as usize];
            ch.agg[s as usize] = agg;
            ch.memb[s as usize] = memb;
        }
        order.len() as u64
    }

    /// Cheap path for a *single* new edge between two id-bearing chunks
    /// (edge-insertion case of Section 2.6): lower the two symmetric entries
    /// and refresh the two leaf-to-root paths.
    pub(crate) fn note_edge_between(&mut self, c1: u32, c2: u32, key: WKey) {
        let s1 = self.chunks[c1 as usize].slot;
        let s2 = self.chunks[c2 as usize].slot;
        if s1 == NONE || s2 == NONE {
            return;
        }
        let mut touched1 = false;
        if key < self.chunks[c1 as usize].base[s2 as usize] {
            self.chunks[c1 as usize].base[s2 as usize] = key;
            touched1 = true;
        }
        let mut touched2 = false;
        if key < self.chunks[c2 as usize].base[s1 as usize] {
            self.chunks[c2 as usize].base[s1 as usize] = key;
            touched2 = true;
        }
        self.charge(2, 1, 2);
        if touched1 {
            self.splay(c1);
        }
        if touched2 && c2 != c1 {
            self.splay(c2);
        }
    }

    /// Recompute the single pair entry between `c1` and `c2` by scanning the
    /// edges adjacent to `c1` (edge-deletion case of Section 2.6), then
    /// refresh the two leaf-to-root paths.
    pub(crate) fn recompute_pair_entry(&mut self, c1: u32, c2: u32) {
        let s1 = self.chunks[c1 as usize].slot;
        let s2 = self.chunks[c2 as usize].slot;
        if s1 == NONE || s2 == NONE {
            return;
        }
        let occ_ids: Vec<u32> = self.chunks[c1 as usize].occs.clone();
        let mut best = WKey::PLUS_INF;
        let mut scanned = 0u64;
        for o in occ_ids {
            let v = self.occs[o as usize].vertex;
            if self.principal[v.index()] != o {
                continue;
            }
            for &eid in &self.adj[v.index()] {
                scanned += 1;
                let e = self.edges[&eid];
                let other = e.other(v);
                let pother = self.principal[other.index()];
                if self.occs[pother as usize].chunk != c2 {
                    continue;
                }
                let key = WKey::new(e.weight, eid);
                if key < best {
                    best = key;
                }
            }
        }
        self.chunks[c1 as usize].base[s2 as usize] = best;
        self.chunks[c2 as usize].base[s1 as usize] = best;
        self.charge(
            scanned + 2,
            log2_ceil((scanned as usize).max(2)) + 1,
            scanned.max(1),
        );
        self.splay(c1);
        if c2 != c1 {
            self.splay(c2);
        }
    }
}
