//! Sparsification (paper Section 5, after Eppstein et al.).
//!
//! The core structure assumes a sparse graph (`m = O(n)`). Sparsification
//! removes that assumption: edges are partitioned into groups arranged as the
//! leaves of a balanced binary tree; every tree node maintains a dynamic MSF
//! instance over the union of its children's *certificates* (their MSF edge
//! sets), so each instance only ever holds `O(n)` edges. An update touches
//! one leaf and propagates at most one insertion plus one deletion per level
//! (this is exactly the [`MsfDelta`] the [`DynamicMsf`] trait reports), so
//! the cost per update is `O(log(m/n))` instances of the inner structure's
//! update cost — and, as in the paper's parallel sparsification, the
//! per-level updates are independent and can run concurrently, which the
//! depth accounting of the EREW front-end reflects.
//!
//! Substitution note (documented in DESIGN.md): the paper builds the
//! edge-partition tree over a recursive *vertex* partition, which yields
//! geometrically shrinking local graphs. We use the classical edge-group
//! variant of Eppstein et al.'s sparsification, which has the same interface,
//! the same `O(1)` certificate-change-per-level property and the same
//! qualitative behaviour for the density experiment (E6): the update cost
//! depends on `n` and only logarithmically on `m`.

use pdmsf_graph::arena::{EdgeSlotMap, EdgeStore};
use pdmsf_graph::{DynamicMsf, Edge, EdgeId, MsfDelta, VertexId};

/// A node of the sparsification tree.
struct Node<M> {
    /// Dynamic MSF instance over this node's local edge set.
    instance: M,
    parent: Option<usize>,
}

/// Sparsified dynamic MSF: a balanced binary tree of inner structures, each
/// holding `O(n)` edges.
pub struct SparsifiedMsf<M> {
    nodes: Vec<Node<M>>,
    leaves: Vec<usize>,
    root: usize,
    num_vertices: usize,
    /// Live edges: id -> (edge, leaf index), in a flat slot arena.
    edges: EdgeSlotMap<(Edge, u32)>,
    /// Live-edge count per leaf (used to pick the least-loaded leaf).
    leaf_load: Vec<usize>,
    /// Target number of edges per leaf.
    group_size: usize,
}

impl<M: DynamicMsf> SparsifiedMsf<M> {
    /// Build a sparsification tree over `n` vertices with `num_leaves` edge
    /// groups (rounded up to a power of two), creating inner instances with
    /// `factory(n)`.
    pub fn with_leaves<F: FnMut(usize) -> M>(n: usize, num_leaves: usize, mut factory: F) -> Self {
        let num_leaves = num_leaves.max(1).next_power_of_two();
        let mut nodes = Vec::new();
        let mut level: Vec<usize> = Vec::new();
        let mut leaves = Vec::new();
        for _ in 0..num_leaves {
            let idx = nodes.len();
            nodes.push(Node {
                instance: Self::make_instance(&mut factory, n),
                parent: None,
            });
            level.push(idx);
            leaves.push(idx);
        }
        while level.len() > 1 {
            let mut next = Vec::new();
            for pair in level.chunks(2) {
                let idx = nodes.len();
                nodes.push(Node {
                    instance: Self::make_instance(&mut factory, n),
                    parent: None,
                });
                nodes[pair[0]].parent = Some(idx);
                if let Some(&r) = pair.get(1) {
                    nodes[r].parent = Some(idx);
                }
                next.push(idx);
            }
            level = next;
        }
        let root = level[0];
        SparsifiedMsf {
            nodes,
            leaf_load: vec![0; leaves.len()],
            leaves,
            root,
            num_vertices: n,
            edges: EdgeSlotMap::default(),
            group_size: n.max(8),
        }
    }

    /// Convenience constructor sized for graphs with up to `expected_edges`
    /// edges (`~ expected_edges / n` leaves).
    pub fn new_with_capacity<F: FnMut(usize) -> M>(
        n: usize,
        expected_edges: usize,
        factory: F,
    ) -> Self {
        let leaves = (expected_edges / n.max(1)).max(1);
        Self::with_leaves(n, leaves, factory)
    }

    fn make_instance<F: FnMut(usize) -> M>(factory: &mut F, n: usize) -> M {
        let instance = factory(n);
        assert_eq!(
            instance.num_vertices(),
            n,
            "sparsification factory must create instances over n vertices"
        );
        instance
    }

    /// Number of tree levels (root inclusive).
    pub fn num_levels(&self) -> usize {
        let mut depth = 1;
        let mut cur = self.leaves[0];
        while let Some(p) = self.nodes[cur].parent {
            depth += 1;
            cur = p;
        }
        depth
    }

    /// Number of inner instances.
    pub fn num_instances(&self) -> usize {
        self.nodes.len()
    }

    /// The root instance (whose forest is the MSF of the whole graph).
    pub fn root_instance(&self) -> &M {
        &self.nodes[self.root].instance
    }

    /// Pick the leaf for a new edge: the least-loaded leaf (keeps every leaf
    /// at `O(m / num_leaves)` edges).
    fn pick_leaf(&self) -> usize {
        let mut best = 0;
        for (i, &load) in self.leaf_load.iter().enumerate() {
            if load < self.leaf_load[best] {
                best = i;
            }
        }
        // `group_size` is only advisory: exceeding it keeps the structure
        // correct, it just makes that leaf's instance larger.
        let _ = self.group_size;
        best
    }

    /// Propagate a certificate change from `node` upwards.
    ///
    /// At each ancestor we delete every edge that left the child's
    /// certificate and insert every edge that entered it, then continue with
    /// that ancestor's own net certificate change. Eppstein et al.'s
    /// stability argument bounds the change at one swap per level for MSF
    /// certificates; the implementation nevertheless carries *lists* of
    /// changes so that correctness never depends on that bound. The net
    /// change at the root (a single graph update changes the global MSF by at
    /// most one swap) is returned as an ordinary [`MsfDelta`].
    fn propagate(&mut self, start: usize, delta: MsfDelta) -> MsfDelta {
        let mut added: Vec<EdgeId> = delta.added.into_iter().collect();
        let mut removed: Vec<EdgeId> = delta.removed.into_iter().collect();
        let mut node = start;
        while let Some(parent) = self.nodes[node].parent {
            if added.is_empty() && removed.is_empty() {
                return MsfDelta::NONE;
            }
            let mut effects = Vec::new();
            for &gone in &removed {
                if self.nodes[parent].instance.contains_edge(gone) {
                    effects.push(self.nodes[parent].instance.delete(gone));
                }
            }
            for &fresh in &added {
                let edge = self
                    .edges
                    .get_by_id(fresh)
                    .expect("certificate edge must be live")
                    .0;
                if !self.nodes[parent].instance.contains_edge(fresh) {
                    effects.push(self.nodes[parent].instance.insert(edge));
                }
            }
            let (a, r) = combine_deltas(&effects);
            added = a;
            removed = r;
            node = parent;
        }
        debug_assert!(added.len() <= 1 && removed.len() <= 1);
        MsfDelta {
            added: added.first().copied(),
            removed: removed.first().copied(),
        }
    }
}

/// Combine the certificate effects of the operations applied at one level
/// into net lists of edges that entered / left that level's certificate.
fn combine_deltas(effects: &[MsfDelta]) -> (Vec<EdgeId>, Vec<EdgeId>) {
    let mut added = Vec::new();
    let mut removed = Vec::new();
    for d in effects {
        if let Some(a) = d.added {
            added.push(a);
        }
        if let Some(r) = d.removed {
            removed.push(r);
        }
    }
    // Cancel edges that both entered and left within the same level.
    added.retain(|a| {
        if let Some(pos) = removed.iter().position(|r| r == a) {
            removed.remove(pos);
            false
        } else {
            true
        }
    });
    (added, removed)
}

impl<M: DynamicMsf> DynamicMsf for SparsifiedMsf<M> {
    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    fn add_vertex(&mut self) -> VertexId {
        let mut id = None;
        for node in &mut self.nodes {
            let v = node.instance.add_vertex();
            match id {
                None => id = Some(v),
                Some(prev) => debug_assert_eq!(prev, v),
            }
        }
        self.num_vertices += 1;
        id.expect("sparsification tree has at least one node")
    }

    fn insert(&mut self, e: Edge) -> MsfDelta {
        let leaf_idx = self.pick_leaf();
        let leaf = self.leaves[leaf_idx];
        // The slot map panics on duplicate registration.
        self.edges.insert(e.id, (e, leaf_idx as u32));
        self.leaf_load[leaf_idx] += 1;
        let delta = self.nodes[leaf].instance.insert(e);
        self.propagate(leaf, delta)
    }

    fn delete(&mut self, id: EdgeId) -> MsfDelta {
        let (_, leaf_idx) = self
            .edges
            .remove(id)
            .unwrap_or_else(|| panic!("edge {id:?} is not live"));
        let leaf_idx = leaf_idx as usize;
        self.leaf_load[leaf_idx] -= 1;
        let leaf = self.leaves[leaf_idx];
        let delta = self.nodes[leaf].instance.delete(id);
        self.propagate(leaf, delta)
    }

    fn contains_edge(&self, id: EdgeId) -> bool {
        self.edges.get_by_id(id).is_some()
    }

    fn is_forest_edge(&self, id: EdgeId) -> bool {
        self.nodes[self.root].instance.is_forest_edge(id)
    }

    fn forest_edges(&self) -> Vec<EdgeId> {
        self.nodes[self.root].instance.forest_edges()
    }

    fn forest_weight(&self) -> i128 {
        self.nodes[self.root].instance.forest_weight()
    }

    fn connected(&mut self, u: VertexId, v: VertexId) -> bool {
        self.nodes[self.root].instance.connected(u, v)
    }

    fn name(&self) -> &'static str {
        "sparsified"
    }
}
