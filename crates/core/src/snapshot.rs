//! Flat, serializable images of the production dynamic-MSF structures.
//!
//! The SoA refactors left every piece of structure state in contiguous
//! banks (`ChunkArena`, `RowBank`, the slot-arena edge store, a few dense
//! per-vertex arrays), so a checkpoint is a verbatim dump of those banks
//! plus a handful of scalars — no graph traversal, no re-normalization.
//! [`MsfImage`] is that dump in memory; the `pdmsf-persist` crate turns it
//! into length-prefixed, CRC-guarded sections on disk.
//!
//! **What is and is not serialized.** Every bank that influences future
//! behaviour round-trips exactly, *free lists included* (recycling order is
//! behaviour: an imported structure must allocate the same chunk ids, slab
//! handles and edge-store slots the original would have). Three things are
//! deliberately rebuilt or reset instead:
//!
//! * the **link-cut tree** is reconstructed by linking the checkpointed
//!   tree edges in id order — forest edges never form a cycle, and every
//!   query the LCT answers (`connected`, `path_max`) is independent of its
//!   splay shape because `WKey`s are unique;
//! * the **cost meter** starts fresh (it is observability, not state);
//! * the **scratch buffers** restore empty — their contents never survive
//!   an operation.
//!
//! Import validates structural consistency (lane lengths, offset
//! monotonicity, free-list ↔ liveness agreement, tree-edge count and forest
//! weight against the rebuilt LCT) and returns `Err` instead of a structure
//! that would misbehave later.

use crate::forest::{
    ArenaEdgeStore, ChunkArena, ChunkArenaImage, ChunkedEulerForest, CostModel, EdgeRec, RowBank,
    RowBankImage,
};
use crate::seq::GenericSeqDynamicMsf;
use pdmsf_dyntree::LinkCutForest;
use pdmsf_graph::arena::EdgeStore;
use pdmsf_graph::{Edge, EdgeId, EdgeSlotMap, VertexId, WKey, Weight};
use pdmsf_pram::{CostMeter, CostReport, ExecMode};

/// Sentinel shared with the forest module.
use crate::forest::NONE;

/// The flat image of a [`crate::SeqDynamicMsf`] / [`crate::ParDynamicMsf`]:
/// scalar configuration, the slot-arena edge store as primitive lanes
/// (vacant slots written as canonical zeros so identical states produce
/// identical bytes), the dense per-vertex arrays, the chunk/occurrence and
/// row banks, and the forest-level bookkeeping scalars.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MsfImage {
    /// Chunk parameter `K`.
    pub k: u64,
    /// Cost model (0 = sequential, 1 = EREW).
    pub model: u8,
    /// Kernel execution mode (0 = simulated, 1 = threads).
    pub exec: u8,
    /// Edge-store slot owner ids ([`EdgeId::NONE`] marks a vacant slot).
    pub edge_ids: Vec<u32>,
    /// First endpoint per slot (0 for vacant slots).
    pub edge_u: Vec<u32>,
    /// Second endpoint per slot (0 for vacant slots).
    pub edge_v: Vec<u32>,
    /// Raw weight per slot (0 for vacant slots).
    pub edge_weight: Vec<i64>,
    /// Forward-arc tail occurrence per slot (`NONE` = not a tree edge).
    pub edge_fwd: Vec<u32>,
    /// Backward-arc tail occurrence per slot.
    pub edge_bwd: Vec<u32>,
    /// Edge-store free list, in recycling order.
    pub edge_free: Vec<u32>,
    /// Per-vertex ranges into `adj_data` (`n + 1` entries, starts at 0).
    pub adj_offsets: Vec<u64>,
    /// Concatenated adjacency lists (edge-store handles).
    pub adj_data: Vec<u32>,
    /// Per-vertex ranges into `vocc_data`.
    pub vocc_offsets: Vec<u64>,
    /// Concatenated per-vertex occurrence lists.
    pub vocc_data: Vec<u32>,
    /// Principal occurrence per vertex.
    pub principal: Vec<u32>,
    /// Chunk of each vertex's principal copy.
    pub vertex_chunk: Vec<u32>,
    /// The chunk + occurrence banks.
    pub chunks: ChunkArenaImage,
    /// The contiguous `CAdj` row store.
    pub rows: RowBankImage,
    /// Chunk slot (`id_c`) owner table.
    pub slot_owner: Vec<u32>,
    /// Retired chunk slots, in recycling order.
    pub slot_free: Vec<u32>,
    /// Chunks queued for Invariant-1 fix-up (normally empty at a batch
    /// boundary, but serialized so a mid-operation image stays faithful).
    pub touched: Vec<u32>,
    /// Number of forest (tree) edges.
    pub num_tree_edges: u64,
    /// Total forest weight (`-inf` summed as 0).
    pub forest_weight: i128,
}

/// Flatten ragged `Vec<Vec<u32>>` lists into an offsets + data pair.
fn flatten(lists: &[Vec<u32>]) -> (Vec<u64>, Vec<u32>) {
    let mut offsets = Vec::with_capacity(lists.len() + 1);
    let mut data = Vec::new();
    offsets.push(0u64);
    for list in lists {
        data.extend_from_slice(list);
        offsets.push(data.len() as u64);
    }
    (offsets, data)
}

/// Rebuild ragged lists from an offsets + data pair, validating coverage.
fn unflatten(what: &str, offsets: &[u64], data: &[u32]) -> Result<Vec<Vec<u32>>, String> {
    if offsets.first() != Some(&0) || offsets.last().copied() != Some(data.len() as u64) {
        return Err(format!("{what} offsets do not cover the data"));
    }
    let mut lists = Vec::with_capacity(offsets.len().saturating_sub(1));
    for w in offsets.windows(2) {
        let (lo, hi) = (w[0] as usize, w[1] as usize);
        if hi < lo || hi > data.len() {
            return Err(format!("{what} offsets are not monotone"));
        }
        lists.push(data[lo..hi].to_vec());
    }
    Ok(lists)
}

/// Dump a production forest plus the front-end scalars into an image.
pub(crate) fn forest_to_image(
    forest: &ChunkedEulerForest<ArenaEdgeStore>,
    num_tree_edges: usize,
    forest_weight: i128,
) -> MsfImage {
    let (ids, vals, free) = forest.edges.raw_parts();
    let m = ids.len();
    let mut edge_u = Vec::with_capacity(m);
    let mut edge_v = Vec::with_capacity(m);
    let mut edge_weight = Vec::with_capacity(m);
    let mut edge_fwd = Vec::with_capacity(m);
    let mut edge_bwd = Vec::with_capacity(m);
    for (id, rec) in ids.iter().zip(vals) {
        if id.is_none() {
            // Canonical vacant slot: a freed slot retains a stale record in
            // memory, which must not leak into the checkpoint (identical
            // states would otherwise produce different bytes).
            edge_u.push(0);
            edge_v.push(0);
            edge_weight.push(0);
            edge_fwd.push(NONE);
            edge_bwd.push(NONE);
        } else {
            edge_u.push(rec.edge.u.0);
            edge_v.push(rec.edge.v.0);
            edge_weight.push(rec.edge.weight.raw());
            edge_fwd.push(rec.fwd);
            edge_bwd.push(rec.bwd);
        }
    }
    let (adj_offsets, adj_data) = flatten(&forest.adj);
    let (vocc_offsets, vocc_data) = flatten(&forest.vertex_occs);
    MsfImage {
        k: forest.k as u64,
        model: match forest.model {
            CostModel::Sequential => 0,
            CostModel::Erew => 1,
        },
        exec: match forest.exec {
            ExecMode::Simulated => 0,
            ExecMode::Threads => 1,
        },
        edge_ids: ids.iter().map(|id| id.0).collect(),
        edge_u,
        edge_v,
        edge_weight,
        edge_fwd,
        edge_bwd,
        edge_free: free.to_vec(),
        adj_offsets,
        adj_data,
        vocc_offsets,
        vocc_data,
        principal: forest.principal.clone(),
        vertex_chunk: forest.vertex_chunk.clone(),
        chunks: forest.chunks.to_image(),
        rows: forest.rows.to_image(),
        slot_owner: forest.slot_owner.clone(),
        slot_free: forest.slot_free.clone(),
        touched: forest.touched.clone(),
        num_tree_edges: num_tree_edges as u64,
        forest_weight,
    }
}

/// Rebuild a production forest from an image (everything but the front-end
/// scalars, which the caller cross-validates).
pub(crate) fn forest_from_image(
    image: &MsfImage,
) -> Result<ChunkedEulerForest<ArenaEdgeStore>, String> {
    let m = image.edge_ids.len();
    if [
        image.edge_u.len(),
        image.edge_v.len(),
        image.edge_weight.len(),
        image.edge_fwd.len(),
        image.edge_bwd.len(),
    ]
    .iter()
    .any(|&l| l != m)
    {
        return Err("msf image edge lanes disagree in length".to_string());
    }
    let mut vals = Vec::with_capacity(m);
    for i in 0..m {
        vals.push(EdgeRec {
            edge: Edge {
                id: EdgeId(image.edge_ids[i]),
                u: VertexId(image.edge_u[i]),
                v: VertexId(image.edge_v[i]),
                weight: Weight::from_raw(image.edge_weight[i]),
            },
            fwd: image.edge_fwd[i],
            bwd: image.edge_bwd[i],
        });
    }
    let edges = EdgeSlotMap::from_raw_parts(
        image.edge_ids.iter().map(|&id| EdgeId(id)).collect(),
        vals,
        image.edge_free.clone(),
    )
    .map_err(|e| format!("msf image edge store: {e}"))?;
    let adj = unflatten("msf image adjacency", &image.adj_offsets, &image.adj_data)?;
    let vertex_occs = unflatten(
        "msf image vertex-occurrence",
        &image.vocc_offsets,
        &image.vocc_data,
    )?;
    let n = adj.len();
    if vertex_occs.len() != n || image.principal.len() != n || image.vertex_chunk.len() != n {
        return Err("msf image per-vertex lanes disagree in length".to_string());
    }
    let chunks = ChunkArena::from_image(&image.chunks).map_err(|e| format!("msf image: {e}"))?;
    let rows = RowBank::from_image(&image.rows).map_err(|e| format!("msf image: {e}"))?;
    let num_chunks = chunks.len() as u32;
    for &c in image.touched.iter().chain(&image.slot_owner) {
        if c != NONE && c >= num_chunks {
            return Err(format!("msf image names out-of-range chunk {c}"));
        }
    }
    let mut seen = vec![false; image.slot_owner.len()];
    for &s in &image.slot_free {
        match seen.get_mut(s as usize) {
            Some(x) if !*x => *x = true,
            _ => return Err(format!("msf image slot free list names invalid slot {s}")),
        }
    }
    if image.k < 2 {
        return Err("msf image chunk parameter below 2".to_string());
    }
    Ok(ChunkedEulerForest {
        k: image.k as usize,
        model: match image.model {
            0 => CostModel::Sequential,
            1 => CostModel::Erew,
            other => return Err(format!("msf image has unknown cost model {other}")),
        },
        exec: match image.exec {
            0 => ExecMode::Simulated,
            1 => ExecMode::Threads,
            other => return Err(format!("msf image has unknown exec mode {other}")),
        },
        meter: CostMeter::new(),
        edges,
        adj,
        vertex_occs,
        principal: image.principal.clone(),
        vertex_chunk: image.vertex_chunk.clone(),
        chunks,
        rows,
        slot_owner: image.slot_owner.clone(),
        slot_free: image.slot_free.clone(),
        scratch_keys: Vec::new(),
        scratch_cands: Vec::new(),
        scratch_row: Vec::new(),
        scratch_row2: Vec::new(),
        scratch_order: Vec::new(),
        scratch_dirty: Vec::new(),
        scratch_dirty2: Vec::new(),
        touched: image.touched.clone(),
    })
}

/// Rebuild the seq front-end around an imported forest: reconstruct the
/// link-cut tree from the checkpointed tree edges (id order; forest edges
/// never cycle, and every LCT answer is splay-shape-independent because
/// `WKey`s are unique) and cross-validate the bookkeeping scalars.
pub(crate) fn seq_from_image(
    image: &MsfImage,
) -> Result<GenericSeqDynamicMsf<ArenaEdgeStore>, String> {
    let forest = forest_from_image(image)?;
    let mut tree: Vec<Edge> = Vec::new();
    forest.edges.for_each(|_, rec| {
        if rec.fwd != NONE {
            tree.push(rec.edge);
        }
    });
    tree.sort_unstable_by_key(|e| e.id);
    if tree.len() as u64 != image.num_tree_edges {
        return Err(format!(
            "msf image claims {} tree edges but stores {}",
            image.num_tree_edges,
            tree.len()
        ));
    }
    let mut lct = LinkCutForest::new(forest.num_vertices());
    let mut weight = 0i128;
    for e in &tree {
        if lct.connected(e.u, e.v) {
            return Err(format!(
                "msf image tree edges contain a cycle at {:?}",
                e.id
            ));
        }
        lct.link(e.u, e.v, e.id, WKey::new(e.weight, e.id));
        weight += e.weight.as_summable();
    }
    if weight != image.forest_weight {
        return Err(format!(
            "msf image claims forest weight {} but edges sum to {weight}",
            image.forest_weight
        ));
    }
    Ok(GenericSeqDynamicMsf::from_restored_parts(
        forest,
        lct,
        tree.len(),
        weight,
        CostReport::default(),
    ))
}

#[cfg(test)]
mod tests {
    use crate::{ParDynamicMsf, SeqDynamicMsf};
    use pdmsf_graph::{DynamicMsf, Edge, EdgeId, VertexId, Weight};

    fn e(id: u32, u: u32, v: u32, w: i64) -> Edge {
        Edge {
            id: EdgeId(id),
            u: VertexId(u),
            v: VertexId(v),
            weight: Weight::new(w),
        }
    }

    #[test]
    fn msf_image_round_trips_and_future_behaviour_matches() {
        let mut orig = SeqDynamicMsf::with_chunk_parameter(24, 3);
        let mut next_id = 0u32;
        // A mixed history: ring + chords + deletions, enough to force chunk
        // splits/merges, slab churn and edge-slot recycling.
        for i in 0..24u32 {
            orig.insert(e(next_id, i, (i + 1) % 24, (37 * i % 19) as i64));
            next_id += 1;
        }
        for i in 0..12u32 {
            orig.insert(e(next_id, i, (i + 7) % 24, (5 * i % 23) as i64 - 4));
            next_id += 1;
        }
        for id in [3u32, 9, 14, 25, 30] {
            orig.delete(EdgeId(id));
        }
        orig.validate();

        let image = orig.to_image();
        let mut restored = SeqDynamicMsf::from_image(&image).expect("round trip");
        restored.validate();
        assert_eq!(restored.forest_weight(), orig.forest_weight());
        assert_eq!(restored.num_forest_edges(), orig.num_forest_edges());
        assert_eq!(restored.forest_edges(), orig.forest_edges());
        assert_eq!(restored.chunk_parameter(), orig.chunk_parameter());

        // Identical *future* behaviour, including the recycled edge slots
        // and connectivity answers.
        for i in 0..12u32 {
            let a = orig.insert(e(next_id, 2 * i % 24, (3 * i + 1) % 24, i as i64));
            let b = restored.insert(e(next_id, 2 * i % 24, (3 * i + 1) % 24, i as i64));
            assert_eq!(a, b);
            next_id += 1;
        }
        for id in [0u32, 17, 36, 40] {
            assert_eq!(orig.delete(EdgeId(id)), restored.delete(EdgeId(id)));
        }
        for u in 0..24u32 {
            assert_eq!(
                orig.connected(VertexId(u), VertexId((u + 11) % 24)),
                restored.connected(VertexId(u), VertexId((u + 11) % 24))
            );
        }
        orig.validate();
        restored.validate();
        assert_eq!(restored.forest_weight(), orig.forest_weight());
        assert_eq!(orig.to_image(), restored.to_image());
    }

    #[test]
    fn msf_image_import_rejects_inconsistent_scalars() {
        let mut m = ParDynamicMsf::with_chunk_parameter(8, 2);
        for i in 0..6u32 {
            m.insert(e(i, i, i + 1, i as i64));
        }
        let good = m.to_image();
        assert!(ParDynamicMsf::from_image(&good).is_ok());

        let mut bad = good.clone();
        bad.num_tree_edges += 1;
        assert!(ParDynamicMsf::from_image(&bad).is_err());

        let mut bad = good.clone();
        bad.forest_weight -= 1;
        assert!(ParDynamicMsf::from_image(&bad).is_err());

        let mut bad = good.clone();
        bad.principal.pop();
        assert!(ParDynamicMsf::from_image(&bad).is_err());

        let mut bad = good;
        bad.model = 9;
        assert!(ParDynamicMsf::from_image(&bad).is_err());
    }
}
