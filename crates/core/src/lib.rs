//! # pdmsf-core
//!
//! The paper's contribution: worst-case deterministic (parallel) dynamic
//! minimum spanning forest built from chunked Euler tours, `CAdj`/`Memb`
//! connectivity vectors, a list-sum data structure (LSDS) and
//! minimum-weight-replacement (MWR) search.
//!
//! * [`forest`] — the central data structure shared by the sequential and
//!   parallel front-ends: Euler tours of the MSF trees stored as lists of
//!   vertex occurrences, partitioned into chunks (Invariant 1), with
//!   per-chunk `CAdj` rows, per-list aggregation trees and the surgical
//!   operations of Lemma 2.1.
//! * [`seq`] — [`seq::SeqDynamicMsf`], the sequential structure of Theorem
//!   1.2 (`O(sqrt(n log n))` worst-case time per update with
//!   `K = sqrt(n log n)`).
//! * [`par`] — [`par::ParDynamicMsf`], the EREW PRAM structure of Theorem
//!   3.1 / 1.1 (`K = sqrt n`, `O(log n)` parallel depth, `O(sqrt n)`
//!   processors, `O(sqrt n log n)` work), executed through the cost-model
//!   substrate of `pdmsf-pram`.
//! * [`sparsify`] — the sparsification tree of Section 5 (Eppstein et al.),
//!   generic over the per-level dynamic-MSF structure, which removes the
//!   sparsity assumption (`m = O(n)`) without changing the asymptotic costs.

pub mod forest;
pub mod par;
pub mod seq;
pub mod sparsify;

pub use forest::{ArenaEdgeStore, ChunkedEulerForest, CostModel, EdgeRec, ForestStats};
pub use par::ParDynamicMsf;
pub use seq::{GenericSeqDynamicMsf, MapSeqDynamicMsf, SeqDynamicMsf};
pub use sparsify::SparsifiedMsf;
