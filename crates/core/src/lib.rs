//! # pdmsf-core
//!
//! The paper's contribution: worst-case deterministic (parallel) dynamic
//! minimum spanning forest built from chunked Euler tours, `CAdj`/`Memb`
//! connectivity vectors, a list-sum data structure (LSDS) and
//! minimum-weight-replacement (MWR) search.
//!
//! * [`forest`] — the central data structure shared by the sequential and
//!   parallel front-ends: Euler tours of the MSF trees stored as lists of
//!   vertex occurrences, partitioned into chunks (Invariant 1), with
//!   per-chunk `CAdj` rows, per-list aggregation trees and the surgical
//!   operations of Lemma 2.1.
//! * [`seq`] — [`seq::SeqDynamicMsf`], the sequential structure of Theorem
//!   1.2 (`O(sqrt(n log n))` worst-case time per update with
//!   `K = sqrt(n log n)`).
//! * [`par`] — [`par::ParDynamicMsf`], the EREW PRAM structure of Theorem
//!   3.1 / 1.1 (`K = sqrt n`, `O(log n)` parallel depth, `O(sqrt n)`
//!   processors, `O(sqrt n log n)` work), executed through the cost-model
//!   substrate of `pdmsf-pram`.
//! * [`sparsify`] — the sparsification tree of Section 5 (Eppstein et al.),
//!   generic over the per-level dynamic-MSF structure, which removes the
//!   sparsity assumption (`m = O(n)`) without changing the asymptotic costs.
//!
//! ## Performance architecture: SoA chunk banks + row bank + worker pool
//!
//! The chunked forest stores **no per-chunk structs**. Chunk state is split
//! by access pattern into the structure-of-arrays banks of
//! `forest::arena` (crate-private):
//!
//! * `ChunkArena` keeps the splay-tree topology (`parent` / `left` /
//!   `right` / `size`) in four flat `Vec<u32>`s — rotations, root walks and
//!   rank queries touch 4-byte lanes instead of dragging ~100-byte records
//!   through the cache — the list metadata (`occs`, `adj_count`,
//!   `slot`, flags) in separate banks consulted only by surgery and
//!   rebalancing, and the Euler-tour **occurrence records** in flat `occ_*`
//!   banks (`vertex` / `chunk` / `pos` / `vpos` / arc handle / flags): the
//!   surgery reindex loops (in-chunk shifts, split/merge re-chunking) and
//!   the principal-copy scans of the MWR/row-rebuild paths are sweeps over
//!   dense banks, with no per-occurrence struct left anywhere.
//! * `RowBank` stores every `CAdj` `base`/`agg` row contiguously in one
//!   backing `Vec<WKey>` (and every `Memb` row in one `Vec<bool>`),
//!   addressed by compact slab handles (`offset = slab · stride`,
//!   `len = stride`). `pull_up`'s entry-wise merges, the `γ`/MWR argmin and
//!   full-row rebuilds are linear sweeps over dense memory; slabs recycle
//!   through a free list and a stride growth is one compacting re-layout.
//!
//! When a structure runs with [`pdmsf_pram::ExecMode::Threads`], the bulk
//! kernels borrow those slab slices directly and dispatch shard **ranges**
//! over the work-stealing scheduler of `pdmsf_pram::pool` (parked workers,
//! per-executor deques, chunked claiming, deterministic stealing; the
//! caller participates) instead of spawning per call — inputs below
//! `pdmsf_pram::kernels::PAR_CUTOFF`, single-chunk lists and `K < 2`
//! graphs degrade to inline execution and never spawn the pool. Every
//! reduction stays leftmost-on-tie, so `ExecMode::Threads` remains
//! bit-for-bit identical to `ExecMode::Simulated` under any steal
//! interleaving (enforced by the four-way lockstep proptest, and by
//! SoA-vs-AoS reference-walk proptests over the chunk, row **and
//! occurrence** banks themselves).

pub mod forest;
pub mod par;
pub mod partition;
pub mod seq;
pub mod snapshot;
pub mod sparsify;

pub use forest::{
    ArenaEdgeStore, ChunkArenaImage, ChunkedEulerForest, CostModel, EdgeRec, ForestStats,
    RowBankImage,
};
pub use par::ParDynamicMsf;
pub use partition::{ComponentPartitionedMsf, GroupUpdate, PartitionStats, UpdateGroup};
pub use seq::{GenericSeqDynamicMsf, MapSeqDynamicMsf, SeqDynamicMsf};
pub use snapshot::MsfImage;
pub use sparsify::SparsifiedMsf;
