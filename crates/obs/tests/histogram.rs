//! Histogram semantics under merging and concurrency: merged per-shard
//! histograms must equal the histogram of the concatenated samples, and a
//! storm of concurrent recorders must lose no increments.

use std::sync::Arc;

use pdmsf_obs::{bucket_index, HistSnapshot, Histogram};
use proptest::prelude::*;

/// Exact sample quantile of a sorted slice (same rank convention as
/// [`HistSnapshot::quantile`]).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    /// Merging shard histograms == the histogram of the concatenated
    /// samples: bucket-wise identical, count/sum exact, and every
    /// quantile estimate in the same bucket as the exact sample quantile.
    #[test]
    fn merged_shards_equal_concatenated_samples(
        shards in proptest::collection::vec(
            proptest::collection::vec(0u64..1 << 48, 0..40),
            1..6,
        )
    ) {
        let mut merged = HistSnapshot::default();
        let concat_hist = Histogram::new();
        let mut all: Vec<u64> = Vec::new();
        for samples in &shards {
            let shard_hist = Histogram::new();
            for &v in samples {
                shard_hist.record(v);
                concat_hist.record(v);
                all.push(v);
            }
            merged.merge(&shard_hist.snapshot());
        }
        let concat = concat_hist.snapshot();
        prop_assert_eq!(&merged, &concat);
        prop_assert_eq!(merged.count, all.len() as u64);
        prop_assert_eq!(merged.sum, all.iter().sum::<u64>());
        if !all.is_empty() {
            all.sort_unstable();
            for &q in &[0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
                let exact = exact_quantile(&all, q);
                let est = merged.quantile(q);
                prop_assert_eq!(
                    bucket_index(est),
                    bucket_index(exact),
                    "q={}: estimate {} strayed from the exact quantile's bucket ({})",
                    q, est, exact
                );
            }
        }
    }
}

/// Hammer one histogram from many threads; after joining, count, sum and
/// every bucket must account for every single record — the lock-free
/// record path loses nothing.
#[test]
fn concurrent_recorders_lose_no_increments() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 50_000;
    let hist = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                // Deterministic per-thread value pattern covering many
                // buckets (zero included).
                let mut local_sum = 0u64;
                for i in 0..PER_THREAD {
                    let v = (i.wrapping_mul(2654435761) ^ (t << 56)) % (1 << (1 + (i % 40)));
                    hist.record(v);
                    local_sum = local_sum.wrapping_add(v);
                }
                local_sum
            })
        })
        .collect();
    let mut expected_sum = 0u64;
    for h in handles {
        expected_sum = expected_sum.wrapping_add(h.join().expect("recorder thread panicked"));
    }
    let snap = hist.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD, "lost increments");
    assert_eq!(snap.sum, expected_sum, "lost sum contributions");
    assert_eq!(
        snap.buckets.iter().sum::<u64>(),
        THREADS * PER_THREAD,
        "bucket totals disagree with the count"
    );
}
