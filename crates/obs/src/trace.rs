//! Structured tracing & flight recorder for the `pdmsf` stack.
//!
//! Aggregate histograms (the rest of this crate) tell us *that* p95
//! degrades under load, but not *why*: one slow batch hides behind a
//! thousand fast ones. This module captures per-batch **timelines** —
//! structured [`TraceEvent`]s (begin/end/instant, monotonic nanoseconds,
//! thread id, a [`TraceId`] tying every event to its batch, a [`Phase`]
//! tag and two free `u64` args) written into a process-wide lock-free
//! [`Ring`] buffer — and keeps only the pathological ones.
//!
//! ## Two-tier cost policy
//!
//! Tracing follows the same policy as the metrics core:
//!
//! * **Off (default):** every emission site pays exactly one relaxed
//!   atomic load plus a predictable branch. No clock read, no TLS access,
//!   no ring write. The `obs_overhead` bench gates this path.
//! * **On:** one clock read plus six relaxed atomic stores per event into
//!   a pre-allocated ring slot. No locks, no allocation, no syscalls on
//!   the emit path.
//!
//! ## TraceId propagation
//!
//! A [`TraceId`] is allocated once per service/engine batch and travels
//! through an ambient thread-local "current trace" slot ([`scope`]):
//! the sharded service sets it on the submitting thread, the worker pool
//! snapshots it into each job at submission and re-establishes it around
//! every executed shard range (so **stolen** ranges still attribute to
//! the batch that submitted them), and the engine and WAL read it
//! ambiently from whatever thread they run on. Layers never pass the id
//! through function signatures — the pool is the only place that carries
//! it across threads, and it does so explicitly.
//!
//! ## Flight recorder
//!
//! The ring is a sliding window: old events are overwritten. Tail-based
//! retention ([`offer_capture`]) promotes a batch's events to a pinned
//! capture buffer when its end-to-end latency exceeds a configured
//! threshold ([`set_capture_threshold_ns`]) or when a caller armed
//! [`capture_next`]. The pinned buffer holds at most [`CAPTURE_SLOTS`]
//! traces and evicts the *fastest* one on overflow, so under sustained
//! overload it converges to the slowest batches seen — exactly the ones
//! worth exporting.
//!
//! ## Export
//!
//! [`chrome_trace_json`] renders events in the Chrome trace-event JSON
//! format (loadable in Perfetto / `about://tracing`); [`text_timeline`]
//! renders a compact indented text timeline for terminals and logs.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Ring capacity used by [`enable_default`]: 64Ki events ≈ 3 MiB, several
/// thousand batches of window at typical span counts.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// Maximum traces pinned by the flight recorder; overflow evicts the
/// fastest captured trace (tail-based retention keeps the slowest).
pub const CAPTURE_SLOTS: usize = 16;

/// Identifies one traced batch. `0` is the reserved "not tracing" id —
/// every emission helper is inert on it, so untraced paths stay branchy
/// but silent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The inert id: emissions against it are dropped.
    pub const NONE: TraceId = TraceId(0);

    /// Whether this id refers to a real traced batch.
    #[inline]
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// Which phase of the stack an event describes. The tag doubles as the
/// span name (`name`) and layer (`cat`) in the Chrome export.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Phase {
    /// Service-level end-to-end batch (shard layer).
    Batch = 0,
    /// Tenant routing + plan fan-out on the submitting thread.
    Route = 1,
    /// Engine batch planning (validation, cancellation, dedup).
    Plan = 2,
    /// Conflict coloring / group formation for concurrent apply.
    Group = 3,
    /// Engine apply (serial or grouped concurrent).
    Apply = 4,
    /// Engine query snapshot point.
    Snapshot = 5,
    /// WAL record append (persist layer).
    WalAppend = 6,
    /// WAL fsync (persist layer).
    WalFsync = 7,
    /// One contiguous shard range executed by a pool executor.
    PoolRange = 8,
    /// Engine mirror pass (cross-shard edge mirrors).
    Mirror = 9,
}

impl Phase {
    /// Span name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Batch => "service.batch",
            Phase::Route => "service.route",
            Phase::Plan => "engine.plan",
            Phase::Group => "engine.group",
            Phase::Apply => "engine.apply",
            Phase::Snapshot => "engine.snapshot",
            Phase::WalAppend => "wal.append",
            Phase::WalFsync => "wal.fsync",
            Phase::PoolRange => "pool.range",
            Phase::Mirror => "engine.mirror",
        }
    }

    /// Which serving layer emits this phase (the Chrome `cat` field).
    pub fn layer(self) -> &'static str {
        match self {
            Phase::Batch | Phase::Route => "shard",
            Phase::Plan | Phase::Group | Phase::Apply | Phase::Snapshot | Phase::Mirror => "engine",
            Phase::WalAppend | Phase::WalFsync => "persist",
            Phase::PoolRange => "pool",
        }
    }

    fn from_u8(v: u8) -> Option<Phase> {
        Some(match v {
            0 => Phase::Batch,
            1 => Phase::Route,
            2 => Phase::Plan,
            3 => Phase::Group,
            4 => Phase::Apply,
            5 => Phase::Snapshot,
            6 => Phase::WalAppend,
            7 => Phase::WalFsync,
            8 => Phase::PoolRange,
            9 => Phase::Mirror,
            _ => return None,
        })
    }
}

/// Span boundary or point event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// Span start.
    Begin = 0,
    /// Span end (matches the most recent unmatched Begin of the same
    /// trace/thread/phase).
    End = 1,
    /// Point-in-time marker.
    Instant = 2,
}

impl EventKind {
    fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            0 => EventKind::Begin,
            1 => EventKind::End,
            2 => EventKind::Instant,
            _ => return None,
        })
    }
}

/// One decoded trace event, as returned by [`Ring::snapshot`] /
/// [`events`]. Plain data: sortable, cloneable, exportable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global emission sequence number (1-based, total order of writes).
    pub seq: u64,
    /// Monotonic nanoseconds since the trace clock epoch ([`now_ns`]).
    pub ts_ns: u64,
    /// Stable per-thread id (small integers in emission-thread order).
    pub tid: u64,
    /// The batch this event belongs to (raw [`TraceId`]).
    pub trace: u64,
    /// Phase tag.
    pub phase: Phase,
    /// Begin / End / Instant.
    pub kind: EventKind,
    /// First free argument (phase-specific: op counts, shard ids, ...).
    pub arg0: u64,
    /// Second free argument.
    pub arg1: u64,
}

/// One ring slot: the event fields as independent atomics plus a
/// sequence word written last (release) and validated around reads, so
/// a torn read across a ring lap is detected and discarded rather than
/// surfacing as a frankenevent.
struct Slot {
    seq: AtomicU64,
    ts: AtomicU64,
    /// Packed `tid << 16 | phase << 8 | kind`.
    meta: AtomicU64,
    trace: AtomicU64,
    arg0: AtomicU64,
    arg1: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            ts: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            arg0: AtomicU64::new(0),
            arg1: AtomicU64::new(0),
        }
    }
}

/// A lock-free fixed-capacity ring buffer of [`TraceEvent`]s. Writers
/// claim a slot with one `fetch_add` and overwrite the oldest event once
/// the ring is full; readers snapshot without stopping writers (events
/// overwritten mid-read are detected via the per-slot sequence word and
/// skipped).
pub struct Ring {
    slots: Box<[Slot]>,
    /// Total events ever written; `head % capacity` is the next slot.
    head: AtomicU64,
}

impl Ring {
    /// A ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Ring {
        let capacity = capacity.max(1);
        Ring {
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever written (wrapped ones included).
    pub fn written(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Write one event. Lock-free: one `fetch_add` + six relaxed stores
    /// (the sequence word pair is release-ordered so readers see whole
    /// events or nothing).
    #[allow(clippy::too_many_arguments)]
    pub fn emit(
        &self,
        ts_ns: u64,
        tid: u64,
        trace: u64,
        phase: Phase,
        kind: EventKind,
        arg0: u64,
        arg1: u64,
    ) {
        let idx = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(idx % self.slots.len() as u64) as usize];
        // Invalidate first so a concurrent reader can never validate a
        // half-written event against the *previous* occupant's seq.
        slot.seq.store(0, Ordering::Release);
        slot.ts.store(ts_ns, Ordering::Relaxed);
        slot.meta.store(
            (tid << 16) | ((phase as u64) << 8) | kind as u64,
            Ordering::Relaxed,
        );
        slot.trace.store(trace, Ordering::Relaxed);
        slot.arg0.store(arg0, Ordering::Relaxed);
        slot.arg1.store(arg1, Ordering::Relaxed);
        slot.seq.store(idx + 1, Ordering::Release);
    }

    /// Decode every currently-valid event, sorted by `(ts_ns, seq)`.
    /// Weakly consistent under concurrent writing: events overwritten
    /// while being read are detected (sequence mismatch) and skipped.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 {
                continue;
            }
            let ts = slot.ts.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let trace = slot.trace.load(Ordering::Relaxed);
            let arg0 = slot.arg0.load(Ordering::Relaxed);
            let arg1 = slot.arg1.load(Ordering::Relaxed);
            let s2 = slot.seq.load(Ordering::Acquire);
            if s1 != s2 {
                continue; // overwritten mid-read
            }
            let (Some(phase), Some(kind)) = (
                Phase::from_u8(((meta >> 8) & 0xff) as u8),
                EventKind::from_u8((meta & 0xff) as u8),
            ) else {
                continue;
            };
            out.push(TraceEvent {
                seq: s1,
                ts_ns: ts,
                tid: meta >> 16,
                trace,
                phase,
                kind,
                arg0,
                arg1,
            });
        }
        out.sort_by_key(|e| (e.ts_ns, e.seq));
        out
    }
}

// ---- global tracer state ----

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static CAPTURE_NEXT: AtomicBool = AtomicBool::new(false);
/// 0 = threshold capture disabled.
static CAPTURE_THRESHOLD_NS: AtomicU64 = AtomicU64::new(0);
static RING: OnceLock<Ring> = OnceLock::new();
static EPOCH: OnceLock<Instant> = OnceLock::new();
static CAPTURED: Mutex<Vec<CapturedTrace>> = Mutex::new(Vec::new());

thread_local! {
    /// The ambient trace id of this thread (0 = none). Set by [`scope`];
    /// read by emission sites in every layer.
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    /// Stable small per-thread id, assigned on first trace emission.
    static TID: Cell<u64> = const { Cell::new(0) };
}

/// Whether tracing is on. The single relaxed load every emission site
/// pays when tracing is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn tracing on, allocating the global ring with `capacity` slots on
/// first call (the capacity is fixed by whoever enables first; later
/// calls just re-enable). Idempotent.
pub fn enable(capacity: usize) {
    RING.get_or_init(|| Ring::new(capacity));
    let _ = EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::Relaxed);
}

/// [`enable`] with [`DEFAULT_RING_CAPACITY`].
pub fn enable_default() {
    enable(DEFAULT_RING_CAPACITY);
}

/// Turn tracing off. The ring and any pinned captures are retained.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Monotonic nanoseconds since the process trace epoch. All threads
/// share one epoch, so timestamps are comparable across threads.
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Stable small id for the calling thread.
pub fn thread_id() -> u64 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(v);
            v
        }
    })
}

/// Allocate a fresh batch id, or [`TraceId::NONE`] when tracing is off
/// (so callers hold a single value that makes every later emission
/// inert).
pub fn next_id() -> TraceId {
    if !enabled() {
        return TraceId::NONE;
    }
    TraceId(NEXT_ID.fetch_add(1, Ordering::Relaxed))
}

/// The ambient trace id of the calling thread ([`TraceId::NONE`] when
/// tracing is off or no scope is active).
#[inline]
pub fn current() -> TraceId {
    if !enabled() {
        return TraceId::NONE;
    }
    TraceId(CURRENT.with(|c| c.get()))
}

/// Restores the previous ambient trace id on drop (see [`scope`]).
pub struct ScopeGuard {
    prev: u64,
    active: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.active {
            CURRENT.with(|c| c.set(self.prev));
        }
    }
}

/// Make `id` the calling thread's ambient trace id until the returned
/// guard drops. A [`TraceId::NONE`] scope is inert (the ambient id is
/// left untouched), so untraced batches pay nothing but the branch.
pub fn scope(id: TraceId) -> ScopeGuard {
    if !id.is_some() {
        return ScopeGuard {
            prev: 0,
            active: false,
        };
    }
    let prev = CURRENT.with(|c| c.replace(id.0));
    ScopeGuard { prev, active: true }
}

/// Emit one event against `id`. Inert when tracing is off or `id` is
/// [`TraceId::NONE`].
#[inline]
pub fn emit(id: TraceId, phase: Phase, kind: EventKind, arg0: u64, arg1: u64) {
    if !enabled() || !id.is_some() {
        return;
    }
    emit_slow(id, phase, kind, arg0, arg1);
}

#[cold]
fn emit_slow(id: TraceId, phase: Phase, kind: EventKind, arg0: u64, arg1: u64) {
    let Some(ring) = RING.get() else { return };
    ring.emit(now_ns(), thread_id(), id.0, phase, kind, arg0, arg1);
}

/// Emit an [`EventKind::Instant`] against the ambient trace id.
#[inline]
pub fn instant(phase: Phase, arg0: u64, arg1: u64) {
    emit(current(), phase, EventKind::Instant, arg0, arg1);
}

/// A drop-guard span against the **ambient** trace id: emits Begin at
/// construction and End on drop. When tracing is off (or no scope is
/// active) construction is one relaxed load + branch and drop is one
/// branch — the zero-cost tier.
pub struct TSpan {
    id: TraceId,
    phase: Phase,
}

impl TSpan {
    /// Begin a span of `phase` on the current trace (inert if none).
    #[inline]
    pub fn start(phase: Phase, arg0: u64, arg1: u64) -> TSpan {
        let id = current();
        emit(id, phase, EventKind::Begin, arg0, arg1);
        TSpan { id, phase }
    }

    /// End now instead of at scope end.
    pub fn stop(self) {}
}

impl Drop for TSpan {
    fn drop(&mut self) {
        emit(self.id, self.phase, EventKind::End, 0, 0);
    }
}

/// Every currently-valid event in the global ring, sorted by time.
/// Empty when tracing was never enabled.
pub fn events() -> Vec<TraceEvent> {
    match RING.get() {
        Some(r) => r.snapshot(),
        None => Vec::new(),
    }
}

// ---- flight recorder ----

/// One batch's events, promoted out of the ring by the flight recorder.
#[derive(Clone, Debug)]
pub struct CapturedTrace {
    /// The batch's raw [`TraceId`].
    pub trace: u64,
    /// End-to-end batch latency reported by the promoting layer.
    pub total_ns: u64,
    /// The batch's events, time-sorted.
    pub events: Vec<TraceEvent>,
}

/// Arm the flight recorder to capture the next batch offered via
/// [`offer_capture`] regardless of its latency.
pub fn capture_next() {
    CAPTURE_NEXT.store(true, Ordering::Relaxed);
}

/// Capture every offered batch slower than `ns` (0 disables threshold
/// capture). Retention keeps the slowest [`CAPTURE_SLOTS`] batches.
pub fn set_capture_threshold_ns(ns: u64) {
    CAPTURE_THRESHOLD_NS.store(ns, Ordering::Relaxed);
}

/// Offer a finished batch to the flight recorder: promotes its events
/// out of the ring into the pinned capture buffer if `capture_next` was
/// armed or `total_ns` meets the threshold. Returns whether the batch
/// was pinned. Layers that know a batch's end-to-end latency (the
/// sharded service, the serve harness) call this once per traced batch.
pub fn offer_capture(id: TraceId, total_ns: u64) -> bool {
    if !enabled() || !id.is_some() {
        return false;
    }
    let armed = CAPTURE_NEXT.swap(false, Ordering::Relaxed);
    if !armed {
        let thr = CAPTURE_THRESHOLD_NS.load(Ordering::Relaxed);
        if thr == 0 || total_ns < thr {
            return false;
        }
    }
    let events: Vec<TraceEvent> = events().into_iter().filter(|e| e.trace == id.0).collect();
    if events.is_empty() {
        return false;
    }
    let capture = CapturedTrace {
        trace: id.0,
        total_ns,
        events,
    };
    let mut pinned = CAPTURED.lock().unwrap_or_else(|e| e.into_inner());
    if pinned.len() < CAPTURE_SLOTS {
        pinned.push(capture);
        return true;
    }
    // Tail-based retention: evict the fastest pinned trace, keep the
    // slowest CAPTURE_SLOTS seen since the last drain.
    let (fastest, min_ns) = pinned
        .iter()
        .enumerate()
        .map(|(i, c)| (i, c.total_ns))
        .min_by_key(|&(_, ns)| ns)
        .expect("pinned buffer non-empty");
    if total_ns <= min_ns {
        return false;
    }
    pinned[fastest] = capture;
    true
}

/// Drain the pinned capture buffer (slowest-first).
pub fn take_captured() -> Vec<CapturedTrace> {
    let mut pinned = CAPTURED.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = std::mem::take(&mut *pinned);
    out.sort_by_key(|c| std::cmp::Reverse(c.total_ns));
    out
}

// ---- exporters ----

/// Render events as Chrome trace-event JSON (the `traceEvents` array
/// format Perfetto and `about://tracing` load). Timestamps are exported
/// in microseconds with nanosecond precision; `pid` is fixed at 1 (one
/// process), `tid` is the stable per-thread id, `cat` the emitting
/// layer, and the trace id plus both args ride in `args`.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    out.push_str("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        let ph = match e.kind {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
        };
        let scope = if e.kind == EventKind::Instant {
            ",\"s\":\"t\""
        } else {
            ""
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\"{},\"pid\":1,\"tid\":{},\"ts\":{}.{:03},\"args\":{{\"trace\":{},\"arg0\":{},\"arg1\":{}}}}}{}\n",
            e.phase.name(),
            e.phase.layer(),
            ph,
            scope,
            e.tid,
            e.ts_ns / 1_000,
            e.ts_ns % 1_000,
            e.trace,
            e.arg0,
            e.arg1,
            if i + 1 < events.len() { "," } else { "" }
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Render events as a compact indented text timeline: one line per
/// completed span (`+start duration name`), nested spans indented,
/// instants as points. Spans still open at the end of the event window
/// render with an unknown duration.
pub fn text_timeline(events: &[TraceEvent]) -> String {
    struct Line {
        start_ns: u64,
        seq: u64,
        depth: usize,
        text: String,
    }
    let us = |ns: u64| format!("{}.{:03}us", ns / 1_000, ns % 1_000);
    let mut lines: Vec<Line> = Vec::new();
    // Open Begin events per thread, matched LIFO by (trace, phase).
    let mut open: Vec<&TraceEvent> = Vec::new();
    for e in events {
        match e.kind {
            EventKind::Begin => open.push(e),
            EventKind::End => {
                let found = open
                    .iter()
                    .rposition(|b| b.tid == e.tid && b.trace == e.trace && b.phase == e.phase);
                if let Some(i) = found {
                    let b = open.remove(i);
                    let depth = open
                        .iter()
                        .filter(|o| o.tid == b.tid && o.ts_ns <= b.ts_ns)
                        .count();
                    lines.push(Line {
                        start_ns: b.ts_ns,
                        seq: b.seq,
                        depth,
                        text: format!(
                            "+{:>12} {:>12}  {} trace={} tid={} args=({}, {})",
                            us(b.ts_ns),
                            us(e.ts_ns.saturating_sub(b.ts_ns)),
                            b.phase.name(),
                            b.trace,
                            b.tid,
                            b.arg0,
                            b.arg1
                        ),
                    });
                }
            }
            EventKind::Instant => {
                let depth = open.iter().filter(|o| o.tid == e.tid).count();
                lines.push(Line {
                    start_ns: e.ts_ns,
                    seq: e.seq,
                    depth,
                    text: format!(
                        "+{:>12} {:>12}  {} trace={} tid={} args=({}, {})",
                        us(e.ts_ns),
                        "·",
                        e.phase.name(),
                        e.trace,
                        e.tid,
                        e.arg0,
                        e.arg1
                    ),
                });
            }
        }
    }
    for b in open {
        lines.push(Line {
            start_ns: b.ts_ns,
            seq: b.seq,
            depth: 0,
            text: format!(
                "+{:>12} {:>12}  {} trace={} tid={} args=({}, {}) [unclosed]",
                us(b.ts_ns),
                "?",
                b.phase.name(),
                b.trace,
                b.tid,
                b.arg0,
                b.arg1
            ),
        });
    }
    lines.sort_by_key(|l| (l.start_ns, l.seq));
    let mut out = String::new();
    for l in lines {
        out.push_str(&"  ".repeat(l.depth));
        out.push_str(&l.text);
        out.push('\n');
    }
    out
}

/// Sum of closed-span durations per phase across `events`, as
/// `(phase, total_ns)` pairs in phase order. The attribution input for
/// the E4 knee breakdown.
pub fn phase_durations(events: &[TraceEvent]) -> Vec<(Phase, u64)> {
    let mut totals: [u64; 10] = [0; 10];
    let mut open: Vec<&TraceEvent> = Vec::new();
    for e in events {
        match e.kind {
            EventKind::Begin => open.push(e),
            EventKind::End => {
                let found = open
                    .iter()
                    .rposition(|b| b.tid == e.tid && b.trace == e.trace && b.phase == e.phase);
                if let Some(i) = found {
                    let b = open.remove(i);
                    totals[b.phase as usize] += e.ts_ns.saturating_sub(b.ts_ns);
                }
            }
            EventKind::Instant => {}
        }
    }
    (0..totals.len())
        .filter_map(|i| Phase::from_u8(i as u8).map(|p| (p, totals[i])))
        .filter(|&(_, ns)| ns > 0)
        .collect()
}

/// Wall-clock per-phase durations: for each phase, the total length of the
/// **union** of its closed spans across all threads, as `(phase, union_ns)`
/// pairs in phase order.
///
/// Contrast with [`phase_durations`], which sums *thread-time*: a phase
/// running on `k` workers concurrently contributes `k×` there, so its share
/// of a batch can legitimately exceed 1.0. Here an instant covered by any
/// number of overlapping spans counts once, so each phase's union is
/// bounded by the batch's wall-clock span and its share is always ≤ 1.0.
/// Thread-time answers "where did the CPUs go", wall-time answers "what was
/// the batch waiting on".
pub fn phase_wall_durations(events: &[TraceEvent]) -> Vec<(Phase, u64)> {
    // Close spans exactly like `phase_durations` (nearest open Begin with
    // matching tid/trace/phase), but keep the raw intervals per phase.
    let mut intervals: [Vec<(u64, u64)>; 10] = Default::default();
    let mut open: Vec<&TraceEvent> = Vec::new();
    for e in events {
        match e.kind {
            EventKind::Begin => open.push(e),
            EventKind::End => {
                let found = open
                    .iter()
                    .rposition(|b| b.tid == e.tid && b.trace == e.trace && b.phase == e.phase);
                if let Some(i) = found {
                    let b = open.remove(i);
                    if e.ts_ns > b.ts_ns {
                        intervals[b.phase as usize].push((b.ts_ns, e.ts_ns));
                    }
                }
            }
            EventKind::Instant => {}
        }
    }
    // Sweep each phase's intervals in start order, merging overlaps.
    let mut out = Vec::new();
    for (i, spans) in intervals.iter_mut().enumerate() {
        if spans.is_empty() {
            continue;
        }
        spans.sort_unstable();
        let mut union = 0u64;
        let (mut lo, mut hi) = spans[0];
        for &(s, e) in &spans[1..] {
            if s <= hi {
                hi = hi.max(e);
            } else {
                union += hi - lo;
                (lo, hi) = (s, e);
            }
        }
        union += hi - lo;
        if let Some(p) = Phase::from_u8(i as u8) {
            out.push((p, union));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The flight-recorder state (pinned captures, arm flag, threshold)
    /// is process-global; tests touching it serialize on this lock so
    /// the parallel test harness can't interleave their capture cycles.
    static RECORDER_LOCK: Mutex<()> = Mutex::new(());

    #[allow(clippy::too_many_arguments)]
    fn ev(
        seq: u64,
        ts: u64,
        tid: u64,
        trace: u64,
        phase: Phase,
        kind: EventKind,
        a0: u64,
        a1: u64,
    ) -> TraceEvent {
        TraceEvent {
            seq,
            ts_ns: ts,
            tid,
            trace,
            phase,
            kind,
            arg0: a0,
            arg1: a1,
        }
    }

    #[test]
    fn ring_wraparound_keeps_the_newest_capacity_events() {
        let ring = Ring::new(8);
        for i in 0..20u64 {
            ring.emit(i * 10, 1, 7, Phase::Apply, EventKind::Instant, i, 0);
        }
        let snap = ring.snapshot();
        assert_eq!(ring.written(), 20);
        assert_eq!(snap.len(), 8);
        // Exactly the last 8 emissions survive, in order.
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (13..=20).collect::<Vec<u64>>());
        for e in &snap {
            assert_eq!(e.arg0, e.seq - 1);
            assert_eq!(e.ts_ns, (e.seq - 1) * 10);
            assert_eq!(e.trace, 7);
            assert_eq!(e.phase, Phase::Apply);
        }
    }

    #[test]
    fn ring_single_slot_and_empty_snapshot() {
        let ring = Ring::new(0); // clamped to 1
        assert_eq!(ring.capacity(), 1);
        assert!(ring.snapshot().is_empty());
        ring.emit(5, 2, 3, Phase::Plan, EventKind::Begin, 0, 0);
        ring.emit(9, 2, 3, Phase::Plan, EventKind::End, 0, 0);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].kind, EventKind::End);
        assert_eq!(snap[0].ts_ns, 9);
    }

    #[test]
    fn ring_concurrent_writers_never_yield_torn_events() {
        use std::sync::atomic::AtomicBool;
        let ring = std::sync::Arc::new(Ring::new(64));
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        // arg1 is a deterministic function of (trace, arg0): any decoded
        // event violating it is a torn read the seq check failed to catch.
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        ring.emit(
                            i,
                            t + 1,
                            t + 1,
                            Phase::PoolRange,
                            EventKind::Instant,
                            i,
                            i.wrapping_mul(2654435761).wrapping_add(t + 1),
                        );
                    }
                })
            })
            .collect();
        let reader = {
            let ring = ring.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut validated = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    for e in ring.snapshot() {
                        assert_eq!(
                            e.arg1,
                            e.arg0.wrapping_mul(2654435761).wrapping_add(e.trace),
                            "torn event decoded: {e:?}"
                        );
                        assert_eq!(e.tid, e.trace);
                        validated += 1;
                    }
                }
                validated
            })
        };
        for w in writers {
            w.join().expect("writer");
        }
        stop.store(true, Ordering::Relaxed);
        let validated = reader.join().expect("reader");
        assert!(validated > 0, "the reader never saw a valid event");
        // Quiesced: a final snapshot decodes a full, consistent ring.
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 64);
        assert_eq!(ring.written(), 4 * 5_000);
        for e in snap {
            assert_eq!(
                e.arg1,
                e.arg0.wrapping_mul(2654435761).wrapping_add(e.trace)
            );
        }
    }

    #[test]
    fn chrome_trace_json_golden() {
        let events = [
            ev(1, 0, 1, 3, Phase::Batch, EventKind::Begin, 96, 0),
            ev(2, 1_500, 1, 3, Phase::Plan, EventKind::Begin, 0, 0),
            ev(3, 2_750, 1, 3, Phase::Plan, EventKind::End, 0, 0),
            ev(4, 3_000, 2, 3, Phase::WalFsync, EventKind::Instant, 8, 0),
            ev(5, 10_123, 1, 3, Phase::Batch, EventKind::End, 0, 0),
        ];
        let golden = "{\"traceEvents\":[\n\
{\"name\":\"service.batch\",\"cat\":\"shard\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":0.000,\"args\":{\"trace\":3,\"arg0\":96,\"arg1\":0}},\n\
{\"name\":\"engine.plan\",\"cat\":\"engine\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":1.500,\"args\":{\"trace\":3,\"arg0\":0,\"arg1\":0}},\n\
{\"name\":\"engine.plan\",\"cat\":\"engine\",\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":2.750,\"args\":{\"trace\":3,\"arg0\":0,\"arg1\":0}},\n\
{\"name\":\"wal.fsync\",\"cat\":\"persist\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":2,\"ts\":3.000,\"args\":{\"trace\":3,\"arg0\":8,\"arg1\":0}},\n\
{\"name\":\"service.batch\",\"cat\":\"shard\",\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":10.123,\"args\":{\"trace\":3,\"arg0\":0,\"arg1\":0}}\n\
],\"displayTimeUnit\":\"ms\"}\n";
        assert_eq!(chrome_trace_json(&events), golden);
    }

    #[test]
    fn text_timeline_pairs_spans_and_indents_nesting() {
        let events = [
            ev(1, 0, 1, 3, Phase::Batch, EventKind::Begin, 96, 0),
            ev(2, 1_000, 1, 3, Phase::Apply, EventKind::Begin, 0, 0),
            ev(3, 1_200, 1, 3, Phase::Group, EventKind::Begin, 4, 0),
            ev(4, 1_700, 1, 3, Phase::Group, EventKind::End, 0, 0),
            ev(5, 2_000, 1, 3, Phase::Apply, EventKind::End, 0, 0),
            ev(6, 2_500, 2, 3, Phase::WalAppend, EventKind::Instant, 1, 16),
            ev(7, 3_000, 1, 3, Phase::Batch, EventKind::End, 0, 0),
        ];
        let text = text_timeline(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("service.batch") && lines[0].contains("3.000us"));
        assert!(lines[1].starts_with("  ") && lines[1].contains("engine.apply"));
        assert!(lines[2].starts_with("    ") && lines[2].contains("engine.group"));
        assert!(lines[2].contains("0.500us"));
        assert!(lines[3].contains("wal.append") && lines[3].contains("args=(1, 16)"));
    }

    #[test]
    fn phase_durations_sum_closed_spans() {
        let events = [
            ev(1, 0, 1, 3, Phase::Apply, EventKind::Begin, 0, 0),
            ev(2, 100, 1, 3, Phase::Apply, EventKind::End, 0, 0),
            ev(3, 200, 1, 3, Phase::Apply, EventKind::Begin, 0, 0),
            ev(4, 500, 1, 3, Phase::Apply, EventKind::End, 0, 0),
            ev(5, 600, 2, 3, Phase::WalFsync, EventKind::Begin, 0, 0),
            ev(6, 850, 2, 3, Phase::WalFsync, EventKind::End, 0, 0),
            // Unclosed span contributes nothing.
            ev(7, 900, 1, 3, Phase::Plan, EventKind::Begin, 0, 0),
        ];
        let durs = phase_durations(&events);
        assert_eq!(durs, vec![(Phase::Apply, 400), (Phase::WalFsync, 250)]);
    }

    #[test]
    fn phase_wall_durations_merge_overlapping_spans_across_threads() {
        let events = [
            // Two workers applying concurrently: [0,100] and [50,180]
            // overlap, so thread-time is 230 but wall-time is 180.
            ev(1, 0, 1, 3, Phase::Apply, EventKind::Begin, 0, 0),
            ev(2, 50, 2, 3, Phase::Apply, EventKind::Begin, 0, 0),
            ev(3, 100, 1, 3, Phase::Apply, EventKind::End, 0, 0),
            ev(4, 180, 2, 3, Phase::Apply, EventKind::End, 0, 0),
            // Disjoint second apply window on worker 1: [300,350].
            ev(5, 300, 1, 3, Phase::Apply, EventKind::Begin, 0, 0),
            ev(6, 350, 1, 3, Phase::Apply, EventKind::End, 0, 0),
            // Single-threaded phase: wall == thread time.
            ev(7, 400, 1, 3, Phase::WalFsync, EventKind::Begin, 0, 0),
            ev(8, 650, 1, 3, Phase::WalFsync, EventKind::End, 0, 0),
            // Unclosed span contributes nothing.
            ev(9, 700, 1, 3, Phase::Plan, EventKind::Begin, 0, 0),
        ];
        assert_eq!(
            phase_wall_durations(&events),
            vec![(Phase::Apply, 230), (Phase::WalFsync, 250)]
        );
        assert_eq!(
            phase_durations(&events),
            vec![(Phase::Apply, 280), (Phase::WalFsync, 250)]
        );
    }

    #[test]
    fn global_tracer_roundtrip_and_flight_recorder() {
        // The global tracer is process-wide; this test shares it with any
        // other test that enables tracing, so it filters by its own ids.
        let _serial = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        enable(1024);
        assert!(enabled());
        let id = next_id();
        assert!(id.is_some());
        {
            let _g = scope(id);
            assert_eq!(current(), id);
            let span = TSpan::start(Phase::Batch, 11, 0);
            instant(Phase::WalFsync, 1, 2);
            span.stop();
        }
        assert_ne!(current(), id, "scope must restore on drop");
        let mine: Vec<TraceEvent> = events().into_iter().filter(|e| e.trace == id.0).collect();
        assert_eq!(mine.len(), 3);
        assert_eq!(mine[0].kind, EventKind::Begin);
        assert_eq!(mine[0].arg0, 11);
        assert_eq!(mine[1].kind, EventKind::Instant);
        assert_eq!(mine[2].kind, EventKind::End);

        // Threshold capture: too fast → not pinned; armed → pinned.
        set_capture_threshold_ns(u64::MAX);
        assert!(!offer_capture(id, 1_000));
        capture_next();
        assert!(offer_capture(id, 1_000));
        set_capture_threshold_ns(0);
        let captured = take_captured();
        let mine: Vec<&CapturedTrace> = captured.iter().filter(|c| c.trace == id.0).collect();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].total_ns, 1_000);
        assert_eq!(mine[0].events.len(), 3);
    }

    #[test]
    fn capture_retention_keeps_the_slowest() {
        let _serial = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        enable(1024);
        // Fill well past CAPTURE_SLOTS with ascending latencies; drain and
        // check only the slowest survived. Uses its own ids to coexist
        // with the other global-tracer test.
        let _ = take_captured(); // start from an empty pinned buffer
        let mut ids = Vec::new();
        for i in 0..(CAPTURE_SLOTS as u64 + 8) {
            let id = next_id();
            {
                let _g = scope(id);
                instant(Phase::Batch, i, 0);
            }
            capture_next();
            assert!(offer_capture(id, 1_000 + i));
            ids.push((id.0, 1_000 + i));
        }
        let captured = take_captured();
        assert_eq!(captured.len(), CAPTURE_SLOTS);
        let slowest_kept: Vec<u64> = captured.iter().map(|c| c.total_ns).collect();
        let expected: Vec<u64> = ids
            .iter()
            .rev()
            .take(CAPTURE_SLOTS)
            .map(|&(_, ns)| ns)
            .collect();
        assert_eq!(slowest_kept, expected, "retention must keep the slowest");
    }
}
