//! Zero-dependency, thread-safe metrics core for the `pdmsf` stack.
//!
//! Every serving layer (the worker pool, the batch engine, the sharded
//! service, the persistence layer) records into this crate, and everything
//! it records is scrapeable through one [`Registry::render_text`] call in
//! the Prometheus text exposition format. Nothing here allocates, locks or
//! syscalls on the record path:
//!
//! * [`Counter`] / [`Gauge`] — one relaxed atomic read-modify-write per
//!   update.
//! * [`Histogram`] — log2-bucketed fixed-size latency histogram: a record
//!   is a `leading_zeros` + three relaxed `fetch_add`s (bucket, count,
//!   sum). Count and sum are exact; quantiles are estimated from the
//!   buckets (see *Accuracy* below). Histograms are mergeable through
//!   [`HistSnapshot::merge`], so per-shard recorders combine into one
//!   distribution without any cross-thread coordination while recording.
//! * [`Span`] / [`PhaseTimer`] — drop-guards that record the elapsed
//!   nanoseconds of a phase into a histogram. Constructed with `None`
//!   (no registry / metrics disabled) they skip the clock read entirely
//!   and compile to a near-no-op: one branch on drop.
//!
//! ## Overhead model
//!
//! The record path costs one `Instant::now()` pair per timed phase
//! (~20-50ns each) plus a handful of relaxed atomics (~1-5ns each,
//! uncontended). The engine times four phases per *batch* (hundreds to
//! thousands of ops), so instrumentation amortizes to well under 1ns/op —
//! the `obs_overhead` harness bench pins the end-to-end regression of an
//! instrumented engine under 2% of the uninstrumented median. Registration
//! (name lookup) takes a mutex, but happens once per metric at
//! enable-time: layers resolve `Arc` handles up front and the hot path
//! never touches the registry again.
//!
//! ## Accuracy
//!
//! Buckets are powers of two: bucket 0 holds the value 0, bucket `i` holds
//! `[2^(i-1), 2^i)`, and the last bucket is unbounded. A quantile estimate
//! first finds the bucket containing the target rank — always the same
//! bucket as the exact sample quantile, since counts are exact — then
//! interpolates by rank position inside it, so the estimate is off by at
//! most one bucket width (a factor of 2 in the worst case, typically much
//! less). Count and sum are exact. Concurrent snapshots are weakly
//! consistent (a racing record may appear in `count` but not yet in its
//! bucket); quiesce recorders before asserting exact totals.
//!
//! ## Naming conventions
//!
//! Metric families are named `pdmsf_<layer>_<metric>`, with the layer one
//! of `pool`, `engine`, `shard`, `persist`. Counters end in `_total`,
//! duration histograms in `_ns` (nanosecond values), size histograms in
//! the unit they count (`_ops`, `_bytes`). Per-shard series carry a single
//! `shard="<index>"` label. The process-wide registry is [`global`];
//! layers register there so one `render_text` covers the whole stack.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

pub mod trace;

/// Number of histogram buckets: bucket 0 for the value 0, buckets
/// `1..=62` for `[2^(i-1), 2^i)`, bucket 63 unbounded above `2^62 - 1`.
pub const BUCKETS: usize = 64;

/// The bucket a value lands in: its bit length, capped at the last bucket.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper edge of bucket `i` (`u64::MAX` for the unbounded last
/// bucket).
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Inclusive lower edge of bucket `i`.
#[inline]
pub fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A monotonically increasing counter. All operations are relaxed atomics.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A free-standing counter (registry-managed ones come from
    /// [`Registry::counter`]).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge. All operations are relaxed atomics.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A free-standing gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `d` (negative to decrement).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-size log2-bucketed histogram with exact count and sum.
/// Recording is lock-free (relaxed atomics); see the crate docs for the
/// accuracy and overhead model.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// Smallest observed value (`u64::MAX` while empty).
    min: AtomicU64,
    /// Largest observed value (0 while empty).
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty free-standing histogram (registry-managed ones come from
    /// [`Registry::histogram`]).
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record `n` observations of the same value (e.g. every op of a batch
    /// completing together).
    #[inline]
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(value.wrapping_mul(n), Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Capture the current bucket counts, count and sum. Weakly consistent
    /// under concurrent recording (see the crate docs).
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        let count = self.count.load(Ordering::Relaxed);
        HistSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            // Normalize the empty sentinel so snapshots are plain data.
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]: plain integers, mergeable,
/// queryable for quantiles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; BUCKETS],
    /// Total observations (exact).
    pub count: u64,
    /// Sum of all observed values (exact, wrapping).
    pub sum: u64,
    /// Smallest observed value (exact; 0 on an empty snapshot).
    pub min: u64,
    /// Largest observed value (exact; 0 on an empty snapshot).
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> HistSnapshot {
        HistSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Merge another snapshot into this one (bucket-wise addition; count
    /// and sum stay exact). Merging per-shard histograms yields exactly
    /// the histogram of the concatenated samples.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        // min/max before counts: the empty-side cases key off the old
        // counts, not the merged one.
        if other.count > 0 {
            self.min = if self.count == 0 {
                other.min
            } else {
                self.min.min(other.min)
            };
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`): find the bucket holding
    /// the target rank, then interpolate by rank position inside it. The
    /// estimate falls in the same bucket as the exact sample quantile.
    /// Returns 0 on an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = bucket_lower(i);
                let hi = bucket_upper(i);
                let within = rank - seen; // 1..=c
                let width = hi - lo;
                return lo + ((width as u128 * within as u128) / c as u128) as u64;
            }
            seen += c;
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Mean observed value (0 on an empty snapshot).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// An owned drop-guard timing one phase into a histogram. With `None` it
/// never reads the clock — a near-no-op for uninstrumented paths. Owning
/// the `Arc` keeps the guard free of borrows, so it can straddle `&mut`
/// calls on the instrumented object (the engine's apply phase does).
pub struct Span {
    target: Option<(Arc<Histogram>, Instant)>,
}

impl Span {
    /// Start timing into `hist` (or do nothing for `None`).
    pub fn start(hist: Option<Arc<Histogram>>) -> Span {
        Span {
            target: hist.map(|h| (h, Instant::now())),
        }
    }

    /// Stop and record now instead of at scope end.
    pub fn stop(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.target.take() {
            hist.record_duration(start.elapsed());
        }
    }
}

/// The borrowed twin of [`Span`] for phases that only hold `&self`
/// borrows: no refcount traffic at all.
pub struct PhaseTimer<'a> {
    target: Option<(&'a Histogram, Instant)>,
}

impl<'a> PhaseTimer<'a> {
    /// Start timing into `hist` (or do nothing for `None`).
    pub fn start(hist: Option<&'a Histogram>) -> PhaseTimer<'a> {
        PhaseTimer {
            target: hist.map(|h| (h, Instant::now())),
        }
    }

    /// Stop and record now instead of at scope end.
    pub fn stop(self) {}
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.target.take() {
            hist.record_duration(start.elapsed());
        }
    }
}

/// What kind of instrument a family holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Series {
    /// At most one `key="value"` label pair per series (all the stack
    /// needs: `shard="<i>"`).
    label: Option<(String, String)>,
    handle: Handle,
}

/// One histogram series as returned by [`Registry::histogram_snapshots`]:
/// family name, optional `(label_key, label_value)` pair, snapshot.
pub type HistogramEntry = (String, Option<(String, String)>, HistSnapshot);

struct Family {
    help: String,
    kind: Kind,
    series: Vec<Series>,
}

/// A registry of named metric families. Registration is get-or-create and
/// takes a mutex; the returned `Arc` handles are lock-free to update.
/// Families render sorted by name, series sorted by label, so the
/// exposition text is deterministic for deterministic values.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Family>>,
}

impl Registry {
    /// An empty registry. Layers normally share [`global`]; fresh
    /// registries are for tests.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn series(
        &self,
        name: &str,
        help: &str,
        label: Option<(&str, &str)>,
        kind: Kind,
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let family = inner.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: Vec::new(),
        });
        assert_eq!(
            family.kind,
            kind,
            "metric family {name} registered as {} and re-requested as {}",
            family.kind.as_str(),
            kind.as_str()
        );
        let wanted = label.map(|(k, v)| (k.to_string(), v.to_string()));
        if let Some(s) = family.series.iter().find(|s| s.label == wanted) {
            return s.handle.clone();
        }
        let handle = make();
        family.series.push(Series {
            label: wanted,
            handle: handle.clone(),
        });
        handle
    }

    /// Get or register the unlabeled counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        match self.series(name, help, None, Kind::Counter, || {
            Handle::Counter(Arc::new(Counter::new()))
        }) {
            Handle::Counter(c) => c,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Get or register the series of counter family `name` carrying the
    /// label `key="value"` (e.g. per-reason reject counters).
    pub fn counter_labeled(&self, name: &str, key: &str, value: &str, help: &str) -> Arc<Counter> {
        match self.series(name, help, Some((key, value)), Kind::Counter, || {
            Handle::Counter(Arc::new(Counter::new()))
        }) {
            Handle::Counter(c) => c,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Get or register the unlabeled gauge `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        match self.series(name, help, None, Kind::Gauge, || {
            Handle::Gauge(Arc::new(Gauge::new()))
        }) {
            Handle::Gauge(g) => g,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Get or register the unlabeled histogram `name`.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        match self.series(name, help, None, Kind::Histogram, || {
            Handle::Histogram(Arc::new(Histogram::new()))
        }) {
            Handle::Histogram(h) => h,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Get or register the series of histogram family `name` carrying the
    /// label `key="value"` (per-shard latency series).
    pub fn histogram_labeled(
        &self,
        name: &str,
        key: &str,
        value: &str,
        help: &str,
    ) -> Arc<Histogram> {
        match self.series(name, help, Some((key, value)), Kind::Histogram, || {
            Handle::Histogram(Arc::new(Histogram::new()))
        }) {
            Handle::Histogram(h) => h,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Sorted names of every registered family (the coverage surface the
    /// exposition golden test pins).
    pub fn family_names(&self) -> Vec<String> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.keys().cloned().collect()
    }

    /// Snapshot every histogram series: `(family, label, snapshot)`, in
    /// render order. For latency tables (examples, the E4 harness report).
    pub fn histogram_snapshots(&self) -> Vec<HistogramEntry> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        for (name, family) in inner.iter() {
            if family.kind != Kind::Histogram {
                continue;
            }
            let mut rows: Vec<&Series> = family.series.iter().collect();
            rows.sort_by(|a, b| a.label.cmp(&b.label));
            for s in rows {
                if let Handle::Histogram(h) = &s.handle {
                    out.push((name.clone(), s.label.clone(), h.snapshot()));
                }
            }
        }
        out
    }

    /// Render every family in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` per family, one line per
    /// sample, histograms as cumulative `_bucket{le=...}` series plus
    /// `_sum`/`_count`. Bucket lines stop at the highest non-empty bucket
    /// (plus `+Inf`), keeping the text proportional to the observed range.
    pub fn render_text(&self) -> String {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (name, family) in inner.iter() {
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.as_str()));
            let mut rows: Vec<&Series> = family.series.iter().collect();
            rows.sort_by(|a, b| a.label.cmp(&b.label));
            for s in rows {
                let label = |extra: Option<(&str, String)>| -> String {
                    let mut pairs = Vec::new();
                    if let Some((k, v)) = &s.label {
                        pairs.push(format!("{k}=\"{v}\""));
                    }
                    if let Some((k, v)) = extra {
                        pairs.push(format!("{k}=\"{v}\""));
                    }
                    if pairs.is_empty() {
                        String::new()
                    } else {
                        format!("{{{}}}", pairs.join(","))
                    }
                };
                match &s.handle {
                    Handle::Counter(c) => {
                        out.push_str(&format!("{name}{} {}\n", label(None), c.get()));
                    }
                    Handle::Gauge(g) => {
                        out.push_str(&format!("{name}{} {}\n", label(None), g.get()));
                    }
                    Handle::Histogram(h) => {
                        let snap = h.snapshot();
                        let last = snap
                            .buckets
                            .iter()
                            .rposition(|&c| c != 0)
                            .map(|i| i.min(BUCKETS - 2));
                        let mut cum = 0u64;
                        if let Some(last) = last {
                            for i in 0..=last {
                                cum += snap.buckets[i];
                                out.push_str(&format!(
                                    "{name}_bucket{} {cum}\n",
                                    label(Some(("le", bucket_upper(i).to_string())))
                                ));
                            }
                        }
                        out.push_str(&format!(
                            "{name}_bucket{} {}\n",
                            label(Some(("le", "+Inf".to_string()))),
                            snap.count
                        ));
                        out.push_str(&format!("{name}_sum{} {}\n", label(None), snap.sum));
                        out.push_str(&format!("{name}_count{} {}\n", label(None), snap.count));
                        out.push_str(&format!("{name}_min{} {}\n", label(None), snap.min));
                        out.push_str(&format!("{name}_max{} {}\n", label(None), snap.max));
                    }
                }
            }
        }
        out
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry every `pdmsf` layer records into. One
/// [`Registry::render_text`] here is the scrape surface of the whole
/// stack.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        // Every bucket edge: lower is inside, lower-1 is in the previous.
        for i in 1..BUCKETS - 1 {
            let lo = bucket_lower(i);
            assert_eq!(bucket_index(lo), i, "lower edge of bucket {i}");
            assert_eq!(bucket_index(lo - 1), i - 1, "below bucket {i}");
            assert_eq!(bucket_index(bucket_upper(i)), i, "upper edge of bucket {i}");
        }
        // The last bucket is unbounded.
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_index(1u64 << 63), BUCKETS - 1);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_count_and_sum_are_exact() {
        let h = Histogram::new();
        let values = [0u64, 1, 1, 5, 17, 1023, 1024, 1 << 40];
        for &v in &values {
            h.record(v);
        }
        h.record_n(7, 3);
        let s = h.snapshot();
        assert_eq!(s.count, values.len() as u64 + 3);
        assert_eq!(s.sum, values.iter().sum::<u64>() + 21);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 2); // the ones
        assert_eq!(s.buckets[3], 4); // 5 and 7×3
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1 << 40);
    }

    #[test]
    fn min_max_are_exact_and_empty_safe() {
        let h = Histogram::new();
        let empty = h.snapshot();
        assert_eq!((empty.min, empty.max), (0, 0));
        h.record(17);
        let one = h.snapshot();
        assert_eq!((one.min, one.max), (17, 17));
        h.record_n(3, 5);
        h.record(900);
        let s = h.snapshot();
        assert_eq!((s.min, s.max), (3, 900));
        // Merge: empty sides must not contribute a fake min of 0.
        let mut merged = HistSnapshot::default();
        merged.merge(&s);
        assert_eq!((merged.min, merged.max), (3, 900));
        merged.merge(&HistSnapshot::default());
        assert_eq!((merged.min, merged.max), (3, 900));
        let other = Histogram::new();
        other.record(1);
        other.record(5000);
        merged.merge(&other.snapshot());
        assert_eq!((merged.min, merged.max), (1, 5000));
    }

    /// Quantile estimates land in the same bucket as the exact sample
    /// quantile — within a factor of 2 (one bucket) of it.
    #[test]
    fn quantile_estimates_stay_within_one_bucket() {
        let mut values: Vec<u64> = (0..1000u64).map(|i| (i * i * 7919) % 100_000).collect();
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        for &q in &[0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
            let exact =
                values[((q * values.len() as f64).ceil() as usize).clamp(1, values.len()) - 1];
            let est = snap.quantile(q);
            assert_eq!(
                bucket_index(est),
                bucket_index(exact),
                "q={q}: estimate {est} not in the exact quantile's bucket ({exact})"
            );
            // One-bucket error bound, stated multiplicatively.
            if exact > 0 {
                let ratio = est.max(exact) as f64 / est.min(exact).max(1) as f64;
                assert!(ratio <= 2.0, "q={q}: {est} vs exact {exact}");
            }
        }
        assert_eq!(
            snap.quantile(0.5).max(1).ilog2(),
            values[499].max(1).ilog2()
        );
    }

    #[test]
    fn quantiles_of_empty_and_singleton() {
        assert_eq!(HistSnapshot::default().quantile(0.5), 0);
        let h = Histogram::new();
        h.record(42);
        let s = h.snapshot();
        for &q in &[0.0, 0.5, 1.0] {
            assert_eq!(bucket_index(s.quantile(q)), bucket_index(42));
        }
    }

    #[test]
    fn merge_is_bucketwise_exact() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for v in [1u64, 3, 900, 17] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 3, 1 << 30] {
            b.record(v);
            both.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn spans_record_and_none_spans_do_not() {
        let h = Arc::new(Histogram::new());
        Span::start(Some(h.clone())).stop();
        {
            let _t = PhaseTimer::start(Some(&h));
        }
        PhaseTimer::start(None).stop();
        Span::start(None).stop();
        assert_eq!(h.snapshot().count, 2);
    }

    #[test]
    fn registry_get_or_register_returns_the_same_instrument() {
        let r = Registry::new();
        let c1 = r.counter("pdmsf_test_total", "a test counter");
        let c2 = r.counter("pdmsf_test_total", "a test counter");
        c1.add(3);
        c2.inc();
        assert_eq!(c1.get(), 4);
        let h1 = r.histogram_labeled("pdmsf_test_ns", "shard", "0", "h");
        let h2 = r.histogram_labeled("pdmsf_test_ns", "shard", "1", "h");
        let h1b = r.histogram_labeled("pdmsf_test_ns", "shard", "0", "h");
        h1.record(1);
        h1b.record(1);
        h2.record(1);
        let snaps = r.histogram_snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].2.count, 2);
        assert_eq!(snaps[1].2.count, 1);
    }

    #[test]
    fn counter_labeled_series_are_independent_and_shared() {
        let r = Registry::new();
        let a = r.counter_labeled("pdmsf_test_rejects_total", "reason", "self_loop", "rejects");
        let b = r.counter_labeled("pdmsf_test_rejects_total", "reason", "dead_edge", "rejects");
        let a2 = r.counter_labeled("pdmsf_test_rejects_total", "reason", "self_loop", "rejects");
        a.add(2);
        a2.inc();
        b.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 1);
        let text = r.render_text();
        assert!(text.contains("pdmsf_test_rejects_total{reason=\"self_loop\"} 3"));
        assert!(text.contains("pdmsf_test_rejects_total{reason=\"dead_edge\"} 1"));
        assert_eq!(
            text.matches("# TYPE pdmsf_test_rejects_total counter")
                .count(),
            1
        );
    }

    #[test]
    #[should_panic(expected = "registered as counter")]
    fn registry_rejects_kind_mismatch() {
        let r = Registry::new();
        let _ = r.counter("pdmsf_test_total", "a counter");
        let _ = r.gauge("pdmsf_test_total", "now a gauge?");
    }

    /// The exposition format, pinned byte-for-byte on a deterministic
    /// registry: HELP/TYPE headers, label placement, cumulative buckets
    /// ending at `+Inf`, `_sum`/`_count`, families sorted by name.
    #[test]
    fn render_text_golden() {
        let r = Registry::new();
        r.counter("pdmsf_demo_ops_total", "operations processed")
            .add(7);
        r.gauge("pdmsf_demo_workers", "worker threads").set(3);
        let h = r.histogram("pdmsf_demo_latency_ns", "op latency");
        h.record(0);
        h.record(1);
        h.record(5);
        h.record(6);
        let s = r.histogram_labeled("pdmsf_demo_shard_ns", "shard", "2", "per-shard latency");
        s.record(3);
        let golden = "\
# HELP pdmsf_demo_latency_ns op latency
# TYPE pdmsf_demo_latency_ns histogram
pdmsf_demo_latency_ns_bucket{le=\"0\"} 1
pdmsf_demo_latency_ns_bucket{le=\"1\"} 2
pdmsf_demo_latency_ns_bucket{le=\"3\"} 2
pdmsf_demo_latency_ns_bucket{le=\"7\"} 4
pdmsf_demo_latency_ns_bucket{le=\"+Inf\"} 4
pdmsf_demo_latency_ns_sum 12
pdmsf_demo_latency_ns_count 4
pdmsf_demo_latency_ns_min 0
pdmsf_demo_latency_ns_max 6
# HELP pdmsf_demo_ops_total operations processed
# TYPE pdmsf_demo_ops_total counter
pdmsf_demo_ops_total 7
# HELP pdmsf_demo_shard_ns per-shard latency
# TYPE pdmsf_demo_shard_ns histogram
pdmsf_demo_shard_ns_bucket{shard=\"2\",le=\"0\"} 0
pdmsf_demo_shard_ns_bucket{shard=\"2\",le=\"1\"} 0
pdmsf_demo_shard_ns_bucket{shard=\"2\",le=\"3\"} 1
pdmsf_demo_shard_ns_bucket{shard=\"2\",le=\"+Inf\"} 1
pdmsf_demo_shard_ns_sum{shard=\"2\"} 3
pdmsf_demo_shard_ns_count{shard=\"2\"} 1
pdmsf_demo_shard_ns_min{shard=\"2\"} 3
pdmsf_demo_shard_ns_max{shard=\"2\"} 3
# HELP pdmsf_demo_workers worker threads
# TYPE pdmsf_demo_workers gauge
pdmsf_demo_workers 3
";
        assert_eq!(r.render_text(), golden);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global().counter("pdmsf_obs_selftest_total", "self test");
        let b = global().counter("pdmsf_obs_selftest_total", "self test");
        a.inc();
        assert_eq!(b.get(), a.get());
    }
}
