//! The 1-core / tiny-input degradation audit, in its own integration
//! binary so the global pool's process-wide state is fully isolated: with
//! the work-stealing scheduler in place, inputs below `PAR_CUTOFF`,
//! single-shard jobs and zero-shard jobs must still run inline — without
//! spawning the pool, let alone waking it — and must be visible as
//! `inline_runs` in the stats, never as pooled jobs.
//!
//! Everything lives in ONE `#[test]` on purpose: the assertions are about
//! process-global state (`pool::is_initialized`, the cumulative counters),
//! so a second concurrently running test would race them.

use pdmsf_pram::kernels::{
    threaded_entrywise_min, threaded_entrywise_or, threaded_masked_min_index, threaded_min_index,
    PAR_CUTOFF,
};
use pdmsf_pram::pool;

#[test]
fn below_cutoff_and_single_shard_work_never_wakes_the_pool() {
    assert!(
        !pool::is_initialized(),
        "the pool must not exist before any kernel ran"
    );
    let before = pool::stats();
    assert_eq!(before.workers, 0);

    // Below-cutoff kernels: computed on the calling thread, no pool, and no
    // run_shards dispatch at all (the kernels short-circuit before the
    // pool's inline path).
    let xs: Vec<u64> = (0..PAR_CUTOFF as u64 - 1)
        .map(|i| (i * 37) % 101 + 1)
        .collect();
    let mask: Vec<bool> = (0..xs.len()).map(|i| i % 2 == 0).collect();
    let expected = xs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.cmp(b.1).then(a.0.cmp(&b.0)))
        .map(|(i, _)| i);
    assert_eq!(threaded_min_index(&xs), expected);
    assert!(threaded_masked_min_index(&xs, &mask).is_some());
    let mut a = xs.clone();
    threaded_entrywise_min(&mut a, &xs);
    let mut b = mask.clone();
    threaded_entrywise_or(&mut b, &mask);
    assert!(
        !pool::is_initialized(),
        "below-cutoff kernels spawned the pool"
    );

    // Single-shard and zero-shard jobs: inline, counted as inline runs.
    pool::run_shards(1, |i| assert_eq!(i, 0));
    pool::run_shard_ranges(1, |r| assert_eq!(r, 0..1));
    pool::run_shards(0, |_| panic!("no shards requested"));
    pool::run_shard_ranges(0, |_| panic!("no shards requested"));
    let after = pool::stats();
    assert!(
        !pool::is_initialized(),
        "single-shard jobs spawned the pool"
    );
    assert_eq!(
        after.inline_runs - before.inline_runs,
        4,
        "every tiny job must be visible as an inline run"
    );
    assert_eq!(after.jobs_run, before.jobs_run, "no pooled jobs may run");
    assert_eq!(after.steals, before.steals);
    assert_eq!(after.chunks_claimed, before.chunks_claimed);
    assert_eq!(after.workers, 0, "no workers may be spawned");
}
