//! A persistent worker pool for the thread-backed kernels.
//!
//! The first threaded execution path dispatched every bulk kernel through
//! `std::thread::scope`, paying a thread spawn + join per call. That
//! overhead put the break-even point of [`crate::ExecMode::Threads`] well
//! beyond 1e6 vertices. This module replaces it with a process-wide pool of
//! parked workers: a kernel invocation publishes one *job* (a borrowed
//! closure plus a shard counter), wakes the workers, claims shards on the
//! calling thread too, and blocks until every shard has finished — so the
//! borrow of the caller's slices provably outlives all shard executions,
//! exactly like a scoped spawn, but without creating a single thread.
//!
//! Guarantees:
//!
//! * **Lazy** — no worker thread exists until the first call of
//!   [`run_shards`] with more than one shard. Tiny graphs (`K < 2`,
//!   single-chunk lists, inputs below [`crate::kernels::PAR_CUTOFF`]) never
//!   touch the pool: their kernels degrade to inline execution on the
//!   calling thread.
//! * **Deterministic results** — the pool only distributes *which thread*
//!   computes a shard; every kernel reduces shard-local results
//!   leftmost-on-tie on the calling thread, so results are bit-for-bit
//!   independent of scheduling.
//! * **Single-machine fallback** — with one hardware thread (or when
//!   `available_parallelism` is unknown) the pool has zero workers and
//!   [`run_shards`] runs every shard inline.

use std::sync::{Condvar, Mutex, OnceLock};

/// Shard index → work. The closure is shared by all workers; shard indices
/// are claimed from a counter, so each index is executed exactly once.
struct Job {
    /// Borrowed closure, lifetime-erased. Soundness: [`run_shards`] does not
    /// return until `pending == 0`, so the referent outlives every call.
    f: *const (dyn Fn(usize) + Sync),
    /// Next shard index to claim.
    next: usize,
    /// Total number of shards.
    shards: usize,
}

// The raw closure pointer is only ever dereferenced while the submitting
// call frame is alive (see `Job::f`); sending it between pool threads is
// therefore safe.
unsafe impl Send for Job {}

#[derive(Default)]
struct State {
    /// The currently published job, if any.
    job: Option<Job>,
    /// Incremented once per published job so sleeping workers can tell a new
    /// job from the one they already helped with.
    epoch: u64,
    /// Shards of the current job still running or unclaimed.
    pending: usize,
    /// First panic payload raised by a shard of the current job; re-raised
    /// on the submitting thread once every shard has finished.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Poison-tolerant lock: a shard panic must not wedge every later kernel
/// call behind a `PoisonError` — the panic is re-raised on the submitter
/// instead (see [`Pool::run`]).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct Pool {
    state: Mutex<State>,
    /// Workers sleep here between jobs.
    work_cv: Condvar,
    /// The submitter sleeps here until `pending == 0`.
    done_cv: Condvar,
    /// Serialises submitters (there is one job slot).
    submit: Mutex<()>,
    workers: usize,
}

impl Pool {
    fn new(workers: usize) -> &'static Pool {
        let pool = Box::leak(Box::new(Pool {
            state: Mutex::new(State::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            submit: Mutex::new(()),
            workers,
        }));
        for w in 0..workers {
            let p: &'static Pool = pool;
            std::thread::Builder::new()
                .name(format!("pdmsf-pool-{w}"))
                .spawn(move || p.worker_loop())
                .expect("spawning a pool worker");
        }
        pool
    }

    fn worker_loop(&'static self) {
        let mut seen_epoch = 0u64;
        loop {
            let mut state = lock(&self.state);
            while state.epoch == seen_epoch || state.job.is_none() {
                state = self.work_cv.wait(state).unwrap_or_else(|e| e.into_inner());
            }
            seen_epoch = state.epoch;
            self.drain(state);
        }
    }

    /// Claim and execute shards of the current job until none are left.
    /// Consumes the lock guard; notifies `done_cv` when the last shard
    /// finishes. A panicking shard is caught, its payload parked in the
    /// state, and `pending` still decremented — the submitter re-raises it,
    /// and neither the worker nor the waiting submitter is lost (the old
    /// `thread::scope` dispatch had the same propagate-to-caller semantics).
    fn drain<'a>(&'a self, mut state: std::sync::MutexGuard<'a, State>) {
        loop {
            let Some(job) = state.job.as_mut() else {
                return;
            };
            if job.next >= job.shards {
                return;
            }
            let shard = job.next;
            job.next += 1;
            let f = job.f;
            drop(state);
            // Soundness: the submitter is blocked until `pending` hits zero,
            // so the closure behind `f` is alive for this call.
            let result =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe { (*f)(shard) }));
            state = lock(&self.state);
            if let Err(payload) = result {
                if state.panic.is_none() {
                    state.panic = Some(payload);
                }
            }
            state.pending -= 1;
            if state.pending == 0 {
                state.job = None;
                self.done_cv.notify_all();
            }
        }
    }

    fn run(&'static self, shards: usize, f: &(dyn Fn(usize) + Sync)) {
        // Erase the borrow's lifetime; `run` blocks below until all shards
        // are done, so the closure outlives every dereference.
        let f: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        let _submit = lock(&self.submit);
        {
            let mut state = lock(&self.state);
            debug_assert!(state.job.is_none(), "job slot busy despite submit lock");
            state.job = Some(Job { f, next: 0, shards });
            state.epoch += 1;
            state.pending = shards;
            state.panic = None;
            self.work_cv.notify_all();
            // The submitter claims shards too — it would otherwise idle.
            self.drain(state);
        }
        let mut state = lock(&self.state);
        while state.pending > 0 {
            state = self.done_cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        let panic = state.panic.take();
        drop(state);
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
    }
}

static POOL: OnceLock<&'static Pool> = OnceLock::new();

/// Hardware thread count, probed once — `available_parallelism` is a
/// syscall, and `num_shards` asks on every kernel invocation above the
/// cutoff, which is far too hot a path for per-call probing.
static HW_THREADS: OnceLock<usize> = OnceLock::new();

fn hw_threads() -> usize {
    *HW_THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(16)
    })
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        // The calling thread participates in every job, so spawn one worker
        // fewer than the hardware offers.
        Pool::new(hw_threads().saturating_sub(1))
    })
}

/// Number of threads a pooled kernel can use (workers + the calling
/// thread). Reported in benchmark metadata; does not spawn the pool.
pub fn parallelism() -> usize {
    match POOL.get() {
        Some(p) => p.workers + 1,
        None => hw_threads(),
    }
}

/// Whether the pool's worker threads have been spawned. Tiny-input kernels
/// must never cause a spawn; the test-suite asserts this.
pub fn is_initialized() -> bool {
    POOL.get().is_some()
}

/// Execute `f(0), f(1), …, f(shards - 1)`, each exactly once, distributed
/// over the persistent worker pool plus the calling thread. Blocks until
/// every shard has finished, so `f` may borrow from the caller (slices of a
/// row bank, scratch buffers) like under `std::thread::scope`.
///
/// Degrades to an inline loop when `shards <= 1` or when the machine has a
/// single hardware thread — in particular the pool is **not** spawned in
/// those cases.
pub fn run_shards(shards: usize, f: impl Fn(usize) + Sync) {
    if shards <= 1 {
        for i in 0..shards {
            f(i);
        }
        return;
    }
    let pool = pool();
    if pool.workers == 0 {
        for i in 0..shards {
            f(i);
        }
        return;
    }
    pool.run(shards, &f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_shard_runs_inline_without_spawning_the_pool() {
        let hits = AtomicUsize::new(0);
        run_shards(1, |i| {
            assert_eq!(i, 0);
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        run_shards(0, |_| panic!("no shards requested"));
        // Other tests in this binary may have spawned the pool already, so
        // only assert when this test runs in isolation.
        if std::env::var_os("PDMSF_POOL_ISOLATED").is_some() {
            assert!(!is_initialized(), "1-shard run must not spawn workers");
        }
    }

    #[test]
    fn every_shard_runs_exactly_once() {
        for shards in [2usize, 3, 7, 16, 33] {
            let counts: Vec<AtomicUsize> = (0..shards).map(|_| AtomicUsize::new(0)).collect();
            run_shards(shards, |i| {
                counts[i].fetch_add(1, Ordering::SeqCst);
            });
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(
                    c.load(Ordering::SeqCst),
                    1,
                    "shard {i} ran a wrong number of times"
                );
            }
        }
    }

    #[test]
    fn shards_may_mutate_disjoint_borrowed_slices() {
        let mut data = vec![0u64; 1000];
        let shards = 8usize;
        let shard_len = data.len().div_ceil(shards);
        let n = data.len();
        let base = crate::kernels::SendPtr(data.as_mut_ptr());
        run_shards(shards, |i| {
            let start = i * shard_len;
            let end = (start + shard_len).min(n);
            let slice =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
            for (j, x) in slice.iter_mut().enumerate() {
                *x = (start + j) as u64;
            }
        });
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn shard_panics_propagate_and_do_not_wedge_the_pool() {
        // A panicking shard must re-raise on the submitter (like the old
        // scoped spawn), not hang `run_shards` or poison the pool.
        let caught = std::panic::catch_unwind(|| {
            run_shards(4, |i| {
                if i == 2 {
                    panic!("shard bang");
                }
            });
        });
        let payload = caught.expect_err("the shard panic must reach the submitter");
        assert_eq!(payload.downcast_ref::<&str>().copied(), Some("shard bang"));
        // The pool stays fully usable afterwards.
        for _ in 0..10 {
            let sum = AtomicUsize::new(0);
            run_shards(4, |i| {
                sum.fetch_add(i + 1, Ordering::SeqCst);
            });
            assert_eq!(sum.load(Ordering::SeqCst), 10);
        }
    }

    #[test]
    fn back_to_back_jobs_reuse_the_pool() {
        for round in 0..50u64 {
            let sum = AtomicUsize::new(0);
            run_shards(4, |i| {
                sum.fetch_add(i + round as usize, Ordering::SeqCst);
            });
            assert_eq!(sum.load(Ordering::SeqCst), 6 + 4 * round as usize);
        }
    }
}
