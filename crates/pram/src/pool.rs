//! A persistent worker pool with a **work-stealing scheduler** for the
//! thread-backed kernels, the batch engine's query fan-out and the sharded
//! service's per-shard jobs.
//!
//! The first threaded execution path dispatched every bulk kernel through
//! `std::thread::scope`, paying a thread spawn + join per call. That
//! overhead put the break-even point of [`crate::ExecMode::Threads`] well
//! beyond 1e6 vertices. The pool replaces it with a process-wide set of
//! parked workers: a kernel invocation publishes one *job* (a borrowed
//! closure plus shard accounting), wakes the workers, executes shards on the
//! calling thread too, and blocks until every shard has finished — so the
//! borrow of the caller's slices provably outlives all shard executions,
//! exactly like a scoped spawn, but without creating a single thread.
//!
//! ## Scheduling
//!
//! The batch-engine PR made the pool multi-job, but kept a single shared
//! FIFO: workers claimed **one shard at a time** from the front job, so
//! every shard paid a lock round-trip, and while the front job had work no
//! other job's shards ran — exactly wrong for the sharded service, the
//! first layer that routinely queues several jobs (one per touched shard)
//! plus nested submissions. This revision replaces the front-job drain with
//! a work-stealing scheduler in the Cilk / crossbeam-deque tradition:
//!
//! * **Per-executor deques of shard ranges.** Every executor — worker
//!   threads and submitting threads alike — owns a deque of *segments*
//!   (contiguous runs `[start, end)` of one job's shard space). Executors
//!   pop their own deque LIFO (the most recently parked range is the
//!   cache-warm one) and execute the front half of the popped segment,
//!   parking the back half for later pops or for thieves — so a range is
//!   consumed in geometrically shrinking runs, one lock round-trip each,
//!   instead of shard-by-shard through the shared lock.
//! * **Chunked claiming.** Jobs enter a shared injector queue (FIFO across
//!   jobs, for submission fairness); an executor with an empty deque claims
//!   a run of `ceil(remaining / executors)` shards from the front job in
//!   one step, so a job's shard space is carved into at most one chunk per
//!   executor rather than one queue interaction per shard.
//! * **Stealing.** An idle worker that finds the injector empty scans the
//!   other executors in **deterministic order** (ascending slot index,
//!   starting after its own — no RNG anywhere) and steals **half of the
//!   victim's oldest remaining range** (the half farthest from the victim's
//!   current locality). Which thread executes a shard remains
//!   schedule-dependent, but every kernel reduces shard-local results
//!   leftmost-on-tie on the calling thread, so results stay bit-for-bit
//!   identical to [`crate::ExecMode::Simulated`] under any interleaving.
//! * **Nested submissions** (a shard calling [`run_shards`] /
//!   [`run_shard_ranges`]) push the nested job's whole range onto the
//!   *submitter's own deque* instead of the injector: the submitting
//!   executor starts executing it immediately (LIFO pop), idle workers can
//!   steal from it, and the deadlock-freedom property of the multi-job pool
//!   is preserved — the blocked parent's executor drains the nested job
//!   itself even if every worker is busy elsewhere. (Shards of one job
//!   must stay independent of *each other*, though: contiguous runs
//!   execute sequentially on one thread, so a shard blocking on a sibling
//!   shard of the same job is outside the contract — see
//!   [`run_shard_ranges`].)
//!
//! Guarantees:
//!
//! * **Lazy** — no worker thread exists until the first call of
//!   [`run_shards`] with more than one shard. Tiny graphs (`K < 2`,
//!   single-chunk lists, inputs below [`crate::kernels::PAR_CUTOFF`]) never
//!   touch the pool: their kernels degrade to inline execution on the
//!   calling thread.
//! * **Deterministic results** — the scheduler only distributes *which
//!   thread* computes a shard; every kernel reduces shard-local results
//!   leftmost-on-tie on the calling thread, so results are bit-for-bit
//!   independent of scheduling (victim order is deterministic too; there is
//!   no randomized stealing).
//! * **Single-machine fallback** — with one hardware thread (or when
//!   `available_parallelism` is unknown) the pool has zero workers and
//!   [`run_shards`] runs every shard inline without waking anything.
//! * **Sized by the hardware, overridable** — the pool width defaults to
//!   `available_parallelism` (capped at 16) and can be forced with the
//!   `PDMSF_POOL_THREADS` environment variable (clamped to `1..=128`,
//!   read once at first use; `1` means fully inline execution). The
//!   benchmark metadata records the effective width via [`parallelism`].
//! * **Observable** — [`stats`] reports process-wide counters (jobs run,
//!   shards executed, inline runs, injector chunks claimed, steals, parked
//!   workers) so tests, the sharded service and the E2/E3 experiments can
//!   assert how work was actually executed, and [`snapshot`] /
//!   [`StatsSnapshot::delta`] difference them so scheduler behaviour is
//!   attributable to a single phase.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use pdmsf_obs as obs;

/// One job: a borrowed range closure plus shard accounting. Shard ranges are
/// claimed from `next` (injector chunks) or travel as [`Seg`]s through the
/// executor deques; each shard index is executed exactly once.
struct Job {
    /// Borrowed closure, lifetime-erased. Soundness: [`Pool::run`] does not
    /// return until `done` is set, which happens only after every shard has
    /// finished executing — so the referent outlives every call.
    f: *const (dyn Fn(usize, usize) + Sync),
    /// Next shard index not yet claimed from the injector. Nested jobs are
    /// born fully claimed (their whole range starts on the submitter's
    /// deque).
    next: usize,
    /// Total number of shards.
    shards: usize,
    /// Shards that have not finished executing yet (unclaimed, parked in a
    /// segment, or running).
    pending: usize,
    /// First panic payload raised by a shard of this job; re-raised on the
    /// submitting thread once every shard has finished.
    panic: Option<Box<dyn std::any::Any + Send>>,
    /// Set when `pending` hits zero; the submitter frees the slot.
    done: bool,
    /// The submitting thread's ambient [`obs::trace::TraceId`] (0 = none),
    /// snapshotted at submission. Every range of this job — including
    /// ranges stolen onto other workers — executes under this id, so trace
    /// events attribute to the batch that submitted the job rather than to
    /// whatever the executing thread was doing.
    trace: u64,
}

// The raw closure pointer is only ever dereferenced while the submitting
// call frame is alive (see `Job::f`); sending it between pool threads is
// therefore safe.
unsafe impl Send for Job {}

/// A contiguous run `[start, end)` of one job's shard space, parked in an
/// executor's deque: popped LIFO by its owner, split in half by thieves.
struct Seg {
    job: usize,
    start: usize,
    end: usize,
}

#[derive(Default)]
struct State {
    /// Job slots, indexed by job id. `None` = free slot.
    jobs: Vec<Option<Job>>,
    /// Free job ids, reused before growing `jobs`.
    free: Vec<usize>,
    /// The shared injector: ids of top-level jobs that still have
    /// **unclaimed** shards, in submission order. Invariant: `id ∈ queue`
    /// exactly while `jobs[id].next < jobs[id].shards`. Nested jobs never
    /// enter the queue (their range starts on the submitter's deque).
    queue: VecDeque<usize>,
    /// Per-executor deques: slots `0..workers` belong to the worker
    /// threads, later slots are leased by submitting threads. `Vec` used as
    /// a stack — owners push/pop at the back, thieves split the front.
    deques: Vec<Vec<Seg>>,
    /// Retired submitter slots awaiting reuse.
    free_slots: Vec<usize>,
    /// Workers currently blocked on `work_cv`.
    parked: usize,
}

impl State {
    fn alloc(&mut self, job: Job) -> usize {
        match self.free.pop() {
            Some(id) => {
                self.jobs[id] = Some(job);
                id
            }
            None => {
                self.jobs.push(Some(job));
                self.jobs.len() - 1
            }
        }
    }

    fn alloc_slot(&mut self) -> usize {
        match self.free_slots.pop() {
            Some(slot) => slot,
            None => {
                self.deques.push(Vec::new());
                self.deques.len() - 1
            }
        }
    }
}

/// Poison-tolerant lock: a shard panic must not wedge every later kernel
/// call behind a `PoisonError` — the panic is re-raised on the submitter
/// instead (see [`Pool::run`]).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Process-wide observability counters (see [`stats`]), backed by the
/// `pdmsf-obs` global registry so one Prometheus scrape
/// ([`pdmsf_obs::Registry::render_text`]) covers the scheduler. They cover
/// every pool in the process (the global one plus any test-local
/// instances). [`stats`] reads the same instruments — the registry is the
/// single source of truth; the former hand-rolled `static AtomicU64`s are
/// gone.
struct PoolMetrics {
    jobs_run: Arc<obs::Counter>,
    shards_executed: Arc<obs::Counter>,
    inline_runs: Arc<obs::Counter>,
    chunks_claimed: Arc<obs::Counter>,
    steals: Arc<obs::Counter>,
    parks: Arc<obs::Counter>,
    wakes: Arc<obs::Counter>,
    workers: Arc<obs::Gauge>,
    workers_parked: Arc<obs::Gauge>,
}

static POOL_METRICS: OnceLock<PoolMetrics> = OnceLock::new();

/// The pool's registered instruments, resolved once — the hot path pays
/// one initialized-check load plus the relaxed `fetch_add` it always paid.
fn metrics() -> &'static PoolMetrics {
    POOL_METRICS.get_or_init(|| {
        let r = obs::global();
        PoolMetrics {
            jobs_run: r.counter("pdmsf_pool_jobs_total", "pooled jobs completed"),
            shards_executed: r.counter(
                "pdmsf_pool_shards_executed_total",
                "shards executed through pooled jobs",
            ),
            inline_runs: r.counter(
                "pdmsf_pool_inline_runs_total",
                "run calls degraded to inline execution",
            ),
            chunks_claimed: r.counter(
                "pdmsf_pool_chunks_claimed_total",
                "shard chunks claimed from the injector queue",
            ),
            steals: r.counter(
                "pdmsf_pool_steals_total",
                "successful steals of parked shard ranges",
            ),
            parks: r.counter(
                "pdmsf_pool_parks_total",
                "times a worker parked waiting for work",
            ),
            wakes: r.counter("pdmsf_pool_wakes_total", "times a parked worker was woken"),
            workers: r.gauge(
                "pdmsf_pool_workers",
                "pool worker threads spawned in the process",
            ),
            workers_parked: r.gauge(
                "pdmsf_pool_workers_parked",
                "pool workers currently parked waiting for work",
            ),
        }
    })
}

thread_local! {
    /// The executor slot this thread currently holds, as `(pool address,
    /// slot index)`: workers pin theirs for the thread's lifetime;
    /// submitting threads lease one per top-level [`Pool::run`] so nested
    /// submissions from inside a shard land on the *same* deque.
    static EXECUTOR: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

struct Pool {
    state: Mutex<State>,
    /// Workers sleep here while no claimable or stealable work exists.
    work_cv: Condvar,
    /// Submitters sleep here until their job's `done` flag is set.
    done_cv: Condvar,
    workers: usize,
}

impl Pool {
    fn new(workers: usize) -> &'static Pool {
        let pool = Box::leak(Box::new(Pool {
            state: Mutex::new(State {
                deques: (0..workers).map(|_| Vec::new()).collect(),
                ..State::default()
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            workers,
        }));
        metrics().workers.add(workers as i64);
        for w in 0..workers {
            let p: &'static Pool = pool;
            std::thread::Builder::new()
                .name(format!("pdmsf-pool-{w}"))
                .spawn(move || p.worker_loop(w))
                .expect("spawning a pool worker");
        }
        pool
    }

    fn worker_loop(&'static self, slot: usize) {
        EXECUTOR.with(|e| e.set(Some((self as *const Pool as usize, slot))));
        let mut state = lock(&self.state);
        loop {
            match self.next_run(&mut state, slot, None) {
                Some((job, start, end)) => {
                    state = self.exec_run(state, job, start, end);
                }
                None => {
                    state.parked += 1;
                    let m = metrics();
                    m.parks.inc();
                    m.workers_parked.add(1);
                    state = self.work_cv.wait(state).unwrap_or_else(|e| e.into_inner());
                    state.parked -= 1;
                    m.wakes.inc();
                    m.workers_parked.add(-1);
                }
            }
        }
    }

    /// Split a claimed or stolen range: park the back half on `slot`'s
    /// deque (available to later LIFO pops and to thieves) and return the
    /// front half for immediate execution. Ranges of length 1 pass through
    /// whole.
    fn split_run(
        &self,
        state: &mut State,
        slot: usize,
        job: usize,
        start: usize,
        end: usize,
    ) -> (usize, usize, usize) {
        let len = end - start;
        if len > 1 {
            let take = len - len / 2;
            state.deques[slot].push(Seg {
                job,
                start: start + take,
                end,
            });
            // The parked half is stealable; a worker that went to sleep
            // after the original submission wake-up would otherwise never
            // learn about it.
            if state.parked > 0 {
                self.work_cv.notify_one();
            }
            (job, start, start + take)
        } else {
            (job, start, end)
        }
    }

    /// Find the next run for executor `slot`, under the pool lock:
    /// own deque (LIFO) → injector chunk claim → steal. `only_job`
    /// restricts a submitter to work of its own job — submitters never
    /// execute other jobs' shards (a nested submitter must return as soon
    /// as its job is done, not after some unrelated long run) but do steal
    /// *their own* job's parked ranges back from other executors.
    fn next_run(
        &self,
        state: &mut State,
        slot: usize,
        only_job: Option<usize>,
    ) -> Option<(usize, usize, usize)> {
        // 1. Own deque, most recent matching segment first. The owner takes
        // the *front* half of the segment (consecutive pops execute
        // ascending, cache-friendly runs); the back half stays parked.
        let dq = &mut state.deques[slot];
        let found = match only_job {
            None => dq.len().checked_sub(1),
            Some(j) => dq.iter().rposition(|s| s.job == j),
        };
        if let Some(i) = found {
            let seg = &mut dq[i];
            let len = seg.end - seg.start;
            let take = len - len / 2;
            let (job, start, end) = (seg.job, seg.start, seg.start + take);
            seg.start = end;
            if seg.start >= seg.end {
                dq.remove(i);
            }
            return Some((job, start, end));
        }

        // 2. Injector: claim a chunk of the front job (or, for a submitter,
        // of its own job wherever it sits in the queue — submitters help
        // their own job even when queued behind others).
        let claim = match only_job {
            None => state.queue.front().copied(),
            Some(j) => {
                let job = state.jobs[j].as_ref().expect("submitter's job vanished");
                (job.next < job.shards).then_some(j)
            }
        };
        if let Some(id) = claim {
            // Size chunks by the executors that can actually work: retired
            // submitter slots keep their (empty) deques but must not dilute
            // the chunk size — that would multiply queue interactions after
            // any burst of concurrent submitters.
            let executors = (state.deques.len() - state.free_slots.len()).max(1);
            let job = state.jobs[id].as_mut().expect("queued job vanished");
            let remaining = job.shards - job.next;
            let chunk = remaining.div_ceil(executors);
            let start = job.next;
            job.next += chunk;
            if job.next >= job.shards {
                // Last chunk claimed: maintain the queue invariant. The job
                // is usually at the front, but a submitter helping its own
                // job may claim past jobs queued ahead of it.
                if let Some(pos) = state.queue.iter().position(|&q| q == id) {
                    state.queue.remove(pos);
                }
            }
            metrics().chunks_claimed.inc();
            return Some(self.split_run(state, slot, id, start, start + chunk));
        }

        // 3. Steal: scan the other executors in deterministic ascending
        // order (no RNG) and take half of the first victim's **oldest**
        // matching range — the one farthest from the victim's own LIFO
        // locality. Workers steal anything; a submitter steals only ranges
        // **of its own job**, which is a liveness requirement, not an
        // optimization: a shard of its job parked on a *blocked* worker's
        // deque (e.g. a shard waiting on a sibling shard) would otherwise
        // be reachable by no one, where the old claim-per-shard FIFO let
        // the submitter pick it up from the job counter.
        let n = state.deques.len();
        for off in 1..n {
            let victim = (slot + off) % n;
            let found = match only_job {
                None => (!state.deques[victim].is_empty()).then_some(0),
                Some(j) => state.deques[victim].iter().position(|s| s.job == j),
            };
            let Some(i) = found else {
                continue;
            };
            let seg = &mut state.deques[victim][i];
            let len = seg.end - seg.start;
            let (job, start, end);
            if len <= 1 {
                (job, start, end) = (seg.job, seg.start, seg.end);
                state.deques[victim].remove(i);
            } else {
                // Thief takes the back half; the victim keeps making
                // contiguous forward progress on the front.
                let take = len / 2;
                (job, start, end) = (seg.job, seg.end - take, seg.end);
                seg.end = start;
            }
            metrics().steals.inc();
            return Some(self.split_run(state, slot, job, start, end));
        }
        None
    }

    /// Execute shards `[start, end)` of job `job_id` outside the lock,
    /// then book the completion. A panicking shard is caught, its payload
    /// parked in the job, and `pending` still decremented — the submitter
    /// re-raises it, and neither the executing worker nor the waiting
    /// submitter is lost.
    fn exec_run<'a>(
        &'a self,
        state: std::sync::MutexGuard<'a, State>,
        job_id: usize,
        start: usize,
        end: usize,
    ) -> std::sync::MutexGuard<'a, State> {
        let job = state.jobs[job_id]
            .as_ref()
            .expect("job slot freed while a range was parked");
        let (f, trace) = (job.f, job.trace);
        metrics().shards_executed.add((end - start) as u64);
        drop(state);
        // Soundness: the submitter blocks until `done`, which is set only
        // after this range's `pending` decrement below — the closure behind
        // `f` is alive for this call.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if trace != 0 {
                // Re-scope the submitter's id on this (possibly stealing)
                // thread so the range's span lands in the right batch.
                let _scope = obs::trace::scope(obs::trace::TraceId(trace));
                let span = obs::trace::TSpan::start(
                    obs::trace::Phase::PoolRange,
                    start as u64,
                    end as u64,
                );
                unsafe { (*f)(start, end) };
                span.stop();
            } else {
                unsafe { (*f)(start, end) };
            }
        }));
        let mut state = lock(&self.state);
        let job = state.jobs[job_id]
            .as_mut()
            .expect("job slot freed while a range was executing");
        if let Err(payload) = result {
            if job.panic.is_none() {
                job.panic = Some(payload);
            }
        }
        job.pending -= end - start;
        if job.pending == 0 {
            job.done = true;
            self.done_cv.notify_all();
        }
        state
    }

    fn run(&'static self, shards: usize, f: &(dyn Fn(usize, usize) + Sync)) {
        // A zero-shard job must not reach the scheduler: nothing would ever
        // decrement `pending`, and an empty range violates the queue/deque
        // invariants. `run_shard_ranges` already filters this; keep the
        // internal entry point safe for future callers too.
        if shards == 0 {
            return;
        }
        // Erase the borrow's lifetime; `run` blocks below until the job is
        // done, so the closure outlives every dereference.
        let f: *const (dyn Fn(usize, usize) + Sync) = unsafe { std::mem::transmute(f) };
        let me = self as *const Pool as usize;
        let held = EXECUTOR.with(|e| e.get());
        let nested = matches!(held, Some((pool, _)) if pool == me);

        let mut state = lock(&self.state);
        let slot = match held {
            Some((pool, slot)) if pool == me => slot,
            _ => {
                // Lease a fresh executor slot for this top-level submission
                // (restored below; a submission to a *different* pool from
                // inside a shard stacks, each pool seeing its own slot).
                let slot = state.alloc_slot();
                EXECUTOR.with(|e| e.set(Some((me, slot))));
                slot
            }
        };
        let id = state.alloc(Job {
            f,
            // Nested jobs are born fully claimed: their whole range goes
            // onto the submitter's own deque, not the injector, so the
            // submitting executor starts on it immediately (LIFO) and the
            // deadlock-freedom argument stays local — the parent's executor
            // can always drain its own deque.
            next: if nested { shards } else { 0 },
            shards,
            pending: shards,
            panic: None,
            done: false,
            trace: if obs::trace::enabled() {
                obs::trace::current().0
            } else {
                0
            },
        });
        if nested {
            state.deques[slot].push(Seg {
                job: id,
                start: 0,
                end: shards,
            });
        } else {
            state.queue.push_back(id);
        }
        self.work_cv.notify_all();
        loop {
            if state.jobs[id].as_ref().expect("own job vanished").done {
                break;
            }
            match self.next_run(&mut state, slot, Some(id)) {
                Some((job, start, end)) => {
                    state = self.exec_run(state, job, start, end);
                }
                // Everything claimed or stolen; wait for thieves/workers to
                // finish the remaining shards.
                None => {
                    state = self.done_cv.wait(state).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
        let job = state.jobs[id].take().expect("done job vanished");
        state.free.push(id);
        if !nested {
            debug_assert!(
                state.deques[slot].is_empty(),
                "a top-level submitter's deque must drain with its job"
            );
            state.free_slots.push(slot);
            EXECUTOR.with(|e| e.set(held));
        }
        drop(state);
        metrics().jobs_run.inc();
        if let Some(payload) = job.panic {
            std::panic::resume_unwind(payload);
        }
    }
}

static POOL: OnceLock<&'static Pool> = OnceLock::new();

/// Hardware thread count, probed once — `available_parallelism` is a
/// syscall, and `num_shards` asks on every kernel invocation above the
/// cutoff, which is far too hot a path for per-call probing. The
/// `PDMSF_POOL_THREADS` environment variable (also read once) overrides the
/// probe.
static HW_THREADS: OnceLock<usize> = OnceLock::new();

/// Parse a `PDMSF_POOL_THREADS` value: a positive integer, clamped to
/// `1..=128`. Anything unparsable is ignored (the hardware probe wins).
fn parse_thread_override(raw: Option<std::ffi::OsString>) -> Option<usize> {
    let s = raw?.into_string().ok()?;
    let v: usize = s.trim().parse().ok()?;
    Some(v.clamp(1, 128))
}

fn hw_threads() -> usize {
    *HW_THREADS.get_or_init(|| {
        parse_thread_override(std::env::var_os("PDMSF_POOL_THREADS")).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(16)
        })
    })
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        // The calling thread participates in every job, so spawn one worker
        // fewer than the hardware offers.
        Pool::new(hw_threads().saturating_sub(1))
    })
}

/// Number of threads a pooled kernel can use (workers + the calling
/// thread). Reported in benchmark metadata; does not spawn the pool.
pub fn parallelism() -> usize {
    match POOL.get() {
        Some(p) => p.workers + 1,
        None => hw_threads(),
    }
}

/// Whether the pool's worker threads have been spawned. Tiny-input kernels
/// must never cause a spawn; the test-suite asserts this.
pub fn is_initialized() -> bool {
    POOL.get().is_some()
}

/// Process-wide pool observability counters (see [`stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pooled jobs completed (every [`run_shards`] / [`run_shard_ranges`]
    /// call that dispatched to a pool, nested jobs included, plus
    /// test-local pool runs).
    pub jobs_run: u64,
    /// Shards executed through pooled jobs (on workers or submitters).
    pub shards_executed: u64,
    /// [`run_shards`] / [`run_shard_ranges`] calls that ran entirely inline
    /// (single shard, or a zero-worker pool).
    pub inline_runs: u64,
    /// Chunks of shards claimed from the injector queue (each chunk is one
    /// lock interaction covering `ceil(remaining / executors)` shards —
    /// the scheduler's amortization of the shared queue).
    pub chunks_claimed: u64,
    /// Successful steals: an idle worker took half of another executor's
    /// parked range. Zero whenever the machine keeps every executor fed (or
    /// the pool runs inline).
    pub steals: u64,
    /// Worker threads of the global pool (0 until first spawn).
    pub workers: usize,
    /// Global-pool workers currently parked waiting for work.
    pub workers_parked: usize,
}

/// A point-in-time capture of the cumulative pool counters, taken with
/// [`snapshot`]. [`stats`] is cumulative over the whole process lifetime,
/// which makes it useless for attributing pool activity to one phase of a
/// benchmark or experiment (every earlier warm-up run is mixed in); a
/// snapshot pins the baseline so [`StatsSnapshot::delta`] reports exactly
/// the jobs/shards/inline-runs/chunks/steals that happened since.
#[derive(Clone, Copy, Debug)]
pub struct StatsSnapshot {
    base: PoolStats,
}

/// Capture the current counters as a baseline for [`StatsSnapshot::delta`].
pub fn snapshot() -> StatsSnapshot {
    StatsSnapshot { base: stats() }
}

impl StatsSnapshot {
    /// Pool activity since this snapshot was taken: the cumulative counters
    /// (`jobs_run`, `shards_executed`, `inline_runs`, `chunks_claimed`,
    /// `steals`) are differenced against the baseline;
    /// `workers`/`workers_parked` are instantaneous and report the current
    /// values.
    pub fn delta(&self) -> PoolStats {
        let now = stats();
        PoolStats {
            jobs_run: now.jobs_run - self.base.jobs_run,
            shards_executed: now.shards_executed - self.base.shards_executed,
            inline_runs: now.inline_runs - self.base.inline_runs,
            chunks_claimed: now.chunks_claimed - self.base.chunks_claimed,
            steals: now.steals - self.base.steals,
            workers: now.workers,
            workers_parked: now.workers_parked,
        }
    }
}

/// Snapshot the pool's observability counters. Counters are cumulative over
/// the process lifetime; `workers`/`workers_parked` describe the global pool
/// only and read 0 before it has been spawned. For per-phase attribution
/// (a single experiment run, one service batch) use [`snapshot`] and
/// [`StatsSnapshot::delta`] instead.
pub fn stats() -> PoolStats {
    let (workers, workers_parked) = match POOL.get() {
        Some(p) => (p.workers, lock(&p.state).parked),
        None => (0, 0),
    };
    let m = metrics();
    PoolStats {
        jobs_run: m.jobs_run.get(),
        shards_executed: m.shards_executed.get(),
        inline_runs: m.inline_runs.get(),
        chunks_claimed: m.chunks_claimed.get(),
        steals: m.steals.get(),
        workers,
        workers_parked,
    }
}

/// Execute every shard in `0..shards` exactly once, distributed over the
/// persistent worker pool plus the calling thread, with the closure invoked
/// once per **claimed range** `start..end` rather than once per shard — the
/// scheduler hands out contiguous runs (chunked claims, halved pops, stolen
/// halves), so a kernel iterating the range locally pays one dispatch per
/// run. Blocks until every shard has finished, so `f` may borrow from the
/// caller (slices of a row bank, scratch buffers) like under
/// `std::thread::scope`.
///
/// Multiple threads may be inside `run_shard_ranges` concurrently: each
/// call is an independent job. A shard may itself call it — the nested job
/// lands on the submitting executor's own deque (see the module docs).
///
/// **Contract:** shards of one job must be independent — a shard must not
/// block waiting for *another shard of the same job* to run, because the
/// scheduler may place both in one contiguous run executed sequentially on
/// one thread (and the inline degradation below always runs the whole job
/// sequentially, so such a closure was never portable to 1-core machines).
/// Blocking on *other* jobs, including nested submissions, is fully
/// supported.
///
/// Degrades to a single inline `f(0..shards)` call when `shards <= 1` or
/// when the machine has one hardware thread — in particular the pool is
/// **not** spawned in those cases.
pub fn run_shard_ranges(shards: usize, f: impl Fn(std::ops::Range<usize>) + Sync) {
    if shards <= 1 {
        metrics().inline_runs.inc();
        if shards == 1 {
            // Inline degradation still traces against the ambient id, so a
            // traced batch looks the same whether or not the pool spawned.
            let span = obs::trace::TSpan::start(obs::trace::Phase::PoolRange, 0, 1);
            f(0..1);
            span.stop();
        }
        return;
    }
    let pool = pool();
    if pool.workers == 0 {
        metrics().inline_runs.inc();
        let span = obs::trace::TSpan::start(obs::trace::Phase::PoolRange, 0, shards as u64);
        f(0..shards);
        span.stop();
        return;
    }
    pool.run(shards, &|start, end| f(start..end));
}

/// Per-shard convenience wrapper over [`run_shard_ranges`]: execute
/// `f(0), f(1), …, f(shards - 1)`, each exactly once. Prefer the range form
/// for new kernels — it makes the scheduler's chunked claiming visible to
/// the closure.
pub fn run_shards(shards: usize, f: impl Fn(usize) + Sync) {
    run_shard_ranges(shards, |range| {
        for i in range {
            f(i);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    /// Per-shard adapter for the internal range entry point (the public
    /// wrapper is `run_shards`; dedicated-pool tests need the same shape).
    fn run_per_shard(pool: &'static Pool, shards: usize, f: &(dyn Fn(usize) + Sync)) {
        pool.run(shards, &|start, end| {
            for i in start..end {
                f(i);
            }
        });
    }

    #[test]
    fn single_shard_runs_inline_without_spawning_the_pool() {
        let hits = AtomicUsize::new(0);
        run_shards(1, |i| {
            assert_eq!(i, 0);
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        run_shards(0, |_| panic!("no shards requested"));
        // Other tests in this binary may have spawned the pool already, so
        // only assert when this test runs in isolation.
        if std::env::var_os("PDMSF_POOL_ISOLATED").is_some() {
            assert!(!is_initialized(), "1-shard run must not spawn workers");
        }
    }

    #[test]
    fn every_shard_runs_exactly_once() {
        for shards in [2usize, 3, 7, 16, 33] {
            let counts: Vec<AtomicUsize> = (0..shards).map(|_| AtomicUsize::new(0)).collect();
            run_shards(shards, |i| {
                counts[i].fetch_add(1, Ordering::SeqCst);
            });
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(
                    c.load(Ordering::SeqCst),
                    1,
                    "shard {i} ran a wrong number of times"
                );
            }
        }
    }

    #[test]
    fn range_form_covers_the_shard_space_in_disjoint_runs() {
        for shards in [2usize, 5, 16, 97] {
            let counts: Vec<AtomicUsize> = (0..shards).map(|_| AtomicUsize::new(0)).collect();
            run_shard_ranges(shards, |range| {
                assert!(range.start < range.end && range.end <= shards);
                for i in range {
                    counts[i].fetch_add(1, Ordering::SeqCst);
                }
            });
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(c.load(Ordering::SeqCst), 1, "shard {i} covered wrongly");
            }
        }
    }

    #[test]
    fn shards_may_mutate_disjoint_borrowed_slices() {
        let mut data = vec![0u64; 1000];
        let shards = 8usize;
        let shard_len = data.len().div_ceil(shards);
        let n = data.len();
        let base = crate::kernels::SendPtr(data.as_mut_ptr());
        run_shards(shards, |i| {
            let start = i * shard_len;
            let end = (start + shard_len).min(n);
            let slice =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
            for (j, x) in slice.iter_mut().enumerate() {
                *x = (start + j) as u64;
            }
        });
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn shard_panics_propagate_and_do_not_wedge_the_pool() {
        // A panicking shard must re-raise on the submitter (like the old
        // scoped spawn), not hang `run_shards` or poison the pool.
        let caught = std::panic::catch_unwind(|| {
            run_shards(4, |i| {
                if i == 2 {
                    panic!("shard bang");
                }
            });
        });
        let payload = caught.expect_err("the shard panic must reach the submitter");
        assert_eq!(payload.downcast_ref::<&str>().copied(), Some("shard bang"));
        // The pool stays fully usable afterwards.
        for _ in 0..10 {
            let sum = AtomicUsize::new(0);
            run_shards(4, |i| {
                sum.fetch_add(i + 1, Ordering::SeqCst);
            });
            assert_eq!(sum.load(Ordering::SeqCst), 10);
        }
    }

    #[test]
    fn back_to_back_jobs_reuse_the_pool() {
        for round in 0..50u64 {
            let sum = AtomicUsize::new(0);
            run_shards(4, |i| {
                sum.fetch_add(i + round as usize, Ordering::SeqCst);
            });
            assert_eq!(sum.load(Ordering::SeqCst), 6 + 4 * round as usize);
        }
    }

    // ---- scheduler tests (work-stealing deques, multi-job queue) ----
    //
    // These run against dedicated `Pool` instances (not the global pool) so
    // they exercise real worker threads even on a 1-core machine, where the
    // global pool degrades to inline execution.

    /// Block until `flag` is set, failing the test after 30s instead of
    /// hanging the suite forever if the scheduler regressed to a deadlock.
    fn await_flag(flag: &AtomicBool) {
        let start = Instant::now();
        while !flag.load(Ordering::SeqCst) {
            assert!(
                start.elapsed() < Duration::from_secs(30),
                "pool deadlock: dependent job never ran"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn two_jobs_from_two_threads_complete_concurrently() {
        // Job A's shards spin until job B (submitted later, from another
        // thread) has executed — under a front-job-drain design B could not
        // start before A finished, so this test would deadlock.
        let pool = Pool::new(2);
        let b_ran = &*Box::leak(Box::new(AtomicBool::new(false)));
        let a_done = &*Box::leak(Box::new(AtomicBool::new(false)));
        let a = std::thread::spawn(move || {
            run_per_shard(pool, 2, &|_shard| {
                await_flag(b_ran);
            });
            a_done.store(true, Ordering::SeqCst);
        });
        let b = std::thread::spawn(move || {
            // Make sure A is (very likely) submitted first.
            std::thread::sleep(Duration::from_millis(20));
            run_per_shard(pool, 2, &|_shard| {
                b_ran.store(true, Ordering::SeqCst);
            });
        });
        b.join().expect("job B's submitter");
        a.join().expect("job A's submitter");
        assert!(a_done.load(Ordering::SeqCst));
    }

    #[test]
    fn nested_submission_from_inside_a_shard_completes() {
        // A shard submitting its own job pushes it onto its executor's own
        // deque and drains it there (or thieves help) instead of
        // deadlocking behind the outer submitter.
        let pool = Pool::new(2);
        let inner_runs = AtomicUsize::new(0);
        run_per_shard(pool, 2, &|_outer| {
            run_per_shard(pool, 3, &|_inner| {
                inner_runs.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(inner_runs.load(Ordering::SeqCst), 2 * 3);
    }

    #[test]
    fn deep_nesting_completes_on_a_small_pool() {
        // Nested depth beyond the worker count: every level lands on the
        // submitting executor's own deque, so depth costs no threads.
        let pool = Pool::new(1);
        fn nest(pool: &'static Pool, depth: usize, leaves: &AtomicUsize) {
            if depth == 0 {
                leaves.fetch_add(1, Ordering::SeqCst);
                return;
            }
            run_per_shard(pool, 2, &|_| nest(pool, depth - 1, leaves));
        }
        let leaves = AtomicUsize::new(0);
        nest(pool, 5, &leaves);
        assert_eq!(leaves.load(Ordering::SeqCst), 1 << 5);
    }

    #[test]
    fn nested_submissions_from_stolen_shards_complete() {
        // A worker that *stole* part of a job and then nested-submits from
        // the stolen shard pushes onto its own (worker) deque; the nested
        // job must still complete and the outer submitter must see every
        // inner shard. Many rounds to give stealing a real chance to occur.
        let pool = Pool::new(3);
        for _ in 0..50 {
            let inner_runs = AtomicUsize::new(0);
            run_per_shard(pool, 8, &|_outer| {
                run_per_shard(pool, 4, &|_inner| {
                    inner_runs.fetch_add(1, Ordering::SeqCst);
                });
            });
            assert_eq!(inner_runs.load(Ordering::SeqCst), 8 * 4);
        }
    }

    #[test]
    fn many_concurrent_submitters_all_complete() {
        let pool = Pool::new(3);
        let total = &*Box::leak(Box::new(AtomicUsize::new(0)));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        run_per_shard(pool, 5, &|shard| {
                            total.fetch_add(shard + 1, Ordering::SeqCst);
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("submitter thread");
        }
        assert_eq!(total.load(Ordering::SeqCst), 4 * 25 * (1 + 2 + 3 + 4 + 5));
    }

    #[test]
    fn many_tiny_concurrent_jobs_each_shard_runs_once() {
        // The many-small-jobs regime the sharded service creates: lots of
        // short jobs racing from several submitters, every shard of every
        // job must run exactly once (per-job hit vectors, disjoint cells).
        let pool = Pool::new(2);
        let threads: Vec<_> = (0..3)
            .map(|t| {
                std::thread::spawn(move || {
                    for round in 0..40 {
                        let shards = 2 + (t + round) % 5;
                        let counts: Vec<AtomicUsize> =
                            (0..shards).map(|_| AtomicUsize::new(0)).collect();
                        run_per_shard(pool, shards, &|i| {
                            counts[i].fetch_add(1, Ordering::SeqCst);
                        });
                        for (i, c) in counts.iter().enumerate() {
                            assert_eq!(c.load(Ordering::SeqCst), 1, "shard {i} miscounted");
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("submitter thread");
        }
    }

    #[test]
    fn imbalanced_shards_complete_with_chunked_claims() {
        // Strongly imbalanced shard durations (quadratic in the index):
        // chunked claiming plus stealing must still complete every shard
        // exactly once, whatever the imbalance does to the interleaving.
        let pool = Pool::new(3);
        let counts: Vec<AtomicUsize> = (0..16).map(|_| AtomicUsize::new(0)).collect();
        run_per_shard(pool, 16, &|i| {
            let mut acc = 0u64;
            for k in 0..(i * i * 200) as u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            std::hint::black_box(acc);
            counts[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "shard {i} miscounted");
        }
    }

    #[test]
    fn zero_worker_pool_runs_every_shard_on_the_submitter() {
        // The 1-core degradation path: no workers, the submitter drains its
        // own job inline (this is also what `run_shards` does for the global
        // pool on a single-core machine).
        let pool = Pool::new(0);
        let me = std::thread::current().id();
        let hits = AtomicUsize::new(0);
        run_per_shard(pool, 6, &|_shard| {
            assert_eq!(std::thread::current().id(), me, "shard left the submitter");
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn zero_shard_jobs_return_immediately_without_queueing() {
        // `Pool::run(0, …)` must not enqueue (the queue invariant requires
        // unclaimed shards) — it returns without touching the closure.
        let pool = Pool::new(1);
        run_per_shard(pool, 0, &|_| panic!("no shards requested"));
        // The pool is untouched and fully usable.
        let hits = AtomicUsize::new(0);
        run_per_shard(pool, 3, &|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn stats_count_jobs_shards_and_inline_runs() {
        let before = stats();
        let pool = Pool::new(1);
        run_per_shard(pool, 4, &|_| {});
        run_shards(1, |_| {});
        let after = stats();
        assert!(after.jobs_run > before.jobs_run);
        assert!(after.shards_executed >= before.shards_executed + 4);
        assert!(after.inline_runs > before.inline_runs);
        assert!(after.chunks_claimed > before.chunks_claimed);
    }

    #[test]
    fn steals_are_counted_when_workers_drain_a_stalled_submitter() {
        // Force a steal deterministically. `Pool::run` holds the lock from
        // job submission through its own first claim, so on a fresh
        // 1-worker pool the submitter always claims the first injector
        // chunk: ceil(8 / 2 executors) = 4 shards, of which it executes
        // `[0, 2)` and parks `[2, 4)` on its own deque. Shard 0 then stalls
        // until shards 2 and 3 have run — which the blocked submitter
        // cannot do itself, so the worker **must** steal the parked half.
        let pool = Pool::new(1);
        let before = stats();
        let two = AtomicBool::new(false);
        let three = AtomicBool::new(false);
        run_per_shard(pool, 8, &|shard| match shard {
            0 => {
                await_flag(&two);
                await_flag(&three);
            }
            2 => two.store(true, Ordering::SeqCst),
            3 => three.store(true, Ordering::SeqCst),
            _ => {}
        });
        let delta_steals = stats().steals - before.steals;
        assert!(delta_steals >= 1, "the worker never stole the parked half");
    }

    #[test]
    fn panics_inside_stolen_ranges_reach_the_submitter_and_spare_the_pool() {
        // Same deterministic steal recipe as above — the submitter claims
        // [0, 4), executes [0, 2) and parks [2, 4); shard 0 blocks until
        // shards 2 and 3 have run, so the worker must steal the parked
        // half. Shard 3 then panics **inside the stolen range**, on the
        // worker thread. The payload must still surface on the submitter
        // (not kill the worker or hang the job), and the pool must stay
        // fully reusable.
        let pool = Pool::new(1);
        let before = stats();
        let two = AtomicBool::new(false);
        let three = AtomicBool::new(false);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_per_shard(pool, 8, &|shard| match shard {
                0 => {
                    await_flag(&two);
                    await_flag(&three);
                }
                2 => two.store(true, Ordering::SeqCst),
                3 => {
                    three.store(true, Ordering::SeqCst);
                    panic!("stolen bang");
                }
                _ => {}
            });
        }));
        let payload = caught.expect_err("the stolen-range panic must reach the submitter");
        assert_eq!(payload.downcast_ref::<&str>().copied(), Some("stolen bang"));
        let delta_steals = stats().steals - before.steals;
        assert!(
            delta_steals >= 1,
            "the panic did not come from a stolen range"
        );
        // The worker survived the unwind and the pool keeps serving jobs.
        for _ in 0..10 {
            let sum = AtomicUsize::new(0);
            run_per_shard(pool, 8, &|i| {
                sum.fetch_add(i + 1, Ordering::SeqCst);
            });
            assert_eq!(sum.load(Ordering::SeqCst), 36);
        }
    }

    #[test]
    fn submitter_reclaims_own_shards_parked_behind_a_blocked_executor() {
        // Cross-shard wait: shard 4 blocks until shard 5 has run. The
        // deterministic chunk math ([0,4) to the submitter, then [4,6) /
        // [6,8)) always splits 4 and 5 into different runs, parking [5,6)
        // on whichever executor claimed [4,6) — which then blocks inside
        // shard 4. If the worker is the one blocked, only the submitter's
        // own-job steal can reach the parked shard (a liveness hole in a
        // workers-only stealing rule); if the submitter is blocked, the
        // worker steals it. Both interleavings must complete.
        let pool = Pool::new(1);
        for _ in 0..20 {
            let five = AtomicBool::new(false);
            run_per_shard(pool, 8, &|shard| match shard {
                4 => await_flag(&five),
                5 => five.store(true, Ordering::SeqCst),
                _ => {}
            });
        }
    }

    #[test]
    fn stats_snapshot_delta_attributes_one_phase() {
        // Warm-up noise that predates the snapshot must never appear in the
        // delta: the baseline subtraction swallows it. (The counters are
        // process-global and other tests run concurrently in this binary,
        // so every check is a lower bound on the delta, never an exact or
        // zero count.)
        let pool = Pool::new(1);
        run_per_shard(pool, 3, &|_| {});
        run_shards(1, |_| {});
        let before = stats();
        let snap = snapshot();
        run_per_shard(pool, 5, &|_| {});
        run_shards(1, |_| {});
        let delta = snap.delta();
        assert!(delta.jobs_run >= 1);
        assert!(delta.shards_executed >= 5);
        assert!(delta.inline_runs >= 1);
        assert!(delta.chunks_claimed >= 1);
        // The delta excludes everything before the snapshot: it is bounded
        // by the raw counter movement since then, not the process totals.
        let after = stats();
        assert!(delta.jobs_run <= after.jobs_run - before.jobs_run);
        assert!(delta.shards_executed <= after.shards_executed - before.shards_executed);
        assert!(delta.inline_runs <= after.inline_runs - before.inline_runs);
        assert!(delta.chunks_claimed <= after.chunks_claimed - before.chunks_claimed);
        assert!(delta.steals <= after.steals - before.steals);
    }

    #[test]
    fn thread_override_parses_and_clamps() {
        let os = |s: &str| Some(std::ffi::OsString::from(s));
        assert_eq!(parse_thread_override(None), None);
        assert_eq!(parse_thread_override(os("")), None);
        assert_eq!(parse_thread_override(os("abc")), None);
        assert_eq!(parse_thread_override(os("-3")), None);
        assert_eq!(parse_thread_override(os("4")), Some(4));
        assert_eq!(parse_thread_override(os(" 12 ")), Some(12));
        assert_eq!(parse_thread_override(os("0")), Some(1));
        assert_eq!(parse_thread_override(os("9999")), Some(128));
    }
}
