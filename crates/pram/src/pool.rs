//! A persistent worker pool for the thread-backed kernels and the batch
//! engine's query fan-out.
//!
//! The first threaded execution path dispatched every bulk kernel through
//! `std::thread::scope`, paying a thread spawn + join per call. That
//! overhead put the break-even point of [`crate::ExecMode::Threads`] well
//! beyond 1e6 vertices. The pool replaces it with a process-wide set of
//! parked workers: a kernel invocation publishes one *job* (a borrowed
//! closure plus a shard counter), wakes the workers, claims shards on the
//! calling thread too, and blocks until every shard has finished — so the
//! borrow of the caller's slices provably outlives all shard executions,
//! exactly like a scoped spawn, but without creating a single thread.
//!
//! Since the batch-engine PR the pool serves **multiple jobs at once**: jobs
//! live in a shared FIFO injector queue and each carries its own shard
//! counter, pending count and completion flag, so two threads can both be
//! inside [`run_shards`] at the same time (the old design serialised
//! submitters behind a single job slot). Workers drain the front job's
//! shards, then move on to the next job even if earlier shards are still
//! executing elsewhere — which is what lets a batch engine fan out
//! connectivity queries while another submitter runs a kernel. A shard may
//! itself call [`run_shards`] (the nested job just joins the queue; its
//! submitter helps drain it), which would have deadlocked behind the old
//! submitter mutex.
//!
//! Guarantees:
//!
//! * **Lazy** — no worker thread exists until the first call of
//!   [`run_shards`] with more than one shard. Tiny graphs (`K < 2`,
//!   single-chunk lists, inputs below [`crate::kernels::PAR_CUTOFF`]) never
//!   touch the pool: their kernels degrade to inline execution on the
//!   calling thread.
//! * **Deterministic results** — the pool only distributes *which thread*
//!   computes a shard; every kernel reduces shard-local results
//!   leftmost-on-tie on the calling thread, so results are bit-for-bit
//!   independent of scheduling.
//! * **Single-machine fallback** — with one hardware thread (or when
//!   `available_parallelism` is unknown) the pool has zero workers and
//!   [`run_shards`] runs every shard inline.
//! * **Sized by the hardware, overridable** — the pool width defaults to
//!   `available_parallelism` (capped at 16) and can be forced with the
//!   `PDMSF_POOL_THREADS` environment variable (clamped to `1..=128`,
//!   read once at first use; `1` means fully inline execution). The
//!   benchmark metadata records the effective width via [`parallelism`].
//! * **Observable** — [`stats`] reports process-wide counters (jobs run,
//!   shards executed, inline runs, currently parked workers) so tests and
//!   the batch engine can assert how work was actually executed, and
//!   [`snapshot`] / [`StatsSnapshot::delta`] difference them so experiments
//!   can attribute pool activity to a single phase.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Shard index → work. The closure is shared by all executing threads; shard
/// indices are claimed from the job's counter under the pool lock, so each
/// index is executed exactly once.
struct Job {
    /// Borrowed closure, lifetime-erased. Soundness: [`Pool::run`] does not
    /// return until `done` is set, which happens only after every claimed
    /// shard has finished executing — so the referent outlives every call.
    f: *const (dyn Fn(usize) + Sync),
    /// Next shard index to claim.
    next: usize,
    /// Total number of shards.
    shards: usize,
    /// Shards claimed or unclaimed that have not finished executing yet.
    pending: usize,
    /// First panic payload raised by a shard of this job; re-raised on the
    /// submitting thread once every shard has finished.
    panic: Option<Box<dyn std::any::Any + Send>>,
    /// Set when `pending` hits zero; the submitter frees the slot.
    done: bool,
}

// The raw closure pointer is only ever dereferenced while the submitting
// call frame is alive (see `Job::f`); sending it between pool threads is
// therefore safe.
unsafe impl Send for Job {}

#[derive(Default)]
struct State {
    /// Job slots, indexed by job id. `None` = free slot.
    jobs: Vec<Option<Job>>,
    /// Free slot ids, reused before growing `jobs`.
    free: Vec<usize>,
    /// The shared injector: ids of jobs that still have **unclaimed**
    /// shards, in submission order. Invariant: `id ∈ queue` exactly while
    /// `jobs[id].next < jobs[id].shards`.
    queue: VecDeque<usize>,
    /// Workers currently blocked on `work_cv`.
    parked: usize,
}

impl State {
    fn alloc(&mut self, job: Job) -> usize {
        match self.free.pop() {
            Some(id) => {
                self.jobs[id] = Some(job);
                id
            }
            None => {
                self.jobs.push(Some(job));
                self.jobs.len() - 1
            }
        }
    }
}

/// Poison-tolerant lock: a shard panic must not wedge every later kernel
/// call behind a `PoisonError` — the panic is re-raised on the submitter
/// instead (see [`Pool::run`]).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// Process-wide observability counters (see [`stats`]). They cover every
// pool in the process (the global one plus any test-local instances).
static JOBS_RUN: AtomicU64 = AtomicU64::new(0);
static SHARDS_EXECUTED: AtomicU64 = AtomicU64::new(0);
static INLINE_RUNS: AtomicU64 = AtomicU64::new(0);

struct Pool {
    state: Mutex<State>,
    /// Workers sleep here while the injector queue is empty.
    work_cv: Condvar,
    /// Submitters sleep here until their job's `done` flag is set.
    done_cv: Condvar,
    workers: usize,
}

impl Pool {
    fn new(workers: usize) -> &'static Pool {
        let pool = Box::leak(Box::new(Pool {
            state: Mutex::new(State::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            workers,
        }));
        for w in 0..workers {
            let p: &'static Pool = pool;
            std::thread::Builder::new()
                .name(format!("pdmsf-pool-{w}"))
                .spawn(move || p.worker_loop())
                .expect("spawning a pool worker");
        }
        pool
    }

    fn worker_loop(&'static self) {
        loop {
            let mut state = lock(&self.state);
            while state.queue.is_empty() {
                state.parked += 1;
                state = self.work_cv.wait(state).unwrap_or_else(|e| e.into_inner());
                state.parked -= 1;
            }
            let id = *state.queue.front().expect("queue checked non-empty");
            let state = self.help(state, id);
            drop(state);
        }
    }

    /// Claim and execute shards of job `id` until none are left unclaimed,
    /// then return (other threads may still be executing shards they
    /// claimed). Takes and returns the lock guard; the lock is released
    /// around each shard execution. A panicking shard is caught, its payload
    /// parked in the job, and `pending` still decremented — the submitter
    /// re-raises it, and neither the executing worker nor the waiting
    /// submitter is lost (the old `thread::scope` dispatch had the same
    /// propagate-to-caller semantics).
    fn help<'a>(
        &'a self,
        mut state: std::sync::MutexGuard<'a, State>,
        id: usize,
    ) -> std::sync::MutexGuard<'a, State> {
        loop {
            let job = state.jobs[id]
                .as_mut()
                .expect("job slot freed while still queued or pending");
            if job.next >= job.shards {
                return state;
            }
            let shard = job.next;
            job.next += 1;
            let f = job.f;
            if job.next >= job.shards {
                // Last shard claimed: maintain the queue invariant. The job
                // is usually at the front (workers drain FIFO), but a
                // submitter helping its own job may claim past jobs queued
                // ahead of it.
                if let Some(pos) = state.queue.iter().position(|&q| q == id) {
                    state.queue.remove(pos);
                }
            }
            SHARDS_EXECUTED.fetch_add(1, Ordering::Relaxed);
            drop(state);
            // Soundness: the submitter blocks until `done`, which is set
            // only after this shard's `pending` decrement below — the
            // closure behind `f` is alive for this call.
            let result =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe { (*f)(shard) }));
            state = lock(&self.state);
            let job = state.jobs[id]
                .as_mut()
                .expect("job slot freed while a shard was executing");
            if let Err(payload) = result {
                if job.panic.is_none() {
                    job.panic = Some(payload);
                }
            }
            job.pending -= 1;
            if job.pending == 0 {
                job.done = true;
                self.done_cv.notify_all();
            }
        }
    }

    fn run(&'static self, shards: usize, f: &(dyn Fn(usize) + Sync)) {
        // A zero-shard job must not reach the queue: the queue invariant
        // (`id ∈ queue` ⟺ unclaimed shards exist) would be violated on
        // entry, pinning a worker on the never-dequeued front job while the
        // submitter waits forever for a completion that no shard can
        // signal. `run_shards` already filters this; keep the internal
        // entry point safe for future callers too.
        if shards == 0 {
            return;
        }
        // Erase the borrow's lifetime; `run` blocks below until the job is
        // done, so the closure outlives every dereference.
        let f: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        let id;
        {
            let mut state = lock(&self.state);
            id = state.alloc(Job {
                f,
                next: 0,
                shards,
                pending: shards,
                panic: None,
                done: false,
            });
            state.queue.push_back(id);
            self.work_cv.notify_all();
            // The submitter claims shards of its own job too — it would
            // otherwise idle while holding work the workers must finish.
            let state = self.help(state, id);
            drop(state);
        }
        let mut state = lock(&self.state);
        while !state.jobs[id].as_ref().is_some_and(|j| j.done) {
            state = self.done_cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        let job = state.jobs[id].take().expect("done job vanished");
        state.free.push(id);
        drop(state);
        JOBS_RUN.fetch_add(1, Ordering::Relaxed);
        if let Some(payload) = job.panic {
            std::panic::resume_unwind(payload);
        }
    }
}

static POOL: OnceLock<&'static Pool> = OnceLock::new();

/// Hardware thread count, probed once — `available_parallelism` is a
/// syscall, and `num_shards` asks on every kernel invocation above the
/// cutoff, which is far too hot a path for per-call probing. The
/// `PDMSF_POOL_THREADS` environment variable (also read once) overrides the
/// probe.
static HW_THREADS: OnceLock<usize> = OnceLock::new();

/// Parse a `PDMSF_POOL_THREADS` value: a positive integer, clamped to
/// `1..=128`. Anything unparsable is ignored (the hardware probe wins).
fn parse_thread_override(raw: Option<std::ffi::OsString>) -> Option<usize> {
    let s = raw?.into_string().ok()?;
    let v: usize = s.trim().parse().ok()?;
    Some(v.clamp(1, 128))
}

fn hw_threads() -> usize {
    *HW_THREADS.get_or_init(|| {
        parse_thread_override(std::env::var_os("PDMSF_POOL_THREADS")).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(16)
        })
    })
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        // The calling thread participates in every job, so spawn one worker
        // fewer than the hardware offers.
        Pool::new(hw_threads().saturating_sub(1))
    })
}

/// Number of threads a pooled kernel can use (workers + the calling
/// thread). Reported in benchmark metadata; does not spawn the pool.
pub fn parallelism() -> usize {
    match POOL.get() {
        Some(p) => p.workers + 1,
        None => hw_threads(),
    }
}

/// Whether the pool's worker threads have been spawned. Tiny-input kernels
/// must never cause a spawn; the test-suite asserts this.
pub fn is_initialized() -> bool {
    POOL.get().is_some()
}

/// Process-wide pool observability counters (see [`stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pooled jobs completed (every [`run_shards`] call that dispatched to
    /// a pool, plus test-local pool runs).
    pub jobs_run: u64,
    /// Shards executed through pooled jobs (on workers or submitters).
    pub shards_executed: u64,
    /// [`run_shards`] calls that ran entirely inline (single shard, or a
    /// zero-worker pool).
    pub inline_runs: u64,
    /// Worker threads of the global pool (0 until first spawn).
    pub workers: usize,
    /// Global-pool workers currently parked waiting for work.
    pub workers_parked: usize,
}

/// A point-in-time capture of the cumulative pool counters, taken with
/// [`snapshot`]. [`stats`] is cumulative over the whole process lifetime,
/// which makes it useless for attributing pool activity to one phase of a
/// benchmark or experiment (every earlier warm-up run is mixed in); a
/// snapshot pins the baseline so [`StatsSnapshot::delta`] reports exactly
/// the jobs/shards/inline-runs that happened since.
#[derive(Clone, Copy, Debug)]
pub struct StatsSnapshot {
    base: PoolStats,
}

/// Capture the current counters as a baseline for [`StatsSnapshot::delta`].
pub fn snapshot() -> StatsSnapshot {
    StatsSnapshot { base: stats() }
}

impl StatsSnapshot {
    /// Pool activity since this snapshot was taken: the cumulative counters
    /// (`jobs_run`, `shards_executed`, `inline_runs`) are differenced
    /// against the baseline; `workers`/`workers_parked` are instantaneous
    /// and report the current values.
    pub fn delta(&self) -> PoolStats {
        let now = stats();
        PoolStats {
            jobs_run: now.jobs_run - self.base.jobs_run,
            shards_executed: now.shards_executed - self.base.shards_executed,
            inline_runs: now.inline_runs - self.base.inline_runs,
            workers: now.workers,
            workers_parked: now.workers_parked,
        }
    }
}

/// Snapshot the pool's observability counters. Counters are cumulative over
/// the process lifetime; `workers`/`workers_parked` describe the global pool
/// only and read 0 before it has been spawned. For per-phase attribution
/// (a single experiment run, one service batch) use [`snapshot`] and
/// [`StatsSnapshot::delta`] instead.
pub fn stats() -> PoolStats {
    let (workers, workers_parked) = match POOL.get() {
        Some(p) => (p.workers, lock(&p.state).parked),
        None => (0, 0),
    };
    PoolStats {
        jobs_run: JOBS_RUN.load(Ordering::Relaxed),
        shards_executed: SHARDS_EXECUTED.load(Ordering::Relaxed),
        inline_runs: INLINE_RUNS.load(Ordering::Relaxed),
        workers,
        workers_parked,
    }
}

/// Execute `f(0), f(1), …, f(shards - 1)`, each exactly once, distributed
/// over the persistent worker pool plus the calling thread. Blocks until
/// every shard has finished, so `f` may borrow from the caller (slices of a
/// row bank, scratch buffers) like under `std::thread::scope`.
///
/// Multiple threads may be inside `run_shards` concurrently: each call is
/// an independent job in the pool's injector queue. A shard may itself call
/// `run_shards` (the nested job queues behind the current one and the
/// nested submitter helps drain it).
///
/// Degrades to an inline loop when `shards <= 1` or when the machine has a
/// single hardware thread — in particular the pool is **not** spawned in
/// those cases.
pub fn run_shards(shards: usize, f: impl Fn(usize) + Sync) {
    if shards <= 1 {
        INLINE_RUNS.fetch_add(1, Ordering::Relaxed);
        for i in 0..shards {
            f(i);
        }
        return;
    }
    let pool = pool();
    if pool.workers == 0 {
        INLINE_RUNS.fetch_add(1, Ordering::Relaxed);
        for i in 0..shards {
            f(i);
        }
        return;
    }
    pool.run(shards, &f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    #[test]
    fn single_shard_runs_inline_without_spawning_the_pool() {
        let hits = AtomicUsize::new(0);
        run_shards(1, |i| {
            assert_eq!(i, 0);
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        run_shards(0, |_| panic!("no shards requested"));
        // Other tests in this binary may have spawned the pool already, so
        // only assert when this test runs in isolation.
        if std::env::var_os("PDMSF_POOL_ISOLATED").is_some() {
            assert!(!is_initialized(), "1-shard run must not spawn workers");
        }
    }

    #[test]
    fn every_shard_runs_exactly_once() {
        for shards in [2usize, 3, 7, 16, 33] {
            let counts: Vec<AtomicUsize> = (0..shards).map(|_| AtomicUsize::new(0)).collect();
            run_shards(shards, |i| {
                counts[i].fetch_add(1, Ordering::SeqCst);
            });
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(
                    c.load(Ordering::SeqCst),
                    1,
                    "shard {i} ran a wrong number of times"
                );
            }
        }
    }

    #[test]
    fn shards_may_mutate_disjoint_borrowed_slices() {
        let mut data = vec![0u64; 1000];
        let shards = 8usize;
        let shard_len = data.len().div_ceil(shards);
        let n = data.len();
        let base = crate::kernels::SendPtr(data.as_mut_ptr());
        run_shards(shards, |i| {
            let start = i * shard_len;
            let end = (start + shard_len).min(n);
            let slice =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
            for (j, x) in slice.iter_mut().enumerate() {
                *x = (start + j) as u64;
            }
        });
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn shard_panics_propagate_and_do_not_wedge_the_pool() {
        // A panicking shard must re-raise on the submitter (like the old
        // scoped spawn), not hang `run_shards` or poison the pool.
        let caught = std::panic::catch_unwind(|| {
            run_shards(4, |i| {
                if i == 2 {
                    panic!("shard bang");
                }
            });
        });
        let payload = caught.expect_err("the shard panic must reach the submitter");
        assert_eq!(payload.downcast_ref::<&str>().copied(), Some("shard bang"));
        // The pool stays fully usable afterwards.
        for _ in 0..10 {
            let sum = AtomicUsize::new(0);
            run_shards(4, |i| {
                sum.fetch_add(i + 1, Ordering::SeqCst);
            });
            assert_eq!(sum.load(Ordering::SeqCst), 10);
        }
    }

    #[test]
    fn back_to_back_jobs_reuse_the_pool() {
        for round in 0..50u64 {
            let sum = AtomicUsize::new(0);
            run_shards(4, |i| {
                sum.fetch_add(i + round as usize, Ordering::SeqCst);
            });
            assert_eq!(sum.load(Ordering::SeqCst), 6 + 4 * round as usize);
        }
    }

    // ---- multi-job queue tests (satellite: per-job pool queue) ----
    //
    // These run against dedicated `Pool` instances (not the global pool) so
    // they exercise real worker threads even on a 1-core machine, where the
    // global pool degrades to inline execution.

    /// Block until `flag` is set, failing the test after 30s instead of
    /// hanging the suite forever if the pool regressed to a deadlock.
    fn await_flag(flag: &AtomicBool) {
        let start = Instant::now();
        while !flag.load(Ordering::SeqCst) {
            assert!(
                start.elapsed() < Duration::from_secs(30),
                "pool deadlock: dependent job never ran"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn two_jobs_from_two_threads_complete_concurrently() {
        // Job A's shards spin until job B (submitted later, from another
        // thread) has executed — under the old single-job-slot design B
        // could not start before A finished, so this test would deadlock.
        let pool = Pool::new(2);
        let b_ran = &*Box::leak(Box::new(AtomicBool::new(false)));
        let a_done = &*Box::leak(Box::new(AtomicBool::new(false)));
        let a = std::thread::spawn(move || {
            pool.run(2, &|_shard| {
                await_flag(b_ran);
            });
            a_done.store(true, Ordering::SeqCst);
        });
        let b = std::thread::spawn(move || {
            // Make sure A is (very likely) submitted first.
            std::thread::sleep(Duration::from_millis(20));
            pool.run(2, &|_shard| {
                b_ran.store(true, Ordering::SeqCst);
            });
        });
        b.join().expect("job B's submitter");
        a.join().expect("job A's submitter");
        assert!(a_done.load(Ordering::SeqCst));
    }

    #[test]
    fn nested_submission_from_inside_a_shard_completes() {
        // A shard submitting its own job joins the queue instead of
        // deadlocking behind the outer submitter (the old design's submit
        // mutex made this impossible).
        let pool = Pool::new(2);
        let inner_runs = AtomicUsize::new(0);
        pool.run(2, &|_outer| {
            pool.run(3, &|_inner| {
                inner_runs.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(inner_runs.load(Ordering::SeqCst), 2 * 3);
    }

    #[test]
    fn many_concurrent_submitters_all_complete() {
        let pool = Pool::new(3);
        let total = &*Box::leak(Box::new(AtomicUsize::new(0)));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        pool.run(5, &|shard| {
                            total.fetch_add(shard + 1, Ordering::SeqCst);
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("submitter thread");
        }
        assert_eq!(total.load(Ordering::SeqCst), 4 * 25 * (1 + 2 + 3 + 4 + 5));
    }

    #[test]
    fn zero_worker_pool_runs_every_shard_on_the_submitter() {
        // The 1-core degradation path: no workers, the submitter drains its
        // own job inline (this is also what `run_shards` does for the global
        // pool on a single-core machine).
        let pool = Pool::new(0);
        let me = std::thread::current().id();
        let hits = AtomicUsize::new(0);
        pool.run(6, &|_shard| {
            assert_eq!(std::thread::current().id(), me, "shard left the submitter");
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn zero_shard_jobs_return_immediately_without_queueing() {
        // `Pool::run(0, …)` must not enqueue (the queue invariant requires
        // unclaimed shards) — it returns without touching the closure.
        let pool = Pool::new(1);
        pool.run(0, &|_| panic!("no shards requested"));
        // The pool is untouched and fully usable.
        let hits = AtomicUsize::new(0);
        pool.run(3, &|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn stats_count_jobs_shards_and_inline_runs() {
        let before = stats();
        let pool = Pool::new(1);
        pool.run(4, &|_| {});
        run_shards(1, |_| {});
        let after = stats();
        assert!(after.jobs_run > before.jobs_run);
        assert!(after.shards_executed >= before.shards_executed + 4);
        assert!(after.inline_runs > before.inline_runs);
    }

    #[test]
    fn stats_snapshot_delta_attributes_one_phase() {
        // Warm-up noise that predates the snapshot must never appear in the
        // delta: the baseline subtraction swallows it. (The counters are
        // process-global and other tests run concurrently in this binary,
        // so every check is a lower bound on the delta, never an exact or
        // zero count.)
        let pool = Pool::new(1);
        pool.run(3, &|_| {});
        run_shards(1, |_| {});
        let before = stats();
        let snap = snapshot();
        pool.run(5, &|_| {});
        run_shards(1, |_| {});
        let delta = snap.delta();
        assert!(delta.jobs_run >= 1);
        assert!(delta.shards_executed >= 5);
        assert!(delta.inline_runs >= 1);
        // The delta excludes everything before the snapshot: it is bounded
        // by the raw counter movement since then, not the process totals.
        let after = stats();
        assert!(delta.jobs_run <= after.jobs_run - before.jobs_run);
        assert!(delta.shards_executed <= after.shards_executed - before.shards_executed);
        assert!(delta.inline_runs <= after.inline_runs - before.inline_runs);
    }

    #[test]
    fn thread_override_parses_and_clamps() {
        let os = |s: &str| Some(std::ffi::OsString::from(s));
        assert_eq!(parse_thread_override(None), None);
        assert_eq!(parse_thread_override(os("")), None);
        assert_eq!(parse_thread_override(os("abc")), None);
        assert_eq!(parse_thread_override(os("-3")), None);
        assert_eq!(parse_thread_override(os("4")), Some(4));
        assert_eq!(parse_thread_override(os(" 12 ")), Some(12));
        assert_eq!(parse_thread_override(os("0")), Some(1));
        assert_eq!(parse_thread_override(os("9999")), Some(128));
    }
}
