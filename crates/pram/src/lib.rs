//! # pdmsf-pram
//!
//! An **EREW PRAM cost-model substrate**.
//!
//! The paper's headline result (Theorem 1.1) is stated in the EREW PRAM
//! model: `O(sqrt n)` processors, `O(log n)` worst-case parallel time per
//! update, `O(sqrt n log n)` work, and *no memory cell may be read or written
//! by two processors in the same step*. No such machine exists; what can be
//! reproduced on real hardware are the three quantities the theorem is about
//! — parallel depth, total work, processor count — plus the exclusivity
//! discipline itself. This crate provides exactly that:
//!
//! * [`CostMeter`] / [`CostReport`] — per-operation and cumulative counters
//!   for parallel depth (synchronous rounds), total work (primitive
//!   operations) and peak processors per round. The parallel structure in
//!   `pdmsf-core` charges every kernel invocation to a meter, which is what
//!   the E2–E4 experiments in `EXPERIMENTS.md` report.
//! * [`erew`] — an access logger that records `(step, cell, processor,
//!   read/write)` tuples and detects EREW violations; the test-suite runs the
//!   phased kernels under this logger to check the paper's exclusive-access
//!   arguments (e.g. the four-phase tournament protocol of Lemma 3.1).
//! * [`kernels`] — the parallel primitives the paper's Section 3 is built
//!   from: tournament-tree minimum reduction, entry-wise vector minimum,
//!   leftmost-child tree sweep-up, and ranked assignment of processors to
//!   edges (`getEdge`). Each kernel has a *simulated* phased implementation
//!   (used for cost accounting and EREW checking) and a thread-backed twin
//!   (`threaded_*`, dispatched over the persistent worker pool of [`pool`])
//!   used by the wall-clock execution path when [`ExecMode::Threads`] is
//!   selected.
//! * [`pool`] — a lazily spawned, process-wide pool of parked worker
//!   threads with a **work-stealing scheduler**. Kernel invocations publish
//!   a borrowed sharded closure, the calling thread participates, and the
//!   call blocks until every shard is done — scoped-spawn semantics without
//!   per-call thread creation, which moves the threaded path's break-even
//!   input size down by an order of magnitude ([`kernels::PAR_CUTOFF`]).
//!   Inputs below the cutoff (tiny graphs, single-chunk lists) never spawn
//!   the pool at all. Scheduling is Cilk-style: every executor (worker or
//!   submitter) owns a deque of shard *ranges*, popped LIFO for cache
//!   locality; jobs are claimed from the shared injector queue in chunks
//!   of `ceil(remaining / executors)` shards instead of one-at-a-time
//!   through the lock; idle workers steal half of a victim's oldest
//!   remaining range, scanning victims in deterministic order (no RNG —
//!   results stay bit-for-bit identical to [`ExecMode::Simulated`]); and a
//!   shard submitting a nested job pushes it onto its own executor's deque,
//!   which keeps nested submission deadlock-free. Kernels consume work
//!   through the range API ([`pool::run_shard_ranges`]; [`pool::run_shards`]
//!   is the per-shard wrapper). [`pool::stats`] exposes process-wide
//!   counters (jobs run, shards executed, inline runs, injector chunks
//!   claimed, steals, parked workers) and [`pool::snapshot`] differences
//!   them per phase; the `PDMSF_POOL_THREADS` environment variable (read
//!   once at first use, clamped to `1..=128`) overrides the hardware-probed
//!   pool width — `PDMSF_POOL_THREADS=1` forces fully inline execution,
//!   larger values size the pool for the machine you are actually serving
//!   from.

pub mod cost;
pub mod erew;
pub mod kernels;
pub mod pool;

pub use cost::{CostMeter, CostReport, ExecMode};
pub use erew::{AccessKind, AccessLog, Violation};
pub use kernels::{
    erew_tournament_min, par_entrywise_min, par_min_index, ranked_descent, sweep_up_costs,
    threaded_entrywise_min, threaded_entrywise_or, threaded_masked_min_index, threaded_min_index,
};
pub use pool::PoolStats;
