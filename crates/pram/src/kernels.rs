//! The parallel primitives of the paper's Section 3.
//!
//! Every kernel comes in a *model* form: it computes the (deterministic)
//! result on the calling thread and charges the PRAM cost the paper's lemmas
//! assign to it (`depth`, `work`, `processors`) to a [`CostMeter`]. The
//! tournament kernel additionally has an explicit **phased simulation**
//! ([`erew_tournament_min`]) that reproduces the four-phase protocol of
//! Lemma 3.1 step by step and can record every memory access in an
//! [`AccessLog`], so the exclusive-read-exclusive-write argument of the paper
//! is checked by the test-suite rather than taken on faith.
//!
//! With the `threads` feature (on by default) the bulk kernels also have
//! rayon-backed twins used by the wall-clock benchmarks.

use crate::cost::CostMeter;
use crate::erew::{cell, AccessKind, AccessLog};

/// `ceil(log2(n))`, with `log2_ceil(0) == 0` and `log2_ceil(1) == 0`.
#[inline]
pub fn log2_ceil(n: usize) -> u64 {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as u64
    }
}

/// Index of the minimum element (leftmost on ties), charging tournament-tree
/// costs to `meter`: depth `ceil(log2 n)`, work `n`, processors `ceil(n/2)`.
///
/// This is the "use a tournament tree to find the smallest entry" step used
/// throughout Section 3 (e.g. finding `argmin γ[i]` during the MWR search).
pub fn par_min_index<T: Ord + Copy>(xs: &[T], meter: &mut CostMeter) -> Option<usize> {
    if xs.is_empty() {
        return None;
    }
    meter.round(
        ((xs.len() + 1) / 2) as u64,
        log2_ceil(xs.len()).max(1),
        xs.len() as u64,
    );
    let mut best = 0usize;
    for (i, x) in xs.iter().enumerate().skip(1) {
        if *x < xs[best] {
            best = i;
        }
    }
    Some(best)
}

/// Entry-wise minimum `dst[i] = min(dst[i], src[i])`, charging one parallel
/// round with `len` processors (the "entry-wise minimum of CAdj vectors"
/// operation of Lemma 3.1's merge case).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn par_entrywise_min<T: Ord + Copy>(dst: &mut [T], src: &[T], meter: &mut CostMeter) {
    assert_eq!(dst.len(), src.len(), "entry-wise min over unequal lengths");
    meter.round(dst.len() as u64, 1, dst.len() as u64);
    for (d, s) in dst.iter_mut().zip(src) {
        if *s < *d {
            *d = *s;
        }
    }
}

/// Explicit phased simulation of the four-phase tournament of Lemma 3.1.
///
/// `xs[k]` is the value held by processor `p_k` (the weight of the `k`-th
/// edge it fetched with `getEdge`). The function plays the synchronous
/// phases on a binary tournament tree, optionally recording every simulated
/// memory access into `log` (one [`AccessLog`] step per phase), charges the
/// model cost to `meter`, and returns the index of the winning (minimum,
/// leftmost-on-tie) element.
pub fn erew_tournament_min<T: Ord + Copy>(
    xs: &[T],
    meter: &mut CostMeter,
    mut log: Option<&mut AccessLog>,
) -> Option<usize> {
    if xs.is_empty() {
        return None;
    }
    const TREE_REGION: u32 = 0xA110;

    // Complete binary tree with `cap` leaves (cap = next power of two).
    let cap = xs.len().next_power_of_two();
    let mut tree: Vec<Option<(T, usize)>> = vec![None; 2 * cap];

    // Initialisation: processor k writes its value into leaf k.
    for (k, &x) in xs.iter().enumerate() {
        tree[cap + k] = Some((x, k));
        if let Some(l) = log.as_deref_mut() {
            l.access(k as u32, cell(TREE_REGION, (cap + k) as u32), AccessKind::Write);
        }
    }
    if let Some(l) = log.as_deref_mut() {
        l.next_step();
    }

    // `active[k]` — whether processor k still participates; `at[k]` — the
    // tree vertex processor k is currently assigned to.
    let mut active: Vec<bool> = vec![true; xs.len()];
    let mut at: Vec<usize> = (0..xs.len()).map(|k| cap + k).collect();

    let levels = log2_ceil(cap).max(1);
    for _level in 0..levels {
        // Phase 1: processors on left children copy their value to the parent.
        for k in 0..xs.len() {
            if active[k] && at[k] % 2 == 0 {
                let parent = at[k] / 2;
                tree[parent] = tree[at[k]];
                if let Some(l) = log.as_deref_mut() {
                    l.access(k as u32, cell(TREE_REGION, parent as u32), AccessKind::Write);
                }
            }
        }
        if let Some(l) = log.as_deref_mut() {
            l.next_step();
        }

        // Phase 2: processors on right children challenge the parent value.
        for k in 0..xs.len() {
            if active[k] && at[k] % 2 == 1 {
                let parent = at[k] / 2;
                if let Some(l) = log.as_deref_mut() {
                    l.access(k as u32, cell(TREE_REGION, parent as u32), AccessKind::Read);
                }
                let mine = tree[at[k]];
                let theirs = tree[parent];
                let win = match (mine, theirs) {
                    (Some(m), Some(t)) => m.0 < t.0, // strict: ties favour the left child
                    (Some(_), None) => true,
                    _ => false,
                };
                if win {
                    tree[parent] = mine;
                    if let Some(l) = log.as_deref_mut() {
                        l.access(k as u32, cell(TREE_REGION, parent as u32), AccessKind::Write);
                    }
                } else {
                    active[k] = false;
                }
            }
        }
        if let Some(l) = log.as_deref_mut() {
            l.next_step();
        }

        // Phase 3: left-child processors check whether they were beaten.
        for k in 0..xs.len() {
            if active[k] && at[k] % 2 == 0 {
                let parent = at[k] / 2;
                if let Some(l) = log.as_deref_mut() {
                    l.access(k as u32, cell(TREE_REGION, parent as u32), AccessKind::Read);
                }
                if tree[parent] != tree[at[k]] {
                    active[k] = false;
                }
            }
        }
        if let Some(l) = log.as_deref_mut() {
            l.next_step();
        }

        // Phase 4: surviving processors move up to the parent.
        for k in 0..xs.len() {
            if active[k] {
                at[k] /= 2;
            }
        }
        if let Some(l) = log.as_deref_mut() {
            l.next_step();
        }
    }

    meter.round(
        xs.len() as u64,
        4 * levels,
        (xs.len() as u64) * 4, // every processor does O(1) work per level until it dies
    );
    tree[1].map(|(_, idx)| idx)
}

/// Assign ranked processors to leaves: given the number of items stored at
/// each leaf of a (conceptual) balanced tree, return for every rank `k`
/// (0-based, `k < total`) the index of the leaf holding the `k`-th item.
///
/// This is the cost/behaviour model of the paper's `getEdge_c(k)` procedure
/// (Section 3): `O(log K)` parallel depth using one processor per item, each
/// descending the edge-counter tree `BT_c`. The returned assignment is what
/// the parallel chunk-rebuild and MWR kernels consume.
pub fn ranked_descent(leaf_counts: &[usize], meter: &mut CostMeter) -> Vec<usize> {
    let total: usize = leaf_counts.iter().sum();
    meter.round(
        total as u64,
        log2_ceil(leaf_counts.len().max(1)).max(1),
        (total + leaf_counts.len()) as u64,
    );
    let mut out = Vec::with_capacity(total);
    for (leaf, &count) in leaf_counts.iter().enumerate() {
        for _ in 0..count {
            out.push(leaf);
        }
    }
    out
}

/// Charge the cost of the "sweep up from all leaves, only the leftmost child
/// proceeds" procedure of Lemma 3.2 over a balanced tree with `num_leaves`
/// leaves: `O(log J)` depth, `O(J)` work, `J` processors.
pub fn sweep_up_costs(num_leaves: usize, meter: &mut CostMeter) {
    if num_leaves == 0 {
        return;
    }
    meter.round(
        num_leaves as u64,
        log2_ceil(num_leaves).max(1),
        (2 * num_leaves) as u64,
    );
}

/// Rayon-backed minimum index (same result as [`par_min_index`]); used by the
/// wall-clock benchmarks.
#[cfg(feature = "threads")]
pub fn rayon_min_index<T: Ord + Copy + Send + Sync>(xs: &[T]) -> Option<usize> {
    use rayon::prelude::*;
    if xs.is_empty() {
        return None;
    }
    xs.par_iter()
        .enumerate()
        .min_by(|a, b| a.1.cmp(b.1).then(a.0.cmp(&b.0)))
        .map(|(i, _)| i)
}

/// Rayon-backed entry-wise minimum (same result as [`par_entrywise_min`]).
#[cfg(feature = "threads")]
pub fn rayon_entrywise_min<T: Ord + Copy + Send + Sync>(dst: &mut [T], src: &[T]) {
    use rayon::prelude::*;
    assert_eq!(dst.len(), src.len());
    dst.par_iter_mut().zip(src.par_iter()).for_each(|(d, s)| {
        if *s < *d {
            *d = *s;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn log2_ceil_small_values() {
        assert_eq!(log2_ceil(0), 0);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(1024), 10);
        assert_eq!(log2_ceil(1025), 11);
    }

    #[test]
    fn min_index_finds_leftmost_minimum() {
        let mut m = CostMeter::new();
        assert_eq!(par_min_index::<i32>(&[], &mut m), None);
        assert_eq!(par_min_index(&[5], &mut m), Some(0));
        assert_eq!(par_min_index(&[3, 1, 4, 1, 5], &mut m), Some(1));
        // Cost model: 5 elements -> depth ceil(log2 5) = 3, work 5.
        let r = m.total();
        assert_eq!(r.work, 1 + 5);
        assert!(r.depth >= 3);
    }

    #[test]
    fn entrywise_min_takes_pointwise_minimum() {
        let mut m = CostMeter::new();
        let mut dst = vec![5, 1, 9, 0];
        par_entrywise_min(&mut dst, &[3, 2, 9, -1], &mut m);
        assert_eq!(dst, vec![3, 1, 9, -1]);
        assert_eq!(m.total().depth, 1);
        assert_eq!(m.total().peak_processors, 4);
    }

    #[test]
    fn tournament_matches_sequential_min_and_is_erew() {
        let xs = vec![9, 4, 7, 4, 12, 3, 3, 8, 100, 0];
        let mut meter = CostMeter::new();
        let mut log = AccessLog::new();
        let winner = erew_tournament_min(&xs, &mut meter, Some(&mut log)).unwrap();
        assert_eq!(winner, 9); // value 0 at index 9
        log.assert_exclusive();
        // Depth is 4 phases per level.
        assert!(meter.total().depth >= 4 * log2_ceil(xs.len()));
    }

    #[test]
    fn tournament_tie_breaks_to_the_left() {
        let xs = vec![7, 7, 7, 7];
        let mut meter = CostMeter::new();
        let winner = erew_tournament_min(&xs, &mut meter, None).unwrap();
        assert_eq!(winner, 0);
    }

    #[test]
    fn tournament_single_element() {
        let mut meter = CostMeter::new();
        assert_eq!(erew_tournament_min(&[42], &mut meter, None), Some(0));
        assert_eq!(erew_tournament_min::<i32>(&[], &mut meter, None), None);
    }

    #[test]
    fn ranked_descent_enumerates_leaves_in_order() {
        let mut meter = CostMeter::new();
        let assignment = ranked_descent(&[2, 0, 3, 1], &mut meter);
        assert_eq!(assignment, vec![0, 0, 2, 2, 2, 3]);
        assert!(meter.total().depth >= 2);
    }

    #[test]
    fn sweep_up_charges_logarithmic_depth() {
        let mut meter = CostMeter::new();
        sweep_up_costs(0, &mut meter);
        assert_eq!(meter.total().depth, 0);
        sweep_up_costs(128, &mut meter);
        assert_eq!(meter.total().depth, 7);
        assert_eq!(meter.total().peak_processors, 128);
    }

    #[cfg(feature = "threads")]
    #[test]
    fn rayon_kernels_match_model_kernels() {
        let xs = vec![5, 3, 8, 3, 1, 1, 9];
        let mut meter = CostMeter::new();
        assert_eq!(rayon_min_index(&xs), par_min_index(&xs, &mut meter));
        let mut a = vec![4, 5, 6];
        let mut b = a.clone();
        rayon_entrywise_min(&mut a, &[9, 1, 6]);
        par_entrywise_min(&mut b, &[9, 1, 6], &mut meter);
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn prop_tournament_equals_min(xs in proptest::collection::vec(-1000i64..1000, 1..200)) {
            let mut meter = CostMeter::new();
            let mut log = AccessLog::new();
            let winner = erew_tournament_min(&xs, &mut meter, Some(&mut log)).unwrap();
            let best = *xs.iter().min().unwrap();
            prop_assert_eq!(xs[winner], best);
            // Leftmost tie-break.
            let leftmost = xs.iter().position(|&x| x == best).unwrap();
            prop_assert_eq!(winner, leftmost);
            log.assert_exclusive();
        }

        #[test]
        fn prop_min_index_matches_iterator_min(xs in proptest::collection::vec(any::<i32>(), 0..100)) {
            let mut meter = CostMeter::new();
            let got = par_min_index(&xs, &mut meter);
            let expected = xs
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.cmp(b.1).then(a.0.cmp(&b.0)))
                .map(|(i, _)| i);
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn prop_ranked_descent_is_a_valid_assignment(counts in proptest::collection::vec(0usize..5, 0..50)) {
            let mut meter = CostMeter::new();
            let assignment = ranked_descent(&counts, &mut meter);
            let total: usize = counts.iter().sum();
            prop_assert_eq!(assignment.len(), total);
            // Each leaf receives exactly its count of ranks, in order.
            let mut per_leaf = vec![0usize; counts.len()];
            for &leaf in &assignment {
                per_leaf[leaf] += 1;
            }
            prop_assert_eq!(per_leaf, counts);
            prop_assert!(assignment.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
