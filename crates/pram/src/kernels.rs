//! The parallel primitives of the paper's Section 3.
//!
//! Every kernel comes in a *model* form: it computes the (deterministic)
//! result on the calling thread and charges the PRAM cost the paper's lemmas
//! assign to it (`depth`, `work`, `processors`) to a [`CostMeter`]. The
//! tournament kernel additionally has an explicit **phased simulation**
//! ([`erew_tournament_min`]) that reproduces the four-phase protocol of
//! Lemma 3.1 step by step and can record every memory access in an
//! [`AccessLog`], so the exclusive-read-exclusive-write argument of the paper
//! is checked by the test-suite rather than taken on faith.
//!
//! The bulk kernels also have thread-backed twins (`threaded_*`) that execute
//! on real OS threads via the persistent worker pool of [`crate::pool`]; the
//! parallel structure dispatches to them when configured with
//! [`crate::ExecMode::Threads`]. They reduce deterministically
//! (leftmost-on-tie), so their results are bit-for-bit identical to the model
//! kernels.

use crate::cost::CostMeter;
use crate::erew::{cell, AccessKind, AccessLog};

/// `ceil(log2(n))`, with `log2_ceil(0) == 0` and `log2_ceil(1) == 0`.
#[inline]
pub fn log2_ceil(n: usize) -> u64 {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as u64
    }
}

/// Index of the minimum element (leftmost on ties), charging tournament-tree
/// costs to `meter`: depth `ceil(log2 n)`, work `n`, processors `ceil(n/2)`.
///
/// This is the "use a tournament tree to find the smallest entry" step used
/// throughout Section 3 (e.g. finding `argmin γ[i]` during the MWR search).
pub fn par_min_index<T: Ord + Copy>(xs: &[T], meter: &mut CostMeter) -> Option<usize> {
    if xs.is_empty() {
        return None;
    }
    meter.round(
        xs.len().div_ceil(2) as u64,
        log2_ceil(xs.len()).max(1),
        xs.len() as u64,
    );
    let mut best = 0usize;
    for (i, x) in xs.iter().enumerate().skip(1) {
        if *x < xs[best] {
            best = i;
        }
    }
    Some(best)
}

/// Entry-wise minimum `dst[i] = min(dst[i], src[i])`, charging one parallel
/// round with `len` processors (the "entry-wise minimum of CAdj vectors"
/// operation of Lemma 3.1's merge case).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn par_entrywise_min<T: Ord + Copy>(dst: &mut [T], src: &[T], meter: &mut CostMeter) {
    assert_eq!(dst.len(), src.len(), "entry-wise min over unequal lengths");
    meter.round(dst.len() as u64, 1, dst.len() as u64);
    for (d, s) in dst.iter_mut().zip(src) {
        if *s < *d {
            *d = *s;
        }
    }
}

/// Explicit phased simulation of the four-phase tournament of Lemma 3.1.
///
/// `xs[k]` is the value held by processor `p_k` (the weight of the `k`-th
/// edge it fetched with `getEdge`). The function plays the synchronous
/// phases on a binary tournament tree, optionally recording every simulated
/// memory access into `log` (one [`AccessLog`] step per phase), charges the
/// model cost to `meter`, and returns the index of the winning (minimum,
/// leftmost-on-tie) element.
pub fn erew_tournament_min<T: Ord + Copy>(
    xs: &[T],
    meter: &mut CostMeter,
    mut log: Option<&mut AccessLog>,
) -> Option<usize> {
    if xs.is_empty() {
        return None;
    }
    const TREE_REGION: u32 = 0xA110;

    // Complete binary tree with `cap` leaves (cap = next power of two).
    let cap = xs.len().next_power_of_two();
    let mut tree: Vec<Option<(T, usize)>> = vec![None; 2 * cap];

    // Initialisation: processor k writes its value into leaf k.
    for (k, &x) in xs.iter().enumerate() {
        tree[cap + k] = Some((x, k));
        if let Some(l) = log.as_deref_mut() {
            l.access(
                k as u32,
                cell(TREE_REGION, (cap + k) as u32),
                AccessKind::Write,
            );
        }
    }
    if let Some(l) = log.as_deref_mut() {
        l.next_step();
    }

    // `active[k]` — whether processor k still participates; `at[k]` — the
    // tree vertex processor k is currently assigned to.
    let mut active: Vec<bool> = vec![true; xs.len()];
    let mut at: Vec<usize> = (0..xs.len()).map(|k| cap + k).collect();

    let levels = log2_ceil(cap).max(1);
    for _level in 0..levels {
        // Phase 1: processors on left children copy their value to the parent.
        for k in 0..xs.len() {
            if active[k] && at[k].is_multiple_of(2) {
                let parent = at[k] / 2;
                tree[parent] = tree[at[k]];
                if let Some(l) = log.as_deref_mut() {
                    l.access(
                        k as u32,
                        cell(TREE_REGION, parent as u32),
                        AccessKind::Write,
                    );
                }
            }
        }
        if let Some(l) = log.as_deref_mut() {
            l.next_step();
        }

        // Phase 2: processors on right children challenge the parent value.
        for k in 0..xs.len() {
            if active[k] && at[k] % 2 == 1 {
                let parent = at[k] / 2;
                if let Some(l) = log.as_deref_mut() {
                    l.access(k as u32, cell(TREE_REGION, parent as u32), AccessKind::Read);
                }
                let mine = tree[at[k]];
                let theirs = tree[parent];
                let win = match (mine, theirs) {
                    (Some(m), Some(t)) => m.0 < t.0, // strict: ties favour the left child
                    (Some(_), None) => true,
                    _ => false,
                };
                if win {
                    tree[parent] = mine;
                    if let Some(l) = log.as_deref_mut() {
                        l.access(
                            k as u32,
                            cell(TREE_REGION, parent as u32),
                            AccessKind::Write,
                        );
                    }
                } else {
                    active[k] = false;
                }
            }
        }
        if let Some(l) = log.as_deref_mut() {
            l.next_step();
        }

        // Phase 3: left-child processors check whether they were beaten.
        for k in 0..xs.len() {
            if active[k] && at[k].is_multiple_of(2) {
                let parent = at[k] / 2;
                if let Some(l) = log.as_deref_mut() {
                    l.access(k as u32, cell(TREE_REGION, parent as u32), AccessKind::Read);
                }
                if tree[parent] != tree[at[k]] {
                    active[k] = false;
                }
            }
        }
        if let Some(l) = log.as_deref_mut() {
            l.next_step();
        }

        // Phase 4: surviving processors move up to the parent.
        for k in 0..xs.len() {
            if active[k] {
                at[k] /= 2;
            }
        }
        if let Some(l) = log.as_deref_mut() {
            l.next_step();
        }
    }

    meter.round(
        xs.len() as u64,
        4 * levels,
        (xs.len() as u64) * 4, // every processor does O(1) work per level until it dies
    );
    tree[1].map(|(_, idx)| idx)
}

/// Assign ranked processors to leaves: given the number of items stored at
/// each leaf of a (conceptual) balanced tree, return for every rank `k`
/// (0-based, `k < total`) the index of the leaf holding the `k`-th item.
///
/// This is the cost/behaviour model of the paper's `getEdge_c(k)` procedure
/// (Section 3): `O(log K)` parallel depth using one processor per item, each
/// descending the edge-counter tree `BT_c`. The returned assignment is what
/// the parallel chunk-rebuild and MWR kernels consume.
pub fn ranked_descent(leaf_counts: &[usize], meter: &mut CostMeter) -> Vec<usize> {
    let total: usize = leaf_counts.iter().sum();
    meter.round(
        total as u64,
        log2_ceil(leaf_counts.len().max(1)).max(1),
        (total + leaf_counts.len()) as u64,
    );
    let mut out = Vec::with_capacity(total);
    for (leaf, &count) in leaf_counts.iter().enumerate() {
        for _ in 0..count {
            out.push(leaf);
        }
    }
    out
}

/// Charge the cost of the "sweep up from all leaves, only the leftmost child
/// proceeds" procedure of Lemma 3.2 over a balanced tree with `num_leaves`
/// leaves: `O(log J)` depth, `O(J)` work, `J` processors.
pub fn sweep_up_costs(num_leaves: usize, meter: &mut CostMeter) {
    if num_leaves == 0 {
        return;
    }
    meter.round(
        num_leaves as u64,
        log2_ceil(num_leaves).max(1),
        (2 * num_leaves) as u64,
    );
}

// ---------------------------------------------------------------------
// Threaded twins (real OS-thread execution of the bulk kernels).
//
// Rayon is unavailable in offline builds, so the wall-clock execution path
// fans out over the persistent worker pool of [`crate::pool`]: each kernel
// splits its input into shards, shards execute on parked pool workers (plus
// the calling thread), and shard-local results reduce deterministically
// (leftmost-on-tie), so the threaded kernels are bit-for-bit identical to
// their model counterparts. Inputs below [`PAR_CUTOFF`] are computed on the
// calling thread — even pooled dispatch overhead would otherwise dominate —
// and never spawn the pool.
// ---------------------------------------------------------------------

use crate::pool::run_shard_ranges;

/// Minimum slice length before the `threaded_*` kernels fan out to the
/// worker pool. Pooled dispatch costs a mutex round-trip and two condvar
/// signals instead of a thread spawn + join, so the break-even input is an
/// order of magnitude smaller than under the original `std::thread::scope`
/// dispatch (4096).
pub const PAR_CUTOFF: usize = 512;

/// Number of shards to split `len` elements into (1 = stay on the calling
/// thread).
fn num_shards(len: usize) -> usize {
    if len < PAR_CUTOFF {
        return 1;
    }
    crate::pool::parallelism()
        .clamp(1, 16)
        .min(len / (PAR_CUTOFF / 2))
        .max(1)
}

/// A raw pointer that may cross thread boundaries. Shards receive disjoint
/// index ranges, so reconstructing per-shard `&mut` slices from the base
/// pointer is sound; the pool blocks until every shard finishes, keeping the
/// underlying borrow alive.
#[derive(Clone, Copy)]
pub struct SendPtr<T>(pub *mut T);

unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// The wrapped pointer. Going through a method (rather than field
    /// access) makes edition-2021 closures capture the `Sync` wrapper, not
    /// the bare raw pointer.
    #[inline]
    pub fn get(&self) -> *mut T {
        self.0
    }
}

#[inline]
fn serial_min_index<T: Ord + Copy>(xs: &[T]) -> Option<usize> {
    let mut best = 0usize;
    for (i, x) in xs.iter().enumerate().skip(1) {
        if *x < xs[best] {
            best = i;
        }
    }
    if xs.is_empty() {
        None
    } else {
        Some(best)
    }
}

/// Thread-backed minimum index (same result as [`par_min_index`], leftmost
/// on ties); used by the wall-clock execution path of the parallel
/// structure.
pub fn threaded_min_index<T: Ord + Copy + Send + Sync>(xs: &[T]) -> Option<usize> {
    let shards = num_shards(xs.len());
    if shards <= 1 {
        return serial_min_index(xs);
    }
    let shard_len = xs.len().div_ceil(shards);
    let mut locals: Vec<Option<(T, usize)>> = vec![None; shards];
    let locals_ptr = SendPtr(locals.as_mut_ptr());
    // The scheduler hands out contiguous shard runs; one closure dispatch
    // covers the whole run.
    run_shard_ranges(shards, |range| {
        for shard in range {
            let chunk = &xs[shard * shard_len..xs.len().min((shard + 1) * shard_len)];
            let local = serial_min_index(chunk).map(|i| (chunk[i], shard * shard_len + i));
            // Each shard owns exactly one `locals` cell.
            unsafe { *locals_ptr.get().add(shard) = local };
        }
    });
    locals
        .into_iter()
        .flatten()
        .min_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)))
        .map(|(_, i)| i)
}

/// Thread-backed minimum index over the masked entries only (leftmost on
/// ties): the `argmin γ[i]` step of the MWR search (Lemma 3.3) with the
/// `Memb` mask applied on the fly.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn threaded_masked_min_index<T: Ord + Copy + Send + Sync>(
    xs: &[T],
    mask: &[bool],
) -> Option<usize> {
    assert_eq!(xs.len(), mask.len(), "masked min over unequal lengths");
    let serial = |xs: &[T], mask: &[bool]| -> Option<(T, usize)> {
        let mut best: Option<(T, usize)> = None;
        for (i, (x, keep)) in xs.iter().zip(mask).enumerate() {
            if *keep && best.is_none_or(|(b, _)| *x < b) {
                best = Some((*x, i));
            }
        }
        best
    };
    let shards = num_shards(xs.len());
    if shards <= 1 {
        return serial(xs, mask).map(|(_, i)| i);
    }
    let shard_len = xs.len().div_ceil(shards);
    let mut locals: Vec<Option<(T, usize)>> = vec![None; shards];
    let locals_ptr = SendPtr(locals.as_mut_ptr());
    run_shard_ranges(shards, |range| {
        for shard in range {
            let start = shard * shard_len;
            let end = xs.len().min(start + shard_len);
            let local = serial(&xs[start..end], &mask[start..end]).map(|(x, i)| (x, start + i));
            // Each shard owns exactly one `locals` cell.
            unsafe { *locals_ptr.get().add(shard) = local };
        }
    });
    locals
        .into_iter()
        .flatten()
        .min_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)))
        .map(|(_, i)| i)
}

/// Thread-backed entry-wise minimum (same result as [`par_entrywise_min`]).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn threaded_entrywise_min<T: Ord + Copy + Send + Sync>(dst: &mut [T], src: &[T]) {
    assert_eq!(dst.len(), src.len(), "entry-wise min over unequal lengths");
    let serial = |dst: &mut [T], src: &[T]| {
        for (d, s) in dst.iter_mut().zip(src) {
            if *s < *d {
                *d = *s;
            }
        }
    };
    let shards = num_shards(dst.len());
    if shards <= 1 {
        serial(dst, src);
        return;
    }
    let shard_len = dst.len().div_ceil(shards);
    let n = dst.len();
    let dst_ptr = SendPtr(dst.as_mut_ptr());
    // Consecutive shards cover consecutive element ranges, so a claimed run
    // of shards collapses into one contiguous slice operation.
    run_shard_ranges(shards, |range| {
        let start = range.start * shard_len;
        let end = n.min(range.end * shard_len);
        // Shard ranges cover disjoint ranges of `dst`.
        let dc = unsafe { std::slice::from_raw_parts_mut(dst_ptr.get().add(start), end - start) };
        serial(dc, &src[start..end]);
    });
}

/// Thread-backed entry-wise OR over boolean vectors (the `Memb` merge of
/// Lemma 3.2).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn threaded_entrywise_or(dst: &mut [bool], src: &[bool]) {
    assert_eq!(dst.len(), src.len(), "entry-wise or over unequal lengths");
    let serial = |dst: &mut [bool], src: &[bool]| {
        for (d, s) in dst.iter_mut().zip(src) {
            *d |= *s;
        }
    };
    let shards = num_shards(dst.len());
    if shards <= 1 {
        serial(dst, src);
        return;
    }
    let shard_len = dst.len().div_ceil(shards);
    let n = dst.len();
    let dst_ptr = SendPtr(dst.as_mut_ptr());
    run_shard_ranges(shards, |range| {
        let start = range.start * shard_len;
        let end = n.min(range.end * shard_len);
        // Shard ranges cover disjoint ranges of `dst`.
        let dc = unsafe { std::slice::from_raw_parts_mut(dst_ptr.get().add(start), end - start) };
        serial(dc, &src[start..end]);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn log2_ceil_small_values() {
        assert_eq!(log2_ceil(0), 0);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(1024), 10);
        assert_eq!(log2_ceil(1025), 11);
    }

    #[test]
    fn min_index_finds_leftmost_minimum() {
        let mut m = CostMeter::new();
        assert_eq!(par_min_index::<i32>(&[], &mut m), None);
        assert_eq!(par_min_index(&[5], &mut m), Some(0));
        assert_eq!(par_min_index(&[3, 1, 4, 1, 5], &mut m), Some(1));
        // Cost model: 5 elements -> depth ceil(log2 5) = 3, work 5.
        let r = m.total();
        assert_eq!(r.work, 1 + 5);
        assert!(r.depth >= 3);
    }

    #[test]
    fn entrywise_min_takes_pointwise_minimum() {
        let mut m = CostMeter::new();
        let mut dst = vec![5, 1, 9, 0];
        par_entrywise_min(&mut dst, &[3, 2, 9, -1], &mut m);
        assert_eq!(dst, vec![3, 1, 9, -1]);
        assert_eq!(m.total().depth, 1);
        assert_eq!(m.total().peak_processors, 4);
    }

    #[test]
    fn tournament_matches_sequential_min_and_is_erew() {
        let xs = vec![9, 4, 7, 4, 12, 3, 3, 8, 100, 0];
        let mut meter = CostMeter::new();
        let mut log = AccessLog::new();
        let winner = erew_tournament_min(&xs, &mut meter, Some(&mut log)).unwrap();
        assert_eq!(winner, 9); // value 0 at index 9
        log.assert_exclusive();
        // Depth is 4 phases per level.
        assert!(meter.total().depth >= 4 * log2_ceil(xs.len()));
    }

    #[test]
    fn tournament_tie_breaks_to_the_left() {
        let xs = vec![7, 7, 7, 7];
        let mut meter = CostMeter::new();
        let winner = erew_tournament_min(&xs, &mut meter, None).unwrap();
        assert_eq!(winner, 0);
    }

    #[test]
    fn tournament_single_element() {
        let mut meter = CostMeter::new();
        assert_eq!(erew_tournament_min(&[42], &mut meter, None), Some(0));
        assert_eq!(erew_tournament_min::<i32>(&[], &mut meter, None), None);
    }

    #[test]
    fn ranked_descent_enumerates_leaves_in_order() {
        let mut meter = CostMeter::new();
        let assignment = ranked_descent(&[2, 0, 3, 1], &mut meter);
        assert_eq!(assignment, vec![0, 0, 2, 2, 2, 3]);
        assert!(meter.total().depth >= 2);
    }

    #[test]
    fn sweep_up_charges_logarithmic_depth() {
        let mut meter = CostMeter::new();
        sweep_up_costs(0, &mut meter);
        assert_eq!(meter.total().depth, 0);
        sweep_up_costs(128, &mut meter);
        assert_eq!(meter.total().depth, 7);
        assert_eq!(meter.total().peak_processors, 128);
    }

    #[test]
    fn threaded_kernels_match_model_kernels() {
        let xs = vec![5, 3, 8, 3, 1, 1, 9];
        let mut meter = CostMeter::new();
        assert_eq!(threaded_min_index(&xs), par_min_index(&xs, &mut meter));
        let mut a = vec![4, 5, 6];
        let mut b = a.clone();
        threaded_entrywise_min(&mut a, &[9, 1, 6]);
        par_entrywise_min(&mut b, &[9, 1, 6], &mut meter);
        assert_eq!(a, b);
    }

    #[test]
    fn threaded_kernels_match_above_the_cutoff() {
        // Large enough to actually fan out over threads.
        let n = PAR_CUTOFF * 3 + 17;
        let xs: Vec<u64> = (0..n as u64).map(|i| (i * 2654435761) % 100_003).collect();
        let mut meter = CostMeter::new();
        assert_eq!(threaded_min_index(&xs), par_min_index(&xs, &mut meter));

        let mut a: Vec<u64> = xs.iter().map(|x| x ^ 0x5555).collect();
        let mut b = a.clone();
        threaded_entrywise_min(&mut a, &xs);
        par_entrywise_min(&mut b, &xs, &mut meter);
        assert_eq!(a, b);

        let mask: Vec<bool> = (0..n).map(|i| i % 3 != 0).collect();
        let expected = xs
            .iter()
            .zip(&mask)
            .enumerate()
            .filter(|(_, (_, &keep))| keep)
            .min_by(|a, b| a.1 .0.cmp(b.1 .0).then(a.0.cmp(&b.0)))
            .map(|(i, _)| i);
        assert_eq!(threaded_masked_min_index(&xs, &mask), expected);

        let mut ba: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let mut bb = ba.clone();
        threaded_entrywise_or(&mut ba, &mask);
        for (d, s) in bb.iter_mut().zip(&mask) {
            *d |= *s;
        }
        assert_eq!(ba, bb);
    }

    #[test]
    fn threaded_min_index_tie_breaks_leftmost() {
        let n = PAR_CUTOFF * 2;
        // Duplicate strict minimum planted in two different shards: the
        // reducer must pick the leftmost occurrence.
        let mut xs = vec![7u32; n];
        xs[3] = 1;
        xs[PAR_CUTOFF + 5] = 1;
        assert_eq!(threaded_min_index(&xs), Some(3));
        assert_eq!(threaded_masked_min_index(&xs, &vec![true; n]), Some(3));
        // With the first duplicate masked out, the later shard's copy wins.
        let mut mask = vec![true; n];
        mask[3] = false;
        assert_eq!(threaded_masked_min_index(&xs, &mask), Some(PAR_CUTOFF + 5));
        assert_eq!(threaded_min_index::<u32>(&[]), None);
    }

    proptest! {
        #[test]
        fn prop_tournament_equals_min(xs in proptest::collection::vec(-1000i64..1000, 1..200)) {
            let mut meter = CostMeter::new();
            let mut log = AccessLog::new();
            let winner = erew_tournament_min(&xs, &mut meter, Some(&mut log)).unwrap();
            let best = *xs.iter().min().unwrap();
            prop_assert_eq!(xs[winner], best);
            // Leftmost tie-break.
            let leftmost = xs.iter().position(|&x| x == best).unwrap();
            prop_assert_eq!(winner, leftmost);
            log.assert_exclusive();
        }

        #[test]
        fn prop_min_index_matches_iterator_min(xs in proptest::collection::vec(any::<i32>(), 0..100)) {
            let mut meter = CostMeter::new();
            let got = par_min_index(&xs, &mut meter);
            let expected = xs
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.cmp(b.1).then(a.0.cmp(&b.0)))
                .map(|(i, _)| i);
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn prop_ranked_descent_is_a_valid_assignment(counts in proptest::collection::vec(0usize..5, 0..50)) {
            let mut meter = CostMeter::new();
            let assignment = ranked_descent(&counts, &mut meter);
            let total: usize = counts.iter().sum();
            prop_assert_eq!(assignment.len(), total);
            // Each leaf receives exactly its count of ranks, in order.
            let mut per_leaf = vec![0usize; counts.len()];
            for &leaf in &assignment {
                per_leaf[leaf] += 1;
            }
            prop_assert_eq!(per_leaf, counts);
            prop_assert!(assignment.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
