//! Parallel depth / work / processor accounting.
//!
//! The accounting convention follows the paper's statements:
//!
//! * **depth** — number of synchronous PRAM rounds (the paper's "parallel
//!   worst-case time"),
//! * **work** — total number of primitive operations summed over all
//!   processors and rounds,
//! * **processors** — the number of processors a round needs; the peak over
//!   an operation is the machine size the operation requires.
//!
//! A [`CostMeter`] accumulates rounds; [`CostMeter::finish_op`] snapshots the
//! cost of one graph update so the experiments can report per-update
//! worst-case and mean values, exactly the quantities in Theorems 1.1/3.1.

/// How the parallel structure should execute its kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Simulate the PRAM rounds on the calling thread, charging costs to the
    /// meter. Deterministic; used by tests and the depth/work experiments.
    #[default]
    Simulated,
    /// Execute bulk rounds with real OS worker threads (still charging the
    /// same model costs). Used by the wall-clock benchmarks; results are
    /// bit-for-bit identical to [`ExecMode::Simulated`].
    Threads,
}

/// Cost of one operation (or of a whole run) in the PRAM model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostReport {
    /// Number of synchronous parallel rounds.
    pub depth: u64,
    /// Total primitive operations across all processors.
    pub work: u64,
    /// Peak number of processors used by any single round.
    pub peak_processors: u64,
}

impl CostReport {
    /// Merge another report as if it ran *after* this one (depths and work
    /// add, peak processors take the maximum).
    pub fn then(self, other: CostReport) -> CostReport {
        CostReport {
            depth: self.depth + other.depth,
            work: self.work + other.work,
            peak_processors: self.peak_processors.max(other.peak_processors),
        }
    }

    /// Merge another report as if it ran *concurrently* with this one
    /// (depth takes the maximum, work adds, processors add).
    pub fn alongside(self, other: CostReport) -> CostReport {
        CostReport {
            depth: self.depth.max(other.depth),
            work: self.work + other.work,
            peak_processors: self.peak_processors + other.peak_processors,
        }
    }
}

/// Accumulator of PRAM costs.
///
/// The meter tracks both a *cumulative* total (over its whole lifetime) and a
/// *current operation* that is reset by [`CostMeter::begin_op`] /
/// [`CostMeter::finish_op`]. It also remembers the most expensive operation
/// seen so far, which is what "worst-case update time" experiments report.
#[derive(Clone, Debug, Default)]
pub struct CostMeter {
    total: CostReport,
    current: CostReport,
    worst_op: CostReport,
    ops: u64,
}

impl CostMeter {
    /// A fresh meter with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one parallel round that uses `processors` processors and
    /// performs `work` primitive operations in `depth` synchronous steps.
    pub fn round(&mut self, processors: u64, depth: u64, work: u64) {
        self.current.depth += depth;
        self.current.work += work;
        self.current.peak_processors = self.current.peak_processors.max(processors);
        self.total.depth += depth;
        self.total.work += work;
        self.total.peak_processors = self.total.peak_processors.max(processors);
    }

    /// Record sequential work performed by a single processor (`depth ==
    /// work == amount`).
    pub fn sequential(&mut self, amount: u64) {
        self.round(1, amount, amount);
    }

    /// Start measuring a new operation (clears the per-operation counters).
    pub fn begin_op(&mut self) {
        self.current = CostReport::default();
    }

    /// Finish the current operation, fold it into the worst-case tracker and
    /// return its cost.
    pub fn finish_op(&mut self) -> CostReport {
        let report = self.current;
        self.ops += 1;
        if report.depth > self.worst_op.depth
            || (report.depth == self.worst_op.depth && report.work > self.worst_op.work)
        {
            self.worst_op = report;
        }
        self.current = CostReport::default();
        report
    }

    /// Cumulative cost since the meter was created.
    pub fn total(&self) -> CostReport {
        self.total
    }

    /// Cost of the current (unfinished) operation.
    pub fn current(&self) -> CostReport {
        self.current
    }

    /// The most expensive single operation seen so far (by depth, then work).
    pub fn worst_op(&self) -> CostReport {
        self.worst_op
    }

    /// Number of finished operations.
    pub fn num_ops(&self) -> u64 {
        self.ops
    }

    /// Mean work per finished operation (0 if none).
    pub fn mean_work(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.total.work as f64 / self.ops as f64
        }
    }

    /// Mean depth per finished operation (0 if none).
    pub fn mean_depth(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.total.depth as f64 / self.ops as f64
        }
    }

    /// Reset every counter.
    pub fn reset(&mut self) {
        *self = CostMeter::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_accumulate() {
        let mut m = CostMeter::new();
        m.begin_op();
        m.round(8, 3, 24);
        m.round(4, 1, 4);
        let op = m.finish_op();
        assert_eq!(
            op,
            CostReport {
                depth: 4,
                work: 28,
                peak_processors: 8
            }
        );
        assert_eq!(m.total().work, 28);
        assert_eq!(m.num_ops(), 1);
    }

    #[test]
    fn worst_op_tracks_deepest_operation() {
        let mut m = CostMeter::new();
        m.begin_op();
        m.round(2, 10, 20);
        m.finish_op();
        m.begin_op();
        m.round(16, 3, 48);
        m.finish_op();
        assert_eq!(m.worst_op().depth, 10);
        assert_eq!(m.num_ops(), 2);
        assert!((m.mean_depth() - 6.5).abs() < 1e-9);
        assert!((m.mean_work() - 34.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_charges_single_processor() {
        let mut m = CostMeter::new();
        m.begin_op();
        m.sequential(5);
        let op = m.finish_op();
        assert_eq!(op.depth, 5);
        assert_eq!(op.work, 5);
        assert_eq!(op.peak_processors, 1);
    }

    #[test]
    fn report_composition() {
        let a = CostReport {
            depth: 3,
            work: 10,
            peak_processors: 4,
        };
        let b = CostReport {
            depth: 5,
            work: 7,
            peak_processors: 2,
        };
        assert_eq!(
            a.then(b),
            CostReport {
                depth: 8,
                work: 17,
                peak_processors: 4
            }
        );
        assert_eq!(
            a.alongside(b),
            CostReport {
                depth: 5,
                work: 17,
                peak_processors: 6
            }
        );
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = CostMeter::new();
        m.begin_op();
        m.round(1, 1, 1);
        m.finish_op();
        m.reset();
        assert_eq!(m.total(), CostReport::default());
        assert_eq!(m.num_ops(), 0);
    }
}
