//! EREW (exclusive-read exclusive-write) access checking.
//!
//! The correctness arguments of the paper's Section 3 repeatedly hinge on an
//! *exclusive-assignment property*: in every synchronous step, no two
//! processors read or write the same memory cell. [`AccessLog`] lets the
//! phased kernels in [`crate::kernels`] (and the tests of the parallel
//! structure in `pdmsf-core`) record every simulated access and then assert
//! that the property really holds — turning the paper's prose argument into
//! an executable check.

use std::collections::HashMap;

/// Whether an access reads or writes the cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// The processor reads the cell.
    Read,
    /// The processor writes the cell.
    Write,
}

/// A detected violation of the EREW discipline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The synchronous step in which the conflict happened.
    pub step: u64,
    /// The memory cell that was accessed by more than one processor.
    pub cell: u64,
    /// The processors involved (at least two).
    pub processors: Vec<u32>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct AccessRecord {
    step: u64,
    cell: u64,
}

/// A log of simulated memory accesses, organised by synchronous step.
///
/// Cells are identified by caller-chosen `u64` values; the kernels use simple
/// encodings such as `(array_id << 32) | index`.
#[derive(Clone, Debug, Default)]
pub struct AccessLog {
    current_step: u64,
    /// (step, cell) -> processors that touched it in that step.
    touched: HashMap<AccessRecord, Vec<u32>>,
    accesses: u64,
}

impl AccessLog {
    /// A fresh, empty log positioned at step 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The step subsequent accesses will be recorded under.
    pub fn current_step(&self) -> u64 {
        self.current_step
    }

    /// Total number of accesses recorded.
    pub fn num_accesses(&self) -> u64 {
        self.accesses
    }

    /// Advance to the next synchronous step.
    pub fn next_step(&mut self) {
        self.current_step += 1;
    }

    /// Record that `processor` accessed `cell` in the current step.
    ///
    /// In the EREW model a read and a write to the same cell in the same step
    /// conflict just like two writes do, so the kind is recorded only for
    /// diagnostics and both kinds count towards violations.
    pub fn access(&mut self, processor: u32, cell: u64, _kind: AccessKind) {
        self.accesses += 1;
        self.touched
            .entry(AccessRecord {
                step: self.current_step,
                cell,
            })
            .or_default()
            .push(processor);
    }

    /// All violations recorded so far (cells touched by two *distinct*
    /// processors in the same step).
    pub fn violations(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        for (rec, procs) in &self.touched {
            let mut distinct = procs.clone();
            distinct.sort_unstable();
            distinct.dedup();
            if distinct.len() > 1 {
                out.push(Violation {
                    step: rec.step,
                    cell: rec.cell,
                    processors: distinct,
                });
            }
        }
        out.sort_by_key(|v| (v.step, v.cell));
        out
    }

    /// Whether the log is EREW-clean.
    pub fn is_exclusive(&self) -> bool {
        self.touched.iter().all(|(_, procs)| {
            procs.windows(2).all(|w| w[0] == w[1]) || {
                let mut d = procs.clone();
                d.sort_unstable();
                d.dedup();
                d.len() <= 1
            }
        })
    }

    /// Panic with a readable message if any violation was recorded.
    pub fn assert_exclusive(&self) {
        let violations = self.violations();
        assert!(
            violations.is_empty(),
            "EREW violations detected: {violations:?}"
        );
    }
}

/// Helper to build cell identifiers: `region` tags an array / structure and
/// `index` the element within it.
#[inline]
pub fn cell(region: u32, index: u32) -> u64 {
    ((region as u64) << 32) | index as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_accesses_pass() {
        let mut log = AccessLog::new();
        log.access(0, cell(1, 0), AccessKind::Write);
        log.access(1, cell(1, 1), AccessKind::Write);
        log.next_step();
        // Same cell in a *different* step is fine.
        log.access(1, cell(1, 0), AccessKind::Read);
        assert!(log.is_exclusive());
        log.assert_exclusive();
        assert_eq!(log.num_accesses(), 3);
        assert_eq!(log.current_step(), 1);
    }

    #[test]
    fn concurrent_accesses_are_detected() {
        let mut log = AccessLog::new();
        log.access(0, cell(2, 7), AccessKind::Read);
        log.access(3, cell(2, 7), AccessKind::Write);
        assert!(!log.is_exclusive());
        let v = log.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].cell, cell(2, 7));
        assert_eq!(v[0].processors, vec![0, 3]);
    }

    #[test]
    #[should_panic(expected = "EREW violations")]
    fn assert_exclusive_panics_on_conflict() {
        let mut log = AccessLog::new();
        log.access(0, 5, AccessKind::Write);
        log.access(1, 5, AccessKind::Write);
        log.assert_exclusive();
    }

    #[test]
    fn same_processor_may_touch_a_cell_twice() {
        let mut log = AccessLog::new();
        log.access(4, 9, AccessKind::Read);
        log.access(4, 9, AccessKind::Write);
        assert!(log.is_exclusive());
    }

    #[test]
    fn cell_encoding_is_injective_per_region() {
        assert_ne!(cell(0, 1), cell(1, 0));
        assert_ne!(cell(2, 3), cell(2, 4));
    }
}
