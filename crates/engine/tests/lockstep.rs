//! Lockstep property tests: batched engine execution must be
//! **observationally identical** to applying the same operations one at a
//! time against [`SeqDynamicMsf`] (with queries answered at the batch's
//! snapshot point) and to a Kruskal recompute over the mirror graph —
//! per-op outcomes, forest edge sets and forest weights all agree, for
//! every batch of every generated stream, under hostile inputs: duplicate
//! cuts, cuts of unknown ids, opposing insert/delete pairs, self-loops,
//! out-of-range endpoints and duplicate interleaved queries.
//!
//! The partitioned engine rides the same harness in two arms — grouped
//! concurrent apply and forced arrival-order serial apply — and must match
//! the single-structure engine, the one-by-one `SeqDynamicMsf` reference
//! and Kruskal exactly, including the component-containment invariants
//! checked by `validate()` after every stream.

use pdmsf_core::SeqDynamicMsf;
use pdmsf_engine::{Engine, Op, Outcome, Reject};
use pdmsf_graph::{
    kruskal_msf, BatchKind, BatchStream, BatchStreamSpec, DynGraph, DynamicMsf, EdgeId, GraphSpec,
    VertexId, Weight,
};
use pdmsf_pram::ExecMode;
use proptest::prelude::*;

/// Compact encoding of a batch operation; concretised against the running
/// edge-id allocation when the stream is replayed.
#[derive(Clone, Copy, Debug)]
enum RawOp {
    /// Insert `(u, v, w)`; endpoints are reduced mod `n + 1`, so a slice of
    /// them lands out of range and some pairs collide into self-loops.
    Link { u: u8, v: u8, w: u8 },
    /// Cut the `k`-th currently live edge (usually valid; becomes a
    /// duplicate/dead cut when a bogus cut already killed the edge).
    /// Frequently hits edges born earlier in the same batch, which is
    /// exactly the opposing-pair case the engine cancels.
    CutNth(u8),
    /// Cut an arbitrary id near the allocation frontier: unknown ids,
    /// already-dead ids and duplicate cuts.
    CutBogus(u8),
    /// Connectivity query (same endpoint encoding as `Link`).
    QueryConn { u: u8, v: u8 },
    /// Forest-weight query.
    QueryWeight,
}

fn raw_op() -> impl Strategy<Value = RawOp> {
    prop_oneof![
        4 => (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(u, v, w)| RawOp::Link { u, v, w }),
        3 => any::<u8>().prop_map(RawOp::CutNth),
        1 => any::<u8>().prop_map(RawOp::CutBogus),
        3 => (any::<u8>(), any::<u8>()).prop_map(|(u, v)| RawOp::QueryConn { u, v }),
        1 => (0u32..1).prop_map(|_| RawOp::QueryWeight),
    ]
}

/// Reference executor: the documented batch semantics implemented the
/// straightforward way — one op at a time against `SeqDynamicMsf` plus a
/// `DynGraph` mirror, queries deferred to the end of the batch.
struct Reference {
    graph: DynGraph,
    msf: SeqDynamicMsf,
}

impl Reference {
    fn new(n: usize) -> Reference {
        Reference {
            graph: DynGraph::new(n),
            msf: SeqDynamicMsf::new(n),
        }
    }

    fn run_batch(&mut self, ops: &[Op]) -> Vec<Outcome> {
        let n = self.graph.num_vertices();
        let mut outcomes = Vec::with_capacity(ops.len());
        let mut deferred: Vec<(usize, Op)> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let outcome = match *op {
                Op::Link { u, v, weight } => {
                    if u.index() >= n || v.index() >= n {
                        Outcome::Rejected {
                            reason: Reject::EndpointOutOfRange,
                        }
                    } else if u == v {
                        Outcome::Rejected {
                            reason: Reject::SelfLoop,
                        }
                    } else {
                        let id = self.graph.insert_edge(u, v, weight);
                        self.msf.insert(self.graph.edge_unchecked(id));
                        Outcome::Linked { id }
                    }
                }
                Op::Cut { id } => {
                    if !self.graph.is_live(id) {
                        Outcome::Rejected {
                            reason: Reject::UnknownOrDeadEdge,
                        }
                    } else {
                        self.graph.delete_edge(id);
                        self.msf.delete(id);
                        Outcome::Cut { id }
                    }
                }
                Op::QueryConnected { u, v } => {
                    if u.index() >= n || v.index() >= n {
                        Outcome::Rejected {
                            reason: Reject::EndpointOutOfRange,
                        }
                    } else {
                        deferred.push((i, *op));
                        Outcome::Connected { connected: false }
                    }
                }
                Op::QueryForestWeight => {
                    deferred.push((i, *op));
                    Outcome::ForestWeight { weight: 0 }
                }
            };
            outcomes.push(outcome);
        }
        for (i, op) in deferred {
            outcomes[i] = match op {
                Op::QueryConnected { u, v } => Outcome::Connected {
                    connected: self.msf.connected(u, v),
                },
                Op::QueryForestWeight => Outcome::ForestWeight {
                    weight: self.msf.forest_weight(),
                },
                _ => unreachable!("only queries are deferred"),
            };
        }
        outcomes
    }
}

/// Concretise raw batches into engine ops, tracking a (best-effort) live
/// list so `CutNth` usually targets real edges — including edges born
/// earlier in the same batch.
fn concretise(n: usize, raw_batches: &[Vec<RawOp>]) -> Vec<Vec<Op>> {
    let endpoint = |x: u8| VertexId((x as usize % (n + 1)) as u32);
    let mut next_id = 0u32;
    let mut live: Vec<EdgeId> = Vec::new();
    let mut batches = Vec::with_capacity(raw_batches.len());
    for raw in raw_batches {
        let mut ops = Vec::with_capacity(raw.len());
        for r in raw {
            let op = match *r {
                RawOp::Link { u, v, w } => {
                    let (u, v) = (endpoint(u), endpoint(v));
                    // Mirror the engine's id allocation: only valid links
                    // consume an id.
                    if u.index() < n && v.index() < n && u != v {
                        live.push(EdgeId(next_id));
                        next_id += 1;
                    }
                    Op::Link {
                        u,
                        v,
                        weight: Weight::new(w as i64),
                    }
                }
                RawOp::CutNth(k) => {
                    if live.is_empty() {
                        Op::Cut { id: EdgeId(9999) }
                    } else {
                        let idx = k as usize % live.len();
                        Op::Cut {
                            id: live.swap_remove(idx),
                        }
                    }
                }
                RawOp::CutBogus(k) => Op::Cut {
                    id: EdgeId((k as u32) % (next_id + 3)),
                },
                RawOp::QueryConn { u, v } => Op::QueryConnected {
                    u: endpoint(u),
                    v: endpoint(v),
                },
                RawOp::QueryWeight => Op::QueryForestWeight,
            };
            ops.push(op);
        }
        batches.push(ops);
    }
    batches
}

/// The core lockstep check shared by the proptest cases. `grouped` and
/// `part_serial` are partitioned engines — the first applies batches as
/// concurrent conflict-free groups, the second is forced onto the
/// arrival-order serial loop — and both must stay bit-for-bit in lockstep
/// with the single-structure engine and the references. Returns the two
/// partitioned engines so callers can assert on their cumulative stats
/// (e.g. that a migration-heavy stream really did rebalance).
fn check_lockstep(
    n: usize,
    batches: &[Vec<Op>],
    mut batched: Engine,
    mut serial: Engine,
    mut grouped: Engine,
    mut part_serial: Engine,
) -> (Engine, Engine) {
    part_serial.set_serial_apply(true);
    let mut reference = Reference::new(n);
    for (b, ops) in batches.iter().enumerate() {
        let expected = reference.run_batch(ops);
        let got_batched = batched.execute(ops);
        let got_serial = serial.execute_one_by_one(ops);
        let got_grouped = grouped.execute(ops);
        let got_part_serial = part_serial.execute(ops);
        assert_eq!(
            got_batched.outcomes, expected,
            "batched outcomes diverged from one-by-one SeqDynamicMsf in batch {b}"
        );
        assert_eq!(
            got_serial.outcomes, expected,
            "one-by-one engine outcomes diverged from the reference in batch {b}"
        );
        assert_eq!(
            got_grouped.outcomes, expected,
            "grouped-apply outcomes diverged from the reference in batch {b}"
        );
        assert_eq!(
            got_part_serial.outcomes, expected,
            "forced-serial partitioned outcomes diverged in batch {b}"
        );
        // Structural lockstep after every batch.
        let kruskal = kruskal_msf(&reference.graph);
        assert_eq!(
            batched.forest_edges(),
            kruskal.edges,
            "batch {b} vs Kruskal"
        );
        assert_eq!(batched.forest_edges(), reference.msf.forest_edges());
        assert_eq!(batched.forest_weight(), kruskal.total_weight);
        assert_eq!(serial.forest_edges(), kruskal.edges);
        assert_eq!(serial.forest_weight(), kruskal.total_weight);
        assert_eq!(grouped.forest_edges(), kruskal.edges, "batch {b} grouped");
        assert_eq!(grouped.forest_weight(), kruskal.total_weight);
        assert_eq!(part_serial.forest_edges(), kruskal.edges);
        assert_eq!(part_serial.forest_weight(), kruskal.total_weight);
        // Grouped vs forced-serial apply: identical component homes, not
        // just identical forests.
        let (gp, sp) = (
            grouped.partitioned_structure().unwrap(),
            part_serial.partitioned_structure().unwrap(),
        );
        for v in 0..n as u32 {
            assert_eq!(
                gp.home_of(VertexId(v)),
                sp.home_of(VertexId(v)),
                "home of vertex {v} diverged between grouped and serial apply in batch {b}"
            );
        }
    }
    grouped.validate_structure();
    part_serial.validate_structure();
    (grouped, part_serial)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 20,
        .. ProptestConfig::default()
    })]

    /// Batched execution == one-by-one SeqDynamicMsf == Kruskal, under
    /// hostile random batches, with the engine's default configuration.
    #[test]
    fn batched_engine_matches_one_by_one_and_kruskal(
        raw in proptest::collection::vec(proptest::collection::vec(raw_op(), 0..24), 1..8)
    ) {
        let n = 8;
        let batches = concretise(n, &raw);
        check_lockstep(
            n,
            &batches,
            Engine::new(n),
            Engine::new(n),
            Engine::new_partitioned(n, 3),
            Engine::new_partitioned(n, 3),
        );
    }

    /// Same property with a tiny chunk parameter (maximal chunk churn in
    /// the underlying structure) and thread-backed kernels.
    #[test]
    fn batched_engine_matches_under_stress_configuration(
        raw in proptest::collection::vec(proptest::collection::vec(raw_op(), 0..24), 1..6)
    ) {
        let n = 10;
        let batches = concretise(n, &raw);
        check_lockstep(
            n,
            &batches,
            Engine::with_execution(n, 2, ExecMode::Threads),
            Engine::with_execution(n, 2, ExecMode::Simulated),
            Engine::with_partitioned_execution(n, 4, 2, ExecMode::Threads),
            Engine::with_partitioned_execution(n, 4, 2, ExecMode::Simulated),
        );
    }

    /// Migration/rebalance stress: with the rebalance occupancy floor
    /// forced to 1, the partitioned engines re-home components after
    /// nearly every occupancy-skewed batch. Grouped and forced-serial
    /// apply must make identical rebalance decisions (the per-vertex home
    /// equality inside `check_lockstep`) while both stay in lockstep with
    /// the flat engine, the one-by-one reference and Kruskal.
    #[test]
    fn rebalancing_engines_stay_in_lockstep(
        raw in proptest::collection::vec(proptest::collection::vec(raw_op(), 0..32), 1..8)
    ) {
        let n = 12;
        let batches = concretise(n, &raw);
        let mut grouped = Engine::new_partitioned(n, 4);
        grouped.set_rebalance_min(1);
        let mut part_serial = Engine::new_partitioned(n, 4);
        part_serial.set_rebalance_min(1);
        check_lockstep(n, &batches, Engine::new(n), Engine::new(n), grouped, part_serial);
    }
}

/// A scripted pile-up: bridge links drag every block's chain into vertex
/// 0's partition (the smaller side migrates, `u` on ties), the cut batch
/// strands all four chains there, and the post-batch rebalance spreads
/// them back out — observably (the returned stats must show it) and
/// invisibly (full lockstep with the flat engine and references,
/// including grouped == forced-serial homes after every batch).
#[test]
fn forced_migration_pileup_rebalances_in_lockstep() {
    let n = 16;
    let mk = || {
        let mut e = Engine::new_partitioned(n, 4);
        e.set_rebalance_min(1);
        e
    };
    let link = |u: u32, v: u32, w: i64| Op::Link {
        u: VertexId(u),
        v: VertexId(v),
        weight: Weight::new(w),
    };
    let batches = vec![
        // Chains per 4-vertex block, ids 0..11 — one component per
        // partition.
        (0..4u32)
            .flat_map(|b| (0..3u32).map(move |i| (4 * b + i, 4 * b + i + 1)))
            .enumerate()
            .map(|(i, (u, v))| link(u, v, i as i64 + 1))
            .collect::<Vec<_>>(),
        // Bridges (ids 12..14) pile every chain into vertex 0's partition.
        vec![link(4, 0, 100), link(8, 0, 101), link(12, 0, 102)],
        // Cutting them leaves four components stranded in one partition —
        // the rebalance trigger.
        vec![
            Op::Cut { id: EdgeId(12) },
            Op::Cut { id: EdgeId(13) },
            Op::Cut { id: EdgeId(14) },
        ],
        // Block-local churn rides on the rebalanced layout.
        vec![
            link(0, 2, 50),
            link(5, 7, 51),
            link(9, 11, 52),
            link(13, 15, 53),
        ],
    ];
    let (grouped, part_serial) =
        check_lockstep(n, &batches, Engine::new(n), Engine::new(n), mk(), mk());
    assert!(
        grouped.stats().rebalances > 0,
        "the stranded pile-up must trigger a rebalance"
    );
    assert!(grouped.stats().migrations >= 3, "bridges must migrate");
    assert_eq!(grouped.stats().rebalances, part_serial.stats().rebalances);
    assert_eq!(grouped.stats().migrations, part_serial.stats().migrations);
}

/// The generator-produced batch streams (the E1 workloads) also hold the
/// lockstep property — this pins the benchmark inputs to the verified
/// semantics, including their flap pairs and duplicate queries.
#[test]
fn generated_batch_streams_hold_the_lockstep_property() {
    for (kind, seed) in [
        (
            BatchKind::Bursty {
                query_permille: 500,
                flap_permille: 300,
            },
            41u64,
        ),
        (
            BatchKind::Clustered {
                clusters: 3,
                query_permille: 400,
            },
            43,
        ),
    ] {
        let stream = BatchStream::generate(&BatchStreamSpec {
            base: GraphSpec::RandomSparse {
                n: 48,
                m: 96,
                seed: 7,
            },
            batches: 10,
            batch_size: 32,
            kind,
            seed,
        });
        let n = stream.num_vertices;
        let mut batched = Engine::new(n);
        let mut serial = Engine::new(n);
        let mut grouped = Engine::new_partitioned(n, 4);
        let mut reference = Reference::new(n);
        // Load the base graph as one initial batch.
        let base: Vec<Op> = stream
            .base_edges
            .iter()
            .map(|&(u, v, weight)| Op::Link { u, v, weight })
            .collect();
        check_lockstep_prefix(
            &mut batched,
            &mut serial,
            &mut grouped,
            &mut reference,
            &base,
        );
        let mut saw_cancellation = false;
        for ops in &stream.batches {
            check_lockstep_prefix(&mut batched, &mut serial, &mut grouped, &mut reference, ops);
            saw_cancellation |= batched.stats().cancelled_pairs > 0;
        }
        grouped.validate_structure();
        if matches!(kind, BatchKind::Bursty { .. }) {
            assert!(
                saw_cancellation,
                "bursty stream exercised no cancellation at all"
            );
        }
    }
}

fn check_lockstep_prefix(
    batched: &mut Engine,
    serial: &mut Engine,
    grouped: &mut Engine,
    reference: &mut Reference,
    ops: &[Op],
) {
    let expected = reference.run_batch(ops);
    assert_eq!(batched.execute(ops).outcomes, expected);
    assert_eq!(serial.execute_one_by_one(ops).outcomes, expected);
    assert_eq!(grouped.execute(ops).outcomes, expected);
    let kruskal = kruskal_msf(&reference.graph);
    assert_eq!(batched.forest_edges(), kruskal.edges);
    assert_eq!(batched.forest_weight(), kruskal.total_weight);
    assert_eq!(serial.forest_edges(), kruskal.edges);
    assert_eq!(grouped.forest_edges(), kruskal.edges);
    assert_eq!(grouped.forest_weight(), kruskal.total_weight);
}
