//! Conflict coloring of a planned batch's surviving updates.
//!
//! The partitioned apply path (see [`crate::Engine::new_partitioned`])
//! splits a batch's structure-surviving updates into [`UpdateGroup`]s whose
//! **partition classes are disjoint**, so the groups can mutate the
//! component-partitioned structure concurrently with no synchronization.
//!
//! The coloring is **component-granular with partition-bank escalation**:
//! every update is keyed by its endpoints' component representatives —
//! `home_of(v)` resolves a vertex to the partition owning its component,
//! which *is* the component's location under the containment invariant —
//! and two updates merge into one group exactly when their components
//! would touch the same partition's banks (a link additionally fuses its
//! two endpoints' classes, since a cross-partition link migrates one
//! component into the other's partition). Updates whose classes meet form
//! one group, in batch arrival order (the first update of a class fixes
//! the group's position, so group order is deterministic too).
//!
//! Escalating to the partition level whenever two components share a bank
//! makes the fixpoint identical to a union-find over partition ids — the
//! granularity at which the structure can actually be mutated
//! independently — so the produced groups are exactly the old
//! partition-granular ones and every downstream identity argument carries
//! over unchanged. What changes is the cost: the coloring is a union-find
//! over the batch's *updates* with one hash probe per endpoint, `O(U·α)`
//! for `U` surviving updates, independent of the partition count `P`. The
//! old coloring allocated and swept a `P`-sized union-find per batch,
//! which stops being noise once adaptive rebalancing
//! ([`ComponentPartitionedMsf::maybe_rebalance`]) raises effective
//! partition counts well above the batch size. The grouping stays *closed
//! under migration*: a group's cross-partition links only ever move
//! components between partitions of that group's own class, so the
//! classes stay disjoint for the whole batch (the safety argument of
//! `pdmsf_core::partition`).

use pdmsf_core::{ComponentPartitionedMsf, GroupUpdate, UpdateGroup};
use pdmsf_graph::{DynGraph, Edge, UnionFind};

use crate::plan::PlannedUpdate;

/// Resolve the structure-surviving updates of a plan into the form the
/// partitioned structure consumes: cancelled pairs drop out, links carry
/// their full edge record, cuts carry one current endpoint of the doomed
/// edge (read from the mirror **before** the mirror pass deletes it — a
/// surviving cut always targets a pre-batch edge, because the planner
/// cancels every cut of an in-batch link).
pub(crate) fn resolve_surviving(graph: &DynGraph, updates: &[PlannedUpdate]) -> Vec<GroupUpdate> {
    let mut resolved = Vec::new();
    for update in updates {
        match *update {
            PlannedUpdate::Link {
                id,
                u,
                v,
                weight,
                cancelled,
            } => {
                if !cancelled {
                    resolved.push(GroupUpdate::Link(Edge { id, u, v, weight }));
                }
            }
            PlannedUpdate::Cut { id, cancelled } => {
                if !cancelled {
                    let endpoint = graph.edge_unchecked(id).u;
                    resolved.push(GroupUpdate::Cut { id, endpoint });
                }
            }
        }
    }
    resolved
}

/// Color the resolved updates into conflict-free groups (see module docs).
/// Groups appear in order of their first update's arrival; updates keep
/// arrival order inside each group.
pub(crate) fn color_groups(
    structure: &ComponentPartitionedMsf,
    resolved: &[GroupUpdate],
) -> Vec<UpdateGroup> {
    use std::collections::hash_map::Entry;
    use std::collections::HashMap;

    let m = resolved.len();
    // Union-find over *updates*. Each update resolves its endpoints to
    // their component representatives' partitions; two updates fuse when a
    // component of one would touch a partition bank a component of the
    // other already claimed. `first_touch` maps each claimed bank to the
    // first update that touched it — one hash probe per endpoint keeps the
    // whole pass O(U·α), independent of the partition count.
    let mut uf = UnionFind::new(m);
    let mut first_touch: HashMap<u32, u32> = HashMap::new();
    let mut touched: Vec<(u32, u32)> = Vec::with_capacity(m);
    for (i, update) in resolved.iter().enumerate() {
        let (pu, pv) = match *update {
            GroupUpdate::Link(e) => (structure.home_of(e.u), structure.home_of(e.v)),
            GroupUpdate::Cut { endpoint, .. } => {
                let p = structure.home_of(endpoint);
                (p, p)
            }
        };
        touched.push((pu, pv));
        for p in [pu, pv] {
            match first_touch.entry(p) {
                Entry::Occupied(o) => {
                    uf.union(i, *o.get() as usize);
                }
                Entry::Vacant(slot) => {
                    slot.insert(i as u32);
                }
            }
        }
    }
    let mut class_group: Vec<u32> = vec![u32::MAX; m];
    let mut groups: Vec<UpdateGroup> = Vec::new();
    for (i, update) in resolved.iter().enumerate() {
        let class = uf.find(i);
        let gi = if class_group[class] == u32::MAX {
            class_group[class] = groups.len() as u32;
            groups.push(UpdateGroup {
                updates: Vec::new(),
                parts: Vec::new(),
            });
            groups.len() - 1
        } else {
            class_group[class] as usize
        };
        groups[gi].updates.push(*update);
        // Accumulate the group's partition closure from its members'
        // endpoint homes — exactly the banks the apply path may touch
        // (migrations only move components between a group's own banks).
        let (pu, pv) = touched[i];
        groups[gi].parts.push(pu);
        if pv != pu {
            groups[gi].parts.push(pv);
        }
    }
    for g in &mut groups {
        g.parts.sort_unstable();
        g.parts.dedup();
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdmsf_core::ComponentPartitionedMsf;
    use pdmsf_graph::{EdgeId, VertexId, Weight};
    use pdmsf_pram::ExecMode;

    fn link(id: u32, u: u32, v: u32) -> GroupUpdate {
        GroupUpdate::Link(Edge {
            id: EdgeId(id),
            u: VertexId(u),
            v: VertexId(v),
            weight: Weight::new(1),
        })
    }

    #[test]
    fn disjoint_partitions_get_disjoint_groups() {
        // 16 vertices, 4 block partitions of 4 vertices each.
        let structure = ComponentPartitionedMsf::with_execution(16, 4, 4, ExecMode::Simulated);
        let resolved = vec![
            link(0, 0, 1),   // partition 0
            link(1, 4, 5),   // partition 1
            link(2, 8, 13),  // crosses partitions 2 and 3
            link(3, 1, 2),   // partition 0 again — joins group 0
            link(4, 14, 15), // partition 3 — joins the {2,3} group
        ];
        let groups = color_groups(&structure, &resolved);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].updates, vec![resolved[0], resolved[3]]);
        assert_eq!(groups[1].updates, vec![resolved[1]]);
        assert_eq!(groups[2].updates, vec![resolved[2], resolved[4]]);
        assert_eq!(groups[0].parts, vec![0]);
        assert_eq!(groups[1].parts, vec![1]);
        assert_eq!(groups[2].parts, vec![2, 3]);
    }

    #[test]
    fn cuts_color_by_their_edge_partition() {
        let structure = ComponentPartitionedMsf::with_execution(8, 2, 3, ExecMode::Simulated);
        let resolved = vec![
            GroupUpdate::Cut {
                id: EdgeId(0),
                endpoint: VertexId(0), // partition 0
            },
            link(1, 5, 6), // partition 1
        ];
        let groups = color_groups(&structure, &resolved);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].parts, vec![0]);
        assert_eq!(groups[1].parts, vec![1]);
    }
}
