//! Conflict coloring of a planned batch's surviving updates.
//!
//! The partitioned apply path (see [`crate::Engine::new_partitioned`])
//! splits a batch's structure-surviving updates into [`UpdateGroup`]s whose
//! **partition classes are disjoint**, so the groups can mutate the
//! component-partitioned structure concurrently with no synchronization.
//!
//! The coloring is a union-find over *partition ids* at batch start: a
//! link unions its two endpoints' home partitions, a cut touches its
//! edge's partition. Updates whose partitions land in the same class form
//! one group, in batch arrival order (the first update of a class fixes
//! the group's position, so group order is deterministic too). This is
//! coarser than component-level coloring — two updates on different
//! components of the same partition share a group — but it is exactly the
//! granularity at which the structure can be mutated independently, and it
//! is *closed under migration*: a group's cross-partition links only ever
//! move components between partitions of that group's own class, so the
//! classes stay disjoint for the whole batch (the safety argument of
//! `pdmsf_core::partition`).

use pdmsf_core::{ComponentPartitionedMsf, GroupUpdate, UpdateGroup};
use pdmsf_graph::{DynGraph, Edge, UnionFind};

use crate::plan::PlannedUpdate;

/// Resolve the structure-surviving updates of a plan into the form the
/// partitioned structure consumes: cancelled pairs drop out, links carry
/// their full edge record, cuts carry one current endpoint of the doomed
/// edge (read from the mirror **before** the mirror pass deletes it — a
/// surviving cut always targets a pre-batch edge, because the planner
/// cancels every cut of an in-batch link).
pub(crate) fn resolve_surviving(graph: &DynGraph, updates: &[PlannedUpdate]) -> Vec<GroupUpdate> {
    let mut resolved = Vec::new();
    for update in updates {
        match *update {
            PlannedUpdate::Link {
                id,
                u,
                v,
                weight,
                cancelled,
            } => {
                if !cancelled {
                    resolved.push(GroupUpdate::Link(Edge { id, u, v, weight }));
                }
            }
            PlannedUpdate::Cut { id, cancelled } => {
                if !cancelled {
                    let endpoint = graph.edge_unchecked(id).u;
                    resolved.push(GroupUpdate::Cut { id, endpoint });
                }
            }
        }
    }
    resolved
}

/// Color the resolved updates into conflict-free groups (see module docs).
/// Groups appear in order of their first update's arrival; updates keep
/// arrival order inside each group.
pub(crate) fn color_groups(
    structure: &ComponentPartitionedMsf,
    resolved: &[GroupUpdate],
) -> Vec<UpdateGroup> {
    let num_parts = structure.num_partitions();
    let mut uf = UnionFind::new(num_parts);
    for update in resolved {
        if let GroupUpdate::Link(e) = update {
            uf.union(
                structure.home_of(e.u) as usize,
                structure.home_of(e.v) as usize,
            );
        }
    }
    let mut class_group: Vec<u32> = vec![u32::MAX; num_parts];
    let mut groups: Vec<UpdateGroup> = Vec::new();
    for update in resolved {
        let part = match *update {
            GroupUpdate::Link(e) => structure.home_of(e.u),
            GroupUpdate::Cut { endpoint, .. } => structure.home_of(endpoint),
        };
        let class = uf.find(part as usize);
        let gi = if class_group[class] == u32::MAX {
            class_group[class] = groups.len() as u32;
            groups.push(UpdateGroup {
                updates: Vec::new(),
                parts: Vec::new(),
            });
            groups.len() - 1
        } else {
            class_group[class] as usize
        };
        groups[gi].updates.push(*update);
    }
    // Attach each partition to the group owning its class, so the apply
    // path's debug overlap checks know the full closure (partitions with
    // no update of their own still belong to a class that has one when a
    // link unioned them in).
    for p in 0..num_parts {
        let class = uf.find(p);
        if class_group[class] != u32::MAX {
            groups[class_group[class] as usize].parts.push(p as u32);
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdmsf_core::ComponentPartitionedMsf;
    use pdmsf_graph::{EdgeId, VertexId, Weight};
    use pdmsf_pram::ExecMode;

    fn link(id: u32, u: u32, v: u32) -> GroupUpdate {
        GroupUpdate::Link(Edge {
            id: EdgeId(id),
            u: VertexId(u),
            v: VertexId(v),
            weight: Weight::new(1),
        })
    }

    #[test]
    fn disjoint_partitions_get_disjoint_groups() {
        // 16 vertices, 4 block partitions of 4 vertices each.
        let structure = ComponentPartitionedMsf::with_execution(16, 4, 4, ExecMode::Simulated);
        let resolved = vec![
            link(0, 0, 1),   // partition 0
            link(1, 4, 5),   // partition 1
            link(2, 8, 13),  // crosses partitions 2 and 3
            link(3, 1, 2),   // partition 0 again — joins group 0
            link(4, 14, 15), // partition 3 — joins the {2,3} group
        ];
        let groups = color_groups(&structure, &resolved);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].updates, vec![resolved[0], resolved[3]]);
        assert_eq!(groups[1].updates, vec![resolved[1]]);
        assert_eq!(groups[2].updates, vec![resolved[2], resolved[4]]);
        assert_eq!(groups[0].parts, vec![0]);
        assert_eq!(groups[1].parts, vec![1]);
        assert_eq!(groups[2].parts, vec![2, 3]);
    }

    #[test]
    fn cuts_color_by_their_edge_partition() {
        let structure = ComponentPartitionedMsf::with_execution(8, 2, 3, ExecMode::Simulated);
        let resolved = vec![
            GroupUpdate::Cut {
                id: EdgeId(0),
                endpoint: VertexId(0), // partition 0
            },
            link(1, 5, 6), // partition 1
        ];
        let groups = color_groups(&structure, &resolved);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].parts, vec![0]);
        assert_eq!(groups[1].parts, vec![1]);
    }
}
