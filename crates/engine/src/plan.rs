//! Batch preprocessing: one pure pass over the incoming operations that
//! assigns edge ids, validates every op, cancels opposing insert/delete
//! pairs and partitions queries from updates.
//!
//! The plan is computed against an immutable view of the engine's
//! [`DynGraph`] mirror plus batch-local bookkeeping, so it performs no
//! structural work at all — the expensive `O(sqrt(n) log n)` updates happen
//! only for the operations that survive planning.

use crate::{Outcome, Reject};
use pdmsf_graph::{BatchOp, DynGraph, EdgeId, VertexId, Weight};
use std::collections::HashMap;

/// An update that survived validation, in arrival order. `cancelled`
/// updates still apply to the engine's [`DynGraph`] mirror (the mirror is
/// the id allocator, so cancelled links must consume their id exactly as a
/// one-by-one execution would) but skip the MSF structure entirely.
#[derive(Clone, Copy, Debug)]
pub(crate) enum PlannedUpdate {
    /// Insert `id = (u, v, weight)`.
    Link {
        /// Pre-assigned edge id (next sequential id of the mirror).
        id: EdgeId,
        /// First endpoint.
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
        /// Weight.
        weight: Weight,
        /// The matching `Cut` arrives later in this same batch.
        cancelled: bool,
    },
    /// Delete edge `id`.
    Cut {
        /// The edge to delete.
        id: EdgeId,
        /// The matching `Link` arrived earlier in this same batch.
        cancelled: bool,
    },
}

/// A deduplicated query. Connectivity queries are keyed on the unordered
/// endpoint pair, so `connected(u, v)` and `connected(v, u)` share one
/// answer slot; all forest-weight queries share a single slot.
#[derive(Clone, Copy, Debug)]
pub(crate) enum PlannedQuery {
    /// Are `u` and `v` in the same component?
    Connected {
        /// First endpoint.
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
    },
    /// Total forest weight.
    ForestWeight,
}

/// The result of planning one batch.
pub(crate) struct BatchPlan {
    /// Valid updates in arrival order (including cancelled ones).
    pub updates: Vec<PlannedUpdate>,
    /// Deduplicated queries, in first-appearance order.
    pub unique_queries: Vec<PlannedQuery>,
    /// `(outcome index, unique query index)` for every query op, so the
    /// answers computed over `unique_queries` scatter back to each op.
    pub query_refs: Vec<(usize, usize)>,
    /// Per-op outcomes. Update and rejection outcomes are final; query
    /// slots hold provisional values overwritten by the scatter.
    pub outcomes: Vec<Outcome>,
    /// Opposing link/cut pairs elided from the MSF structure.
    pub cancelled_pairs: usize,
    /// Ops rejected by validation.
    pub rejected: usize,
}

/// Plan `ops` against the current mirror state. Pure: touches neither the
/// mirror nor the MSF structure.
pub(crate) fn plan(graph: &DynGraph, ops: &[BatchOp]) -> BatchPlan {
    let n = graph.num_vertices();
    let mut next_id = graph.edge_id_bound() as u32;
    // Edges born in this batch → index of their Link in `updates`.
    let mut born: HashMap<EdgeId, usize> = HashMap::new();
    // Edges cut in this batch (born earlier or in-batch).
    let mut killed: std::collections::HashSet<EdgeId> = std::collections::HashSet::new();
    // Dedup tables.
    let mut connected_slots: HashMap<(u32, u32), usize> = HashMap::new();
    let mut weight_slot: Option<usize> = None;

    let mut updates = Vec::new();
    let mut unique_queries = Vec::new();
    let mut query_refs = Vec::new();
    let mut outcomes = Vec::with_capacity(ops.len());
    let mut cancelled_pairs = 0usize;
    let mut rejected = 0usize;

    for (i, op) in ops.iter().enumerate() {
        let outcome = match *op {
            BatchOp::Link { u, v, weight } => {
                if let Some(reason) = crate::link_reject(n, u, v) {
                    rejected += 1;
                    Outcome::Rejected { reason }
                } else {
                    let id = EdgeId(next_id);
                    next_id += 1;
                    born.insert(id, updates.len());
                    updates.push(PlannedUpdate::Link {
                        id,
                        u,
                        v,
                        weight,
                        cancelled: false,
                    });
                    Outcome::Linked { id }
                }
            }
            BatchOp::Cut { id } => {
                let alive = !killed.contains(&id) && (graph.is_live(id) || born.contains_key(&id));
                if !alive {
                    rejected += 1;
                    Outcome::Rejected {
                        reason: Reject::UnknownOrDeadEdge,
                    }
                } else {
                    killed.insert(id);
                    let cancelled = if let Some(&link_idx) = born.get(&id) {
                        // Opposing pair: the link is still in flight within
                        // this batch — neither side reaches the structure.
                        if let PlannedUpdate::Link { cancelled, .. } = &mut updates[link_idx] {
                            *cancelled = true;
                        }
                        cancelled_pairs += 1;
                        true
                    } else {
                        false
                    };
                    updates.push(PlannedUpdate::Cut { id, cancelled });
                    Outcome::Cut { id }
                }
            }
            BatchOp::QueryConnected { u, v } => {
                if let Some(reason) = crate::query_reject(n, u, v) {
                    rejected += 1;
                    Outcome::Rejected { reason }
                } else {
                    let key = (u.0.min(v.0), u.0.max(v.0));
                    let slot = *connected_slots.entry(key).or_insert_with(|| {
                        unique_queries.push(PlannedQuery::Connected { u, v });
                        unique_queries.len() - 1
                    });
                    query_refs.push((i, slot));
                    // Provisional; overwritten by the answer scatter.
                    Outcome::Connected { connected: false }
                }
            }
            BatchOp::QueryForestWeight => {
                let slot = *weight_slot.get_or_insert_with(|| {
                    unique_queries.push(PlannedQuery::ForestWeight);
                    unique_queries.len() - 1
                });
                query_refs.push((i, slot));
                Outcome::ForestWeight { weight: 0 }
            }
        };
        outcomes.push(outcome);
    }

    BatchPlan {
        updates,
        unique_queries,
        query_refs,
        outcomes,
        cancelled_pairs,
        rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdmsf_graph::Weight;

    fn link(u: u32, v: u32, w: i64) -> BatchOp {
        BatchOp::Link {
            u: VertexId(u),
            v: VertexId(v),
            weight: Weight::new(w),
        }
    }

    #[test]
    fn plan_assigns_sequential_ids_and_cancels_opposing_pairs() {
        let mut g = DynGraph::new(4);
        g.insert_edge(VertexId(0), VertexId(1), Weight::new(5)); // id 0
        let ops = vec![
            link(1, 2, 7),                    // id 1
            link(2, 3, 9),                    // id 2 — flap
            BatchOp::Cut { id: EdgeId(2) },   // cancels the flap
            BatchOp::Cut { id: EdgeId(0) },   // cuts a pre-existing edge
            BatchOp::Cut { id: EdgeId(0) },   // duplicate → rejected
            BatchOp::Cut { id: EdgeId(100) }, // unknown → rejected
        ];
        let plan = plan(&g, &ops);
        assert_eq!(plan.updates.len(), 4);
        assert_eq!(plan.cancelled_pairs, 1);
        assert_eq!(plan.rejected, 2);
        assert!(matches!(
            plan.updates[1],
            PlannedUpdate::Link {
                id: EdgeId(2),
                cancelled: true,
                ..
            }
        ));
        assert!(matches!(
            plan.updates[2],
            PlannedUpdate::Cut {
                id: EdgeId(2),
                cancelled: true
            }
        ));
        assert!(matches!(
            plan.updates[3],
            PlannedUpdate::Cut {
                id: EdgeId(0),
                cancelled: false
            }
        ));
        assert_eq!(plan.outcomes[0], Outcome::Linked { id: EdgeId(1) });
        assert!(matches!(plan.outcomes[4], Outcome::Rejected { .. }));
        assert!(matches!(plan.outcomes[5], Outcome::Rejected { .. }));
    }

    #[test]
    fn plan_dedups_queries_in_both_orientations() {
        let g = DynGraph::new(4);
        let ops = vec![
            BatchOp::QueryConnected {
                u: VertexId(0),
                v: VertexId(1),
            },
            BatchOp::QueryConnected {
                u: VertexId(1),
                v: VertexId(0),
            },
            BatchOp::QueryForestWeight,
            BatchOp::QueryForestWeight,
            BatchOp::QueryConnected {
                u: VertexId(2),
                v: VertexId(3),
            },
        ];
        let plan = plan(&g, &ops);
        assert_eq!(plan.unique_queries.len(), 3);
        assert_eq!(plan.query_refs.len(), 5);
        assert_eq!(plan.query_refs[0].1, plan.query_refs[1].1);
        assert_eq!(plan.query_refs[2].1, plan.query_refs[3].1);
        assert_ne!(plan.query_refs[0].1, plan.query_refs[4].1);
    }

    #[test]
    fn plan_rejects_bad_endpoints_and_self_loops() {
        let g = DynGraph::new(3);
        let ops = vec![
            link(0, 9, 1),
            link(1, 1, 1),
            BatchOp::QueryConnected {
                u: VertexId(7),
                v: VertexId(0),
            },
        ];
        let plan = plan(&g, &ops);
        assert_eq!(plan.rejected, 3);
        assert!(plan.updates.is_empty());
        assert!(plan.unique_queries.is_empty());
        // Rejected links consume no id: the next valid link gets the first
        // free id.
        let plan2 = super::plan(&g, &[link(0, 9, 1), link(0, 1, 1)]);
        assert_eq!(plan2.outcomes[1], Outcome::Linked { id: EdgeId(0) });
    }
}
