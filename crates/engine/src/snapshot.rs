//! Read-only query snapshots and the pooled query fan-out.
//!
//! A batch's queries are all answered at the same logical point — after the
//! batch's updates have been applied — so the engine captures the forest
//! *once* into a flat component-label vector and answers every connectivity
//! query with two array loads. Capturing costs `O(n + f·α(n))` (one
//! union-find sweep over the ≤ `n − 1` forest edges); each answer is `O(1)`
//! and touches no shared mutable state, which is what makes fanning the
//! answer loop out across the worker pool sound: shards write disjoint
//! ranges of the answer vector while other submitters may be running their
//! own pool jobs (the work-stealing multi-job scheduler of
//! `pdmsf_pram::pool`; this fan-out claims contiguous shard runs through
//! its range API).
//!
//! Contrast with answering through the structure: [`DynamicMsf::connected`]
//! takes `&mut self` (link-cut tree reads splay), so per-query answering is
//! inherently serial *and* pays a tree walk per query.

use crate::plan::PlannedQuery;
use crate::Outcome;
use pdmsf_graph::{DynGraph, DynamicMsf, UnionFind, VertexId};
use pdmsf_pram::kernels::SendPtr;
use pdmsf_pram::pool;

/// An immutable connectivity + weight snapshot of the maintained forest.
pub struct QuerySnapshot {
    /// Component label per vertex (the union-find root, flattened).
    comp: Vec<u32>,
    /// Total forest weight at the snapshot point.
    forest_weight: i128,
}

impl QuerySnapshot {
    /// Capture the current forest of `msf` (endpoints resolved through the
    /// `graph` mirror) into component labels.
    pub fn capture<M: DynamicMsf>(graph: &DynGraph, msf: &M) -> QuerySnapshot {
        let n = graph.num_vertices();
        let mut uf = UnionFind::new(n);
        for id in msf.forest_edges() {
            let e = graph.edge_unchecked(id);
            uf.union(e.u.index(), e.v.index());
        }
        let comp = (0..n).map(|v| uf.find(v) as u32).collect();
        QuerySnapshot {
            comp,
            forest_weight: msf.forest_weight(),
        }
    }

    /// Whether `u` and `v` were in the same component at the snapshot
    /// point. `O(1)`, `&self` — safe to call from many threads at once.
    #[inline]
    pub fn connected(&self, u: VertexId, v: VertexId) -> bool {
        self.comp[u.index()] == self.comp[v.index()]
    }

    /// Total forest weight at the snapshot point.
    #[inline]
    pub fn forest_weight(&self) -> i128 {
        self.forest_weight
    }

    /// Number of vertices covered by the snapshot.
    pub fn num_vertices(&self) -> usize {
        self.comp.len()
    }
}

/// Minimum queries each pool shard should answer: an answer is two array
/// loads, so below this the pool's dispatch round-trip costs more than the
/// loop it distributes.
const QUERIES_PER_SHARD: usize = 1024;

/// Answer the deduplicated queries of a batch against `snapshot`, fanning
/// out across the worker pool when the batch is large enough to pay for
/// dispatch. Answers are returned in query order as final [`Outcome`]s.
pub(crate) fn answer_queries(snapshot: &QuerySnapshot, queries: &[PlannedQuery]) -> Vec<Outcome> {
    let answer = |q: &PlannedQuery| -> Outcome {
        match *q {
            PlannedQuery::Connected { u, v } => Outcome::Connected {
                connected: snapshot.connected(u, v),
            },
            PlannedQuery::ForestWeight => Outcome::ForestWeight {
                weight: snapshot.forest_weight(),
            },
        }
    };
    let shards = pool::parallelism().min(queries.len() / QUERIES_PER_SHARD);
    if shards <= 1 {
        return queries.iter().map(answer).collect();
    }
    let shard_len = queries.len().div_ceil(shards);
    let mut answers: Vec<Outcome> = vec![Outcome::ForestWeight { weight: 0 }; queries.len()];
    let base = SendPtr(answers.as_mut_ptr());
    // Consecutive shards answer consecutive query ranges, so one claimed
    // run of shards collapses into a single contiguous answer sweep (the
    // scheduler hands out runs — chunked claims, halved pops, stolen
    // halves — in one closure dispatch each).
    pool::run_shard_ranges(shards, |range| {
        let start = range.start * shard_len;
        let end = queries.len().min(range.end * shard_len);
        // Shard ranges cover disjoint ranges of `answers`.
        let out = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        for (slot, q) in out.iter_mut().zip(&queries[start..end]) {
            *slot = answer(q);
        }
    });
    answers
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdmsf_core::SeqDynamicMsf;
    use pdmsf_graph::Weight;

    fn line_graph(n: usize) -> (DynGraph, SeqDynamicMsf) {
        let mut g = DynGraph::new(n);
        let mut msf = SeqDynamicMsf::new(n);
        for i in 0..n - 1 {
            let id = g.insert_edge(
                VertexId(i as u32),
                VertexId(i as u32 + 1),
                Weight::new(i as i64 + 1),
            );
            msf.insert(g.edge_unchecked(id));
        }
        (g, msf)
    }

    #[test]
    fn snapshot_matches_structure_connectivity() {
        let (mut g, mut msf) = line_graph(10);
        // Split the line: cut the edge between 4 and 5 (id 4).
        let id = g.delete_edge(pdmsf_graph::EdgeId(4)).id;
        msf.delete(id);
        let snap = QuerySnapshot::capture(&g, &msf);
        assert_eq!(snap.num_vertices(), 10);
        assert_eq!(snap.forest_weight(), msf.forest_weight());
        for u in 0..10u32 {
            for v in 0..10u32 {
                assert_eq!(
                    snap.connected(VertexId(u), VertexId(v)),
                    (u <= 4) == (v <= 4),
                    "snapshot disagrees for ({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn fanned_out_answers_match_the_serial_loop() {
        let (g, msf) = line_graph(64);
        let snap = QuerySnapshot::capture(&g, &msf);
        // Enough queries to clear the fan-out cutoff on any machine.
        let queries: Vec<PlannedQuery> = (0..(QUERIES_PER_SHARD * 4))
            .map(|i| {
                if i % 17 == 0 {
                    PlannedQuery::ForestWeight
                } else {
                    PlannedQuery::Connected {
                        u: VertexId((i % 64) as u32),
                        v: VertexId((i * 7 % 64) as u32),
                    }
                }
            })
            .collect();
        let fanned = answer_queries(&snap, &queries);
        let serial: Vec<Outcome> = queries
            .iter()
            .map(|q| match *q {
                PlannedQuery::Connected { u, v } => Outcome::Connected {
                    connected: snap.connected(u, v),
                },
                PlannedQuery::ForestWeight => Outcome::ForestWeight {
                    weight: snap.forest_weight(),
                },
            })
            .collect();
        assert_eq!(fanned, serial);
    }
}
