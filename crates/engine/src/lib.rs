//! # pdmsf-engine
//!
//! The **batched update/query engine** of the `pdmsf` workspace: the
//! serving layer between bursty operation traffic and the paper's dynamic
//! MSF structures.
//!
//! The paper's structure pays `O(sqrt(n) log n)` work per *single* update,
//! but real traffic arrives in bursts of independent operations — link
//! flaps, tenant-clustered churn, and a large majority of read queries.
//! [`Engine::execute`] accepts one such burst (a slice of [`Op`]) and
//! exploits its batch structure in three ways a one-op-at-a-time loop
//! cannot:
//!
//! 1. **Cancellation** — an edge inserted *and* deleted within the same
//!    batch (a flapping link) has no effect on the post-batch forest, so
//!    neither operation reaches the MSF structure. Only the cheap
//!    [`DynGraph`] mirror sees the pair (the mirror allocates edge ids, so
//!    cancelled links must consume their id exactly as a serial execution
//!    would — ids stay stable across both execution paths).
//! 2. **Query partitioning with a single snapshot point** — all queries of
//!    a batch are answered against the forest *after* the batch's updates
//!    (the batch's snapshot point). The engine captures the forest once
//!    into flat component labels ([`QuerySnapshot`]) and answers each
//!    connectivity query with two array loads, instead of paying a
//!    `&mut`-self link-cut tree walk per query. Large query sets fan out
//!    across the worker pool of `pdmsf_pram::pool` — possible while other
//!    submitters run kernels, because the pool queues multiple jobs.
//! 3. **Deduplication** — repeated questions (the common case in serving
//!    traffic) collapse to one computed answer; duplicate deletes and other
//!    invalid operations are rejected up front with a per-op
//!    [`Outcome::Rejected`] instead of panicking mid-batch.
//! 4. **Intra-batch update parallelism** (partitioned engines,
//!    [`Engine::new_partitioned`]) — the surviving updates are colored into
//!    conflict-free groups (a union-find over the home partitions of each
//!    update's endpoints; see `group.rs`) and the groups apply as
//!    concurrent pool jobs against a
//!    [`pdmsf_core::ComponentPartitionedMsf`], serial in arrival order
//!    *inside* each group. A batch that yields a single group, or a pool of
//!    width 1, falls back to the inline serial loop.
//!
//! ## The apply path
//!
//! [`Engine::execute_planned`] applies a planned batch in four strict
//! phases, and the first two are what make apply-order flexibility safe:
//!
//! 1. **Write-ahead log.** The [`LoggedBatch`] is serialized from the
//!    *plan* — before any update applies — so the WAL byte stream is a
//!    pure function of the plan and can never observe (or depend on) the
//!    apply order chosen below.
//! 2. **Resolve + mirror.** For partitioned engines, each surviving cut
//!    resolves one current endpoint of its edge from the [`DynGraph`]
//!    mirror (valid because a surviving cut always targets a pre-batch
//!    edge — the planner cancels every cut of an in-batch link). Then the
//!    mirror pass runs serially in arrival order: id allocation is
//!    push-order-dependent and stays identical across all apply paths.
//! 3. **Apply.** Single-structure engines run the serial arrival-order
//!    loop. Partitioned engines color the resolved updates into groups and
//!    call [`pdmsf_core::ComponentPartitionedMsf::apply_groups`]; the
//!    per-partition operation sequences are the same as the serial loop's
//!    (groups own disjoint partition classes, closed under migration), so
//!    outcomes, forest state and even the structures' internal bytes are
//!    bit-for-bit identical — pinned by the lockstep proptests and the WAL
//!    byte-identity test in `pdmsf-persist`.
//! 4. **Answer queries** at the post-update snapshot point, exactly as
//!    before.
//!
//! ## Semantics
//!
//! A batch is **observationally identical** to the following serial
//! execution, which [`Engine::execute_one_by_one`] implements literally and
//! the lockstep proptest checks against `SeqDynamicMsf` and a Kruskal
//! recompute: apply the batch's updates one at a time in arrival order
//! (validating each against the current edge set), then answer the batch's
//! queries in arrival order against the resulting forest. Rejected
//! operations consume no edge id and have no effect. The per-op
//! [`Outcome`]s of the two paths are equal, as are the resulting forests.
//!
//! ```
//! use pdmsf_engine::{Engine, Op, Outcome};
//! use pdmsf_graph::{EdgeId, VertexId, Weight};
//!
//! let mut engine = Engine::new(4);
//! let result = engine.execute(&[
//!     Op::Link { u: VertexId(0), v: VertexId(1), weight: Weight::new(3) },
//!     Op::Link { u: VertexId(1), v: VertexId(2), weight: Weight::new(5) },
//!     // A flapping link: inserted and cut within the batch — cancelled.
//!     Op::Link { u: VertexId(2), v: VertexId(3), weight: Weight::new(9) },
//!     Op::Cut { id: EdgeId(2) },
//!     // Queries see the post-update forest.
//!     Op::QueryConnected { u: VertexId(0), v: VertexId(2) },
//!     Op::QueryConnected { u: VertexId(0), v: VertexId(3) },
//!     Op::QueryForestWeight,
//! ]);
//! assert_eq!(result.outcomes[4], Outcome::Connected { connected: true });
//! assert_eq!(result.outcomes[5], Outcome::Connected { connected: false });
//! assert_eq!(result.outcomes[6], Outcome::ForestWeight { weight: 8 });
//! assert_eq!(result.summary.cancelled_pairs, 1);
//! ```

use pdmsf_core::{ComponentPartitionedMsf, ParDynamicMsf};
use pdmsf_graph::{DynGraph, DynamicMsf, Edge, EdgeId, MsfDelta, VertexId, Weight};
use pdmsf_obs as obs;
use pdmsf_obs::{PhaseTimer, Span};
use pdmsf_pram::ExecMode;
use std::io;
use std::sync::Arc;

mod group;
mod plan;
pub mod snapshot;

pub use pdmsf_graph::BatchOp as Op;
pub use snapshot::QuerySnapshot;

use plan::{PlannedQuery, PlannedUpdate};

/// One update of a logged batch — the post-planning form of a mutation, with
/// its pre-assigned edge id and cancellation flag. Replaying the logged
/// updates through [`Engine::replay_logged`] reproduces exactly the state
/// transitions of the original [`Engine::execute_planned`] call: cancelled
/// links still consume their id in the [`DynGraph`] mirror, cancelled cuts
/// still free theirs, and only the surviving updates touch the structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoggedUpdate {
    /// Insert `id = (u, v, weight)`.
    Link {
        /// The pre-assigned edge id.
        id: EdgeId,
        /// First endpoint.
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
        /// Weight.
        weight: Weight,
        /// Elided from the structure by an in-batch opposing cut.
        cancelled: bool,
    },
    /// Delete edge `id`.
    Cut {
        /// The edge to delete.
        id: EdgeId,
        /// The opposing link arrived earlier in the same batch.
        cancelled: bool,
    },
}

/// The durable form of one state-mutating batch: its sequence number, the
/// id-allocation frontier it was planned against, and its planned updates
/// (queries are not logged — they mutate nothing and need no replay).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoggedBatch {
    /// 1-based sequence number; the `i`-th mutating batch applied by the
    /// engine since construction (query-only batches do not advance it).
    pub seq: u64,
    /// [`DynGraph::edge_id_bound`] at plan time. Replay validates it so a
    /// log can never be applied against the wrong base state.
    pub id_base: u64,
    /// The planned updates, in application order.
    pub updates: Vec<LoggedUpdate>,
}

/// A write-ahead sink for the engine's op log. When a sink is attached
/// ([`Engine::set_sink`]), every state-mutating batch is recorded **before**
/// any of its updates apply; the engine treats a failed record as fatal
/// (crash-only discipline — an unlogged mutation must never execute, because
/// recovery could not reproduce it).
pub trait OpSink: Send {
    /// Durably record `batch` (whose sequence number is `seq`). Returning
    /// `Ok(())` acknowledges the record will survive a crash to the sink's
    /// configured durability level.
    fn record(&mut self, seq: u64, batch: &LoggedBatch) -> io::Result<()>;
}

/// Why an operation was rejected by batch validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reject {
    /// A `Cut` named an edge that was never allocated, is already dead, or
    /// was already cut earlier in the same batch.
    UnknownOrDeadEdge,
    /// A `Link` or `QueryConnected` endpoint is outside `0..n`.
    EndpointOutOfRange,
    /// A `Link` with `u == v` (self-loops never affect a spanning forest;
    /// the engine refuses them at the boundary).
    SelfLoop,
    /// The operation named a tenant the serving layer has never registered
    /// (raised by the sharded service's router, not by a plain [`Engine`] —
    /// a single engine has no tenant notion).
    UnknownTenant,
}

impl Reject {
    /// Stable label value for the `reason` dimension of the
    /// `pdmsf_engine_ops_rejected_total` counter family.
    pub fn metric_label(self) -> &'static str {
        match self {
            Reject::UnknownOrDeadEdge => "unknown_or_dead_edge",
            Reject::EndpointOutOfRange => "endpoint_out_of_range",
            Reject::SelfLoop => "self_loop",
            Reject::UnknownTenant => "unknown_tenant",
        }
    }

    /// Dense index of this reason into [`Reject::ALL`] (and the engine's
    /// per-reason counter array).
    fn metric_index(self) -> usize {
        self as usize
    }

    /// Every reject reason, in [`Reject::metric_index`] order.
    pub const ALL: [Reject; 4] = [
        Reject::UnknownOrDeadEdge,
        Reject::EndpointOutOfRange,
        Reject::SelfLoop,
        Reject::UnknownTenant,
    ];
}

/// The per-operation result of a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The edge was inserted under this id (possibly cancelled later in the
    /// same batch — the id was still consumed).
    Linked {
        /// The id assigned to the inserted edge.
        id: EdgeId,
    },
    /// The edge was deleted.
    Cut {
        /// The id of the deleted edge.
        id: EdgeId,
    },
    /// Answer to a [`Op::QueryConnected`] at the batch's snapshot point.
    Connected {
        /// Whether the endpoints share a component.
        connected: bool,
    },
    /// Answer to a [`Op::QueryForestWeight`] at the batch's snapshot point.
    ForestWeight {
        /// Total forest weight.
        weight: i128,
    },
    /// The operation failed validation and had no effect.
    Rejected {
        /// Why.
        reason: Reject,
    },
}

/// Aggregate facts about one executed batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchSummary {
    /// Operations in the batch.
    pub ops: usize,
    /// Updates that reached the MSF structure (valid, not cancelled).
    pub applied_updates: usize,
    /// Opposing link/cut pairs elided from the structure (batched path
    /// only; the one-by-one path applies them and reports 0).
    pub cancelled_pairs: usize,
    /// Operations rejected by validation.
    pub rejected: usize,
    /// Query operations.
    pub queries: usize,
    /// Distinct answers computed for those queries (batched path; the
    /// one-by-one path computes every answer and reports `queries`).
    pub unique_queries: usize,
    /// Conflict-free update groups the batch was colored into (partitioned
    /// grouped-apply path only; 0 on single-structure engines, on the
    /// forced-serial path and on the one-by-one path).
    pub update_groups: usize,
    /// Surviving updates that shared a group with an earlier update
    /// (`applied_updates - update_groups` when grouping ran) — the
    /// conflicts that bounded the batch's apply fan-out.
    pub group_conflicts: usize,
    /// Component migrations this batch triggered (cross-partition links
    /// plus post-batch rebalance moves; partitioned engines only).
    pub migrations: u64,
    /// Vertices re-homed by those migrations.
    pub migrated_vertices: u64,
    /// Rebalance passes after this batch that moved at least one component
    /// (see `ComponentPartitionedMsf::maybe_rebalance`; 0 or 1).
    pub rebalances: u64,
}

/// The result of executing one batch: one [`Outcome`] per input op, in op
/// order, plus the batch summary.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// Per-op outcomes, index-aligned with the input slice.
    pub outcomes: Vec<Outcome>,
    /// Aggregate facts about the batch.
    pub summary: BatchSummary,
}

/// Cumulative engine counters across all executed batches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Batches executed (either path).
    pub batches: u64,
    /// Operations processed.
    pub ops: u64,
    /// Updates applied to the MSF structure.
    pub applied_updates: u64,
    /// Opposing pairs cancelled before reaching the structure.
    pub cancelled_pairs: u64,
    /// Operations rejected by validation.
    pub rejected: u64,
    /// Query operations answered.
    pub queries: u64,
    /// Queries answered from another query's computed answer (duplicates).
    pub deduped_queries: u64,
    /// Query snapshots captured.
    pub snapshots: u64,
    /// Conflict-free update groups formed by the partitioned grouped-apply
    /// path (its real fan-out; see [`BatchSummary::update_groups`]).
    pub update_groups: u64,
    /// Surviving updates that shared a group with an earlier update.
    pub group_conflicts: u64,
    /// Component migrations (cross-partition links + rebalance moves).
    pub migrations: u64,
    /// Vertices re-homed by those migrations.
    pub migrated_vertices: u64,
    /// Rebalance passes that moved at least one component.
    pub rebalances: u64,
}

/// Minimum unique queries before a snapshot is ever considered.
const SNAPSHOT_MIN_QUERIES: usize = 8;

/// A snapshot capture walks all `n` vertices; one structure query walks a
/// (splaying) tree path, which costs roughly this many vertex-label visits.
/// The engine captures a snapshot only when
/// `unique_queries * SNAPSHOT_AMORTIZE >= n`, i.e. when the `O(n)` capture
/// is amortized by the per-query savings; below that it answers through the
/// structure directly.
const SNAPSHOT_AMORTIZE: usize = 32;

/// Validate a `Link`'s endpoints against a structure of `n` vertices. The
/// single source of the link validation rules — shared by the batched
/// planner and the one-by-one path so the two can never desynchronize.
pub(crate) fn link_reject(n: usize, u: VertexId, v: VertexId) -> Option<Reject> {
    if u.index() >= n || v.index() >= n {
        Some(Reject::EndpointOutOfRange)
    } else if u == v {
        Some(Reject::SelfLoop)
    } else {
        None
    }
}

/// Validate a `QueryConnected`'s endpoints (shared like [`link_reject`]).
pub(crate) fn query_reject(n: usize, u: VertexId, v: VertexId) -> Option<Reject> {
    if u.index() >= n || v.index() >= n {
        Some(Reject::EndpointOutOfRange)
    } else {
        None
    }
}

/// A batch planned by [`Engine::plan_batch`], awaiting application through
/// [`Engine::execute_planned`]. Opaque: it carries pre-assigned edge ids,
/// the cancellation/dedup decisions and the provisional per-op outcomes.
///
/// Planning borrows the engine immutably, so a serving layer can plan the
/// sub-batches of many shard engines back to back on the caller thread and
/// then apply them concurrently (one pool job per shard) — the pattern the
/// sharded service uses. A plan is `Send`: it contains only ids, weights
/// and outcome slots.
pub struct PlannedBatch {
    plan: plan::BatchPlan,
    ops: usize,
    /// The mirror's id-allocation frontier at plan time; `execute_planned`
    /// asserts it has not moved (a stale plan would mis-assign ids).
    id_base: usize,
}

impl PlannedBatch {
    /// Operations in the planned batch.
    pub fn num_ops(&self) -> usize {
        self.ops
    }

    /// Updates that survived validation (cancelled pairs included).
    pub fn num_updates(&self) -> usize {
        self.plan.updates.len()
    }

    /// Distinct queries the batch will answer.
    pub fn num_unique_queries(&self) -> usize {
        self.plan.unique_queries.len()
    }
}

/// The MSF structure behind an engine: one monolithic [`ParDynamicMsf`],
/// or the component-partitioned structure that unlocks grouped concurrent
/// apply. Observable behaviour is identical; only the apply path differs.
enum EngineStructure {
    Single(Box<ParDynamicMsf>),
    Partitioned(ComponentPartitionedMsf),
}

impl EngineStructure {
    /// Delete with a partition hint: `endpoint` must be a current endpoint
    /// of the edge (resolved from the mirror before it was deleted there).
    fn delete_hinted(&mut self, id: EdgeId, endpoint: VertexId) -> MsfDelta {
        match self {
            EngineStructure::Single(m) => m.delete(id),
            EngineStructure::Partitioned(p) => p.delete_hinted(id, endpoint),
        }
    }
}

impl DynamicMsf for EngineStructure {
    fn num_vertices(&self) -> usize {
        match self {
            EngineStructure::Single(m) => m.num_vertices(),
            EngineStructure::Partitioned(p) => p.num_vertices(),
        }
    }

    fn add_vertex(&mut self) -> VertexId {
        match self {
            EngineStructure::Single(m) => m.add_vertex(),
            EngineStructure::Partitioned(p) => p.add_vertex(),
        }
    }

    fn insert(&mut self, e: Edge) -> MsfDelta {
        match self {
            EngineStructure::Single(m) => m.insert(e),
            EngineStructure::Partitioned(p) => p.insert(e),
        }
    }

    fn delete(&mut self, id: EdgeId) -> MsfDelta {
        match self {
            EngineStructure::Single(m) => m.delete(id),
            EngineStructure::Partitioned(p) => p.delete(id),
        }
    }

    fn contains_edge(&self, id: EdgeId) -> bool {
        match self {
            EngineStructure::Single(m) => m.contains_edge(id),
            EngineStructure::Partitioned(p) => p.contains_edge(id),
        }
    }

    fn is_forest_edge(&self, id: EdgeId) -> bool {
        match self {
            EngineStructure::Single(m) => m.is_forest_edge(id),
            EngineStructure::Partitioned(p) => p.is_forest_edge(id),
        }
    }

    fn forest_edges(&self) -> Vec<EdgeId> {
        match self {
            EngineStructure::Single(m) => m.forest_edges(),
            EngineStructure::Partitioned(p) => p.forest_edges(),
        }
    }

    fn forest_weight(&self) -> i128 {
        match self {
            EngineStructure::Single(m) => m.forest_weight(),
            EngineStructure::Partitioned(p) => p.forest_weight(),
        }
    }

    fn num_forest_edges(&self) -> usize {
        match self {
            EngineStructure::Single(m) => m.num_forest_edges(),
            EngineStructure::Partitioned(p) => p.num_forest_edges(),
        }
    }

    fn connected(&mut self, u: VertexId, v: VertexId) -> bool {
        match self {
            EngineStructure::Single(m) => m.connected(u, v),
            EngineStructure::Partitioned(p) => p.connected(u, v),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            EngineStructure::Single(m) => m.name(),
            EngineStructure::Partitioned(p) => p.name(),
        }
    }
}

/// Pre-resolved handles into the `pdmsf-obs` global registry for the
/// `pdmsf_engine_*` metric families. Resolved once by
/// [`Engine::enable_metrics`]; recording is relaxed atomics on `Arc`ed
/// instruments, so instrumented engines stay `Send` and shard engines
/// record concurrently without coordination.
#[derive(Clone)]
struct EngineMetrics {
    plan_ns: Arc<obs::Histogram>,
    apply_ns: Arc<obs::Histogram>,
    snapshot_ns: Arc<obs::Histogram>,
    coloring_ns: Arc<obs::Histogram>,
    batches: Arc<obs::Counter>,
    ops: Arc<obs::Counter>,
    updates_applied: Arc<obs::Counter>,
    pairs_cancelled: Arc<obs::Counter>,
    /// One series per [`Reject`] reason, indexed by
    /// [`Reject::metric_index`] — the family is split by a `reason` label
    /// so a scrape attributes rejects without a log dive.
    ops_rejected: [Arc<obs::Counter>; Reject::ALL.len()],
    queries: Arc<obs::Counter>,
    snapshots: Arc<obs::Counter>,
    update_groups: Arc<obs::Counter>,
    group_conflicts: Arc<obs::Counter>,
    migrations: Arc<obs::Counter>,
    migrated_vertices: Arc<obs::Counter>,
    rebalances: Arc<obs::Counter>,
}

impl EngineMetrics {
    fn resolve() -> EngineMetrics {
        let r = obs::global();
        EngineMetrics {
            plan_ns: r.histogram("pdmsf_engine_plan_ns", "batch planning phase latency"),
            apply_ns: r.histogram("pdmsf_engine_apply_ns", "batch update-apply phase latency"),
            snapshot_ns: r.histogram(
                "pdmsf_engine_snapshot_ns",
                "query-snapshot capture + answering latency",
            ),
            coloring_ns: r.histogram(
                "pdmsf_engine_group_coloring_ns",
                "conflict-coloring latency of the grouped apply path",
            ),
            batches: r.counter("pdmsf_engine_batches_total", "batches executed"),
            ops: r.counter("pdmsf_engine_ops_total", "operations processed"),
            updates_applied: r.counter(
                "pdmsf_engine_updates_applied_total",
                "updates that reached the MSF structure",
            ),
            pairs_cancelled: r.counter(
                "pdmsf_engine_pairs_cancelled_total",
                "opposing link/cut pairs cancelled at plan time",
            ),
            ops_rejected: Reject::ALL.map(|reason| {
                r.counter_labeled(
                    "pdmsf_engine_ops_rejected_total",
                    "reason",
                    reason.metric_label(),
                    "operations rejected by batch validation",
                )
            }),
            queries: r.counter("pdmsf_engine_queries_total", "queries answered"),
            snapshots: r.counter("pdmsf_engine_snapshots_total", "query snapshots captured"),
            update_groups: r.counter(
                "pdmsf_engine_update_groups_total",
                "conflict-free update groups dispatched",
            ),
            group_conflicts: r.counter(
                "pdmsf_engine_group_conflicts_total",
                "surviving updates that shared an update group",
            ),
            migrations: r.counter(
                "pdmsf_engine_migrations_total",
                "component migrations (cross-partition links + rebalance moves)",
            ),
            migrated_vertices: r.counter(
                "pdmsf_engine_migrated_vertices_total",
                "vertices re-homed by component migrations",
            ),
            rebalances: r.counter(
                "pdmsf_engine_rebalances_total",
                "post-batch rebalance passes that moved a component",
            ),
        }
    }
}

/// The batched update/query engine. Owns the id-allocating [`DynGraph`]
/// mirror and the MSF structure; see the crate docs for semantics.
pub struct Engine {
    graph: DynGraph,
    msf: EngineStructure,
    stats: EngineStats,
    /// Sequence number of the last state-mutating batch applied.
    applied_seq: u64,
    /// Optional write-ahead op log; see [`OpSink`].
    sink: Option<Box<dyn OpSink>>,
    /// Force the arrival-order serial apply loop even on a partitioned
    /// engine (the E6 baseline arm and the identity tests).
    serial_apply: bool,
    /// Run the adaptive partition rebalance pass after every mutating
    /// batch (partitioned engines; on by default). Note this is *not* tied
    /// to `serial_apply`: grouped and forced-serial arms must rebalance
    /// identically for their per-vertex homes to stay comparable.
    rebalance: bool,
    /// Optional registry-backed instrumentation ([`Engine::enable_metrics`]);
    /// `None` keeps every phase timer a near-no-op.
    metrics: Option<EngineMetrics>,
}

// The sharded serving layer drives one engine per shard from pool workers
// (plans move to the worker, results move back). Everything inside is flat
// `Vec`s and integers; pin that so a future field can't silently take the
// concurrency away.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Engine>();
    assert_send::<PlannedBatch>();
    assert_send::<BatchResult>();
};

impl Engine {
    /// An engine over `n` isolated vertices, backed by the parallel
    /// structure with thread-backed kernels (`K = sqrt(n)`,
    /// [`ExecMode::Threads`]).
    pub fn new(n: usize) -> Engine {
        Engine::with_structure(
            n,
            EngineStructure::Single(Box::new(ParDynamicMsf::new_threaded(n))),
        )
    }

    /// Full control over the chunk parameter and kernel execution mode of
    /// the backing structure.
    pub fn with_execution(n: usize, k: usize, exec: ExecMode) -> Engine {
        Engine::with_structure(
            n,
            EngineStructure::Single(Box::new(ParDynamicMsf::with_execution(n, k, exec))),
        )
    }

    /// An engine backed by the component-partitioned structure with
    /// `num_parts` partitions: batches apply their surviving updates as
    /// concurrent conflict-free groups (see the crate docs). Observable
    /// behaviour is identical to [`Engine::new`].
    pub fn new_partitioned(n: usize, num_parts: usize) -> Engine {
        Engine::with_structure(
            n,
            EngineStructure::Partitioned(ComponentPartitionedMsf::new_threaded(n, num_parts)),
        )
    }

    /// [`Engine::new_partitioned`] with full control over the chunk
    /// parameter and kernel execution mode (deterministic tests).
    pub fn with_partitioned_execution(
        n: usize,
        num_parts: usize,
        k: usize,
        exec: ExecMode,
    ) -> Engine {
        Engine::with_structure(
            n,
            EngineStructure::Partitioned(ComponentPartitionedMsf::with_execution(
                n, num_parts, k, exec,
            )),
        )
    }

    fn with_structure(n: usize, msf: EngineStructure) -> Engine {
        Engine {
            graph: DynGraph::new(n),
            msf,
            stats: EngineStats::default(),
            applied_seq: 0,
            sink: None,
            serial_apply: false,
            rebalance: true,
            metrics: None,
        }
    }

    /// Turn on registry-backed instrumentation: per-batch
    /// plan/apply/snapshot/group-coloring phase timings and operation
    /// counters, recorded into the `pdmsf_engine_*` families of the
    /// process-wide [`pdmsf_obs::global`] registry. Off by default — an
    /// uninstrumented engine pays one `Option` branch per phase and never
    /// reads the clock (the `obs_overhead` bench pins the instrumented
    /// regression under 2%).
    pub fn enable_metrics(&mut self) {
        self.metrics = Some(EngineMetrics::resolve());
    }

    /// Force the arrival-order serial apply loop even on a partitioned
    /// engine. The resulting state is bit-for-bit identical to grouped
    /// apply — this switch exists so the E6 experiment and the identity
    /// tests can measure/verify exactly that.
    pub fn set_serial_apply(&mut self, serial: bool) {
        self.serial_apply = serial;
    }

    /// Turn the post-batch adaptive rebalance pass off (or back on). On by
    /// default for partitioned engines; re-homing never changes outcomes,
    /// forests or WAL bytes, only where components live. The E6 "static
    /// partitioning" arm measures with it off.
    pub fn set_rebalance(&mut self, on: bool) {
        self.rebalance = on;
    }

    /// Lower the partitioned structure's rebalance occupancy floor (see
    /// [`pdmsf_core::ComponentPartitionedMsf::set_rebalance_min`]); no-op
    /// on single-structure engines. Tests use this to force rebalances on
    /// tiny graphs.
    pub fn set_rebalance_min(&mut self, min: u64) {
        if let EngineStructure::Partitioned(p) = &mut self.msf {
            p.set_rebalance_min(min);
        }
    }

    /// Assemble an engine from restored parts (the checkpoint/restore path
    /// of `pdmsf-persist`). The mirror and the structure are cross-validated
    /// edge by edge — same liveness, endpoints and weight for every id below
    /// the allocation frontier — so a checkpoint whose sections passed their
    /// CRCs individually but disagree with each other is still refused.
    pub fn from_restored_parts(
        graph: DynGraph,
        msf: ParDynamicMsf,
        stats: EngineStats,
        applied_seq: u64,
    ) -> Result<Engine, String> {
        if graph.num_vertices() != msf.num_vertices() {
            return Err(format!(
                "restored mirror has {} vertices but the structure has {}",
                graph.num_vertices(),
                msf.num_vertices()
            ));
        }
        for raw in 0..graph.edge_id_bound() as u32 {
            let id = EdgeId(raw);
            match (graph.is_live(id), msf.contains_edge(id)) {
                (true, false) => {
                    return Err(format!(
                        "edge {raw} is live in the mirror, absent in the msf"
                    ));
                }
                (false, true) => {
                    return Err(format!(
                        "edge {raw} is live in the msf, absent in the mirror"
                    ));
                }
                (true, true) => {
                    let g = graph.edge_unchecked(id);
                    let m = msf
                        .forest()
                        .edge(id)
                        .ok_or_else(|| format!("edge {raw} lost its record in the msf store"))?;
                    if (g.u, g.v, g.weight) != (m.u, m.v, m.weight) {
                        return Err(format!("edge {raw} differs between mirror and msf"));
                    }
                }
                (false, false) => {}
            }
        }
        Ok(Engine {
            graph,
            msf: EngineStructure::Single(Box::new(msf)),
            stats,
            applied_seq,
            sink: None,
            serial_apply: false,
            rebalance: true,
            metrics: None,
        })
    }

    /// Attach a write-ahead op log. Every subsequent state-mutating batch is
    /// recorded through `sink` before its first update applies.
    pub fn set_sink(&mut self, sink: Box<dyn OpSink>) {
        self.sink = Some(sink);
    }

    /// Detach and return the op-log sink, if one is attached.
    pub fn take_sink(&mut self) -> Option<Box<dyn OpSink>> {
        self.sink.take()
    }

    /// Sequence number of the last state-mutating batch applied (0 if none).
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Number of vertices managed.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// The id-allocating graph mirror (every accepted update is reflected
    /// here, including cancelled pairs). Useful for differential checks
    /// against Kruskal.
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// The backing MSF structure of a single-structure engine.
    ///
    /// # Panics
    ///
    /// Panics on a partitioned engine ([`Engine::new_partitioned`]) — use
    /// [`Engine::partitioned_structure`] there. Checkpointing, which
    /// flattens this structure, is not yet supported for partitioned
    /// engines.
    pub fn structure(&self) -> &ParDynamicMsf {
        match &self.msf {
            EngineStructure::Single(m) => m,
            EngineStructure::Partitioned(_) => {
                panic!("structure(): engine is component-partitioned; use partitioned_structure()")
            }
        }
    }

    /// The backing component-partitioned structure, if this engine was
    /// built with [`Engine::new_partitioned`].
    pub fn partitioned_structure(&self) -> Option<&ComponentPartitionedMsf> {
        match &self.msf {
            EngineStructure::Single(_) => None,
            EngineStructure::Partitioned(p) => Some(p),
        }
    }

    /// Whether this engine uses the component-partitioned structure.
    pub fn is_partitioned(&self) -> bool {
        matches!(self.msf, EngineStructure::Partitioned(_))
    }

    /// Validate the backing structure's internal invariants (test helper;
    /// works for both structure kinds).
    pub fn validate_structure(&self) {
        match &self.msf {
            EngineStructure::Single(m) => m.validate(),
            EngineStructure::Partitioned(p) => p.validate(),
        }
    }

    /// Cumulative engine counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Current forest edges (sorted by id).
    pub fn forest_edges(&self) -> Vec<EdgeId> {
        self.msf.forest_edges()
    }

    /// Current total forest weight.
    pub fn forest_weight(&self) -> i128 {
        self.msf.forest_weight()
    }

    /// Total weight of the forest edges whose endpoints lie in the vertex
    /// range `lo..hi`. `O(f)` over the current forest edges.
    ///
    /// This is the tenant-scoped weight query of the sharded service: a
    /// shard engine hosts several tenants in disjoint vertex ranges whose
    /// edges never cross ranges, so the forest decomposes exactly and the
    /// range sum *is* that tenant's forest weight. (Edges only partially
    /// inside the range count too — the caller guarantees there are none.)
    pub fn forest_weight_in_range(&self, lo: VertexId, hi: VertexId) -> i128 {
        self.forest_weights_in_ranges(&[(lo, hi)])[0]
    }

    /// [`Engine::forest_weight_in_range`] for many disjoint ranges in **one**
    /// sweep over the forest edges (enumerating the forest costs a scan of
    /// the live edge set, so per-range sweeps would multiply that scan by
    /// the range count — the sharded service answers all of a shard's
    /// tenant weight queries through this). Returns one sum per input
    /// range, in input order; ranges may be passed in any order but must
    /// not overlap.
    pub fn forest_weights_in_ranges(&self, ranges: &[(VertexId, VertexId)]) -> Vec<i128> {
        let mut totals = vec![0i128; ranges.len()];
        if ranges.is_empty() {
            return totals;
        }
        // Sort range indices by start so each edge resolves its range with
        // one binary search. Empty ranges can hold no edge but could tie
        // with a real range on the start vertex and shadow it in the
        // search — leave them out (their sum is 0 by definition).
        let mut order: Vec<u32> = (0..ranges.len() as u32)
            .filter(|&i| ranges[i as usize].0 < ranges[i as usize].1)
            .collect();
        order.sort_by_key(|&i| ranges[i as usize].0);
        for id in self.msf.forest_edges() {
            let e = self.graph.edge_unchecked(id);
            // Last range starting at or before e.u, if any.
            let pos = order.partition_point(|&i| ranges[i as usize].0 <= e.u);
            if pos == 0 {
                continue;
            }
            let slot = order[pos - 1] as usize;
            let (lo, hi) = ranges[slot];
            if e.u < hi {
                debug_assert!(
                    e.v >= lo && e.v < hi,
                    "forest edge crosses a queried vertex range"
                );
                totals[slot] += e.weight.as_summable();
            }
        }
        totals
    }

    /// Execute one batch with full batch preprocessing: plan (id
    /// assignment, validation, cancellation, query dedup), apply the
    /// surviving updates through the structure, then answer all queries at
    /// the snapshot point — via a [`QuerySnapshot`] fanned out over the
    /// worker pool when the batch carries enough distinct queries.
    ///
    /// Equivalent to [`Engine::plan_batch`] followed by
    /// [`Engine::execute_planned`]; the split form lets a serving layer
    /// plan many shard batches on the caller thread and apply them
    /// concurrently on pool workers.
    pub fn execute(&mut self, ops: &[Op]) -> BatchResult {
        let plan = self.plan_batch(ops);
        self.execute_planned(plan)
    }

    /// Plan one batch against the engine's current state **without applying
    /// anything**: sequential id assignment against the [`DynGraph`]
    /// mirror, per-op validation, cancellation of opposing link/cut pairs
    /// and query dedup, all in plain code (`&self` — no structural work).
    ///
    /// The returned plan is only valid against this engine in this state:
    /// it must be applied with [`Engine::execute_planned`] before any other
    /// batch executes (the plan pre-assigns edge ids from the mirror's
    /// current allocation frontier, which an intervening batch would move).
    pub fn plan_batch(&self, ops: &[Op]) -> PlannedBatch {
        let timer = PhaseTimer::start(self.metrics.as_ref().map(|m| &*m.plan_ns));
        // Trace against the ambient batch id (set by the sharded service
        // on its submitting thread, or by any caller via `trace::scope`).
        let tspan = obs::trace::TSpan::start(obs::trace::Phase::Plan, ops.len() as u64, 0);
        let plan = plan::plan(&self.graph, ops);
        tspan.stop();
        timer.stop();
        PlannedBatch {
            plan,
            ops: ops.len(),
            id_base: self.graph.edge_id_bound(),
        }
    }

    /// Apply a batch planned by [`Engine::plan_batch`]: apply the surviving
    /// updates through the structure and answer all queries at the
    /// post-update snapshot point. This is the `&mut self` half of
    /// [`Engine::execute`] — a sharded serving layer plans every shard's
    /// sub-batch on the caller thread and runs this half concurrently, one
    /// shard engine per pool job.
    pub fn execute_planned(&mut self, planned: PlannedBatch) -> BatchResult {
        // A real assert, not a debug_assert: applying a stale plan would
        // silently collide its pre-assigned edge ids with ids the engine
        // allocated since, corrupting the mirror — and this is a public
        // API whose misuse must fail loudly in release builds too. One
        // usize comparison per batch.
        assert_eq!(
            planned.id_base,
            self.graph.edge_id_bound(),
            "plan applied to an engine whose state moved since plan_batch"
        );
        let PlannedBatch {
            mut plan,
            ops,
            id_base,
        } = planned;
        // Write-ahead discipline: a state-mutating batch is recorded in the
        // op log *before* its first update applies, so a crash at any point
        // afterwards can be recovered by replaying the record. Query-only
        // batches mutate nothing and are not logged. A failed record is
        // fatal by design (crash-only): applying an unlogged mutation would
        // leave a state no recovery could reproduce.
        if !plan.updates.is_empty() {
            let seq = self.applied_seq + 1;
            if let Some(sink) = self.sink.as_mut() {
                let logged = LoggedBatch {
                    seq,
                    id_base: id_base as u64,
                    updates: plan
                        .updates
                        .iter()
                        .map(|u| match *u {
                            PlannedUpdate::Link {
                                id,
                                u,
                                v,
                                weight,
                                cancelled,
                            } => LoggedUpdate::Link {
                                id,
                                u,
                                v,
                                weight,
                                cancelled,
                            },
                            PlannedUpdate::Cut { id, cancelled } => {
                                LoggedUpdate::Cut { id, cancelled }
                            }
                        })
                        .collect(),
                };
                sink.record(seq, &logged)
                    .expect("op-log write failed; refusing to apply an unlogged batch");
            }
            self.applied_seq = seq;
        }
        // Owned spans (Arc clones), not borrowed timers: the timed phases
        // need `&mut self` while a borrowed guard would pin `&self.metrics`.
        let pstats_before = self.partition_stats_snapshot();
        let apply_span = Span::start(self.metrics.as_ref().map(|m| m.apply_ns.clone()));
        let apply_tspan =
            obs::trace::TSpan::start(obs::trace::Phase::Apply, plan.updates.len() as u64, 0);
        let (applied, update_groups, group_conflicts) = self.apply_updates(&plan.updates);
        apply_tspan.stop();
        apply_span.stop();
        // The deterministic between-batch point: with every group retired
        // and no query snapshot taken yet, spread concentrated state back
        // across partitions. Gated on a mutating batch so replay — which
        // only sees logged (mutating) batches — re-runs the identical
        // sequence of rebalance decisions. Runs under `serial_apply` too:
        // grouped and forced-serial arms must keep identical homes.
        if self.rebalance && !plan.updates.is_empty() {
            if let EngineStructure::Partitioned(p) = &mut self.msf {
                p.maybe_rebalance();
            }
        }
        let pstats = self.partition_stats_snapshot();

        if !plan.unique_queries.is_empty() {
            let unique = plan.unique_queries.len();
            let snapshot_pays = unique >= SNAPSHOT_MIN_QUERIES
                && unique * SNAPSHOT_AMORTIZE >= self.graph.num_vertices();
            let snapshot_span = Span::start(
                self.metrics
                    .as_ref()
                    .filter(|_| snapshot_pays)
                    .map(|m| m.snapshot_ns.clone()),
            );
            let snapshot_tspan = obs::trace::TSpan::start(
                obs::trace::Phase::Snapshot,
                unique as u64,
                snapshot_pays as u64,
            );
            let answers: Vec<Outcome> = if !snapshot_pays {
                // Small query sets: a snapshot's O(n) capture would dominate.
                plan.unique_queries
                    .iter()
                    .map(|q| self.answer_through_structure(q))
                    .collect()
            } else {
                self.stats.snapshots += 1;
                if let Some(m) = &self.metrics {
                    m.snapshots.inc();
                }
                let snap = QuerySnapshot::capture(&self.graph, &self.msf);
                snapshot::answer_queries(&snap, &plan.unique_queries)
            };
            snapshot_tspan.stop();
            snapshot_span.stop();
            for &(out, slot) in &plan.query_refs {
                plan.outcomes[out] = answers[slot];
            }
        }

        let summary = BatchSummary {
            ops,
            applied_updates: applied,
            cancelled_pairs: plan.cancelled_pairs,
            rejected: plan.rejected,
            queries: plan.query_refs.len(),
            unique_queries: plan.unique_queries.len(),
            update_groups,
            group_conflicts,
            migrations: pstats.migrations - pstats_before.migrations,
            migrated_vertices: pstats.migrated_vertices - pstats_before.migrated_vertices,
            rebalances: pstats.rebalances - pstats_before.rebalances,
        };
        self.bump_stats(&summary);
        self.stats.cancelled_pairs += summary.cancelled_pairs as u64;
        self.stats.deduped_queries += (summary.queries - summary.unique_queries) as u64;
        if let Some(m) = &self.metrics {
            m.batches.inc();
            m.ops.add(summary.ops as u64);
            m.updates_applied.add(summary.applied_updates as u64);
            m.pairs_cancelled.add(summary.cancelled_pairs as u64);
            if summary.rejected > 0 {
                // Attribute each reject to its reason series; rejected
                // outcome slots are final (query backfill above only
                // touches accepted query slots).
                for outcome in &plan.outcomes {
                    if let Outcome::Rejected { reason } = outcome {
                        m.ops_rejected[reason.metric_index()].inc();
                    }
                }
            }
            m.queries.add(summary.queries as u64);
            m.update_groups.add(summary.update_groups as u64);
            m.group_conflicts.add(summary.group_conflicts as u64);
            m.migrations.add(summary.migrations);
            m.migrated_vertices.add(summary.migrated_vertices);
            m.rebalances.add(summary.rebalances);
        }
        BatchResult {
            outcomes: plan.outcomes,
            summary,
        }
    }

    /// Apply a plan's updates: mirror pass (always serial, arrival order —
    /// id allocation is push-order-dependent) plus the structural pass,
    /// grouped on partitioned engines and serial otherwise. Returns
    /// `(applied, update_groups, group_conflicts)`.
    fn apply_updates(&mut self, updates: &[PlannedUpdate]) -> (usize, usize, usize) {
        let grouped = self.is_partitioned() && !self.serial_apply;
        if grouped {
            // Resolve each surviving cut's endpoint *before* the mirror
            // pass deletes the edge there (see the crate docs).
            let resolved = group::resolve_surviving(&self.graph, updates);
            let mirror_tspan =
                obs::trace::TSpan::start(obs::trace::Phase::Mirror, updates.len() as u64, 0);
            self.mirror_pass(updates);
            mirror_tspan.stop();
            let coloring_span = Span::start(self.metrics.as_ref().map(|m| m.coloring_ns.clone()));
            let group_tspan =
                obs::trace::TSpan::start(obs::trace::Phase::Group, resolved.len() as u64, 0);
            let EngineStructure::Partitioned(p) = &mut self.msf else {
                unreachable!("is_partitioned() held above");
            };
            let groups = group::color_groups(p, &resolved);
            group_tspan.stop();
            coloring_span.stop();
            let update_groups = groups.len();
            let group_conflicts = resolved.len() - update_groups;
            p.apply_groups(&groups);
            return (resolved.len(), update_groups, group_conflicts);
        }
        let mut applied = 0usize;
        for update in updates {
            match *update {
                PlannedUpdate::Link {
                    id,
                    u,
                    v,
                    weight,
                    cancelled,
                } => {
                    let got = self.graph.insert_edge(u, v, weight);
                    debug_assert_eq!(got, id, "plan id allocation diverged from the mirror");
                    if !cancelled {
                        self.msf.insert(self.graph.edge_unchecked(id));
                        applied += 1;
                    }
                }
                PlannedUpdate::Cut { id, cancelled } => {
                    // Resolve the endpoint hint before the mirror forgets
                    // the edge (surviving cuts always target a live edge).
                    let endpoint = (!cancelled).then(|| self.graph.edge_unchecked(id).u);
                    self.graph.delete_edge(id);
                    if let Some(endpoint) = endpoint {
                        self.msf.delete_hinted(id, endpoint);
                        applied += 1;
                    }
                }
            }
        }
        (applied, 0, 0)
    }

    /// The serial mirror pass of the grouped apply path: identical id
    /// allocation and liveness transitions to the serial loop.
    fn mirror_pass(&mut self, updates: &[PlannedUpdate]) {
        for update in updates {
            match *update {
                PlannedUpdate::Link {
                    id, u, v, weight, ..
                } => {
                    let got = self.graph.insert_edge(u, v, weight);
                    debug_assert_eq!(got, id, "plan id allocation diverged from the mirror");
                }
                PlannedUpdate::Cut { id, .. } => {
                    self.graph.delete_edge(id);
                }
            }
        }
    }

    /// Re-apply one logged batch during recovery. Validates that the record
    /// is the *next* batch for this engine (`seq == applied_seq + 1`) and
    /// that it was planned against exactly this id-allocation frontier, then
    /// routes the updates through the normal [`Engine::execute_planned`]
    /// path — replay exercises the same application code as live traffic.
    ///
    /// Replay never re-records: the batch is already in the log. Call this
    /// only before attaching a sink for new traffic (the recovery driver in
    /// `pdmsf-persist` does), or the temporarily-detached sink discipline is
    /// enforced here by taking the sink around the call.
    pub fn replay_logged(&mut self, batch: &LoggedBatch) -> Result<BatchResult, String> {
        if batch.seq != self.applied_seq + 1 {
            return Err(format!(
                "log replay out of order: record seq {} but engine applied_seq is {}",
                batch.seq, self.applied_seq
            ));
        }
        if batch.id_base != self.graph.edge_id_bound() as u64 {
            return Err(format!(
                "log record planned at id base {} but the engine's frontier is {}",
                batch.id_base,
                self.graph.edge_id_bound()
            ));
        }
        if batch.updates.is_empty() {
            return Err("logged batch has no updates (never written by the engine)".to_string());
        }
        let mut updates = Vec::with_capacity(batch.updates.len());
        let mut outcomes = Vec::with_capacity(batch.updates.len());
        let mut cancelled_cuts = 0usize;
        for u in &batch.updates {
            match *u {
                LoggedUpdate::Link {
                    id,
                    u,
                    v,
                    weight,
                    cancelled,
                } => {
                    updates.push(PlannedUpdate::Link {
                        id,
                        u,
                        v,
                        weight,
                        cancelled,
                    });
                    outcomes.push(Outcome::Linked { id });
                }
                LoggedUpdate::Cut { id, cancelled } => {
                    if cancelled {
                        cancelled_cuts += 1;
                    }
                    updates.push(PlannedUpdate::Cut { id, cancelled });
                    outcomes.push(Outcome::Cut { id });
                }
            }
        }
        let ops = updates.len();
        let planned = PlannedBatch {
            plan: plan::BatchPlan {
                updates,
                unique_queries: Vec::new(),
                query_refs: Vec::new(),
                outcomes,
                cancelled_pairs: cancelled_cuts,
                rejected: 0,
            },
            ops,
            id_base: batch.id_base as usize,
        };
        let saved = self.sink.take();
        let result = self.execute_planned(planned);
        self.sink = saved;
        Ok(result)
    }

    /// Execute one batch with **no** batch leverage: every valid update is
    /// applied to the structure in arrival order (cancelled pairs
    /// included), and every query is answered individually through the
    /// structure at the batch's snapshot point. Same outcomes as
    /// [`Engine::execute`]; this is the baseline the `E1` batch-throughput
    /// experiment measures against.
    pub fn execute_one_by_one(&mut self, ops: &[Op]) -> BatchResult {
        // The serial baseline bypasses planning, so it has no `LoggedBatch`
        // to record — running it with a write-ahead sink attached would
        // silently punch unlogged mutations into a supposedly durable
        // engine. Refuse loudly instead.
        assert!(
            self.sink.is_none(),
            "execute_one_by_one bypasses the op log; detach the sink or use execute"
        );
        let n = self.graph.num_vertices();
        let mut outcomes = Vec::with_capacity(ops.len());
        let mut deferred_queries: Vec<(usize, PlannedQuery)> = Vec::new();
        let mut applied = 0usize;
        let mut rejected = 0usize;
        for (i, op) in ops.iter().enumerate() {
            let outcome = match *op {
                Op::Link { u, v, weight } => {
                    if let Some(reason) = link_reject(n, u, v) {
                        rejected += 1;
                        Outcome::Rejected { reason }
                    } else {
                        let id = self.graph.insert_edge(u, v, weight);
                        self.msf.insert(self.graph.edge_unchecked(id));
                        applied += 1;
                        Outcome::Linked { id }
                    }
                }
                Op::Cut { id } => {
                    if !self.graph.is_live(id) {
                        rejected += 1;
                        Outcome::Rejected {
                            reason: Reject::UnknownOrDeadEdge,
                        }
                    } else {
                        let endpoint = self.graph.edge_unchecked(id).u;
                        self.graph.delete_edge(id);
                        self.msf.delete_hinted(id, endpoint);
                        applied += 1;
                        Outcome::Cut { id }
                    }
                }
                Op::QueryConnected { u, v } => {
                    if let Some(reason) = query_reject(n, u, v) {
                        rejected += 1;
                        Outcome::Rejected { reason }
                    } else {
                        deferred_queries.push((i, PlannedQuery::Connected { u, v }));
                        Outcome::Connected { connected: false }
                    }
                }
                Op::QueryForestWeight => {
                    deferred_queries.push((i, PlannedQuery::ForestWeight));
                    Outcome::ForestWeight { weight: 0 }
                }
            };
            outcomes.push(outcome);
        }
        if applied > 0 {
            self.applied_seq += 1;
        }
        let queries = deferred_queries.len();
        for (i, q) in deferred_queries {
            outcomes[i] = self.answer_through_structure(&q);
        }
        let summary = BatchSummary {
            ops: ops.len(),
            applied_updates: applied,
            cancelled_pairs: 0,
            rejected,
            queries,
            unique_queries: queries,
            update_groups: 0,
            group_conflicts: 0,
            migrations: 0,
            migrated_vertices: 0,
            rebalances: 0,
        };
        self.bump_stats(&summary);
        BatchResult { outcomes, summary }
    }

    fn answer_through_structure(&mut self, q: &PlannedQuery) -> Outcome {
        match *q {
            PlannedQuery::Connected { u, v } => Outcome::Connected {
                connected: self.msf.connected(u, v),
            },
            PlannedQuery::ForestWeight => Outcome::ForestWeight {
                weight: self.msf.forest_weight(),
            },
        }
    }

    fn bump_stats(&mut self, summary: &BatchSummary) {
        self.stats.batches += 1;
        self.stats.ops += summary.ops as u64;
        self.stats.applied_updates += summary.applied_updates as u64;
        self.stats.rejected += summary.rejected as u64;
        self.stats.queries += summary.queries as u64;
        self.stats.update_groups += summary.update_groups as u64;
        self.stats.group_conflicts += summary.group_conflicts as u64;
        self.stats.migrations += summary.migrations;
        self.stats.migrated_vertices += summary.migrated_vertices;
        self.stats.rebalances += summary.rebalances;
    }

    /// The partitioned structure's migration counters (zeros on a
    /// single-structure engine) — the before/after pair around a batch
    /// yields the per-batch deltas stamped into [`BatchSummary`].
    fn partition_stats_snapshot(&self) -> pdmsf_core::PartitionStats {
        match &self.msf {
            EngineStructure::Single(_) => pdmsf_core::PartitionStats::default(),
            EngineStructure::Partitioned(p) => p.partition_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdmsf_graph::{VertexId, Weight};

    fn link(u: u32, v: u32, w: i64) -> Op {
        Op::Link {
            u: VertexId(u),
            v: VertexId(v),
            weight: Weight::new(w),
        }
    }

    fn qconn(u: u32, v: u32) -> Op {
        Op::QueryConnected {
            u: VertexId(u),
            v: VertexId(v),
        }
    }

    #[test]
    fn cancelled_pairs_never_reach_the_structure() {
        let mut engine = Engine::new(6);
        let result = engine.execute(&[
            link(0, 1, 2),
            link(1, 2, 4),             // flap
            Op::Cut { id: EdgeId(1) }, // cancels it
            link(2, 3, 8),
            qconn(0, 1),
            qconn(1, 2),
        ]);
        assert_eq!(result.summary.cancelled_pairs, 1);
        assert_eq!(result.summary.applied_updates, 2);
        assert_eq!(result.outcomes[4], Outcome::Connected { connected: true });
        assert_eq!(result.outcomes[5], Outcome::Connected { connected: false });
        // The mirror consumed the cancelled id anyway: the next link gets
        // id 3, exactly as a serial execution would allocate.
        let r2 = engine.execute(&[link(4, 5, 1)]);
        assert_eq!(r2.outcomes[0], Outcome::Linked { id: EdgeId(3) });
        assert_eq!(engine.forest_weight(), 2 + 8 + 1);
    }

    #[test]
    fn queries_see_the_post_update_snapshot_point() {
        let mut engine = Engine::new(3);
        // The query is *positioned* before the link but answered at the
        // batch's snapshot point (after all updates).
        let result = engine.execute(&[qconn(0, 1), link(0, 1, 5)]);
        assert_eq!(result.outcomes[0], Outcome::Connected { connected: true });
        assert_eq!(result.outcomes[1], Outcome::Linked { id: EdgeId(0) });
    }

    #[test]
    fn rejections_are_reported_not_panicked() {
        let mut engine = Engine::new(3);
        let result = engine.execute(&[
            link(0, 1, 1),
            Op::Cut { id: EdgeId(0) },
            Op::Cut { id: EdgeId(0) },  // duplicate
            Op::Cut { id: EdgeId(99) }, // unknown
            link(0, 0, 1),              // self loop
            link(0, 17, 1),             // out of range
            qconn(0, 99),               // out of range
        ]);
        assert_eq!(result.summary.rejected, 5);
        assert_eq!(
            result.outcomes[2],
            Outcome::Rejected {
                reason: Reject::UnknownOrDeadEdge
            }
        );
        assert_eq!(
            result.outcomes[4],
            Outcome::Rejected {
                reason: Reject::SelfLoop
            }
        );
        assert_eq!(
            result.outcomes[5],
            Outcome::Rejected {
                reason: Reject::EndpointOutOfRange
            }
        );
        assert_eq!(
            result.outcomes[6],
            Outcome::Rejected {
                reason: Reject::EndpointOutOfRange
            }
        );
        assert_eq!(engine.forest_edges(), Vec::<EdgeId>::new());
    }

    #[test]
    fn batched_and_one_by_one_paths_agree() {
        let ops = vec![
            link(0, 1, 3),
            link(1, 2, 1),
            link(2, 3, 9),             // flap
            Op::Cut { id: EdgeId(2) }, // cancels
            Op::Cut { id: EdgeId(0) },
            qconn(0, 1),
            qconn(0, 1),
            qconn(2, 0),
            Op::QueryForestWeight,
            Op::Cut { id: EdgeId(7) }, // rejected
        ];
        let mut batched = Engine::new(5);
        let mut serial = Engine::new(5);
        let rb = batched.execute(&ops);
        let rs = serial.execute_one_by_one(&ops);
        assert_eq!(rb.outcomes, rs.outcomes);
        assert_eq!(batched.forest_edges(), serial.forest_edges());
        assert_eq!(batched.forest_weight(), serial.forest_weight());
        // The batched path did strictly less structural work.
        assert!(rb.summary.applied_updates < rs.summary.applied_updates);
        assert!(rb.summary.unique_queries < rs.summary.unique_queries);
    }

    #[test]
    fn stats_accumulate_across_batches() {
        let mut engine = Engine::new(4);
        engine.execute(&[link(0, 1, 1), qconn(0, 1), qconn(1, 0)]);
        engine.execute(&[link(1, 2, 2), Op::Cut { id: EdgeId(1) }]);
        let stats = engine.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.ops, 5);
        assert_eq!(stats.applied_updates, 1);
        assert_eq!(stats.cancelled_pairs, 1);
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.deduped_queries, 1);
    }

    #[test]
    fn plan_then_execute_matches_execute() {
        let ops = vec![
            link(0, 1, 3),
            link(2, 3, 9),             // flap
            Op::Cut { id: EdgeId(1) }, // cancels
            qconn(0, 1),
            qconn(0, 1),
            Op::QueryForestWeight,
            Op::Cut { id: EdgeId(7) }, // rejected
        ];
        let mut split = Engine::new(6);
        let mut fused = Engine::new(6);
        let plan = split.plan_batch(&ops);
        assert_eq!(plan.num_ops(), ops.len());
        assert_eq!(plan.num_updates(), 3);
        assert_eq!(plan.num_unique_queries(), 2);
        let rs = split.execute_planned(plan);
        let rf = fused.execute(&ops);
        assert_eq!(rs.outcomes, rf.outcomes);
        assert_eq!(rs.summary, rf.summary);
        assert_eq!(split.forest_edges(), fused.forest_edges());
    }

    #[test]
    fn ranged_forest_weight_decomposes_disjoint_blocks() {
        // Two isolated vertex blocks (0..3 and 3..6), edges never cross.
        let mut engine = Engine::new(6);
        engine.execute(&[link(0, 1, 2), link(1, 2, 5), link(3, 4, 7), link(4, 5, 11)]);
        assert_eq!(engine.forest_weight_in_range(VertexId(0), VertexId(3)), 7);
        assert_eq!(engine.forest_weight_in_range(VertexId(3), VertexId(6)), 18);
        assert_eq!(
            engine.forest_weight_in_range(VertexId(0), VertexId(6)),
            engine.forest_weight()
        );
        assert_eq!(engine.forest_weight_in_range(VertexId(6), VertexId(6)), 0);
        // An empty range tying with a real range's start must not shadow
        // it (the zero-vertex-tenant case of the sharded service).
        assert_eq!(
            engine.forest_weights_in_ranges(&[
                (VertexId(0), VertexId(3)),
                (VertexId(0), VertexId(0)),
                (VertexId(3), VertexId(6)),
            ]),
            vec![7, 0, 18]
        );
    }

    /// Test sink: collects every record in memory.
    struct VecSink(std::sync::Arc<std::sync::Mutex<Vec<LoggedBatch>>>);

    impl OpSink for VecSink {
        fn record(&mut self, seq: u64, batch: &LoggedBatch) -> std::io::Result<()> {
            assert_eq!(seq, batch.seq);
            self.0.lock().unwrap().push(batch.clone());
            Ok(())
        }
    }

    #[test]
    fn logged_batches_replay_to_the_same_state() {
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut live = Engine::new(8);
        live.set_sink(Box::new(VecSink(log.clone())));
        live.execute(&[link(0, 1, 3), link(1, 2, 5), qconn(0, 2)]);
        live.execute(&[
            link(2, 3, 9),             // flap
            Op::Cut { id: EdgeId(2) }, // cancels it
            link(3, 4, 1),
            Op::Cut { id: EdgeId(0) },
            Op::Cut { id: EdgeId(77) }, // rejected — not logged
        ]);
        live.execute(&[qconn(0, 4), Op::QueryForestWeight]); // query-only — not logged
        live.execute(&[link(4, 5, 2)]);
        assert_eq!(live.applied_seq(), 3);

        let records = log.lock().unwrap().clone();
        assert_eq!(records.len(), 3);
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );

        let mut recovered = Engine::new(8);
        for r in &records {
            recovered.replay_logged(r).unwrap();
        }
        assert_eq!(recovered.applied_seq(), live.applied_seq());
        assert_eq!(recovered.forest_edges(), live.forest_edges());
        assert_eq!(recovered.forest_weight(), live.forest_weight());
        // The id frontier moved identically (cancelled links consumed ids on
        // replay too), so both engines assign the same id next.
        let a = recovered.execute(&[link(6, 7, 4)]);
        let b = live.execute(&[link(6, 7, 4)]);
        assert_eq!(a.outcomes, b.outcomes);
    }

    #[test]
    fn replay_rejects_out_of_order_and_misbased_records() {
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut live = Engine::new(4);
        live.set_sink(Box::new(VecSink(log.clone())));
        live.execute(&[link(0, 1, 1)]);
        live.execute(&[link(1, 2, 2)]);
        let records = log.lock().unwrap().clone();

        let mut recovered = Engine::new(4);
        // Skipping record 1 is detected.
        assert!(recovered.replay_logged(&records[1]).is_err());
        recovered.replay_logged(&records[0]).unwrap();
        // Replaying the same record twice is detected.
        assert!(recovered.replay_logged(&records[0]).is_err());
        // A tampered id base is detected.
        let mut bad = records[1].clone();
        bad.id_base = 7;
        assert!(recovered.replay_logged(&bad).is_err());
        recovered.replay_logged(&records[1]).unwrap();
        assert_eq!(recovered.forest_weight(), live.forest_weight());
    }

    #[test]
    #[should_panic(expected = "bypasses the op log")]
    fn one_by_one_refuses_to_run_with_a_sink_attached() {
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut engine = Engine::new(4);
        engine.set_sink(Box::new(VecSink(log)));
        engine.execute_one_by_one(&[link(0, 1, 1)]);
    }

    #[test]
    fn restored_parts_are_cross_validated() {
        let mut engine = Engine::new(6);
        engine.execute(&[link(0, 1, 2), link(1, 2, 5), Op::Cut { id: EdgeId(0) }]);
        let image = engine.structure().to_image();
        let mirror = engine.graph().to_image();

        let graph = pdmsf_graph::DynGraph::from_image(&mirror).unwrap();
        let msf = ParDynamicMsf::from_image(&image).unwrap();
        let restored =
            Engine::from_restored_parts(graph, msf, engine.stats(), engine.applied_seq()).unwrap();
        assert_eq!(restored.forest_edges(), engine.forest_edges());
        assert_eq!(restored.applied_seq(), engine.applied_seq());
        assert_eq!(restored.stats(), engine.stats());

        // A mirror that disagrees with the structure is refused: re-import
        // the mirror with the cut edge 0 resurrected (structurally valid on
        // its own — only the cross-check can catch it).
        let mut tampered = mirror.clone();
        tampered.edge_alive[0] = 1;
        let graph2 = pdmsf_graph::DynGraph::from_image(&tampered).unwrap();
        let msf2 = ParDynamicMsf::from_image(&image).unwrap();
        assert!(Engine::from_restored_parts(graph2, msf2, engine.stats(), 1).is_err());
    }

    #[test]
    fn partitioned_engine_matches_single_and_counts_groups() {
        let ops1 = vec![
            link(0, 1, 3),  // block 0 (vertices 0..4 of 4 partitions over 16)
            link(4, 5, 1),  // block 1
            link(8, 9, 7),  // block 2
            link(9, 13, 2), // crosses blocks 2 and 3
            qconn(0, 1),
        ];
        let ops2 = vec![
            Op::Cut { id: EdgeId(0) },
            link(1, 2, 9), // block 0
            link(12, 15, 4),
            qconn(8, 13),
            Op::QueryForestWeight,
        ];
        let mut partitioned = Engine::with_partitioned_execution(16, 4, 4, ExecMode::Simulated);
        let mut forced_serial = Engine::with_partitioned_execution(16, 4, 4, ExecMode::Simulated);
        forced_serial.set_serial_apply(true);
        let mut single = Engine::with_execution(16, 4, ExecMode::Simulated);
        for ops in [&ops1, &ops2] {
            let rp = partitioned.execute(ops);
            let rf = forced_serial.execute(ops);
            let rs = single.execute(ops);
            assert_eq!(rp.outcomes, rs.outcomes);
            assert_eq!(rf.outcomes, rs.outcomes);
            assert!(rp.summary.update_groups > 0);
            assert_eq!(rf.summary.update_groups, 0);
        }
        assert_eq!(partitioned.forest_edges(), single.forest_edges());
        assert_eq!(forced_serial.forest_edges(), single.forest_edges());
        assert_eq!(partitioned.forest_weight(), single.forest_weight());
        partitioned.validate_structure();
        forced_serial.validate_structure();
        // Batch 1: groups {0}, {1}, {2,3} → 3 groups, 1 conflict (4 updates).
        // Batch 2: groups {0}, {2,3} (partitions 2 and 3 merged in batch 1,
        // so the cut of edge 2's component and the 12–15 link now share a
        // class) → stats accumulate across batches.
        let stats = partitioned.stats();
        assert_eq!(stats.update_groups, 5);
        assert_eq!(stats.group_conflicts, 2);
        assert!(partitioned.is_partitioned());
        assert!(partitioned.partitioned_structure().is_some());
        assert!(!single.is_partitioned());
    }

    #[test]
    fn rebalance_restores_grouping_after_migration_pileup() {
        // 32 vertices, 4 block partitions, one 8-vertex chain per block.
        let mut engine = Engine::with_partitioned_execution(32, 4, 4, ExecMode::Simulated);
        engine.set_rebalance_min(1);
        let mut chains = Vec::new();
        for b in 0..4u32 {
            for i in 0..7 {
                chains.push(link(8 * b + i, 8 * b + i + 1, (8 * b + i) as i64 + 1));
            }
        }
        let r1 = engine.execute(&chains);
        assert_eq!(r1.summary.update_groups, 4);
        assert_eq!(r1.summary.rebalances, 0);

        // Bridges drag every chain into one partition (smaller/tied side —
        // the `u` side — moves toward vertex 0's home every time). The
        // piled-up partition holds a single connected component, so the
        // trigger fires but correctly declines to split it.
        let r2 = engine.execute(&[link(8, 0, 100), link(16, 0, 101), link(24, 0, 102)]);
        assert_eq!(r2.summary.update_groups, 1);
        assert_eq!(r2.summary.migrations, 3);
        assert_eq!(r2.summary.rebalances, 0);

        // Cutting the bridges (ids 28..31 follow the 28 chain links) leaves
        // four independent chains stranded in one partition; the post-batch
        // rebalance spreads them back out.
        let r3 = engine.execute(&[
            Op::Cut { id: EdgeId(28) },
            Op::Cut { id: EdgeId(29) },
            Op::Cut { id: EdgeId(30) },
        ]);
        assert_eq!(r3.summary.rebalances, 1);
        assert_eq!(r3.summary.migrations, 3);
        assert!(r3.summary.migrated_vertices > 0);

        // With homes spread again, per-chain links re-color into 4 groups.
        let r4 = engine.execute(&[
            link(0, 2, 200),
            link(8, 10, 201),
            link(16, 18, 202),
            link(24, 26, 203),
        ]);
        assert_eq!(r4.summary.update_groups, 4);
        assert_eq!(engine.stats().rebalances, 1);
        assert_eq!(engine.stats().migrations, 6);
        engine.validate_structure();

        // A forced-serial twin of the same stream lands on identical homes
        // and forests (rebalance runs on both paths).
        let mut serial = Engine::with_partitioned_execution(32, 4, 4, ExecMode::Simulated);
        serial.set_rebalance_min(1);
        serial.set_serial_apply(true);
        serial.execute(&chains);
        serial.execute(&[link(8, 0, 100), link(16, 0, 101), link(24, 0, 102)]);
        serial.execute(&[
            Op::Cut { id: EdgeId(28) },
            Op::Cut { id: EdgeId(29) },
            Op::Cut { id: EdgeId(30) },
        ]);
        serial.execute(&[
            link(0, 2, 200),
            link(8, 10, 201),
            link(16, 18, 202),
            link(24, 26, 203),
        ]);
        assert_eq!(engine.forest_edges(), serial.forest_edges());
        let (p, s) = (
            engine.partitioned_structure().unwrap(),
            serial.partitioned_structure().unwrap(),
        );
        for v in 0..32u32 {
            assert_eq!(
                p.home_of(VertexId(v)),
                s.home_of(VertexId(v)),
                "home of {v}"
            );
        }
        assert_eq!(p.occupancy(), s.occupancy());
        serial.validate_structure();
    }

    #[test]
    fn empty_and_query_only_batches_work() {
        let mut engine = Engine::new(3);
        let r = engine.execute(&[]);
        assert!(r.outcomes.is_empty());
        let r = engine.execute(&[Op::QueryForestWeight, qconn(0, 2)]);
        assert_eq!(r.outcomes[0], Outcome::ForestWeight { weight: 0 });
        assert_eq!(r.outcomes[1], Outcome::Connected { connected: false });
    }
}
