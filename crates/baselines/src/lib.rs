//! # pdmsf-baselines
//!
//! Comparison implementations of the [`DynamicMsf`] trait.
//!
//! The paper positions its structure against the classical worst-case
//! approaches (Frederickson's `O(sqrt m)` structure and its sparsified
//! `O(sqrt n)` variant) and against the trivial ones. This crate implements
//! the two bracketing baselines used in `EXPERIMENTS.md`:
//!
//! * [`RecomputeMsf`] — recompute the forest from scratch (Kruskal) after
//!   every update; `O(m log m)` per update. The "no data structure at all"
//!   lower bracket every dynamic algorithm must beat.
//! * [`NaiveDynamicMsf`] — maintain the forest in a link-cut tree and handle
//!   tree-edge deletions by scanning **all** non-tree edges for the
//!   minimum-weight replacement; `O(log n)` insertions but `Θ(m log n)`
//!   worst-case deletions. This is the structure the paper's chunk/LSDS
//!   machinery exists to avoid: the MWR search is the whole game.
//!
//! Both are exact (they maintain the same unique MSF as the reference
//! Kruskal), which the test-suite checks on randomized update streams.

use pdmsf_dyntree::LinkCutForest;
use pdmsf_graph::{kruskal_msf, DynGraph, DynamicMsf, Edge, EdgeId, MsfDelta, VertexId, WKey};
use std::collections::BTreeMap;

/// Baseline that recomputes the minimum spanning forest from scratch after
/// every update.
#[derive(Clone, Debug, Default)]
pub struct RecomputeMsf {
    mirror: DynGraph,
    /// Map from caller edge id to the mirror's edge id (the mirror allocates
    /// its own sequential ids).
    to_mirror: BTreeMap<EdgeId, EdgeId>,
    from_mirror: BTreeMap<EdgeId, EdgeId>,
    forest: Vec<EdgeId>,
    forest_weight: i128,
}

impl RecomputeMsf {
    /// A structure over `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        RecomputeMsf {
            mirror: DynGraph::new(n),
            ..Default::default()
        }
    }

    fn refresh(&mut self) -> Vec<EdgeId> {
        let old = std::mem::take(&mut self.forest);
        let summary = kruskal_msf(&self.mirror);
        self.forest_weight = summary.total_weight;
        self.forest = summary
            .edges
            .into_iter()
            .map(|mid| self.from_mirror[&mid])
            .collect();
        self.forest.sort_unstable();
        old
    }

    fn delta(&self, old: &[EdgeId]) -> MsfDelta {
        MsfDelta {
            added: self.forest.iter().copied().find(|e| !old.contains(e)),
            removed: old.iter().copied().find(|e| !self.forest.contains(e)),
        }
    }
}

impl DynamicMsf for RecomputeMsf {
    fn num_vertices(&self) -> usize {
        self.mirror.num_vertices()
    }

    fn add_vertex(&mut self) -> VertexId {
        self.mirror.add_vertex()
    }

    fn insert(&mut self, e: Edge) -> MsfDelta {
        let mid = self.mirror.insert_edge(e.u, e.v, e.weight);
        self.to_mirror.insert(e.id, mid);
        self.from_mirror.insert(mid, e.id);
        let old = self.refresh();
        self.delta(&old)
    }

    fn delete(&mut self, id: EdgeId) -> MsfDelta {
        let mid = self
            .to_mirror
            .remove(&id)
            .unwrap_or_else(|| panic!("edge {id:?} is not live"));
        self.from_mirror.remove(&mid);
        self.mirror.delete_edge(mid);
        let old = self.refresh();
        self.delta(&old)
    }

    fn contains_edge(&self, id: EdgeId) -> bool {
        self.to_mirror.contains_key(&id)
    }

    fn is_forest_edge(&self, id: EdgeId) -> bool {
        self.forest.binary_search(&id).is_ok()
    }

    fn forest_edges(&self) -> Vec<EdgeId> {
        self.forest.clone()
    }

    fn forest_weight(&self) -> i128 {
        self.forest_weight
    }

    fn connected(&mut self, u: VertexId, v: VertexId) -> bool {
        let mut uf = pdmsf_graph::UnionFind::new(self.mirror.num_vertices());
        for e in self.mirror.edges() {
            uf.union(e.u.index(), e.v.index());
        }
        uf.same(u.index(), v.index())
    }

    fn name(&self) -> &'static str {
        "recompute-kruskal"
    }
}

/// Baseline that maintains the forest in a link-cut tree and answers
/// tree-edge deletions by a linear scan over all non-tree edges.
#[derive(Clone, Debug)]
pub struct NaiveDynamicMsf {
    forest: LinkCutForest,
    /// All live edges.
    edges: BTreeMap<EdgeId, Edge>,
    /// Live edges currently in the forest.
    tree_edges: BTreeMap<EdgeId, Edge>,
    forest_weight: i128,
}

impl NaiveDynamicMsf {
    /// A structure over `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        NaiveDynamicMsf {
            forest: LinkCutForest::new(n),
            edges: BTreeMap::new(),
            tree_edges: BTreeMap::new(),
            forest_weight: 0,
        }
    }

    fn add_to_forest(&mut self, e: Edge) {
        self.forest.link(e.u, e.v, e.id, WKey::new(e.weight, e.id));
        self.tree_edges.insert(e.id, e);
        self.forest_weight += e.weight.as_summable();
    }

    fn remove_from_forest(&mut self, id: EdgeId) -> Edge {
        let e = self.tree_edges.remove(&id).expect("not a forest edge");
        self.forest.cut(id);
        self.forest_weight -= e.weight.as_summable();
        e
    }
}

impl DynamicMsf for NaiveDynamicMsf {
    fn num_vertices(&self) -> usize {
        self.forest.num_vertices()
    }

    fn add_vertex(&mut self) -> VertexId {
        self.forest.add_vertex()
    }

    fn insert(&mut self, e: Edge) -> MsfDelta {
        assert!(
            !self.edges.contains_key(&e.id),
            "edge {:?} already inserted",
            e.id
        );
        self.edges.insert(e.id, e);
        if e.u == e.v {
            return MsfDelta::NONE;
        }
        if !self.forest.connected(e.u, e.v) {
            self.add_to_forest(e);
            return MsfDelta::added(e.id);
        }
        // Same tree: replace the heaviest path edge if the new edge is lighter.
        let heaviest = self
            .forest
            .path_max(e.u, e.v)
            .expect("connected vertices have a path");
        if WKey::new(e.weight, e.id) < heaviest {
            self.remove_from_forest(heaviest.edge);
            self.add_to_forest(e);
            MsfDelta::swap(e.id, heaviest.edge)
        } else {
            MsfDelta::NONE
        }
    }

    fn delete(&mut self, id: EdgeId) -> MsfDelta {
        let e = self
            .edges
            .remove(&id)
            .unwrap_or_else(|| panic!("edge {id:?} is not live"));
        if !self.tree_edges.contains_key(&id) {
            return MsfDelta::NONE;
        }
        self.remove_from_forest(id);
        // Linear scan over every remaining edge for the cheapest one that
        // reconnects the two sides — this is the O(m) step the paper's
        // structure avoids.
        let mut best: Option<(WKey, Edge)> = None;
        for cand in self.edges.values() {
            if cand.u == cand.v || self.tree_edges.contains_key(&cand.id) {
                continue;
            }
            let crosses = {
                let au = self.forest.connected(cand.u, e.u);
                let bu = self.forest.connected(cand.v, e.u);
                let av = self.forest.connected(cand.u, e.v);
                let bv = self.forest.connected(cand.v, e.v);
                (au && bv) || (av && bu)
            };
            if crosses {
                let key = WKey::new(cand.weight, cand.id);
                if best.is_none_or(|(bk, _)| key < bk) {
                    best = Some((key, *cand));
                }
            }
        }
        match best {
            Some((_, replacement)) => {
                self.add_to_forest(replacement);
                MsfDelta::swap(replacement.id, id)
            }
            None => MsfDelta::removed(id),
        }
    }

    fn contains_edge(&self, id: EdgeId) -> bool {
        self.edges.contains_key(&id)
    }

    fn is_forest_edge(&self, id: EdgeId) -> bool {
        self.tree_edges.contains_key(&id)
    }

    fn forest_edges(&self) -> Vec<EdgeId> {
        self.tree_edges.keys().copied().collect()
    }

    fn forest_weight(&self) -> i128 {
        self.forest_weight
    }

    fn connected(&mut self, u: VertexId, v: VertexId) -> bool {
        self.forest.connected(u, v)
    }

    fn name(&self) -> &'static str {
        "naive-linear-scan"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdmsf_graph::{
        assert_matches_kruskal, GraphSpec, StreamKind, UpdateOp, UpdateStream, UpdateStreamSpec,
        Weight,
    };

    fn drive<M: DynamicMsf>(structure: &mut M, stream: &UpdateStream) {
        stream.replay_with(|mirror, op| {
            match op {
                None => {
                    // Base graph: feed every base edge.
                    for e in mirror.edges() {
                        structure.insert(e);
                    }
                }
                Some(UpdateOp::Insert { .. }) => {
                    // The mirror already holds the new edge: it is the one
                    // with the largest id.
                    let newest = mirror
                        .edges()
                        .max_by_key(|e| e.id)
                        .expect("insert leaves at least one edge");
                    structure.insert(newest);
                }
                Some(UpdateOp::Delete { id }) => {
                    structure.delete(*id);
                }
            }
            assert_matches_kruskal(structure, mirror);
        });
    }

    #[test]
    fn recompute_matches_kruskal_on_mixed_stream() {
        let stream = UpdateStream::generate(&UpdateStreamSpec {
            base: GraphSpec::RandomSparse {
                n: 30,
                m: 45,
                seed: 1,
            },
            ops: 120,
            kind: StreamKind::Mixed {
                insert_permille: 500,
            },
            seed: 2,
        });
        let mut s = RecomputeMsf::new(30);
        drive(&mut s, &stream);
    }

    #[test]
    fn naive_matches_kruskal_on_mixed_stream() {
        let stream = UpdateStream::generate(&UpdateStreamSpec {
            base: GraphSpec::RandomSparse {
                n: 40,
                m: 70,
                seed: 3,
            },
            ops: 200,
            kind: StreamKind::Mixed {
                insert_permille: 480,
            },
            seed: 4,
        });
        let mut s = NaiveDynamicMsf::new(40);
        drive(&mut s, &stream);
    }

    #[test]
    fn naive_matches_kruskal_on_failure_stream() {
        let stream = UpdateStream::generate(&UpdateStreamSpec {
            base: GraphSpec::Grid {
                rows: 5,
                cols: 6,
                seed: 5,
            },
            ops: 1000,
            kind: StreamKind::Failures,
            seed: 6,
        });
        let mut s = NaiveDynamicMsf::new(30);
        drive(&mut s, &stream);
    }

    #[test]
    fn insert_reports_swap_delta() {
        let mut s = NaiveDynamicMsf::new(3);
        let e = |id: u32, u: u32, v: u32, w: i64| Edge {
            id: EdgeId(id),
            u: VertexId(u),
            v: VertexId(v),
            weight: Weight::new(w),
        };
        assert_eq!(s.insert(e(0, 0, 1, 5)), MsfDelta::added(EdgeId(0)));
        assert_eq!(s.insert(e(1, 1, 2, 6)), MsfDelta::added(EdgeId(1)));
        // Cheaper parallel path edge replaces the heaviest cycle edge.
        assert_eq!(
            s.insert(e(2, 0, 2, 1)),
            MsfDelta::swap(EdgeId(2), EdgeId(1))
        );
        // Heavier edge changes nothing.
        assert_eq!(s.insert(e(3, 0, 1, 100)), MsfDelta::NONE);
        assert_eq!(s.forest_weight(), 5 + 1);
    }

    #[test]
    fn delete_reports_replacement_delta() {
        let mut s = NaiveDynamicMsf::new(4);
        let e = |id: u32, u: u32, v: u32, w: i64| Edge {
            id: EdgeId(id),
            u: VertexId(u),
            v: VertexId(v),
            weight: Weight::new(w),
        };
        s.insert(e(0, 0, 1, 1));
        s.insert(e(1, 1, 2, 2));
        s.insert(e(2, 0, 2, 10)); // non-tree
        s.insert(e(3, 2, 3, 4));
        // Deleting a non-tree edge: no forest change.
        assert_eq!(s.delete(EdgeId(2)), MsfDelta::NONE);
        s.insert(e(4, 0, 2, 11)); // non-tree again
                                  // Deleting tree edge 1 forces the replacement 4.
        assert_eq!(s.delete(EdgeId(1)), MsfDelta::swap(EdgeId(4), EdgeId(1)));
        assert!(s.is_forest_edge(EdgeId(4)));
        // Deleting a bridge with no replacement just removes it.
        assert_eq!(s.delete(EdgeId(3)), MsfDelta::removed(EdgeId(3)));
        assert!(!s.connected(VertexId(0), VertexId(3)));
    }

    #[test]
    fn recompute_and_naive_agree() {
        let stream = UpdateStream::generate(&UpdateStreamSpec {
            base: GraphSpec::PreferentialAttachment {
                n: 25,
                attach: 2,
                seed: 7,
            },
            ops: 150,
            kind: StreamKind::Mixed {
                insert_permille: 520,
            },
            seed: 8,
        });
        let mut a = RecomputeMsf::new(25);
        let mut b = NaiveDynamicMsf::new(25);
        stream.replay_with(|mirror, op| {
            match op {
                None => {
                    for e in mirror.edges() {
                        a.insert(e);
                        b.insert(e);
                    }
                }
                Some(UpdateOp::Insert { .. }) => {
                    let newest = mirror.edges().max_by_key(|e| e.id).unwrap();
                    let da = a.insert(newest);
                    let db = b.insert(newest);
                    assert_eq!(da, db, "insert deltas diverged");
                }
                Some(UpdateOp::Delete { id }) => {
                    let da = a.delete(*id);
                    let db = b.delete(*id);
                    assert_eq!(da, db, "delete deltas diverged");
                }
            }
            assert_eq!(a.forest_edges(), b.forest_edges());
            assert_eq!(a.forest_weight(), b.forest_weight());
        });
    }
}
