//! # pdmsf-dyntree
//!
//! Sleator–Tarjan dynamic trees (link-cut trees) with *maximum-weight edge on
//! a path* queries.
//!
//! The paper uses "the dynamic tree data structure of Sleator and Tarjan
//! \[19\], which costs `O(log n)` worst-case time per forest update or path
//! query" (Section 2.1) for exactly one purpose: when an edge `(u, v)` is
//! inserted and both endpoints are already in the same tree of the MSF, the
//! algorithm must find the **heaviest edge on the `u`–`v` path** to decide
//! whether the new edge replaces it. This crate provides that structure.
//!
//! The implementation is a classical link-cut tree over splay trees of
//! preferred paths, written with index arenas (no `Rc`, no `unsafe`):
//!
//! * every forest **vertex** is a node,
//! * every forest **edge** is also a node (carrying the edge's
//!   [`WKey`](pdmsf_graph::WKey)), spliced between its two endpoints, which is
//!   the standard trick for edge-weighted path aggregation,
//! * subtree aggregates store the maximum `WKey`, so a path query returns the
//!   unique heaviest edge (ties broken by edge id).
//!
//! Operations are amortised `O(log n)` (the paper quotes the worst-case
//! variant of \[19\]; the amortised variant is the standard practical
//! substitute and does not change any experiment's shape — see DESIGN.md).

mod lct;

pub use lct::LinkCutForest;
