//! Link-cut trees over splay trees, with maximum-`WKey` path aggregation.

use pdmsf_graph::arena::EdgeIdIndex;
use pdmsf_graph::{EdgeId, VertexId, WKey};

const NONE: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Node {
    parent: u32,
    child: [u32; 2],
    /// Lazy "reverse this splay subtree" flag (needed for `make_root`).
    flip: bool,
    /// The node's own key: `Some` for edge nodes, `None` for vertex nodes.
    val: Option<WKey>,
    /// Maximum key in this node's splay subtree (including `val`).
    agg: Option<WKey>,
    /// Endpoints represented by this node: for an edge node, the edge's
    /// endpoints; unused (`VertexId::NONE`) for vertex nodes.
    ends: (VertexId, VertexId),
}

impl Node {
    fn new(val: Option<WKey>) -> Self {
        Node {
            parent: NONE,
            child: [NONE, NONE],
            flip: false,
            val,
            agg: val,
            ends: (VertexId::NONE, VertexId::NONE),
        }
    }
}

/// A forest of rooted trees supporting `link`, `cut`, `connected` and
/// "heaviest edge on the path between two vertices" queries, all in
/// amortised `O(log n)`.
///
/// Vertices are identified by [`VertexId`]; forest edges carry an [`EdgeId`]
/// and a [`WKey`] and are represented internally as their own nodes.
#[derive(Clone, Debug, Default)]
pub struct LinkCutForest {
    nodes: Vec<Node>,
    /// Internal node index of each vertex.
    vertex_node: Vec<u32>,
    /// Paged edge id -> internal edge node index (no hashing; the node itself
    /// stores the endpoints).
    edge_node: EdgeIdIndex,
    /// Free list of edge nodes available for reuse.
    free_nodes: Vec<u32>,
    num_edges: usize,
}

impl LinkCutForest {
    /// A forest of `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        let mut forest = LinkCutForest::default();
        for _ in 0..n {
            forest.add_vertex();
        }
        forest
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertex_node.len()
    }

    /// Number of live forest edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Append a new isolated vertex.
    pub fn add_vertex(&mut self) -> VertexId {
        let node = self.alloc_node(None);
        let id = VertexId::from(self.vertex_node.len());
        self.vertex_node.push(node);
        id
    }

    /// Whether the forest currently contains the given edge.
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.edge_node.get(e).is_some()
    }

    /// The endpoints of a live forest edge.
    pub fn edge_endpoints(&self, e: EdgeId) -> Option<(VertexId, VertexId)> {
        self.edge_node.get(e).map(|n| self.nodes[n as usize].ends)
    }

    /// Whether `u` and `v` are in the same tree.
    pub fn connected(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return true;
        }
        let (nu, nv) = (self.vertex_node[u.index()], self.vertex_node[v.index()]);
        let ru = self.find_root(nu);
        let rv = self.find_root(nv);
        ru == rv
    }

    /// Add the edge `e = {u, v}` with key `key` to the forest.
    ///
    /// # Panics
    /// Panics if `u` and `v` are already connected, if `u == v`, or if `e` is
    /// already present.
    pub fn link(&mut self, u: VertexId, v: VertexId, e: EdgeId, key: WKey) {
        assert!(u != v, "cannot link a vertex to itself");
        assert!(!self.contains_edge(e), "edge {e:?} already in the forest");
        assert!(
            !self.connected(u, v),
            "link({u:?}, {v:?}) would create a cycle"
        );
        let enode = self.alloc_node(Some(key));
        self.nodes[enode as usize].ends = (u, v);
        let nu = self.vertex_node[u.index()];
        let nv = self.vertex_node[v.index()];
        // Attach u - enode - v.
        self.make_root(nu);
        self.nodes[nu as usize].parent = enode; // path-parent pointer
        self.make_root(enode);
        self.nodes[enode as usize].parent = nv;
        self.edge_node.set(e, enode);
        self.num_edges += 1;
    }

    /// Remove the edge `e` from the forest.
    ///
    /// # Panics
    /// Panics if the edge is not present.
    pub fn cut(&mut self, e: EdgeId) {
        let enode = self
            .edge_node
            .remove(e)
            .unwrap_or_else(|| panic!("edge {e:?} is not in the forest"));
        let (u, v) = self.nodes[enode as usize].ends;
        let nu = self.vertex_node[u.index()];
        let nv = self.vertex_node[v.index()];
        // Detach enode from u, then from v.
        self.cut_adjacent(nu, enode);
        self.cut_adjacent(enode, nv);
        self.free_nodes.push(enode);
        self.num_edges -= 1;
    }

    /// The heaviest edge (by `WKey`) on the path from `u` to `v`, or `None`
    /// if `u == v` or they are not connected.
    pub fn path_max(&mut self, u: VertexId, v: VertexId) -> Option<WKey> {
        if u == v || !self.connected(u, v) {
            return None;
        }
        let nu = self.vertex_node[u.index()];
        let nv = self.vertex_node[v.index()];
        self.make_root(nu);
        self.access(nv);
        self.nodes[nv as usize].agg
    }

    // ------------------------------------------------------------------
    // Internal splay-tree machinery.
    // ------------------------------------------------------------------

    fn alloc_node(&mut self, val: Option<WKey>) -> u32 {
        if let Some(idx) = self.free_nodes.pop() {
            self.nodes[idx as usize] = Node::new(val);
            idx
        } else {
            self.nodes.push(Node::new(val));
            (self.nodes.len() - 1) as u32
        }
    }

    #[inline]
    fn is_splay_root(&self, x: u32) -> bool {
        let p = self.nodes[x as usize].parent;
        p == NONE || (self.nodes[p as usize].child[0] != x && self.nodes[p as usize].child[1] != x)
    }

    #[inline]
    fn push_down(&mut self, x: u32) {
        if self.nodes[x as usize].flip {
            let [l, r] = self.nodes[x as usize].child;
            self.nodes[x as usize].child = [r, l];
            for c in [l, r] {
                if c != NONE {
                    self.nodes[c as usize].flip ^= true;
                }
            }
            self.nodes[x as usize].flip = false;
        }
    }

    #[inline]
    fn pull_up(&mut self, x: u32) {
        let mut agg = self.nodes[x as usize].val;
        for c in self.nodes[x as usize].child {
            if c != NONE {
                agg = match (agg, self.nodes[c as usize].agg) {
                    (Some(a), Some(b)) => Some(if a >= b { a } else { b }),
                    (Some(a), None) => Some(a),
                    (None, b) => b,
                };
            }
        }
        self.nodes[x as usize].agg = agg;
    }

    fn rotate(&mut self, x: u32) {
        let p = self.nodes[x as usize].parent;
        let g = self.nodes[p as usize].parent;
        let dir = (self.nodes[p as usize].child[1] == x) as usize;
        let b = self.nodes[x as usize].child[1 - dir];

        // p adopts b in x's former place.
        self.nodes[p as usize].child[dir] = b;
        if b != NONE {
            self.nodes[b as usize].parent = p;
        }
        // x adopts p.
        self.nodes[x as usize].child[1 - dir] = p;
        self.nodes[p as usize].parent = x;
        // g adopts x (or x becomes a splay root keeping the path-parent).
        self.nodes[x as usize].parent = g;
        if g != NONE {
            if self.nodes[g as usize].child[0] == p {
                self.nodes[g as usize].child[0] = x;
            } else if self.nodes[g as usize].child[1] == p {
                self.nodes[g as usize].child[1] = x;
            }
        }
        self.pull_up(p);
        self.pull_up(x);
    }

    fn splay(&mut self, x: u32) {
        // Push pending flips from the splay root down to x first.
        let mut stack = vec![x];
        let mut cur = x;
        while !self.is_splay_root(cur) {
            cur = self.nodes[cur as usize].parent;
            stack.push(cur);
        }
        while let Some(node) = stack.pop() {
            self.push_down(node);
        }

        while !self.is_splay_root(x) {
            let p = self.nodes[x as usize].parent;
            if !self.is_splay_root(p) {
                let g = self.nodes[p as usize].parent;
                let zig_zig = (self.nodes[g as usize].child[1] == p)
                    == (self.nodes[p as usize].child[1] == x);
                if zig_zig {
                    self.rotate(p);
                } else {
                    self.rotate(x);
                }
            }
            self.rotate(x);
        }
        self.pull_up(x);
    }

    /// Make the path from `x` to the root of its represented tree preferred,
    /// and splay `x` to the root of its splay tree. Returns the last
    /// path-parent jump (the classical `access` return value).
    fn access(&mut self, x: u32) -> u32 {
        self.splay(x);
        // Detach the preferred child below x.
        let right = self.nodes[x as usize].child[1];
        if right != NONE {
            self.nodes[x as usize].child[1] = NONE;
            // `right` keeps x as its path-parent (parent pointer stays).
            self.pull_up(x);
        }
        let mut last = x;
        while self.nodes[x as usize].parent != NONE {
            let p = self.nodes[x as usize].parent;
            self.splay(p);
            // Replace p's preferred child with x.
            let old = self.nodes[p as usize].child[1];
            self.nodes[p as usize].child[1] = x;
            if old != NONE {
                // old keeps p as path-parent.
            }
            self.pull_up(p);
            self.splay(x);
            last = p;
        }
        last
    }

    /// Make `x` the root of its represented tree.
    fn make_root(&mut self, x: u32) {
        self.access(x);
        self.nodes[x as usize].flip ^= true;
        self.push_down(x);
    }

    /// Root of the represented tree containing `x`.
    fn find_root(&mut self, x: u32) -> u32 {
        self.access(x);
        let mut cur = x;
        loop {
            self.push_down(cur);
            let left = self.nodes[cur as usize].child[0];
            if left == NONE {
                break;
            }
            cur = left;
        }
        self.splay(cur);
        cur
    }

    /// Cut the represented-tree edge between adjacent nodes `a` and `b`
    /// (where "adjacent" means consecutive on a preferred path once `a` is
    /// the root).
    fn cut_adjacent(&mut self, a: u32, b: u32) {
        self.make_root(a);
        self.access(b);
        // After make_root(a) + access(b), the splay tree rooted at b contains
        // exactly the path a..b, and a is b's left child.
        debug_assert_eq!(self.nodes[b as usize].child[0], a, "nodes are not adjacent");
        self.nodes[b as usize].child[0] = NONE;
        self.nodes[a as usize].parent = NONE;
        self.pull_up(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdmsf_graph::Weight;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn key(w: i64, e: u32) -> WKey {
        WKey::new(Weight::new(w), EdgeId(e))
    }

    /// Brute-force forest oracle: adjacency lists + BFS path search.
    #[derive(Default)]
    struct Oracle {
        adj: Vec<Vec<(usize, WKey)>>,
        edges: std::collections::HashMap<EdgeId, (usize, usize, WKey)>,
    }

    impl Oracle {
        fn new(n: usize) -> Self {
            Oracle {
                adj: vec![Vec::new(); n],
                edges: Default::default(),
            }
        }
        fn link(&mut self, u: usize, v: usize, e: EdgeId, k: WKey) {
            self.adj[u].push((v, k));
            self.adj[v].push((u, k));
            self.edges.insert(e, (u, v, k));
        }
        fn cut(&mut self, e: EdgeId) {
            let (u, v, k) = self.edges.remove(&e).unwrap();
            self.adj[u].retain(|&(x, kk)| !(x == v && kk == k));
            self.adj[v].retain(|&(x, kk)| !(x == u && kk == k));
        }
        fn path(&self, u: usize, v: usize) -> Option<Vec<WKey>> {
            // DFS returning the edge keys along the unique path, if any.
            fn dfs(
                adj: &[Vec<(usize, WKey)>],
                cur: usize,
                target: usize,
                parent: usize,
                path: &mut Vec<WKey>,
            ) -> bool {
                if cur == target {
                    return true;
                }
                for &(next, k) in &adj[cur] {
                    if next == parent {
                        continue;
                    }
                    path.push(k);
                    if dfs(adj, next, target, cur, path) {
                        return true;
                    }
                    path.pop();
                }
                false
            }
            let mut path = Vec::new();
            if dfs(&self.adj, u, v, usize::MAX, &mut path) {
                Some(path)
            } else {
                None
            }
        }
        fn connected(&self, u: usize, v: usize) -> bool {
            self.path(u, v).is_some()
        }
        fn path_max(&self, u: usize, v: usize) -> Option<WKey> {
            let p = self.path(u, v)?;
            p.into_iter().max()
        }
    }

    #[test]
    fn single_path_queries() {
        let mut f = LinkCutForest::new(5);
        f.link(VertexId(0), VertexId(1), EdgeId(0), key(5, 0));
        f.link(VertexId(1), VertexId(2), EdgeId(1), key(9, 1));
        f.link(VertexId(2), VertexId(3), EdgeId(2), key(2, 2));
        assert!(f.connected(VertexId(0), VertexId(3)));
        assert!(!f.connected(VertexId(0), VertexId(4)));
        assert_eq!(f.path_max(VertexId(0), VertexId(3)), Some(key(9, 1)));
        assert_eq!(f.path_max(VertexId(2), VertexId(3)), Some(key(2, 2)));
        assert_eq!(f.path_max(VertexId(0), VertexId(0)), None);
        assert_eq!(f.path_max(VertexId(0), VertexId(4)), None);
    }

    #[test]
    fn cut_splits_tree() {
        let mut f = LinkCutForest::new(4);
        f.link(VertexId(0), VertexId(1), EdgeId(0), key(1, 0));
        f.link(VertexId(1), VertexId(2), EdgeId(1), key(2, 1));
        f.link(VertexId(2), VertexId(3), EdgeId(2), key(3, 2));
        f.cut(EdgeId(1));
        assert!(f.connected(VertexId(0), VertexId(1)));
        assert!(f.connected(VertexId(2), VertexId(3)));
        assert!(!f.connected(VertexId(1), VertexId(2)));
        assert_eq!(f.num_edges(), 2);
        // Relink differently.
        f.link(VertexId(0), VertexId(3), EdgeId(3), key(7, 3));
        assert!(f.connected(VertexId(1), VertexId(2)));
        assert_eq!(f.path_max(VertexId(1), VertexId(2)), Some(key(7, 3)));
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn linking_connected_vertices_panics() {
        let mut f = LinkCutForest::new(3);
        f.link(VertexId(0), VertexId(1), EdgeId(0), key(1, 0));
        f.link(VertexId(1), VertexId(2), EdgeId(1), key(1, 1));
        f.link(VertexId(0), VertexId(2), EdgeId(2), key(1, 2));
    }

    #[test]
    fn edge_endpoints_are_reported() {
        let mut f = LinkCutForest::new(3);
        f.link(VertexId(2), VertexId(0), EdgeId(5), key(4, 5));
        assert_eq!(
            f.edge_endpoints(EdgeId(5)),
            Some((VertexId(2), VertexId(0)))
        );
        assert!(f.contains_edge(EdgeId(5)));
        f.cut(EdgeId(5));
        assert!(!f.contains_edge(EdgeId(5)));
        assert_eq!(f.edge_endpoints(EdgeId(5)), None);
    }

    #[test]
    fn randomized_against_oracle() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xDECAF);
        for trial in 0..30 {
            let n = 2 + (trial % 9) * 7;
            let mut f = LinkCutForest::new(n);
            let mut oracle = Oracle::new(n);
            let mut live: Vec<EdgeId> = Vec::new();
            let mut next_edge = 0u32;
            for _step in 0..300 {
                let op = rng.gen_range(0..10);
                if op < 4 {
                    // Try to link two random vertices if they are disconnected.
                    let u = rng.gen_range(0..n);
                    let v = rng.gen_range(0..n);
                    if u != v && !oracle.connected(u, v) {
                        let k = key(rng.gen_range(1..100), next_edge);
                        let e = EdgeId(next_edge);
                        next_edge += 1;
                        f.link(VertexId::from(u), VertexId::from(v), e, k);
                        oracle.link(u, v, e, k);
                        live.push(e);
                    }
                } else if op < 6 && !live.is_empty() {
                    let idx = rng.gen_range(0..live.len());
                    let e = live.swap_remove(idx);
                    f.cut(e);
                    oracle.cut(e);
                } else {
                    let u = rng.gen_range(0..n);
                    let v = rng.gen_range(0..n);
                    assert_eq!(
                        f.connected(VertexId::from(u), VertexId::from(v)),
                        oracle.connected(u, v),
                        "connectivity mismatch (n={n}, u={u}, v={v})"
                    );
                    if u != v {
                        assert_eq!(
                            f.path_max(VertexId::from(u), VertexId::from(v)),
                            oracle.path_max(u, v),
                            "path_max mismatch (n={n}, u={u}, v={v})"
                        );
                    }
                }
            }
            assert_eq!(f.num_edges(), live.len());
        }
    }

    #[test]
    fn long_path_then_random_cuts() {
        let n = 200;
        let mut f = LinkCutForest::new(n);
        let mut oracle = Oracle::new(n);
        for i in 0..n - 1 {
            let k = key((i as i64 * 37) % 101, i as u32);
            f.link(
                VertexId::from(i),
                VertexId::from(i + 1),
                EdgeId(i as u32),
                k,
            );
            oracle.link(i, i + 1, EdgeId(i as u32), k);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..50 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                assert_eq!(
                    f.path_max(VertexId::from(u), VertexId::from(v)),
                    oracle.path_max(u, v)
                );
            }
        }
        // Cut every third edge and re-check connectivity structure.
        for i in (0..n - 1).step_by(3) {
            f.cut(EdgeId(i as u32));
            oracle.cut(EdgeId(i as u32));
        }
        for _ in 0..100 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            assert_eq!(
                f.connected(VertexId::from(u), VertexId::from(v)),
                oracle.connected(u, v)
            );
        }
    }

    #[test]
    fn add_vertex_grows_forest() {
        let mut f = LinkCutForest::new(1);
        let v = f.add_vertex();
        assert_eq!(v, VertexId(1));
        assert_eq!(f.num_vertices(), 2);
        f.link(VertexId(0), v, EdgeId(0), key(1, 0));
        assert!(f.connected(VertexId(0), v));
    }
}
