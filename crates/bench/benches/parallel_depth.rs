//! E2-E4 bench: cost of maintaining the EREW-accounted parallel structure
//! (the wall clock here tracks the simulated-PRAM bookkeeping; the depth /
//! work / processor numbers themselves are printed by `experiments e2`).
//! The threaded variant exercises the pool-backed execution path.
//!
//! Runs on the in-repo harness (`pdmsf_bench::harness`), so it works offline:
//! `cargo bench -p pdmsf-bench --bench parallel_depth`.

use pdmsf_bench::harness::BenchGroup;
use pdmsf_bench::{drive, mixed_stream};
use pdmsf_core::ParDynamicMsf;

fn main() {
    let mut group = BenchGroup::new("e2_parallel_structure");
    for n in [1usize << 8, 1 << 10] {
        let stream = mixed_stream(n, 2 * n, 300, 21);
        group.bench(&format!("kpr-par/{n}"), || {
            drive(&mut ParDynamicMsf::new(n), &stream)
        });
        group.bench(&format!("kpr-par-threads/{n}"), || {
            drive(&mut ParDynamicMsf::new_threaded(n), &stream)
        });
    }
}
