//! E2-E4 bench: cost of maintaining the EREW-accounted parallel structure
//! (the wall clock here tracks the simulated-PRAM bookkeeping; the depth /
//! work / processor numbers themselves are printed by `experiments e2`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdmsf_bench::{drive, mixed_stream};
use pdmsf_core::ParDynamicMsf;

fn bench_parallel_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_parallel_structure");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for n in [1usize << 8, 1 << 10] {
        let stream = mixed_stream(n, 2 * n, 300, 21);
        group.bench_with_input(BenchmarkId::new("kpr-par", n), &stream, |b, s| {
            b.iter(|| drive(&mut ParDynamicMsf::new(n), s))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_depth);
criterion_main!(benches);
